(* Seeded chaos harness for the serve daemon: random interleavings of
   valid ops, hostile lines, oversized payloads, budget expiries, blank
   lines and mid-run cache-dir corruption, driven through the protocol
   layer and (separately) through a real subprocess under a tight
   pending-queue bound.

   The invariants held at every pinned seed:
   - exactly one well-formed JSON response per non-blank request line,
     none for blank lines;
   - the daemon never dies: every [handle_line] returns, [continue]
     only drops on [quit], and the subprocess always exits 0;
   - the stats ledger reconciles: requests = protocol_errors +
     completed + timeouts + resource_exhausted + sheds + drained;
   - an expired or refused request never corrupts the cache — a warm
     retry of the same op still succeeds. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let exe =
  let candidates =
    [ "../bin/socuml.exe"; "_build/default/bin/socuml.exe"; "bin/socuml.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "socuml.exe not found next to the test binary"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let tmp = Filename.get_temp_dir_name ()

let demo_model =
  lazy
    (let out = Filename.concat tmp "socuml_chaos_demo" in
     let code =
       Sys.command
         (Printf.sprintf "%s demo --out %s >/dev/null 2>&1"
            (Filename.quote exe) (Filename.quote out))
     in
     if code <> 0 then Alcotest.failf "demo: exit %d" code;
     Filename.concat out "demo_soc.xmi")

let tiny_model name path =
  let m = Uml.Model.create name in
  Xmi.Write.write_file m path;
  path

let fresh_dir path =
  if Sys.file_exists path then
    Array.iter
      (fun f -> Sys.remove (Filename.concat path f))
      (Sys.readdir path)
  else Sys.mkdir path 0o755;
  path

(* The request repertoire, weighted toward cheap lines so a few hundred
   iterations stay fast.  Oversized lines are rare (they cost 1 MiB of
   string each); budget expiries use fuel so they are deterministic. *)
let random_line rng ~model ~tiny ~garbage =
  match Workload.Prng.int rng 20 with
  | 0 | 1 | 2 -> Printf.sprintf {|{"op":"info","model":%S}|} tiny
  | 3 | 4 -> Printf.sprintf {|{"op":"validate","model":%S}|} model
  | 5 -> {|{"op":"stats"}|}
  | 6 -> {|{"op":"health"}|}
  | 7 ->
    Printf.sprintf {|{"op":"simulate","model":%S,"rtl":true,"fuel":%d}|}
      model
      (Workload.Prng.int rng 3)
  | 8 ->
    Printf.sprintf {|{"op":"analyze","model":%S,"fuel":%d}|} model
      (Workload.Prng.int rng 5)
  | 9 -> Printf.sprintf {|{"op":"lint","model":%S}|} tiny
  | 10 -> "garbage that is not json"
  | 11 -> {|{"op":"frobnicate"}|}
  | 12 -> {|{"op":"info"}|}
  | 13 -> {|{"op":"info","model":"/no/such/model.xmi"}|}
  | 14 -> Printf.sprintf {|{"op":"validate","model":%S}|} garbage
  | 15 -> {|[1,2,3]|}
  | 16 -> {|{"op":"simulate","model":"x.xmi","fuel":1,"deadline_ms":5}|}
  | 17 -> "" (* blank: must produce no response *)
  | 18 -> "   "
  | _ ->
    if Workload.Prng.int rng 8 = 0 then
      (* oversized payload: refused before parsing *)
      Printf.sprintf {|{"op":"info","model":"%s"}|}
        (String.make (Serve.Daemon.max_line_bytes + 1) 'x')
    else Printf.sprintf {|{"op":"gen","model":%S,"lang":"vhdl"}|} tiny

let is_blank line = String.trim line = ""

let rint key v =
  match Option.bind (Serve.Json.member key v) Serve.Json.to_int with
  | Some n -> n
  | None -> Alcotest.failf "response lacks int %S" key

let serve_counter v key =
  match Serve.Json.member "serve" v with
  | Some s -> rint key s
  | None -> Alcotest.fail "stats response lacks the serve ledger"

let assert_ledger_reconciles v =
  check Alcotest.int "ledger reconciles" (rint "requests" v)
    (rint "protocol_errors" v
    + serve_counter v "completed"
    + serve_counter v "timeouts"
    + serve_counter v "resource_exhausted"
    + serve_counter v "sheds"
    + serve_counter v "drained")

(* Corrupt every persisted snapshot in the dir, as disk rot would. *)
let corrupt_cache_dir dir =
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".sumb" then
        ignore (write_file (Filename.concat dir f) "\xd3SUMBrot"))
    (Sys.readdir dir)

(* --- protocol-level chaos: drive handle_line directly --------------- *)

let protocol_chaos seed =
  let rng = Workload.Prng.create seed in
  let model = Lazy.force demo_model in
  let tiny =
    tiny_model
      (Printf.sprintf "chaos%d" seed)
      (Filename.concat tmp (Printf.sprintf "socuml_chaos_%d.xmi" seed))
  in
  let garbage =
    write_file
      (Filename.concat tmp (Printf.sprintf "socuml_chaos_bad_%d.xmi" seed))
      "not xml at all"
  in
  let dir =
    fresh_dir (Filename.concat tmp (Printf.sprintf "socuml_chaos_dir_%d" seed))
  in
  let d = Serve.Daemon.create ~max_entries:4 ~persist_dir:dir () in
  let sent = ref 0 in
  let n = Workload.Prng.range rng 120 200 in
  for _i = 1 to n do
    let line = random_line rng ~model ~tiny ~garbage in
    (* disk rot strikes mid-run: snapshots go corrupt under the
       daemon's feet *)
    if Workload.Prng.int rng 25 = 0 then corrupt_cache_dir dir;
    let response, continue = Serve.Daemon.handle_line d line in
    check Alcotest.bool "daemon keeps serving" true continue;
    match response with
    | None ->
      check Alcotest.bool "only blank lines are skipped" true (is_blank line)
    | Some r -> (
      incr sent;
      check Alcotest.bool "non-blank lines are answered" false
        (is_blank line);
      check Alcotest.bool "response is one line" false
        (String.contains r '\n');
      match Serve.Json.parse r with
      | Ok _v -> ()
      | Error e -> Alcotest.failf "unparseable response %S: %s" r e)
  done;
  (* the ledger survives the assault and accounts for every line *)
  match Serve.Daemon.handle_line d {|{"op":"stats"}|} with
  | Some r, true -> (
    incr sent;
    match Serve.Json.parse r with
    | Error e -> Alcotest.failf "unparseable stats: %s" e
    | Ok v ->
      check Alcotest.int "every answered line is in the ledger" !sent
        (rint "requests" v);
      assert_ledger_reconciles v;
      (* chaos never corrupts the cache: a warm healthy request still
         matches expectations *)
      match
        Serve.Daemon.handle_line d
          (Printf.sprintf {|{"op":"validate","model":%S}|} model)
      with
      | Some r, true -> (
        match Serve.Json.parse r with
        | Ok v ->
          check Alcotest.bool "healthy op after chaos" true
            (rint "exit" v = 0)
        | Error e -> Alcotest.failf "unparseable response: %s" e)
      | Some _, false | None, _ -> Alcotest.fail "daemon died after chaos")
  | Some _, false | None, _ -> Alcotest.fail "stats was not answered"

(* --- transport-level chaos: a real subprocess under backpressure ---- *)

let transport_chaos seed =
  let rng = Workload.Prng.create (seed * 7919) in
  let model = Lazy.force demo_model in
  let tiny =
    tiny_model
      (Printf.sprintf "tchaos%d" seed)
      (Filename.concat tmp (Printf.sprintf "socuml_tchaos_%d.xmi" seed))
  in
  let garbage =
    write_file
      (Filename.concat tmp (Printf.sprintf "socuml_tchaos_bad_%d.xmi" seed))
      "still not xml"
  in
  let n = Workload.Prng.range rng 10 30 in
  let lines =
    List.init n (fun _ -> random_line rng ~model ~tiny ~garbage)
    @ [ {|{"op":"quit"}|} ]
  in
  let req =
    write_file
      (Filename.concat tmp (Printf.sprintf "socuml_tchaos_%d.req" seed))
      (String.concat "\n" lines ^ "\n")
  in
  let out = Filename.concat tmp (Printf.sprintf "socuml_tchaos_%d.out" seed) in
  let code =
    Sys.command
      (Printf.sprintf "%s serve --max-queue 3 <%s >%s 2>/dev/null"
         (Filename.quote exe) (Filename.quote req) (Filename.quote out))
  in
  check Alcotest.int "daemon exits 0 under backpressure" 0 code;
  let responses =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file out))
  in
  let expected = List.length (List.filter (fun l -> not (is_blank l)) lines) in
  check Alcotest.int "exactly one response per non-blank line" expected
    (List.length responses);
  List.iter
    (fun r ->
      match Serve.Json.parse r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable response %S: %s" r e)
    responses

let seeds = [ 1; 7; 42; 1234; 90210 ]

let () =
  Alcotest.run "serve_chaos"
    [
      ( "protocol",
        List.map
          (fun s -> tc (Printf.sprintf "seed %d" s) (fun () ->
               protocol_chaos s))
          seeds );
      ( "transport",
        List.map
          (fun s -> tc (Printf.sprintf "seed %d" s) (fun () ->
               transport_chaos s))
          seeds );
    ]
