(* Differential tests for the compiled execution core: the
   integer-indexed Petri engine (Petri.Compiled / Analysis.explore)
   must agree exactly with the string-keyed reference BFS
   (Analysis.reachable_reference), and the memoized ASL compilation
   must leave engine traces byte-identical. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Seeded random nets (deliberately including unbounded and dead-end
   shapes: source transitions, weight-2 arcs, unreachable tokens) *)

let random_net_and_marking seed =
  let rng = Workload.Prng.create seed in
  let np = Workload.Prng.range rng 1 6 in
  let nt = Workload.Prng.range rng 1 8 in
  let place i = Printf.sprintf "p%d" i in
  let places = List.init np (fun i -> Petri.Net.place (place i)) in
  let transitions =
    List.init nt (fun i -> Petri.Net.transition (Printf.sprintf "t%d" i))
  in
  let arcs =
    List.concat_map
      (fun i ->
        let tn = Printf.sprintf "t%d" i in
        let pre =
          List.init (Workload.Prng.int rng 3) (fun _ ->
              Petri.Net.P_to_t
                ( place (Workload.Prng.int rng np),
                  tn,
                  Workload.Prng.range rng 1 2 ))
        in
        let post =
          List.init (Workload.Prng.int rng 3) (fun _ ->
              Petri.Net.T_to_p
                ( tn,
                  place (Workload.Prng.int rng np),
                  Workload.Prng.range rng 1 2 ))
        in
        pre @ post)
      (List.init nt (fun i -> i))
  in
  let net = Petri.Net.make places transitions arcs in
  let m0 =
    Petri.Marking.of_list
      (List.filter_map
         (fun i ->
           let n = Workload.Prng.int rng 3 in
           if n = 0 then None else Some (place i, n))
         (List.init np (fun i -> i)))
  in
  (net, m0)

let activity_net seed =
  let act =
    Workload.Gen_activity.with_decisions ~seed ~size:12 ~max_width:3
  in
  Activity.Translate.to_petri act

(* Reference derivations, replicating the historical per-query code on
   top of the reference BFS. *)
let reference_bound (r : Petri.Analysis.reach_result) =
  if r.Petri.Analysis.truncated then None
  else
    let max_place m =
      List.fold_left (fun acc (_, n) -> max acc n) 0 (Petri.Marking.to_list m)
    in
    Some
      (List.fold_left
         (fun acc m -> max acc (max_place m))
         0 r.Petri.Analysis.markings)

let reference_deadlock_free (r : Petri.Analysis.reach_result) =
  if r.Petri.Analysis.truncated && r.Petri.Analysis.deadlocks = [] then None
  else Some (r.Petri.Analysis.deadlocks = [])

let reference_dead net (r : Petri.Analysis.reach_result) =
  let module S = Set.Make (String) in
  let fired =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc tn -> S.add tn.Petri.Net.tn_id acc)
          acc
          (Petri.Marking.enabled_transitions net m))
      S.empty r.Petri.Analysis.markings
  in
  List.filter_map
    (fun tn ->
      if S.mem tn.Petri.Net.tn_id fired then None
      else Some tn.Petri.Net.tn_id)
    net.Petri.Net.transitions

let markings_equal a b =
  List.length a = List.length b && List.for_all2 Petri.Marking.equal a b

let agree ~limit net m0 =
  let ref_r = Petri.Analysis.reachable_reference ~limit net m0 in
  let s = Petri.Analysis.explore ~limit net m0 in
  let r = s.Petri.Analysis.sum_reach in
  r.Petri.Analysis.state_count = ref_r.Petri.Analysis.state_count
  && r.Petri.Analysis.truncated = ref_r.Petri.Analysis.truncated
  && markings_equal r.Petri.Analysis.markings ref_r.Petri.Analysis.markings
  && markings_equal r.Petri.Analysis.deadlocks ref_r.Petri.Analysis.deadlocks
  && s.Petri.Analysis.sum_bound = reference_bound ref_r
  && s.Petri.Analysis.sum_deadlock_free = reference_deadlock_free ref_r
  && s.Petri.Analysis.sum_dead_transitions = reference_dead net ref_r

let petri_differential_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"compiled = reference on random nets (reach/bound/dead)"
         ~count:150
         QCheck.(int_range 1 100_000)
         (fun seed ->
           let net, m0 = random_net_and_marking seed in
           agree ~limit:400 net m0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"compiled = reference on activity translations" ~count:40
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let net, m0 = activity_net seed in
           agree ~limit:4096 net m0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"replayed occurrence sequences agree marking-for-marking"
         ~count:100
         QCheck.(int_range 1 100_000)
         (fun seed ->
           let net, m0 = random_net_and_marking seed in
           let labels =
             Petri.Analysis.random_occurrence_sequence ~seed ~max_steps:60 net
               m0
           in
           let c = Petri.Compiled.of_net net in
           let cm0, residue = Petri.Compiled.split c m0 in
           let rec replay rm cm = function
             | [] -> Some (rm, cm)
             | label :: rest -> (
               match
                 ( Petri.Marking.fire net rm label,
                   Petri.Compiled.fire_by_id c cm label )
               with
               | Some rm', Some cm' -> replay rm' cm' rest
               | Some _, None | None, Some _ | None, None -> None)
           in
           match replay m0 cm0 labels with
           | None -> false (* both engines must accept the whole replay *)
           | Some (rm, cm) ->
             Petri.Marking.equal rm (Petri.Compiled.export c residue cm)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"coverability verdict consistent with reachability" ~count:40
         QCheck.(int_range 1 100_000)
         (fun seed ->
           let net, m0 = random_net_and_marking seed in
           let r = Petri.Analysis.reachable_reference ~limit:2000 net m0 in
           match Petri.Coverability.is_bounded ~limit:50_000 net m0 with
           | Some false ->
             (* unbounded nets must overflow plain reachability *)
             r.Petri.Analysis.truncated
           | Some true ->
             (* Karp-Miller termination without omega: the reachable
                set is finite, though it may exceed our small limit *)
             true
           | None -> true));
  ]

let petri_unit_tests =
  [
    tc "frontier holds no duplicates at the limit boundary" (fun () ->
        (* p -t-> p (self-loop): one reachable marking.  The historical
           engine enqueued the successor unconditionally, so limit=1
           reported truncation on a fully explored space. *)
        let net =
          Petri.Net.make
            [ Petri.Net.place "p" ]
            [ Petri.Net.transition "t" ]
            [ Petri.Net.P_to_t ("p", "t", 1); Petri.Net.T_to_p ("t", "p", 1) ]
        in
        let m0 = Petri.Marking.of_list [ ("p", 1) ] in
        let r = Petri.Analysis.reachable ~limit:1 net m0 in
        check Alcotest.bool "not truncated" false r.Petri.Analysis.truncated;
        check Alcotest.int "one state" 1 r.Petri.Analysis.state_count;
        let r_ref = Petri.Analysis.reachable_reference ~limit:1 net m0 in
        check Alcotest.bool "reference agrees" false
          r_ref.Petri.Analysis.truncated);
    tc "marking survives the compiled round-trip" (fun () ->
        let net, _m0 = random_net_and_marking 7 in
        let c = Petri.Compiled.of_net net in
        let m =
          Petri.Marking.of_list [ ("p0", 2); ("alien", 5); ("ghost", 1) ]
        in
        let cm, residue = Petri.Compiled.split c m in
        check Alcotest.bool "round-trip" true
          (Petri.Marking.equal m (Petri.Compiled.export c residue cm)));
    tc "fire_by_id rejects unknown transitions" (fun () ->
        let net, m0 = random_net_and_marking 3 in
        let c = Petri.Compiled.of_net net in
        let cm0, _residue = Petri.Compiled.split c m0 in
        check Alcotest.bool "unknown" true
          (Petri.Compiled.fire_by_id c cm0 "no_such_transition" = None));
  ]

(* ------------------------------------------------------------------ *)
(* ASL compilation: memo behavior and guard differential              *)

let asl_tests =
  [
    tc "guard memo returns the same compiled value" (fun () ->
        let src = "1 + 2 * 3 > 4 and not (5 < 2)" in
        check Alcotest.bool "physically equal" true
          (Asl.Compiled.guard src == Asl.Compiled.guard src));
    tc "program memo returns the same compiled value" (fun () ->
        let src = "var x := 1; x := x + 1; return x;" in
        check Alcotest.bool "physically equal" true
          (Asl.Compiled.program src == Asl.Compiled.program src));
    tc "parse errors stay latent until evaluation" (fun () ->
        let g = Asl.Compiled.guard "1 +" in
        let interp = Asl.Interp.create (Asl.Store.create ()) in
        match Asl.Interp.eval_guard_compiled interp g with
        | _b -> Alcotest.fail "expected Runtime_error"
        | exception Asl.Interp.Runtime_error _ -> ());
    tc "memo tables are LRU-bounded" (fun () ->
        let cap0 = Asl.Compiled.memo_cap () in
        Fun.protect
          ~finally:(fun () ->
            Asl.Compiled.set_memo_cap cap0;
            Asl.Compiled.clear_memo ())
          (fun () ->
            Asl.Compiled.clear_memo ();
            Asl.Compiled.set_memo_cap 8;
            for i = 0 to 19 do
              ignore (Asl.Compiled.guard (Printf.sprintf "memo_x > %d" i))
            done;
            let s = Asl.Compiled.memo_stats () in
            check Alcotest.int "resident entries capped" 8
              s.Asl.Compiled.st_guards;
            check Alcotest.int "cap reported" 8 s.Asl.Compiled.st_cap;
            (* LRU, not FIFO: touch the oldest survivor, insert one more,
               and the touched entry must outlive the eviction *)
            let touched = Asl.Compiled.guard "memo_x > 12" in
            ignore (Asl.Compiled.guard "memo_x > 20");
            check Alcotest.bool "recently-touched entry survives" true
              (touched == Asl.Compiled.guard "memo_x > 12")));
    tc "memo stats count hits, misses and evictions" (fun () ->
        let cap0 = Asl.Compiled.memo_cap () in
        Fun.protect
          ~finally:(fun () ->
            Asl.Compiled.set_memo_cap cap0;
            Asl.Compiled.clear_memo ())
          (fun () ->
            Asl.Compiled.clear_memo ();
            Asl.Compiled.set_memo_cap 4;
            let s0 = Asl.Compiled.memo_stats () in
            ignore (Asl.Compiled.guard "memo_stats_probe > 0");
            let s1 = Asl.Compiled.memo_stats () in
            check Alcotest.int "first lookup is a miss"
              (s0.Asl.Compiled.st_misses + 1) s1.Asl.Compiled.st_misses;
            ignore (Asl.Compiled.guard "memo_stats_probe > 0");
            let s2 = Asl.Compiled.memo_stats () in
            check Alcotest.int "second lookup is a hit"
              (s1.Asl.Compiled.st_hits + 1) s2.Asl.Compiled.st_hits;
            for i = 0 to 9 do
              ignore (Asl.Compiled.guard (Printf.sprintf "memo_churn > %d" i))
            done;
            let s3 = Asl.Compiled.memo_stats () in
            check Alcotest.bool "evictions counted" true
              (s3.Asl.Compiled.st_evictions
               >= s2.Asl.Compiled.st_evictions + 6);
            (* counters are lifetime: clearing drops entries, not tallies *)
            Asl.Compiled.clear_memo ();
            let s4 = Asl.Compiled.memo_stats () in
            check Alcotest.int "clear drops residency" 0
              s4.Asl.Compiled.st_guards;
            check Alcotest.int "clear keeps counters"
              s3.Asl.Compiled.st_misses s4.Asl.Compiled.st_misses));
    tc "shrinking the cap evicts immediately; cap below 1 is rejected"
      (fun () ->
        let cap0 = Asl.Compiled.memo_cap () in
        Fun.protect
          ~finally:(fun () ->
            Asl.Compiled.set_memo_cap cap0;
            Asl.Compiled.clear_memo ())
          (fun () ->
            Asl.Compiled.clear_memo ();
            Asl.Compiled.set_memo_cap 8;
            for i = 0 to 7 do
              ignore (Asl.Compiled.program (Printf.sprintf "return %d;" i))
            done;
            Asl.Compiled.set_memo_cap 3;
            let s = Asl.Compiled.memo_stats () in
            check Alcotest.int "programs evicted down to the new cap" 3
              s.Asl.Compiled.st_programs;
            check Alcotest.int "new cap in force" 3
              (Asl.Compiled.memo_cap ());
            match Asl.Compiled.set_memo_cap 0 with
            | () -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument _ -> ()));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"eval_guard = eval_guard_compiled on random comparisons"
         ~count:200
         QCheck.(triple (int_range (-50) 50) (int_range (-50) 50) bool)
         (fun (a, b, conj) ->
           let src =
             Printf.sprintf "%d < %d %s %d * %d >= 0" a b
               (if conj then "and" else "or")
               a b
           in
           let interp = Asl.Interp.create (Asl.Store.create ()) in
           Asl.Interp.eval_guard interp src
           = Asl.Interp.eval_guard_compiled interp (Asl.Compiled.guard src)));
  ]

(* ------------------------------------------------------------------ *)
(* Engine trace determinism under precompilation                      *)

let statechart_trace sm events =
  let engine = Statechart.Engine.create sm in
  Statechart.Engine.start engine;
  List.iter
    (fun name -> Statechart.Engine.dispatch engine (Statechart.Event.make name))
    events;
  String.concat "\n"
    (List.map Statechart.Engine.show_step_record
       (Statechart.Engine.trace engine))

let engine_tests =
  [
    tc "statechart trace is byte-identical across cold and warm memo"
      (fun () ->
        let sm =
          Workload.Gen_statechart.hierarchical ~seed:21 ~depth:3 ~breadth:2
            ~events:4
        in
        let events =
          Workload.Gen_statechart.event_sequence ~seed:21 ~length:300 4
        in
        (* first run parses and fills the memo; the second runs entirely
           on memoized compiled behaviors *)
        let cold = statechart_trace sm events in
        let warm = statechart_trace sm events in
        check Alcotest.string "byte-identical" cold warm;
        check Alcotest.bool "non-trivial trace" true
          (String.length cold > 100));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"activity runs stay conforming under compiled replay"
         ~count:40
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let act =
             Workload.Gen_activity.with_decisions ~seed ~size:12 ~max_width:3
           in
           let r = Activity.Conform.run_and_check ~seed act in
           r.Activity.Conform.conforms));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"activity engine runs are replayable" ~count:40
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let act =
             Workload.Gen_activity.series_parallel ~seed ~size:10 ~max_width:3
           in
           let run () =
             let e = Activity.Exec.create act in
             Activity.Exec.run ~seed e
           in
           run () = run ()));
  ]

let () =
  Alcotest.run "compiled"
    [
      ("petri-differential", petri_differential_tests);
      ("petri-unit", petri_unit_tests);
      ("asl", asl_tests);
      ("engines", engine_tests);
    ]
