(* Tests for the telemetry substrate: clocks, ring buffer, metrics
   registry and report determinism. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- clocks ------------------------------------------------------------- *)

let clock_tests =
  [
    tc "null clock always reads 0" (fun () ->
        let c = Telemetry.Clock.null in
        check Alcotest.int "first" 0 (Telemetry.Clock.ticks c);
        Telemetry.Clock.advance c 5;
        check Alcotest.int "still" 0 (Telemetry.Clock.ticks c));
    tc "counting clock advances on read" (fun () ->
        let c = Telemetry.Clock.counting () in
        check Alcotest.int "0" 0 (Telemetry.Clock.ticks c);
        check Alcotest.int "1" 1 (Telemetry.Clock.ticks c);
        check Alcotest.int "2" 2 (Telemetry.Clock.ticks c));
    tc "manual clock moves only on advance" (fun () ->
        let c = Telemetry.Clock.manual () in
        check Alcotest.int "0" 0 (Telemetry.Clock.ticks c);
        check Alcotest.int "still 0" 0 (Telemetry.Clock.ticks c);
        Telemetry.Clock.advance c 7;
        check Alcotest.int "7" 7 (Telemetry.Clock.ticks c));
    tc "of_fun wraps an arbitrary source" (fun () ->
        let n = ref 40 in
        let c = Telemetry.Clock.of_fun (fun () -> incr n; !n) in
        check Alcotest.int "41" 41 (Telemetry.Clock.ticks c);
        check Alcotest.int "42" 42 (Telemetry.Clock.ticks c));
  ]

(* --- ring buffer -------------------------------------------------------- *)

let ring_tests =
  [
    tc "negative capacity rejected" (fun () ->
        match Telemetry.Ring.create (-1) with
        | _r -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "keeps items below capacity, oldest first" (fun () ->
        let r = Telemetry.Ring.create 4 in
        List.iter (Telemetry.Ring.push r) [ 1; 2; 3 ];
        check (Alcotest.list Alcotest.int) "items" [ 1; 2; 3 ]
          (Telemetry.Ring.to_list r);
        check Alcotest.int "dropped" 0 (Telemetry.Ring.dropped r));
    tc "wrap overwrites oldest and counts drops" (fun () ->
        let r = Telemetry.Ring.create 3 in
        List.iter (Telemetry.Ring.push r) [ 1; 2; 3; 4; 5 ];
        check (Alcotest.list Alcotest.int) "items" [ 3; 4; 5 ]
          (Telemetry.Ring.to_list r);
        check Alcotest.int "dropped" 2 (Telemetry.Ring.dropped r);
        check Alcotest.int "length" 3 (Telemetry.Ring.length r));
    tc "capacity 0 refuses everything" (fun () ->
        let r = Telemetry.Ring.create 0 in
        List.iter (Telemetry.Ring.push r) [ 1; 2 ];
        check (Alcotest.list Alcotest.int) "empty" []
          (Telemetry.Ring.to_list r);
        check Alcotest.int "dropped" 2 (Telemetry.Ring.dropped r));
    tc "clear empties and resets drops" (fun () ->
        let r = Telemetry.Ring.create 2 in
        List.iter (Telemetry.Ring.push r) [ 1; 2; 3 ];
        Telemetry.Ring.clear r;
        check (Alcotest.list Alcotest.int) "empty" []
          (Telemetry.Ring.to_list r);
        check Alcotest.int "dropped" 0 (Telemetry.Ring.dropped r);
        Telemetry.Ring.push r 9;
        check (Alcotest.list Alcotest.int) "usable" [ 9 ]
          (Telemetry.Ring.to_list r));
  ]

(* --- metrics registry --------------------------------------------------- *)

let metrics_tests =
  [
    tc "counter find-or-register and incr" (fun () ->
        let t = Telemetry.Metrics.create () in
        let c = Telemetry.Metrics.counter t "a.x" in
        Telemetry.Metrics.incr c;
        Telemetry.Metrics.incr ~by:4 c;
        check Alcotest.int "value" 5 (Telemetry.Metrics.counter_value c);
        (* same name resolves to the same counter *)
        let c' = Telemetry.Metrics.counter t "a.x" in
        Telemetry.Metrics.incr c';
        check Alcotest.int "shared" 6 (Telemetry.Metrics.counter_value c));
    tc "gauge tracks last and max" (fun () ->
        let t = Telemetry.Metrics.create () in
        let g = Telemetry.Metrics.gauge t "a.depth" in
        Telemetry.Metrics.set_gauge g 3;
        Telemetry.Metrics.set_gauge g 7;
        Telemetry.Metrics.set_gauge g 2;
        check Alcotest.int "last" 2 (Telemetry.Metrics.gauge_value g);
        check Alcotest.int "max" 7 (Telemetry.Metrics.gauge_max g));
    tc "span charges logical ticks, also on exception" (fun () ->
        let t = Telemetry.Metrics.create () in
        let v = Telemetry.Metrics.span t "a.work" (fun () -> 41 + 1) in
        check Alcotest.int "result" 42 v;
        (match
           Telemetry.Metrics.span t "a.work" (fun () -> failwith "boom")
         with
        | () -> Alcotest.fail "expected Failure"
        | exception Failure _ -> ());
        let report = Telemetry.Metrics.report t in
        check Alcotest.bool "count=2 recorded" true
          (contains report "count=2"));
    tc "events are stamped and rendered stably" (fun () ->
        let t = Telemetry.Metrics.create () in
        Telemetry.Metrics.event t ~scope:"s" "go"
          [ ("n", Telemetry.Metrics.F_int 3);
            ("ok", Telemetry.Metrics.F_bool true);
            ("who", Telemetry.Metrics.F_str "x") ];
        match Telemetry.Metrics.events t with
        | [ ev ] ->
          check Alcotest.string "rendering" "000000 @0 s/go n=3 ok=true who=x"
            (Telemetry.Metrics.render_event ev)
        | _other -> Alcotest.fail "one event expected");
    tc "event ring drops beyond capacity" (fun () ->
        let t = Telemetry.Metrics.create ~event_capacity:2 () in
        for i = 1 to 5 do
          Telemetry.Metrics.event t ~scope:"s" "e"
            [ ("i", Telemetry.Metrics.F_int i) ]
        done;
        check Alcotest.int "kept" 2 (List.length (Telemetry.Metrics.events t));
        check Alcotest.int "dropped" 3 (Telemetry.Metrics.events_dropped t));
    tc "disabled registry records nothing" (fun () ->
        let t = Telemetry.Metrics.disabled () in
        check Alcotest.bool "not live" false (Telemetry.Metrics.live t);
        let c = Telemetry.Metrics.counter t "a.x" in
        Telemetry.Metrics.incr ~by:10 c;
        check Alcotest.int "counter" 0 (Telemetry.Metrics.counter_value c);
        let g = Telemetry.Metrics.gauge t "a.g" in
        Telemetry.Metrics.set_gauge g 5;
        check Alcotest.int "gauge" 0 (Telemetry.Metrics.gauge_value g);
        check Alcotest.int "span result" 9
          (Telemetry.Metrics.span t "a.s" (fun () -> 9));
        Telemetry.Metrics.event t ~scope:"s" "e" [];
        check Alcotest.int "events" 0
          (List.length (Telemetry.Metrics.events t)));
  ]

(* --- determinism -------------------------------------------------------- *)

(* Drive a registry with a seeded-PRNG instrument schedule; two runs
   with the same seed must render byte-identical reports. *)
let scripted_report seed =
  let prng = Workload.Prng.create seed in
  let t = Telemetry.Metrics.create ~event_capacity:8 () in
  let c = Telemetry.Metrics.counter t "w.count" in
  let g = Telemetry.Metrics.gauge t "w.level" in
  for _ = 1 to 50 do
    match Workload.Prng.int prng 4 with
    | 0 -> Telemetry.Metrics.incr ~by:(Workload.Prng.int prng 5) c
    | 1 -> Telemetry.Metrics.set_gauge g (Workload.Prng.int prng 100)
    | 2 -> Telemetry.Metrics.span t "w.span" (fun () -> ())
    | _other ->
      Telemetry.Metrics.event t ~scope:"w" "tick"
        [ ("v", Telemetry.Metrics.F_int (Workload.Prng.int prng 10)) ]
  done;
  Telemetry.Metrics.report t
  ^ String.concat "\n"
      (List.map Telemetry.Metrics.render_event (Telemetry.Metrics.events t))

let determinism_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"report is a pure function of the call sequence"
         ~count:50
         (QCheck.make QCheck.Gen.(int_bound 10_000))
         (fun seed -> String.equal (scripted_report seed) (scripted_report seed)));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("clock", clock_tests);
      ("ring", ring_tests);
      ("metrics", metrics_tests);
      ("determinism", determinism_tests);
    ]
