(* Snapshot round-trip tests: a hand-built model covering every element
   kind, a qcheck differential against the XMI path, byte-determinism of
   the writer, and hostile-input rejection (bad magic, wrong version,
   truncation anywhere, arbitrary byte flips). *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* Build a model exercising every metamodel corner the wire codec has a
   branch for: all classifier kinds, all 10 pseudostate kinds, all
   trigger and transition kinds, all 12 activity node kinds, both edge
   kinds, all 6 message sorts, all 12 interaction operators, all vspec
   literals, components with both connector kinds, all 3 deployment
   node kinds, a stereotype extending all 16 metaclasses, and all 13
   diagram kinds. *)
let kitchen_sink () =
  let m = Model.create "sink" in
  let itf =
    Classifier.make ~kind:Classifier.Interface
      ~operations:
        [
          Classifier.operation
            ~params:
              [
                Classifier.parameter "x" Dtype.Integer;
                Classifier.parameter ~direction:Classifier.Return "r"
                  Dtype.Boolean;
              ]
            "check";
        ]
      "IChecker"
  in
  Model.add m (Model.E_classifier itf);
  let enum =
    Classifier.make ~kind:(Classifier.Enumeration [ "Red"; "Green" ]) "Color"
  in
  Model.add m (Model.E_classifier enum);
  let sig_cl = Classifier.make ~kind:Classifier.Signal "Ping" in
  Model.add m (Model.E_classifier sig_cl);
  Model.add m
    (Model.E_classifier (Classifier.make ~kind:Classifier.Data_type "Fix16"));
  Model.add m
    (Model.E_classifier
       (Classifier.make ~kind:Classifier.Primitive_type "word32"));
  let actor = Classifier.make ~kind:Classifier.Actor_kind "User" in
  Model.add m (Model.E_classifier actor);
  let base = Classifier.make ~is_abstract:true "Base" in
  Model.add m (Model.E_classifier base);
  let cls =
    Classifier.make ~is_active:true
      ~attributes:
        [
          Classifier.property ~mult:Mult.optional ~default:(Vspec.of_int 3)
            ~visibility:Classifier.Private ~is_static:true ~is_read_only:true
            ~aggregation:Classifier.Composite "count" Dtype.Integer;
          Classifier.property ~default:(Vspec.Real_literal 2.5)
            ~aggregation:Classifier.Shared "gain" Dtype.Real;
          Classifier.property ~default:(Vspec.Enum_literal "Red") "color"
            (Dtype.Ref enum.Classifier.cl_id);
          Classifier.property ~default:Vspec.Null_literal "label"
            Dtype.String_type;
          Classifier.property
            ~default:(Vspec.Opaque_expression "a + b")
            ~visibility:Classifier.Package_visibility "expr"
            Dtype.Unlimited_natural;
          Classifier.property ~default:(Vspec.of_bool true)
            ~visibility:Classifier.Protected "flag" Dtype.Boolean;
        ]
      ~operations:
        [
          Classifier.operation ~visibility:Classifier.Protected ~is_query:true
            ~body:"return 1;" "peek";
        ]
      ~receptions:
        [
          {
            Classifier.recv_id = Ident.fresh ();
            recv_signal = sig_cl.Classifier.cl_id;
          };
        ]
      ~generals:[ base.Classifier.cl_id ]
      ~realized:[ itf.Classifier.cl_id ]
      "Widget"
  in
  Model.add m (Model.E_classifier cls);
  Model.add m
    (Model.E_association
       (Classifier.binary_association ~name:"owns"
          ~source:(cls.Classifier.cl_id, Mult.one, true)
          ~target:(base.Classifier.cl_id, Mult.many, false)
          ()));
  Model.add m
    (Model.E_package (Pkg.make ~owned:[ cls.Classifier.cl_id ] ~imports:[] "pkg"));
  (* state machine with all pseudostate kinds *)
  let mk_ps kind = Smachine.pseudostate kind in
  let s1 =
    Smachine.simple_state ~entry:"e();" ~exit_:"x();" ~do_:"d();"
      ~deferred:[ Smachine.Signal_trigger "later" ]
      "S1"
  in
  let s2 = Smachine.simple_state "S2" in
  let inner_region =
    Smachine.region ~name:"inner"
      [ Smachine.State s2; Smachine.Pseudo (mk_ps Smachine.Shallow_history) ]
      []
  in
  let comp = Smachine.composite_state "Comp" [ inner_region ] in
  let init = mk_ps Smachine.Initial in
  let fin = Smachine.final () in
  let all_pseudos =
    List.map mk_ps
      [
        Smachine.Deep_history; Smachine.Join; Smachine.Fork; Smachine.Junction;
        Smachine.Choice; Smachine.Entry_point; Smachine.Exit_point;
        Smachine.Terminate;
      ]
  in
  let region =
    Smachine.region ~name:"top"
      (Smachine.Pseudo init :: Smachine.State s1 :: Smachine.State comp
      :: Smachine.Final fin
      :: List.map (fun p -> Smachine.Pseudo p) all_pseudos)
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:s1.Smachine.st_id ();
        Smachine.transition
          ~triggers:
            [
              Smachine.Signal_trigger "go"; Smachine.Time_trigger 5;
              Smachine.Any_trigger; Smachine.Completion;
            ]
          ~guard:"x > 0" ~effect:"x := x - 1;" ~kind:Smachine.Local
          ~source:s1.Smachine.st_id ~target:comp.Smachine.st_id ();
        Smachine.transition ~kind:Smachine.Internal ~guard:"x = 0"
          ~source:s1.Smachine.st_id ~target:s1.Smachine.st_id ();
      ]
  in
  Model.add m
    (Model.E_state_machine
       (Smachine.make ~context:cls.Classifier.cl_id "machine" [ region ]));
  (* activity with every node kind *)
  let nodes =
    [
      Activityg.initial ();
      Activityg.action ~body:"x := 1;" "act";
      Activityg.call_behavior ~behavior:(Ident.of_string "beh") "call";
      Activityg.send_signal ~event:"ping" "send";
      Activityg.accept_event ~event:"pong" "recv";
      Activityg.object_node ~upper_bound:4 "buf" Dtype.Integer;
      Activityg.fork "f";
      Activityg.join "j";
      Activityg.decision "d";
      Activityg.merge "mg";
      Activityg.flow_final ();
      Activityg.activity_final ();
    ]
  in
  let n0 = List.nth nodes 0 in
  let n1 = List.nth nodes 1 in
  let edges =
    [
      Activityg.edge ~guard:"ok" ~weight:2 ~kind:Activityg.Object_flow
        ~source:(Activityg.node_id n0) ~target:(Activityg.node_id n1) ();
      Activityg.edge ~kind:Activityg.Control_flow
        ~source:(Activityg.node_id n1) ~target:(Activityg.node_id n0) ();
    ]
  in
  Model.add m (Model.E_activity (Activityg.make "flow" nodes edges));
  (* interaction: all message sorts and all combined-fragment operators *)
  let l1 = Interaction.lifeline ~represents:cls.Classifier.cl_id "a" in
  let l2 = Interaction.lifeline "b" in
  let msg name sort =
    Interaction.Message
      (Interaction.message ~sort
         ~arguments:[ Vspec.of_int 1; Vspec.of_string_value "s" ]
         ~from_:l1.Interaction.ll_id ~to_:l2.Interaction.ll_id name)
  in
  let sorts =
    [
      Interaction.Synch_call; Interaction.Asynch_call;
      Interaction.Asynch_signal; Interaction.Reply;
      Interaction.Create_message; Interaction.Delete_message;
    ]
  in
  let frag op body =
    Interaction.Fragment
      (Interaction.fragment op [ Interaction.operand ~guard:"g" body ])
  in
  let operators =
    [
      Interaction.Alt; Interaction.Opt; Interaction.Loop (1, Some 3);
      Interaction.Loop (0, None); Interaction.Par; Interaction.Strict;
      Interaction.Seq; Interaction.Break; Interaction.Critical;
      Interaction.Neg; Interaction.Assert;
      Interaction.Ignore [ "m1" ];
      Interaction.Consider [ "m1"; "m2" ];
    ]
  in
  let body =
    List.mapi (fun i s -> msg (Printf.sprintf "m%d" i) s) sorts
    @ List.map (fun op -> frag op [ msg "inner" Interaction.Reply ]) operators
    @ [
        Interaction.Fragment
          (Interaction.fragment Interaction.Alt
             [
               Interaction.operand ~guard:"x > 0"
                 [ frag Interaction.Opt [ msg "deep" Interaction.Synch_call ] ];
               Interaction.operand [];
             ]);
      ]
  in
  Model.add m (Model.E_interaction (Interaction.make "seq" [ l1; l2 ] body));
  (* use cases *)
  let uc_base = Usecase.make "Login" in
  Model.add m (Model.E_use_case uc_base);
  Model.add m
    (Model.E_use_case
       (Usecase.make ~subject:cls.Classifier.cl_id
          ~actors:[ actor.Classifier.cl_id ]
          ~includes:[ uc_base.Usecase.uc_id ]
          ~extends:[ Usecase.extend ~condition:"vip" uc_base.Usecase.uc_id ]
          "Order"));
  (* component with ports, parts, both connector kinds *)
  let inner_port = Component.port ~provided:[ itf.Classifier.cl_id ] "pi" in
  let inner_comp = Component.make ~ports:[ inner_port ] "Inner" in
  Model.add m (Model.E_component inner_comp);
  let outer_port =
    Component.port ~required:[ itf.Classifier.cl_id ] ~is_behavior:true "po"
  in
  let p0 = Component.part "u0" inner_comp.Component.cmp_id in
  let p1 = Component.part "u1" inner_comp.Component.cmp_id in
  let deleg =
    Component.delegation ~name:"d0" ~outer:outer_port.Component.port_id
      ~inner:(Some p0.Component.part_id, inner_port.Component.port_id)
      ()
  in
  let asm =
    Component.assembly ~name:"a0"
      ~from_:(Some p0.Component.part_id, inner_port.Component.port_id)
      ~to_:(Some p1.Component.part_id, inner_port.Component.port_id)
      ()
  in
  Model.add m
    (Model.E_component
       (Component.make ~ports:[ outer_port ] ~parts:[ p0; p1 ]
          ~connectors:[ deleg; asm ] "Outer"));
  (* instances and links *)
  let i1 =
    Instance.make ~classifier:cls.Classifier.cl_id
      ~slots:
        [
          Instance.slot "count" [ Vspec.of_int 2 ];
          Instance.slot "mixed"
            [ Vspec.Real_literal (-0.5); Vspec.Bool_literal false;
              Vspec.Null_literal ];
        ]
      "w1"
  in
  Model.add m (Model.E_instance i1);
  let i2 = Instance.make "w2" in
  Model.add m (Model.E_instance i2);
  Model.add m
    (Model.E_link (Instance.link i1.Instance.inst_id i2.Instance.inst_id));
  (* deployment: all three node kinds *)
  let dev = Deployment.node ~kind:Deployment.Device "board" in
  Model.add m (Model.E_deployment_node dev);
  let ee =
    Deployment.node ~kind:Deployment.Execution_environment
      ~nested:[ dev.Deployment.dn_id ] "rtos"
  in
  Model.add m (Model.E_deployment_node ee);
  let host = Deployment.node ~kind:Deployment.Node "host" in
  Model.add m (Model.E_deployment_node host);
  let art = Deployment.artifact ~manifests:[ cls.Classifier.cl_id ] "fw.bin" in
  Model.add m (Model.E_artifact art);
  Model.add m
    (Model.E_deployment
       (Deployment.deploy ~artifact:art.Deployment.art_id
          ~target:dev.Deployment.dn_id ()));
  Model.add m
    (Model.E_communication_path
       (Deployment.communication_path dev.Deployment.dn_id
          host.Deployment.dn_id));
  (* profile: one stereotype extending every metaclass *)
  let all_meta =
    [
      Profile.M_class; Profile.M_interface; Profile.M_component;
      Profile.M_port; Profile.M_property; Profile.M_operation;
      Profile.M_package; Profile.M_state_machine; Profile.M_state;
      Profile.M_transition; Profile.M_activity; Profile.M_action;
      Profile.M_node; Profile.M_artifact; Profile.M_connector; Profile.M_any;
    ]
  in
  let ster =
    Profile.stereotype ~extends:all_meta
      ~tags:
        [
          Profile.tag ~default:(Vspec.of_int 1) "area" Dtype.Integer;
          Profile.tag "note" Dtype.String_type;
        ]
      "hw"
  in
  Model.add m (Model.E_profile (Profile.make "soc" [ ster ]));
  Model.add_application m
    (Profile.apply
       ~values:[ ("area", Vspec.of_int 42); ("note", Vspec.of_string_value "x") ]
       ~stereotype:ster.Profile.ster_id ~element:cls.Classifier.cl_id ());
  (* one diagram of every kind *)
  List.iteri
    (fun i k ->
      Model.add_diagram m
        (Diagram.make
           ~elements:(if i = 0 then [ cls.Classifier.cl_id ] else [])
           k
           (Printf.sprintf "dg%d" i)))
    Diagram.all_kinds;
  m

let snap_roundtrip m = Snap.Read.model_of_string (Snap.Write.to_string m)
let xmi_roundtrip m = Xmi.Read.model_of_string (Xmi.Write.to_string m)

let expect_import_error what data =
  match Snap.Read.model_of_string data with
  | _m -> Alcotest.failf "%s: expected Import_error" what
  | exception Snap.Read.Import_error _ -> ()

let basic_tests =
  [
    tc "kitchen-sink model round-trips" (fun () ->
        let m = kitchen_sink () in
        check Alcotest.bool "equal" true (Model.equal m (snap_roundtrip m)));
    tc "snap and xmi paths agree on the kitchen sink" (fun () ->
        let m = kitchen_sink () in
        check Alcotest.bool "equal" true
          (Model.equal (snap_roundtrip m) (xmi_roundtrip m)));
    tc "round-trip preserves element order" (fun () ->
        let m = kitchen_sink () in
        let m' = snap_roundtrip m in
        check
          (Alcotest.list Alcotest.string)
          "ids"
          (List.map (fun e -> Model.element_id e) (Model.elements m))
          (List.map (fun e -> Model.element_id e) (Model.elements m')));
    tc "writer is deterministic" (fun () ->
        let m = kitchen_sink () in
        check Alcotest.string "same bytes" (Snap.Write.to_string m)
          (Snap.Write.to_string m));
    tc "write-read-write is the identity on bytes" (fun () ->
        let m = kitchen_sink () in
        let s1 = Snap.Write.to_string m in
        let s2 = Snap.Write.to_string (Snap.Read.model_of_string s1) in
        check Alcotest.string "same bytes" s1 s2);
    tc "empty model round-trips" (fun () ->
        let m = Model.create "empty" in
        check Alcotest.bool "equal" true (Model.equal m (snap_roundtrip m)));
    tc "snapshot is much smaller than the XMI text" (fun () ->
        let m = kitchen_sink () in
        let snap = String.length (Snap.Write.to_string m) in
        let xmi = String.length (Xmi.Write.to_string m) in
        if snap * 2 >= xmi then
          Alcotest.failf "snapshot %d bytes vs XMI %d bytes" snap xmi);
    tc "non-ASCII and control bytes in strings survive" (fun () ->
        let m = Model.create "m\xc3\xa9" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:
                  [ Classifier.operation ~body:"a\x00b\nc\ttail" "f" ]
                "A<B> & \"C\"'s"));
        check Alcotest.bool "equal" true (Model.equal m (snap_roundtrip m)));
    tc "is_snapshot distinguishes formats" (fun () ->
        let m = Model.create "m" in
        check Alcotest.bool "snap" true
          (Snap.Read.is_snapshot (Snap.Write.to_string m));
        check Alcotest.bool "xmi" false
          (Snap.Read.is_snapshot (Xmi.Write.to_string m));
        check Alcotest.bool "empty" false (Snap.Read.is_snapshot "");
        check Alcotest.bool "prefix" false (Snap.Read.is_snapshot "\xd3SU"));
    tc "rejects empty input" (fun () -> expect_import_error "empty" "");
    tc "rejects bad magic" (fun () ->
        expect_import_error "bad magic" "<?xml version=\"1.0\"?><xmi:XMI/>");
    tc "rejects a future format version" (fun () ->
        let data = Bytes.of_string (Snap.Write.to_string (kitchen_sink ())) in
        Bytes.set data 5 '\x63';
        expect_import_error "version 99" (Bytes.to_string data));
    tc "rejects trailing bytes" (fun () ->
        let data = Snap.Write.to_string (Model.create "m") in
        expect_import_error "trailing" (data ^ "\x00"));
    tc "rejects a hostile string-table count" (fun () ->
        (* magic + version + varint claiming ~2^40 strings *)
        let data = Snap.Wire.magic ^ "\x01\xff\xff\xff\xff\xff\x7f" in
        expect_import_error "huge count" data);
    tc "rejects a negative string reference (9-byte varint, bit 62)" (fun () ->
        (* version 1, empty table; the model-name reference decodes to
           -2^62 — previously an out-of-bounds [Array.unsafe_get] *)
        let data =
          Snap.Wire.magic ^ "\x01\x00" ^ String.make 8 '\x80' ^ "\x40"
        in
        expect_import_error "negative str ref" data);
    tc "rejects a negative list count" (fun () ->
        (* version 1, table ["m"], name ref 0, then an element-list
           count of -2^62 — previously unbounded non-tail recursion *)
        let data =
          Snap.Wire.magic ^ "\x01\x01\x01m\x00" ^ String.make 8 '\x80' ^ "\x40"
        in
        expect_import_error "negative list count" data);
    tc "every strict prefix is rejected" (fun () ->
        let data = Snap.Write.to_string (kitchen_sink ()) in
        for n = 0 to String.length data - 1 do
          expect_import_error
            (Printf.sprintf "prefix of length %d" n)
            (String.sub data 0 n)
        done);
  ]

(* Wire-primitive edge cases: varint sign rejection (a 9th byte can set
   bit 62, the native sign bit) and the full-width zigzag int path. *)

let expect_decode_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Decode_error" what
  | exception Snap.Wire.Decode_error _ -> ()

(* -2^62: eight continuation bytes of payload 0, then bit 62 *)
let neg_varint = String.make 8 '\x80' ^ "\x40"

(* Encode with [Enc.int], decode back through the public header path
   (magic + version byte + empty string table). *)
let int_roundtrip v =
  let e = Snap.Wire.Enc.create () in
  Snap.Wire.Enc.int e v;
  let d =
    Snap.Wire.Dec.make ~pos:(String.length Snap.Wire.magic)
      (Snap.Wire.Enc.contents e)
  in
  let (_ : int) = Snap.Wire.Dec.u8 d in
  let (_ : int) = Snap.Wire.Dec.varint d in
  Snap.Wire.Dec.int d

let int_extremes =
  [ min_int; min_int + 1; -(1 lsl 61) - 1; -(1 lsl 61); -(1 lsl 61) + 1;
    -1; 0; 1; (1 lsl 61) - 1; 1 lsl 61; max_int - 1; max_int ]

let wire_tests =
  [
    tc "varint rejects encodings that set bit 62" (fun () ->
        expect_decode_error "0x80*8,0x40" (fun () ->
            Snap.Wire.Dec.varint (Snap.Wire.Dec.make neg_varint));
        (* all 63 bits set: decodes to -1 *)
        expect_decode_error "0xff*8,0x7f" (fun () ->
            Snap.Wire.Dec.varint
              (Snap.Wire.Dec.make (String.make 8 '\xff' ^ "\x7f")));
        (* max_int is the largest legal varint *)
        check Alcotest.int "max_int" max_int
          (Snap.Wire.Dec.varint
             (Snap.Wire.Dec.make (String.make 8 '\xff' ^ "\x3f"))));
    tc "a negative string reference raises Decode_error" (fun () ->
        let d = Snap.Wire.Dec.make neg_varint in
        Snap.Wire.Dec.set_table d [| "only" |];
        expect_decode_error "str" (fun () -> Snap.Wire.Dec.str d));
    tc "a negative list count raises Decode_error" (fun () ->
        let d = Snap.Wire.Dec.make (neg_varint ^ String.make 64 '\x00') in
        expect_decode_error "list" (fun () ->
            Snap.Wire.Dec.list d Snap.Wire.Dec.u8));
    tc "a huge string length is a Decode_error, not Invalid_argument"
      (fun () ->
        (* length max_int: [pos + n] would wrap past the bounds check *)
        let d = Snap.Wire.Dec.make (String.make 8 '\xff' ^ "\x3fxyz") in
        expect_decode_error "raw_string" (fun () ->
            Snap.Wire.Dec.raw_string d));
    tc "full-width ints round-trip at the wire level" (fun () ->
        List.iter
          (fun v -> check Alcotest.int (string_of_int v) v (int_roundtrip v))
          int_extremes);
    tc "int extremes survive a model snapshot and agree with XMI" (fun () ->
        let m = Model.create "ints" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~attributes:
                  (List.mapi
                     (fun i v ->
                       Classifier.property ~default:(Vspec.of_int v)
                         (Printf.sprintf "a%d" i) Dtype.Integer)
                     int_extremes)
                "Extremes"));
        check Alcotest.bool "snap" true (Model.equal m (snap_roundtrip m));
        check Alcotest.bool "agree" true
          (Model.equal (snap_roundtrip m) (xmi_roundtrip m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"wire int round-trip over the full int range"
         ~count:200 QCheck.int (fun v -> int_roundtrip v = v));
  ]

(* A generated model large enough to exercise interning but cheap enough
   for a per-case qcheck property. *)
let gen_model seed = Workload.Gen_model.structural ~seed ~classes:12

let behavioral_model seed =
  let m = Model.create "m" in
  Model.add m
    (Model.E_state_machine
       (Workload.Gen_statechart.hierarchical ~seed ~depth:3 ~breadth:2
          ~events:3));
  Model.add m
    (Model.E_activity
       (Workload.Gen_activity.with_decisions ~seed ~size:15 ~max_width:3));
  m

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated structural models round-trip"
         ~count:20
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = gen_model seed in
           Model.equal m (snap_roundtrip m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated behavioral models round-trip"
         ~count:20
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = behavioral_model seed in
           Model.equal m (snap_roundtrip m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"snap path agrees with xmi path" ~count:15
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = gen_model seed in
           Model.equal (snap_roundtrip m) (xmi_roundtrip m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"write-read-write is byte-identical" ~count:15
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = gen_model seed in
           let s1 = Snap.Write.to_string m in
           let s2 = Snap.Write.to_string (Snap.Read.model_of_string s1) in
           String.equal s1 s2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"single-byte corruption never escapes Import_error" ~count:60
         QCheck.(triple (int_range 1 10_000) (int_range 0 1_000_000) (int_range 0 255))
         (fun (seed, posf, byte) ->
           let m = gen_model seed in
           let data = Bytes.of_string (Snap.Write.to_string m) in
           let pos = posf mod Bytes.length data in
           Bytes.set data pos (Char.chr byte);
           match Snap.Read.model_of_string (Bytes.to_string data) with
           | _m -> true (* flip happened to stay well-formed *)
           | exception Snap.Read.Import_error _ -> true
           | exception _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random truncation is rejected" ~count:40
         QCheck.(pair (int_range 1 10_000) (int_range 0 1_000_000))
         (fun (seed, posf) ->
           let m = gen_model seed in
           let data = Snap.Write.to_string m in
           let n = posf mod String.length data in
           match Snap.Read.model_of_string (String.sub data 0 n) with
           | _m -> false
           | exception Snap.Read.Import_error _ -> true));
  ]

let () =
  Alcotest.run "snap"
    [
      ("roundtrip", basic_tests);
      ("wire", wire_tests);
      ("properties", property_tests);
    ]
