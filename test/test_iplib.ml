(* Tests for the IP core library: every core's RTL is checked and
   simulated against its intended behavior, and the SoC assembly is
   verified in both views. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let sim_of core =
  let sim = Dsim.Sim.create core.Iplib.Core.ip_module in
  Dsim.Sim.set_input sim "rst" 1;
  Dsim.Sim.clock_edge sim "clk";
  Dsim.Sim.set_input sim "rst" 0;
  sim

let catalogue_tests =
  [
    tc "every core passes the RTL checks" (fun () ->
        List.iter
          (fun core ->
            match Hdl.Check.check_module core.Iplib.Core.ip_module with
            | [] -> ()
            | problems ->
              Alcotest.fail
                (core.Iplib.Core.ip_name ^ ": "
                ^ String.concat "; " (Hdl.Check.messages problems)))
          (Iplib.Cores.catalogue ()));
    tc "component ports mirror RTL ports" (fun () ->
        List.iter
          (fun core ->
            let rtl_ports = Iplib.Core.port_names core in
            let model_ports =
              List.map
                (fun (p : Uml.Component.port) -> p.Uml.Component.port_name)
                core.Iplib.Core.ip_component.Uml.Component.cmp_ports
            in
            check (Alcotest.list Alcotest.string) core.Iplib.Core.ip_name
              rtl_ports model_ports)
          (Iplib.Cores.catalogue ()));
    tc "areas are positive" (fun () ->
        List.iter
          (fun core ->
            check Alcotest.bool core.Iplib.Core.ip_name true
              (core.Iplib.Core.ip_area > 0))
          (Iplib.Cores.catalogue ()));
  ]

let behavior_tests =
  [
    tc "timer counts and wraps with tick" (fun () ->
        let core = Iplib.Cores.timer ~width:4 () in
        let sim = sim_of core in
        Dsim.Sim.set_input sim "enable" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:15;
        check Alcotest.int "count" 15 (Dsim.Sim.get sim "count");
        check Alcotest.int "tick at max" 1 (Dsim.Sim.get sim "tick");
        Dsim.Sim.clock_edge sim "clk";
        check Alcotest.int "wrapped" 0 (Dsim.Sim.get sim "count"));
    tc "timer freezes when disabled" (fun () ->
        let core = Iplib.Cores.timer () in
        let sim = sim_of core in
        Dsim.Sim.run sim ~clock:"clk" ~cycles:5;
        check Alcotest.int "still zero" 0 (Dsim.Sim.get sim "count"));
    tc "gpio stores on we" (fun () ->
        let core = Iplib.Cores.gpio () in
        let sim = sim_of core in
        Dsim.Sim.cycle ~inputs:[ ("we", 1); ("din", 0x5A) ] sim "clk";
        Dsim.Sim.cycle ~inputs:[ ("we", 0); ("din", 0xFF) ] sim "clk";
        check Alcotest.int "held" 0x5A (Dsim.Sim.get sim "dout"));
    tc "fifo preserves order" (fun () ->
        let core = Iplib.Cores.fifo4 () in
        let sim = sim_of core in
        check Alcotest.int "empty" 1 (Dsim.Sim.get sim "empty");
        List.iter
          (fun v -> Dsim.Sim.cycle ~inputs:[ ("wr", 1); ("din", v) ] sim "clk")
          [ 1; 2; 3 ];
        Dsim.Sim.set_input sim "wr" 0;
        check Alcotest.int "not empty" 0 (Dsim.Sim.get sim "empty");
        let out = ref [] in
        for _ = 1 to 3 do
          out := Dsim.Sim.get sim "dout" :: !out;
          Dsim.Sim.cycle ~inputs:[ ("rd", 1) ] sim "clk"
        done;
        Dsim.Sim.set_input sim "rd" 0;
        check (Alcotest.list Alcotest.int) "fifo order" [ 1; 2; 3 ]
          (List.rev !out);
        check Alcotest.int "empty again" 1 (Dsim.Sim.get sim "empty"));
    tc "fifo signals full and refuses overflow" (fun () ->
        let core = Iplib.Cores.fifo4 () in
        let sim = sim_of core in
        List.iter
          (fun v -> Dsim.Sim.cycle ~inputs:[ ("wr", 1); ("din", v) ] sim "clk")
          [ 1; 2; 3; 4; 5 ];
        Dsim.Sim.set_input sim "wr" 0;
        check Alcotest.int "full" 1 (Dsim.Sim.get sim "full");
        (* the fifth write must have been dropped *)
        let out = ref [] in
        for _ = 1 to 4 do
          out := Dsim.Sim.get sim "dout" :: !out;
          Dsim.Sim.cycle ~inputs:[ ("rd", 1) ] sim "clk"
        done;
        check (Alcotest.list Alcotest.int) "first four" [ 1; 2; 3; 4 ]
          (List.rev !out));
    tc "fifo simultaneous read+write keeps count" (fun () ->
        let core = Iplib.Cores.fifo4 () in
        let sim = sim_of core in
        Dsim.Sim.cycle ~inputs:[ ("wr", 1); ("din", 7) ] sim "clk";
        Dsim.Sim.cycle ~inputs:[ ("wr", 1); ("rd", 1); ("din", 9) ] sim "clk";
        Dsim.Sim.set_input sim "wr" 0;
        Dsim.Sim.set_input sim "rd" 0;
        (* popped 7, pushed 9: head must now be 9, count 1 *)
        check Alcotest.int "head" 9 (Dsim.Sim.get sim "dout");
        check Alcotest.int "not empty" 0 (Dsim.Sim.get sim "empty");
        check Alcotest.int "not full" 0 (Dsim.Sim.get sim "full"));
    tc "uart tx/rx loopback" (fun () ->
        let tx = Iplib.Cores.uart_tx () in
        let rx = Iplib.Cores.uart_rx () in
        let d =
          Iplib.Soc.design ~name:"link" [ ("tx", tx); ("rx", rx) ]
        in
        let sim = Dsim.Sim.create (Hdl.Elaborate.flatten d) in
        Dsim.Sim.set_input sim "rst" 1;
        Dsim.Sim.clock_edge sim "clk";
        Dsim.Sim.set_input sim "rst" 0;
        Dsim.Sim.set_input sim "rx_rxd" 1;
        Dsim.Sim.clock_edge sim "clk";
        Dsim.Sim.set_input sim "tx_data" 0x3C;
        Dsim.Sim.set_input sim "tx_start" 1;
        let received = ref None in
        for _ = 1 to 16 do
          Dsim.Sim.set_input sim "rx_rxd" (Dsim.Sim.get sim "tx_txd");
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Sim.set_input sim "tx_start" 0;
          if Dsim.Sim.get sim "rx_valid" = 1 && !received = None then
            received := Some (Dsim.Sim.get sim "rx_data")
        done;
        check (Alcotest.option Alcotest.int) "byte" (Some 0x3C) !received);
    tc "uart busy while shifting" (fun () ->
        let core = Iplib.Cores.uart_tx () in
        let sim = sim_of core in
        check Alcotest.int "idle" 0 (Dsim.Sim.get sim "busy");
        Dsim.Sim.cycle ~inputs:[ ("start", 1); ("data", 0xFF) ] sim "clk";
        Dsim.Sim.set_input sim "start" 0;
        check Alcotest.int "busy" 1 (Dsim.Sim.get sim "busy"));
    tc "arbiter grants are exclusive and fair" (fun () ->
        let core = Iplib.Cores.arbiter2 () in
        let sim = sim_of core in
        (* no requests: no grants *)
        check Alcotest.int "g0" 0 (Dsim.Sim.get sim "gnt0");
        check Alcotest.int "g1" 0 (Dsim.Sim.get sim "gnt1");
        (* single request is granted *)
        Dsim.Sim.set_input sim "req0" 1;
        check Alcotest.int "g0 alone" 1 (Dsim.Sim.get sim "gnt0");
        (* contention: exactly one grant, alternating over cycles *)
        Dsim.Sim.set_input sim "req1" 1;
        let grants = ref [] in
        for _ = 1 to 6 do
          let g0 = Dsim.Sim.get sim "gnt0" in
          let g1 = Dsim.Sim.get sim "gnt1" in
          check Alcotest.int "exclusive" 1 (g0 + g1);
          grants := g0 :: !grants;
          Dsim.Sim.clock_edge sim "clk"
        done;
        (* both sides served at least twice over six cycles *)
        let zeros = List.length (List.filter (fun g -> g = 1) !grants) in
        check Alcotest.bool "fairness" true (zeros >= 2 && zeros <= 4));
    tc "regfile writes and reads back" (fun () ->
        let core = Iplib.Cores.regfile4 () in
        let sim = sim_of core in
        Dsim.Sim.cycle
          ~inputs:[ ("we", 1); ("addr", 2); ("wdata", 0x42) ]
          sim "clk";
        Dsim.Sim.set_input sim "we" 0;
        Dsim.Sim.set_input sim "addr" 2;
        check Alcotest.int "read back" 0x42 (Dsim.Sim.get sim "rdata");
        Dsim.Sim.set_input sim "addr" 1;
        check Alcotest.int "other slot" 0 (Dsim.Sim.get sim "rdata"));
    tc "bus decodes addresses" (fun () ->
        let core = Iplib.Cores.bus2 () in
        let sim = sim_of core in
        Dsim.Sim.set_input sim "m_we" 1;
        Dsim.Sim.set_input sim "m_addr" 0x10;
        check Alcotest.int "s0 selected" 1 (Dsim.Sim.get sim "s0_we");
        check Alcotest.int "s1 idle" 0 (Dsim.Sim.get sim "s1_we");
        Dsim.Sim.set_input sim "m_addr" 0x90;
        check Alcotest.int "s1 selected" 1 (Dsim.Sim.get sim "s1_we");
        (* read-back mux *)
        Dsim.Sim.set_input sim "s0_rdata" 0xAA;
        Dsim.Sim.set_input sim "s1_rdata" 0xBB;
        Dsim.Sim.set_input sim "m_addr" 0x00;
        check Alcotest.int "read s0" 0xAA (Dsim.Sim.get sim "m_rdata");
        Dsim.Sim.set_input sim "m_addr" 0xF0;
        check Alcotest.int "read s1" 0xBB (Dsim.Sim.get sim "m_rdata"));
  ]

let cores2_tests =
  [
    tc "dma copies regfile to gpio-visible bus" (fun () ->
        (* drive the DMA by hand: a 3-beat copy from a fake memory *)
        let core = Iplib.Cores2.dma () in
        let sim = sim_of core in
        let memory = [| 0xDE; 0xAD; 0xBE; 0xEF |] in
        Dsim.Sim.set_input sim "len" 3;
        Dsim.Sim.set_input sim "start" 1;
        let written = ref [] in
        for _ = 1 to 8 do
          (* model the source memory combinationally *)
          let addr = Dsim.Sim.get sim "src_addr" in
          Dsim.Sim.set_input sim "src_data" memory.(addr land 3);
          if Dsim.Sim.get sim "dst_we" = 1 then
            written :=
              (Dsim.Sim.get sim "dst_addr", Dsim.Sim.get sim "dst_data")
              :: !written;
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Sim.set_input sim "start" 0
        done;
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "beats"
          [ (0, 0xDE); (1, 0xAD); (2, 0xBE) ]
          (List.rev !written);
        check Alcotest.int "idle again" 0 (Dsim.Sim.get sim "busy"));
    tc "dma pulses done_" (fun () ->
        let core = Iplib.Cores2.dma () in
        let sim = sim_of core in
        Dsim.Sim.set_input sim "len" 1;
        Dsim.Sim.set_input sim "start" 1;
        let saw_done = ref false in
        for _ = 1 to 5 do
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Sim.set_input sim "start" 0;
          if Dsim.Sim.get sim "done_" = 1 then saw_done := true
        done;
        check Alcotest.bool "done seen" true !saw_done);
    tc "irq controller masks and prioritizes" (fun () ->
        let core = Iplib.Cores2.irq_ctrl () in
        let sim = sim_of core in
        (* all lines enabled after reset *)
        Dsim.Sim.set_input sim "irq_in" 0b0110;
        Dsim.Sim.clock_edge sim "clk";
        check Alcotest.int "asserted" 1 (Dsim.Sim.get sim "irq_out");
        check Alcotest.int "lowest wins" 1 (Dsim.Sim.get sim "irq_id");
        (* mask line 1: line 2 becomes the winner *)
        Dsim.Sim.cycle ~inputs:[ ("mask_we", 1); ("mask_in", 0b1101) ] sim "clk";
        Dsim.Sim.set_input sim "mask_we" 0;
        Dsim.Sim.clock_edge sim "clk";
        check Alcotest.int "line 2" 2 (Dsim.Sim.get sim "irq_id");
        (* mask everything *)
        Dsim.Sim.cycle ~inputs:[ ("mask_we", 1); ("mask_in", 0) ] sim "clk";
        Dsim.Sim.set_input sim "mask_we" 0;
        Dsim.Sim.clock_edge sim "clk";
        check Alcotest.int "quiet" 0 (Dsim.Sim.get sim "irq_out"));
    tc "watchdog bites without kicks and not with them" (fun () ->
        let core = Iplib.Cores2.watchdog ~width:3 () in
        let sim = sim_of core in
        (* kick every 4 cycles: never bites *)
        for i = 1 to 20 do
          Dsim.Sim.set_input sim "kick" (if i mod 4 = 0 then 1 else 0);
          Dsim.Sim.clock_edge sim "clk"
        done;
        check Alcotest.int "alive" 0 (Dsim.Sim.get sim "bite");
        (* stop kicking: bites after the counter saturates *)
        Dsim.Sim.set_input sim "kick" 0;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:10;
        check Alcotest.int "bitten" 1 (Dsim.Sim.get sim "bite");
        (* bite is sticky *)
        Dsim.Sim.cycle ~inputs:[ ("kick", 1) ] sim "clk";
        check Alcotest.int "sticky" 1 (Dsim.Sim.get sim "bite"));
  ]

let soc_tests =
  [
    tc "assembled design passes checks and simulates" (fun () ->
        let instances =
          [ ("t0", Iplib.Cores.timer ()); ("g0", Iplib.Cores.gpio ()) ]
        in
        let d = Iplib.Soc.design ~name:"mini" instances in
        check (Alcotest.list Alcotest.string) "clean" []
          (Hdl.Check.messages (Hdl.Check.check_design d));
        let sim = Dsim.Sim.create (Hdl.Elaborate.flatten d) in
        Dsim.Sim.set_input sim "rst" 1;
        Dsim.Sim.clock_edge sim "clk";
        Dsim.Sim.set_input sim "rst" 0;
        Dsim.Sim.set_input sim "t0_enable" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:7;
        check Alcotest.int "timer ran" 7 (Dsim.Sim.get sim "t0_count"));
    tc "two instances of the same core coexist" (fun () ->
        let instances =
          [ ("a", Iplib.Cores.gpio ()); ("b", Iplib.Cores.gpio ()) ]
        in
        let d = Iplib.Soc.design ~name:"dual" instances in
        let sim = Dsim.Sim.create (Hdl.Elaborate.flatten d) in
        Dsim.Sim.set_input sim "rst" 1;
        Dsim.Sim.clock_edge sim "clk";
        Dsim.Sim.set_input sim "rst" 0;
        Dsim.Sim.cycle ~inputs:[ ("a_we", 1); ("a_din", 1) ] sim "clk";
        Dsim.Sim.set_input sim "a_we" 0;
        Dsim.Sim.cycle ~inputs:[ ("b_we", 1); ("b_din", 2) ] sim "clk";
        check Alcotest.int "a" 1 (Dsim.Sim.get sim "a_dout");
        check Alcotest.int "b" 2 (Dsim.Sim.get sim "b_dout"));
    tc "soc component registers IPs with stereotypes" (fun () ->
        let m = Uml.Model.create "soc" in
        let profile = Profiles.Soc_profile.install m in
        let instances = [ ("t0", Iplib.Cores.timer ()) ] in
        let comp = Iplib.Soc.component m ~profile ~name:"Soc" instances in
        check Alcotest.bool "valid" true (Uml.Wfr.is_valid m);
        check (Alcotest.list Alcotest.string) "profile clean" []
          (List.map Uml.Wfr.to_string (Profiles.Soc_profile.check m));
        check Alcotest.int "two hw modules" 2
          (List.length (Profiles.Soc_profile.hw_modules m));
        check Alcotest.int "one part" 1
          (List.length comp.Uml.Component.cmp_parts));
  ]

let () =
  Alcotest.run "iplib"
    [
      ("catalogue", catalogue_tests);
      ("behavior", behavior_tests);
      ("cores2", cores2_tests);
      ("soc", soc_tests);
    ]
