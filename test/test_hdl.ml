(* Tests for the hardware IR: types, expressions, static checks,
   elaboration. *)

open Hdl

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let htype_tests =
  [
    tc "widths" (fun () ->
        check Alcotest.int "bit" 1 (Htype.width Htype.Bit);
        check Alcotest.int "u8" 8 (Htype.width (Htype.Unsigned 8));
        check Alcotest.int "enum2" 1 (Htype.width (Htype.Enum [ "A"; "B" ]));
        check Alcotest.int "enum5" 3
          (Htype.width (Htype.Enum [ "A"; "B"; "C"; "D"; "E" ])));
    tc "max values" (fun () ->
        check Alcotest.int "bit" 1 (Htype.max_value Htype.Bit);
        check Alcotest.int "u4" 15 (Htype.max_value (Htype.Unsigned 4));
        check Alcotest.int "enum3" 2
          (Htype.max_value (Htype.Enum [ "A"; "B"; "C" ])));
    tc "enum_index" (fun () ->
        let ty = Htype.Enum [ "A"; "B"; "C" ] in
        check Alcotest.bool "B" true (Htype.enum_index ty "B" = Some 1);
        check Alcotest.bool "Z" true (Htype.enum_index ty "Z" = None));
  ]

let expr_tests =
  [
    tc "refs are deduplicated in order" (fun () ->
        let e =
          Expr.(Binop (Add, Ref "a", Binop (Add, Ref "b", Ref "a")))
        in
        check (Alcotest.list Alcotest.string) "refs" [ "a"; "b" ] (Expr.refs e));
    tc "of_int picks a minimal width" (fun () ->
        match Expr.of_int 5 with
        | Expr.Const (5, Htype.Unsigned 3) -> ()
        | _other -> Alcotest.fail "expected 3-bit constant");
    tc "assigned and read over statements" (fun () ->
        let body =
          [
            Stmt.If
              ( Expr.(Ref "c" ==: one),
                [ Stmt.Assign ("x", Expr.Ref "y") ],
                [ Stmt.Assign ("z", Expr.Ref "y") ] );
          ]
        in
        check (Alcotest.list Alcotest.string) "assigned" [ "x"; "z" ]
          (Stmt.assigned body);
        check (Alcotest.list Alcotest.string) "read" [ "c"; "y" ]
          (Stmt.read body));
  ]

let counter_module () =
  Module_.make
    ~ports:
      [
        Module_.input "clk" Htype.Bit;
        Module_.input "rst" Htype.Bit;
        Module_.output "q" (Htype.Unsigned 4);
      ]
    ~signals:[ Module_.signal ~init:0 "cnt" (Htype.Unsigned 4) ]
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", [ Stmt.Assign ("cnt", Expr.of_int ~width:4 0) ])
          ~name:"p_cnt" ~clock:"clk"
          [ Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1)) ];
        Module_.comb_process ~name:"p_out" [ Stmt.Assign ("q", Expr.Ref "cnt") ];
      ]
    "counter"

let check_tests =
  [
    tc "clean module passes" (fun () ->
        check (Alcotest.list Alcotest.string) "clean" []
          (Check.messages (Check.check_module (counter_module ()))));
    tc "type inference" (fun () ->
        let m = counter_module () in
        check Alcotest.bool "add widens" true
          (Check.infer_type m Expr.(Ref "cnt" +: of_int 1)
          = Ok (Htype.Unsigned 4));
        check Alcotest.bool "cmp is a bit" true
          (Check.infer_type m Expr.(Ref "cnt" ==: of_int 3) = Ok Htype.Bit);
        check Alcotest.bool "unresolved" true
          (match Check.infer_type m (Expr.Ref "ghost") with
           | Error _ -> true
           | Ok _ -> false));
    tc "unresolved assignment target" (fun () ->
        let m =
          Module_.make
            ~processes:
              [ Module_.comb_process ~name:"p" [ Stmt.Assign ("ghost", Expr.one) ] ]
            "m"
        in
        check Alcotest.bool "error" true (Check.check_module m <> []));
    tc "assignment to input rejected" (fun () ->
        let m =
          Module_.make
            ~ports:[ Module_.input "a" Htype.Bit ]
            ~processes:
              [ Module_.comb_process ~name:"p" [ Stmt.Assign ("a", Expr.one) ] ]
            "m"
        in
        check Alcotest.bool "error" true (Check.check_module m <> []));
    tc "width overflow rejected" (fun () ->
        let m =
          Module_.make
            ~signals:
              [
                Module_.signal "narrow" (Htype.Unsigned 2);
                Module_.signal "wide" (Htype.Unsigned 8);
              ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [ Stmt.Assign ("narrow", Expr.Ref "wide") ];
              ]
            "m"
        in
        check Alcotest.bool "error" true (Check.check_module m <> []));
    tc "multiple drivers rejected" (fun () ->
        let m =
          Module_.make
            ~signals:[ Module_.signal "x" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p1" [ Stmt.Assign ("x", Expr.one) ];
                Module_.comb_process ~name:"p2" [ Stmt.Assign ("x", Expr.zero) ];
              ]
            "m"
        in
        check Alcotest.bool "error" true (Check.check_module m <> []));
    tc "combinational loop detected" (fun () ->
        let m =
          Module_.make
            ~signals:
              [ Module_.signal "a" Htype.Bit; Module_.signal "b" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p1"
                  [ Stmt.Assign ("a", Expr.Ref "b") ];
                Module_.comb_process ~name:"p2"
                  [ Stmt.Assign ("b", Expr.Ref "a") ];
              ]
            "m"
        in
        check Alcotest.bool "loop" true (Check.has_comb_loop m);
        check Alcotest.bool "reported" true
          (List.exists
             (fun s ->
               String.length s >= 13 && String.sub s 0 13 = "combinational")
             (Check.messages (Check.check_module m))));
    tc "registered feedback is not a loop" (fun () ->
        check Alcotest.bool "no loop" false
          (Check.has_comb_loop (counter_module ())));
    tc "non-bit clock rejected" (fun () ->
        let m =
          Module_.make
            ~ports:[ Module_.input "clk8" (Htype.Unsigned 8) ]
            ~signals:[ Module_.signal "x" Htype.Bit ]
            ~processes:
              [
                Module_.seq_process ~name:"p" ~clock:"clk8"
                  [ Stmt.Assign ("x", Expr.one) ];
              ]
            "m"
        in
        check Alcotest.bool "error" true (Check.check_module m <> []));
    tc "design: unknown instance module" (fun () ->
        let top =
          Module_.make
            ~instances:
              [ { Module_.inst_name = "u0"; inst_module = "ghost";
                  inst_conns = [] } ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top ] in
        check Alcotest.bool "error" true (Check.check_design d <> []));
    tc "design: unconnected input" (fun () ->
        let sub = Module_.make ~ports:[ Module_.input "a" Htype.Bit ] "sub" in
        let top =
          Module_.make
            ~instances:
              [ { Module_.inst_name = "u0"; inst_module = "sub";
                  inst_conns = [] } ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top; sub ] in
        check Alcotest.bool "error" true (Check.check_design d <> []));
    tc "design: clean hierarchy passes" (fun () ->
        let sub = counter_module () in
        let top =
          Module_.make
            ~ports:
              [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]
            ~signals:[ Module_.signal "q0" (Htype.Unsigned 4) ]
            ~instances:
              [
                { Module_.inst_name = "u0"; inst_module = "counter";
                  inst_conns = [ ("clk", "clk"); ("rst", "rst"); ("q", "q0") ] };
              ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top; sub ] in
        check (Alcotest.list Alcotest.string) "clean" []
          (Check.messages (Check.check_design d)));
  ]

let elaborate_tests =
  [
    tc "flatten prefixes instance signals" (fun () ->
        let sub = counter_module () in
        let top =
          Module_.make
            ~ports:
              [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]
            ~signals:[ Module_.signal "q0" (Htype.Unsigned 4) ]
            ~instances:
              [
                { Module_.inst_name = "u0"; inst_module = "counter";
                  inst_conns = [ ("clk", "clk"); ("rst", "rst"); ("q", "q0") ] };
              ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top; sub ] in
        let flat = Elaborate.flatten d in
        check Alcotest.bool "prefixed" true
          (Module_.find_signal flat "u0.cnt" <> None);
        check Alcotest.bool "no instances left" true
          (flat.Module_.mod_instances = []);
        check Alcotest.int "processes" 2
          (List.length flat.Module_.mod_processes));
    tc "nested hierarchy flattens" (fun () ->
        let leaf = counter_module () in
        let mid =
          Module_.make
            ~ports:
              [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]
            ~signals:[ Module_.signal "q" (Htype.Unsigned 4) ]
            ~instances:
              [
                { Module_.inst_name = "inner"; inst_module = "counter";
                  inst_conns = [ ("clk", "clk"); ("rst", "rst"); ("q", "q") ] };
              ]
            "mid"
        in
        let top =
          Module_.make
            ~ports:
              [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]
            ~instances:
              [
                { Module_.inst_name = "m0"; inst_module = "mid";
                  inst_conns = [ ("clk", "clk"); ("rst", "rst") ] };
              ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top; mid; leaf ] in
        let flat = Elaborate.flatten d in
        check Alcotest.bool "deep name" true
          (Module_.find_signal flat "m0.inner.cnt" <> None));
    tc "flatten rejects unknown module" (fun () ->
        let top =
          Module_.make
            ~instances:
              [ { Module_.inst_name = "u0"; inst_module = "ghost";
                  inst_conns = [] } ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top ] in
        match Elaborate.flatten d with
        | _flat -> Alcotest.fail "expected Elaboration_error"
        | exception Elaborate.Elaboration_error _ -> ());
    tc "flatten rejects recursion" (fun () ->
        let selfish =
          Module_.make
            ~instances:
              [ { Module_.inst_name = "u"; inst_module = "selfish";
                  inst_conns = [] } ]
            "selfish"
        in
        let d = Module_.design ~top:"selfish" [ selfish ] in
        match Elaborate.flatten d with
        | _flat -> Alcotest.fail "expected Elaboration_error"
        | exception Elaborate.Elaboration_error _ -> ());
  ]

let () =
  Alcotest.run "hdl"
    [
      ("htype", htype_tests);
      ("expr", expr_tests);
      ("check", check_tests);
      ("elaborate", elaborate_tests);
    ]
