(* Tests for the code generators: VHDL/Verilog/SystemC emitters, the
   statechart FSM compiler, and the ASL-to-C generator. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains hay needle =
  let nl = String.length needle in
  let hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let counter_module () =
  let open Hdl in
  Module_.make
    ~ports:
      [
        Module_.input "clk" Htype.Bit;
        Module_.input "rst" Htype.Bit;
        Module_.output "q" (Htype.Unsigned 4);
      ]
    ~signals:[ Module_.signal ~init:0 "cnt" (Htype.Unsigned 4) ]
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", [ Stmt.Assign ("cnt", Expr.of_int ~width:4 0) ])
          ~name:"p_cnt" ~clock:"clk"
          [ Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1)) ];
        Module_.comb_process ~name:"p_out" [ Stmt.Assign ("q", Expr.Ref "cnt") ];
      ]
    "counter"

let emitters_tests =
  [
    tc "vhdl has entity/architecture/process" (fun () ->
        let text = Codegen.Vhdl.of_module (counter_module ()) in
        check Alcotest.bool "entity" true (contains text "entity counter is");
        check Alcotest.bool "arch" true
          (contains text "architecture rtl of counter is");
        check Alcotest.bool "rising_edge" true (contains text "rising_edge(clk)");
        check Alcotest.bool "unsigned" true
          (contains text "unsigned(3 downto 0)"));
    tc "verilog has module/always" (fun () ->
        let text = Codegen.Verilog.of_module (counter_module ()) in
        check Alcotest.bool "module" true (contains text "module counter (");
        check Alcotest.bool "posedge" true (contains text "always @(posedge clk)");
        check Alcotest.bool "range" true (contains text "[3:0]"));
    tc "systemc has SC_MODULE and sensitivity" (fun () ->
        let text = Codegen.Systemc.of_module (counter_module ()) in
        check Alcotest.bool "module" true (contains text "SC_MODULE(counter)");
        check Alcotest.bool "ctor" true (contains text "SC_CTOR(counter)");
        check Alcotest.bool "clock" true (contains text "sensitive << clk.pos()"));
    tc "emitters are deterministic" (fun () ->
        let m = counter_module () in
        check Alcotest.string "vhdl" (Codegen.Vhdl.of_module m)
          (Codegen.Vhdl.of_module m);
        check Alcotest.string "verilog" (Codegen.Verilog.of_module m)
          (Codegen.Verilog.of_module m);
        check Alcotest.string "systemc" (Codegen.Systemc.of_module m)
          (Codegen.Systemc.of_module m));
    tc "of_design emits dependencies before users" (fun () ->
        let open Hdl in
        let sub = counter_module () in
        let top =
          Module_.make
            ~ports:
              [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]
            ~signals:[ Module_.signal "q0" (Htype.Unsigned 4) ]
            ~instances:
              [
                { Module_.inst_name = "u0"; inst_module = "counter";
                  inst_conns = [ ("clk", "clk"); ("rst", "rst"); ("q", "q0") ] };
              ]
            "top"
        in
        let d = Module_.design ~top:"top" [ top; sub ] in
        let text = Codegen.Vhdl.of_design d in
        let pos needle =
          let rec go i =
            if i + String.length needle > String.length text then -1
            else if String.sub text i (String.length needle) = needle then i
            else go (i + 1)
          in
          go 0
        in
        check Alcotest.bool "counter first" true
          (pos "entity counter" >= 0
          && pos "entity counter" < pos "entity top"));
  ]

(* --- FSM compiler --------------------------------------------------------- *)

let simple_machine () =
  let a = Smachine.simple_state "A" in
  let b = Smachine.simple_state "B" in
  let init = Smachine.pseudostate Smachine.Initial in
  let r =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "go" ]
          ~effect:"n := 1;" ~source:a.Smachine.st_id ~target:b.Smachine.st_id
          ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "back" ]
          ~effect:"n := 0;" ~source:b.Smachine.st_id ~target:a.Smachine.st_id
          ();
      ]
  in
  Smachine.make "toggler" [ r ]

let flat_of sm =
  match Statechart.Flatten.flatten sm with
  | Ok f -> f
  | Error m -> Alcotest.fail m

let fsm_tests =
  [
    tc "compiled FSM passes RTL checks" (fun () ->
        match Codegen.Fsm_compile.compile (flat_of (simple_machine ())) with
        | Ok hmod ->
          check (Alcotest.list Alcotest.string) "clean" []
            (Hdl.Check.messages (Hdl.Check.check_module hmod))
        | Error m -> Alcotest.fail m);
    tc "compiled FSM behaves like the flat machine" (fun () ->
        let flat = flat_of (simple_machine ()) in
        match Codegen.Fsm_compile.compile flat with
        | Error m -> Alcotest.fail m
        | Ok hmod ->
          let sim = Dsim.Sim.create hmod in
          Dsim.Sim.set_input sim "rst" 1;
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Sim.set_input sim "rst" 0;
          let events = [ "go"; "back"; "go"; "zzz"; "back" ] in
          let rtl_trace =
            List.filter_map
              (fun ev ->
                let port = Codegen.Fsm_compile.event_input ev in
                (match Dsim.Sim.get sim port with
                 | _known -> Dsim.Sim.set_input sim port 1
                 | exception Dsim.Sim.Simulation_error _ -> ());
                Dsim.Sim.clock_edge sim "clk";
                (match Dsim.Sim.get sim port with
                 | _known -> Dsim.Sim.set_input sim port 0
                 | exception Dsim.Sim.Simulation_error _ -> ());
                Some (Dsim.Sim.get_enum sim "state"))
              events
          in
          let flat_trace = Statechart.Flatten.simulate flat events in
          check (Alcotest.list Alcotest.string) "same" flat_trace rtl_trace);
    tc "effect variables become outputs" (fun () ->
        let flat = flat_of (simple_machine ()) in
        match Codegen.Fsm_compile.compile flat with
        | Error m -> Alcotest.fail m
        | Ok hmod ->
          check Alcotest.bool "n is a port" true
            (Hdl.Module_.find_port hmod "n" <> None);
          let sim = Dsim.Sim.create hmod in
          Dsim.Sim.set_input sim "rst" 1;
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Sim.set_input sim "rst" 0;
          Dsim.Sim.set_input sim (Codegen.Fsm_compile.event_input "go") 1;
          Dsim.Sim.clock_edge sim "clk";
          check Alcotest.int "n=1 after go" 1 (Dsim.Sim.get sim "n"));
    tc "guards over effect variables work in hardware" (fun () ->
        (* A counts [inc] events in n; [check] reaches B only once n >= 2 *)
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "inc" ]
                ~effect:"n := n + 1;" ~source:a.Smachine.st_id
                ~target:a.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "check" ]
                ~guard:"n >= 2" ~source:a.Smachine.st_id
                ~target:b.Smachine.st_id ();
            ]
        in
        let flat = flat_of (Smachine.make "counterfsm" [ r ]) in
        match Codegen.Fsm_compile.compile flat with
        | Error m -> Alcotest.fail m
        | Ok hmod ->
          let sim = Dsim.Sim.create hmod in
          Dsim.Sim.set_input sim "rst" 1;
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Sim.set_input sim "rst" 0;
          let pulse ev =
            let port = Codegen.Fsm_compile.event_input ev in
            Dsim.Sim.set_input sim port 1;
            Dsim.Sim.clock_edge sim "clk";
            Dsim.Sim.set_input sim port 0
          in
          pulse "check";
          check Alcotest.string "guard blocks at n=0" "A"
            (Dsim.Sim.get_enum sim "state");
          pulse "inc";
          pulse "check";
          check Alcotest.string "guard blocks at n=1" "A"
            (Dsim.Sim.get_enum sim "state");
          pulse "inc";
          pulse "check";
          check Alcotest.string "guard passes at n=2" "B"
            (Dsim.Sim.get_enum sim "state");
          check Alcotest.int "n output" 2 (Dsim.Sim.get sim "n"));
    tc "unsupported effects are a clean error" (fun () ->
        let a = Smachine.simple_state "A" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "go" ]
                ~effect:"while true do ; end;" ~source:a.Smachine.st_id
                ~target:a.Smachine.st_id ();
            ]
        in
        let flat = flat_of (Smachine.make "m" [ r ]) in
        match Codegen.Fsm_compile.compile flat with
        | Ok _m -> Alcotest.fail "expected Error"
        | Error _m -> ());
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"generated machines compile and match the flat simulation"
         ~count:20
         QCheck.(pair (int_range 1 3000) (int_range 1 3000))
         (fun (seed, ev_seed) ->
           let sm = Workload.Gen_statechart.flat ~seed ~states:5 ~events:3 in
           let flat =
             match Statechart.Flatten.flatten sm with
             | Ok f -> f
             | Error _ -> QCheck.assume_fail ()
           in
           match Codegen.Fsm_compile.compile flat with
           | Error _m -> false
           | Ok hmod ->
             let sim = Dsim.Sim.create hmod in
             Dsim.Sim.set_input sim "rst" 1;
             Dsim.Sim.clock_edge sim "clk";
             Dsim.Sim.set_input sim "rst" 0;
             let events =
               Workload.Gen_statechart.event_sequence ~seed:ev_seed
                 ~length:12 3
             in
             let rtl_trace =
               List.map
                 (fun ev ->
                   let port = Codegen.Fsm_compile.event_input ev in
                   Dsim.Sim.set_input sim port 1;
                   Dsim.Sim.clock_edge sim "clk";
                   Dsim.Sim.set_input sim port 0;
                   Dsim.Sim.get_enum sim "state")
                 events
             in
             rtl_trace = Statechart.Flatten.simulate flat events));
  ]

(* --- C generator ------------------------------------------------------------ *)

let c_model () =
  let m = Model.create "sw" in
  let helper =
    Classifier.make
      ~attributes:[ Classifier.property "bias" Dtype.Integer ]
      ~operations:
        [
          Classifier.operation
            ~params:
              [
                Classifier.parameter "x" Dtype.Integer;
                Classifier.parameter ~direction:Classifier.Return "r"
                  Dtype.Integer;
              ]
            ~body:"return x + self.bias;" "adjust";
        ]
      "Helper"
  in
  Model.add m (Model.E_classifier helper);
  let main =
    Classifier.make
      ~attributes:
        [
          Classifier.property ~default:(Vspec.of_int 10) "acc" Dtype.Integer;
          Classifier.property "buddy" (Dtype.Ref helper.Classifier.cl_id);
        ]
      ~operations:
        [
          Classifier.operation
            ~params:
              [
                Classifier.parameter ~direction:Classifier.Return "r"
                  Dtype.Integer;
              ]
            ~body:
              "var total := 0; for i := 1 to 4 do total := total + i; end; \
               if total > 5 then self.acc := self.acc + total; end; send \
               done_sig(); return self.acc;"
            "step";
        ]
      "Main"
  in
  Model.add m (Model.E_classifier main);
  m

let cgen_tests =
  [
    tc "generated C declares structs and functions" (fun () ->
        let text = Codegen.Cgen.of_model (c_model ()) in
        check Alcotest.bool "struct" true (contains text "struct Main {");
        check Alcotest.bool "ctor" true (contains text "struct Main *Main_new(void)");
        check Alcotest.bool "fn" true (contains text "int Main_step(struct Main *self)");
        check Alcotest.bool "for loop" true (contains text "for (int i = 1; i <= 4; i++)");
        check Alcotest.bool "send hook" true (contains text "socuml_emit(\"done_sig\")");
        check Alcotest.bool "default" true (contains text "self->acc = 10;"));
    tc "method call resolves receiver class" (fun () ->
        let m = c_model () in
        let main =
          match Model.classifier_named m "Main" with
          | Some c -> c
          | None -> Alcotest.fail "Main missing"
        in
        let with_call =
          {
            main with
            Classifier.cl_operations =
              [
                Classifier.operation ~body:"return self.buddy.adjust(1);"
                  "delegate";
              ];
          }
        in
        Model.replace m (Model.E_classifier with_call);
        let text = Codegen.Cgen.of_model m in
        check Alcotest.bool "dispatch" true
          (contains text "Helper_adjust(self->buddy, 1)"));
    tc "unparsable body becomes a stub with a comment" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:[ Classifier.operation ~body:"if if" "broken" ]
                "K"));
        let text = Codegen.Cgen.of_model m in
        check Alcotest.bool "stub" true (contains text "body not translated"));
    tc "c generation is deterministic" (fun () ->
        let text1 = Codegen.Cgen.of_model (c_model ()) in
        let text2 = Codegen.Cgen.of_model (c_model ()) in
        check Alcotest.string "same" text1 text2);
    tc "generated C compiles with cc when available" (fun () ->
        if Sys.command "command -v cc > /dev/null 2>&1" <> 0 then ()
        else begin
          let text = Codegen.Cgen.of_model (c_model ()) in
          let dir = Filename.temp_file "socuml" "" in
          Sys.remove dir;
          Sys.mkdir dir 0o755;
          let path = Filename.concat dir "gen.c" in
          let oc = open_out path in
          output_string oc text;
          (* satisfy the extern hook so -fsyntax-only is not needed *)
          output_string oc "\nvoid socuml_emit(const char *s) { (void)s; }\n";
          close_out oc;
          let rc =
            Sys.command
              (Printf.sprintf "cc -std=c99 -fsyntax-only -Wall -Werror %s"
                 (Filename.quote path))
          in
          check Alcotest.int "cc accepts" 0 rc
        end);
  ]

let testbench_tests =
  [
    tc "testbench drives events and skips unknown ones" (fun () ->
        let flat = flat_of (simple_machine ()) in
        match Codegen.Fsm_compile.compile flat with
        | Error m -> Alcotest.fail m
        | Ok hmod ->
          let text =
            Codegen.Testbench.vhdl_for_fsm hmod
              ~events:[ "go"; "bogus"; "back" ]
          in
          check Alcotest.bool "entity" true (contains text "entity toggler_tb is");
          check Alcotest.bool "dut" true (contains text "entity work.toggler");
          check Alcotest.bool "go strobe" true (contains text "ev_go <= '1';");
          check Alcotest.bool "back strobe" true (contains text "ev_back <= '1';");
          check Alcotest.bool "bogus skipped" true
            (contains text "-- event bogus: no matching input port"));
    tc "testbench is deterministic" (fun () ->
        let flat = flat_of (simple_machine ()) in
        match Codegen.Fsm_compile.compile flat with
        | Error m -> Alcotest.fail m
        | Ok hmod ->
          check Alcotest.string "same"
            (Codegen.Testbench.vhdl_for_fsm hmod ~events:[ "go" ])
            (Codegen.Testbench.vhdl_for_fsm hmod ~events:[ "go" ]));
  ]

let () =
  Alcotest.run "codegen"
    [
      ("emitters", emitters_tests); ("fsm", fsm_tests); ("cgen", cgen_tests);
      ("testbench", testbench_tests);
    ]
