(* Fault-injection campaigns: the empty-plan identity property on every
   engine family (a campaign with no faults reproduces the golden
   artifacts byte-for-byte), plan serialization round-trips, same-seed
   reports are byte-identical, and the outcome classifiers behave on
   hand-built cases. *)

open Hdl

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Random fixtures (shared shapes with test_dsim_fast) *)

let rand_ty rng =
  match Workload.Prng.int rng 3 with
  | 0 -> Htype.Bit
  | 1 -> Htype.Unsigned (Workload.Prng.range rng 2 8)
  | _ -> Htype.Unsigned (Workload.Prng.range rng 9 16)

let binops =
  [
    Expr.And; Expr.Or; Expr.Xor; Expr.Add; Expr.Sub; Expr.Mul; Expr.Eq;
    Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Shl; Expr.Shr;
  ]

let rec rand_expr rng avail depth =
  let leaf () =
    if Workload.Prng.bool rng then Expr.Ref (Workload.Prng.pick rng avail)
    else Expr.of_int ~width:8 (Workload.Prng.int rng 256)
  in
  if depth <= 0 then leaf ()
  else (
    let sub () = rand_expr rng avail (depth - 1) in
    match Workload.Prng.int rng 8 with
    | 0 | 1 -> leaf ()
    | 2 -> Expr.Unop (Expr.Not, sub ())
    | 3 -> Expr.Mux (sub (), sub (), sub ())
    | 4 -> Expr.Resize (sub (), Workload.Prng.range rng 1 12)
    | _n -> Expr.Binop (Workload.Prng.pick rng binops, sub (), sub ()))

let random_module seed =
  let rng = Workload.Prng.create seed in
  let inputs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "in%d" i, rand_ty rng))
  in
  let regs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "r%d" i, rand_ty rng))
  in
  let base = List.map fst inputs @ List.map fst regs in
  let n_wire = Workload.Prng.range rng 1 3 in
  let rec wires acc avail k =
    if k = 0 then List.rev acc
    else (
      let name = Printf.sprintf "w%d" (n_wire - k) in
      let ty = rand_ty rng in
      let e = rand_expr rng avail 3 in
      wires ((name, ty, e) :: acc) (name :: avail) (k - 1))
  in
  let ws = wires [] base n_wire in
  let seq_body =
    List.map (fun (r, _) -> Stmt.Assign (r, rand_expr rng base 3)) regs
  in
  let reset_body =
    List.map (fun (r, _) -> Stmt.Assign (r, Expr.of_int 0)) regs
  in
  Module_.make
    ~ports:
      (Module_.input "clk" Htype.Bit
       :: Module_.input "rst" Htype.Bit
       :: List.map (fun (n, ty) -> Module_.input n ty) inputs)
    ~signals:
      (List.map
         (fun (n, ty) ->
           Module_.signal ~init:(Workload.Prng.int rng 16) n ty)
         regs
       @ List.map (fun (n, ty, _) -> Module_.signal n ty) ws)
    ~processes:
      (Module_.seq_process
         ~reset:("rst", reset_body)
         ~name:"p_seq" ~clock:"clk" seq_body
       :: List.mapi
            (fun i (n, _, e) ->
              Module_.comb_process
                ~name:(Printf.sprintf "p_w%d" i)
                [ Stmt.Assign (n, e) ])
            ws)
    "rand"

let rtl_spec_of_module seed m =
  let rng = Workload.Prng.create (seed lxor 0x2e2e) in
  let inputs =
    List.filter_map
      (fun (p : Module_.port) ->
        match p.Module_.port_dir with
        | Module_.Input ->
          if p.Module_.port_name = "clk" || p.Module_.port_name = "rst" then
            None
          else Some p.Module_.port_name
        | Module_.Output -> None)
      m.Module_.mod_ports
  in
  let cycles = 12 in
  let stimulus =
    List.init cycles (fun c ->
        ( c,
          List.filter_map
            (fun name ->
              if Workload.Prng.bool rng then
                Some (name, Workload.Prng.int rng 65536)
              else None)
            inputs ))
  in
  {
    Fault.Campaign.rs_module = m;
    rs_clock = "clk";
    rs_reset = Some "rst";
    rs_stimulus = stimulus;
    rs_cycles = cycles;
    rs_settle_budget = 1000;
  }

let random_surface seed =
  let rng = Workload.Prng.create (seed lxor 0x71c3) in
  {
    Fault.Plan.su_signals =
      List.init (Workload.Prng.range rng 1 4) (fun i ->
          (Printf.sprintf "s%d" i, Workload.Prng.range rng 1 16));
    su_cycles = Workload.Prng.range rng 1 20;
    su_events = Workload.Gen_statechart.event_names (Workload.Prng.range rng 1 4);
    su_length = Workload.Prng.range rng 1 20;
    su_places =
      List.init (Workload.Prng.range rng 1 4) (fun i ->
          Printf.sprintf "p%d" i);
    su_steps = Workload.Prng.range rng 1 30;
  }

(* ------------------------------------------------------------------ *)
(* Plan serialization *)

let qcheck_plan_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"plan to_string/of_string round-trips"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let plan =
           Fault.Plan.generate ~seed ~count:(seed mod 17) (random_surface seed)
         in
         match Fault.Plan.of_string (Fault.Plan.to_string plan) with
         | Ok plan' -> Fault.Plan.equal plan plan'
         | Error msg -> Alcotest.failf "parse failed: %s (seed %d)" msg seed))

let plan_tests =
  [
    tc "generate is deterministic for a given seed" (fun () ->
        let s = random_surface 7 in
        let a = Fault.Plan.generate ~seed:11 ~count:20 s in
        let b = Fault.Plan.generate ~seed:11 ~count:20 s in
        check Alcotest.bool "equal plans" true (Fault.Plan.equal a b);
        let c = Fault.Plan.generate ~seed:12 ~count:20 s in
        check Alcotest.bool "different seed differs" false
          (Fault.Plan.equal a c));
    tc "empty surface yields the empty plan" (fun () ->
        let s =
          {
            Fault.Plan.su_signals = []; su_cycles = 0; su_events = [];
            su_length = 0; su_places = []; su_steps = 0;
          }
        in
        check Alcotest.bool "empty" true
          (Fault.Plan.equal (Fault.Plan.generate ~seed:3 ~count:9 s)
             (Fault.Plan.empty 3));
        check
          Alcotest.(list string)
          "no domains" [] (Fault.Plan.surface_domains s));
    tc "of_string rejects garbage" (fun () ->
        (match Fault.Plan.of_string "" with
         | Ok _ -> Alcotest.fail "empty input accepted"
         | Error _ -> ());
        (match Fault.Plan.of_string "fault-plan seed=1\nxyz zap a=1" with
         | Ok _ -> Alcotest.fail "unknown fault accepted"
         | Error _ -> ());
        match Fault.Plan.of_string "fault-plan seed=1\nrtl stuck-at signal=x value=7 from=0" with
        | Ok _ -> Alcotest.fail "stuck-at 7 accepted"
        | Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Empty-plan identity: a run with no faults reproduces the golden
   artifacts byte-for-byte, engine family by engine family. *)

let qcheck_identity_rtl =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40
       ~name:"rtl: empty fault list reproduces golden snapshots and VCD"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let spec = rtl_spec_of_module seed (random_module seed) in
         let golden = Fault.Campaign.rtl_run spec [] in
         let injected = Fault.Campaign.rtl_run spec [] in
         golden.Fault.Campaign.rr_snapshots
         = injected.Fault.Campaign.rr_snapshots
         && String.equal golden.Fault.Campaign.rr_vcd
              injected.Fault.Campaign.rr_vcd
         && golden.Fault.Campaign.rr_error = injected.Fault.Campaign.rr_error
         && Fault.Campaign.equal_outcome Fault.Campaign.Masked
              (Fault.Campaign.classify_rtl ~golden injected)))

let qcheck_identity_statechart =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"statechart: empty fault list reproduces golden signatures"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let sm =
           if seed mod 2 = 0 then
             Workload.Gen_statechart.flat ~seed ~states:5 ~events:3
           else
             Workload.Gen_statechart.hierarchical ~seed ~depth:2 ~breadth:2
               ~events:3
         in
         let spec =
           {
             Fault.Campaign.ss_machine = sm;
             ss_events =
               Workload.Gen_statechart.event_sequence ~seed ~length:15 3;
             ss_budget = 1000;
           }
         in
         let golden = Fault.Campaign.sc_run spec [] in
         let injected = Fault.Campaign.sc_run spec [] in
         golden = injected
         && Fault.Campaign.equal_outcome Fault.Campaign.Masked
              (Fault.Campaign.classify_sc ~golden injected)))

let qcheck_identity_tokens =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"tokens: empty fault list reproduces golden firings and markings"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let act =
           if seed mod 2 = 0 then
             Workload.Gen_activity.series_parallel ~seed ~size:8 ~max_width:3
           else
             Workload.Gen_activity.with_decisions ~seed ~size:8 ~max_width:3
         in
         let aspec =
           {
             Fault.Campaign.ac_activity = act;
             ac_choice_seed = seed;
             ac_max_steps = 10_000;
           }
         in
         let net, m0 = Activity.Translate.to_petri act in
         let nspec =
           {
             Fault.Campaign.np_net = net;
             np_marking = m0;
             np_choice_seed = seed;
             np_max_steps = 10_000;
           }
         in
         let ag = Fault.Campaign.act_run aspec [] in
         let ai = Fault.Campaign.act_run aspec [] in
         let ng = Fault.Campaign.net_run nspec [] in
         let ni = Fault.Campaign.net_run nspec [] in
         ag = ai && ng = ni
         && Fault.Campaign.equal_outcome Fault.Campaign.Masked
              (Fault.Campaign.classify_act ~golden:ag ai)
         && Fault.Campaign.equal_outcome Fault.Campaign.Masked
              (Fault.Campaign.classify_net nspec ~golden:ng ni)))

(* ------------------------------------------------------------------ *)
(* Campaign determinism and accounting *)

let toggle_machine () =
  Workload.Gen_statechart.flat ~seed:5 ~states:3 ~events:2

let campaign_fixture seed faults =
  let sm = toggle_machine () in
  let events = Workload.Gen_statechart.event_sequence ~seed:9 ~length:10 2 in
  let sc =
    { Fault.Campaign.ss_machine = sm; ss_events = events; ss_budget = 1000 }
  in
  let rtl = rtl_spec_of_module 21 (random_module 21) in
  let act = Workload.Gen_activity.series_parallel ~seed:4 ~size:8 ~max_width:3 in
  let aspec =
    {
      Fault.Campaign.ac_activity = act;
      ac_choice_seed = 4;
      ac_max_steps = 10_000;
    }
  in
  let net, m0 = Activity.Translate.to_petri act in
  let nspec =
    {
      Fault.Campaign.np_net = net;
      np_marking = m0;
      np_choice_seed = 4;
      np_max_steps = 10_000;
    }
  in
  let surface =
    {
      Fault.Plan.su_signals =
        List.map
          (fun (s : Module_.signal) ->
            (s.Module_.sig_name, Htype.width s.Module_.sig_type))
          rtl.Fault.Campaign.rs_module.Module_.mod_signals;
      su_cycles = rtl.Fault.Campaign.rs_cycles;
      su_events = Workload.Gen_statechart.event_names 2;
      su_length = List.length events;
      su_places =
        List.map (fun (p : Petri.Net.place) -> p.Petri.Net.pl_id)
          net.Petri.Net.places;
      su_steps = 20;
    }
  in
  let plan = Fault.Plan.generate ~seed ~count:faults surface in
  fun ?metrics () ->
    Fault.Campaign.run ?metrics ~rtl ~statechart:sc ~activity:aspec ~net:nspec
      ~label:"fixture" plan

let campaign_tests =
  [
    tc "same seed yields byte-identical text and json reports" (fun () ->
        let go = campaign_fixture 42 15 in
        let a = go () and b = go () in
        check Alcotest.string "text" (Fault.Campaign.to_text a)
          (Fault.Campaign.to_text b);
        check Alcotest.string "json" (Fault.Campaign.to_json a)
          (Fault.Campaign.to_json b));
    tc "empty plan yields no runs and no skips" (fun () ->
        let go = campaign_fixture 42 0 in
        let r = go () in
        check Alcotest.int "runs" 0 (List.length r.Fault.Campaign.rp_runs);
        check Alcotest.int "skips" 0 (List.length r.Fault.Campaign.rp_skipped);
        let t = Fault.Campaign.totals r in
        check Alcotest.int "injected" 0 t.Fault.Campaign.t_injected;
        check (Alcotest.float 1e-9) "coverage" 1.0 (Fault.Campaign.coverage t));
    tc "totals add up and drive the telemetry counters" (fun () ->
        let reg = Telemetry.Metrics.create () in
        let go = campaign_fixture 3 12 in
        let r = go ~metrics:reg () in
        let t = Fault.Campaign.totals r in
        check Alcotest.int "sum of outcomes"
          t.Fault.Campaign.t_injected
          (t.Fault.Campaign.t_masked + t.Fault.Campaign.t_detected
          + t.Fault.Campaign.t_silent + t.Fault.Campaign.t_truncated);
        check Alcotest.int "one run per outcome"
          (List.length r.Fault.Campaign.rp_runs)
          t.Fault.Campaign.t_injected;
        let value name =
          Telemetry.Metrics.counter_value (Telemetry.Metrics.counter reg name)
        in
        check Alcotest.int "fault.injected" t.Fault.Campaign.t_injected
          (value "fault.injected");
        check Alcotest.int "fault.masked" t.Fault.Campaign.t_masked
          (value "fault.masked");
        check Alcotest.int "fault.detected" t.Fault.Campaign.t_detected
          (value "fault.detected");
        check Alcotest.int "fault.silent" t.Fault.Campaign.t_silent
          (value "fault.silent");
        check Alcotest.int "fault.truncated" t.Fault.Campaign.t_truncated
          (value "fault.truncated"));
    tc "token faults run against both token backends" (fun () ->
        let go = campaign_fixture 8 9 in
        let r = go () in
        let domains =
          List.sort_uniq String.compare
            (List.map
               (fun (u : Fault.Campaign.run) -> u.Fault.Campaign.run_domain)
               r.Fault.Campaign.rp_runs)
        in
        check
          Alcotest.(list string)
          "all four domains" [ "activity"; "petri"; "rtl"; "statechart" ]
          domains);
    tc "faults with no executable domain are skipped with a reason" (fun () ->
        let plan =
          {
            Fault.Plan.seed = 1;
            faults =
              [
                Fault.Plan.F_rtl
                  (Fault.Plan.Bit_flip
                     { fb_signal = "x"; fb_cycle = 0; fb_bit = 0 });
              ];
          }
        in
        let r = Fault.Campaign.run ~label:"none" plan in
        check Alcotest.int "no runs" 0 (List.length r.Fault.Campaign.rp_runs);
        check Alcotest.int "one skip" 1
          (List.length r.Fault.Campaign.rp_skipped));
  ]

(* ------------------------------------------------------------------ *)
(* Classifier behavior on hand-built cases *)

let counter_module () =
  Module_.make
    ~ports:
      [
        Module_.input "clk" Htype.Bit;
        Module_.input "rst" Htype.Bit;
        Module_.input "en" Htype.Bit;
        Module_.output "q" (Htype.Unsigned 4);
      ]
    ~signals:[ Module_.signal ~init:0 "cnt" (Htype.Unsigned 4) ]
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", [ Stmt.Assign ("cnt", Expr.of_int ~width:4 0) ])
          ~name:"p_cnt" ~clock:"clk"
          [
            Stmt.If
              ( Expr.(Ref "en" ==: one),
                [ Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1)) ],
                [] );
          ];
        Module_.comb_process ~name:"p_out" [ Stmt.Assign ("q", Expr.Ref "cnt") ];
      ]
    "counter"

let counter_spec () =
  {
    Fault.Campaign.rs_module = counter_module ();
    rs_clock = "clk";
    rs_reset = Some "rst";
    rs_stimulus = [ (0, [ ("en", 1) ]) ];
    rs_cycles = 8;
    rs_settle_budget = 1000;
  }

let classify_tests =
  [
    tc "rtl bit flip on the counter register is silent corruption" (fun () ->
        let spec = counter_spec () in
        let golden = Fault.Campaign.rtl_run spec [] in
        let injected =
          Fault.Campaign.rtl_run spec
            [
              Fault.Plan.Bit_flip
                { fb_signal = "cnt"; fb_cycle = 3; fb_bit = 3 };
            ]
        in
        check Alcotest.bool "snapshots differ" false
          (golden.Fault.Campaign.rr_snapshots
          = injected.Fault.Campaign.rr_snapshots);
        check Alcotest.bool "silent" true
          (Fault.Campaign.equal_outcome Fault.Campaign.Silent
             (Fault.Campaign.classify_rtl ~golden injected)));
    tc "rtl bit flip above the signal width is masked" (fun () ->
        (* en is one bit wide: flipping bit 1 is absorbed by the width
           mask, the canonical masked single-event upset *)
        let spec = counter_spec () in
        let golden = Fault.Campaign.rtl_run spec [] in
        let injected =
          Fault.Campaign.rtl_run spec
            [
              Fault.Plan.Bit_flip { fb_signal = "en"; fb_cycle = 2; fb_bit = 1 };
            ]
        in
        check Alcotest.bool "vcd identical" true
          (String.equal golden.Fault.Campaign.rr_vcd
             injected.Fault.Campaign.rr_vcd);
        check Alcotest.bool "masked" true
          (Fault.Campaign.equal_outcome Fault.Campaign.Masked
             (Fault.Campaign.classify_rtl ~golden injected)));
    tc "stuck-at-0 on the counter register is detected or silent" (fun () ->
        let spec = counter_spec () in
        let golden = Fault.Campaign.rtl_run spec [] in
        let injected =
          Fault.Campaign.rtl_run spec
            [
              Fault.Plan.Stuck_at
                { sa_signal = "cnt"; sa_value = 0; sa_from = 0 };
            ]
        in
        check Alcotest.bool "final count frozen" true
          (match List.rev injected.Fault.Campaign.rr_snapshots with
           | last :: _ -> List.assoc "cnt" last = 0
           | [] -> false);
        check Alcotest.bool "silent" true
          (Fault.Campaign.equal_outcome Fault.Campaign.Silent
             (Fault.Campaign.classify_rtl ~golden injected)));
    tc "petri token loss violates a p-invariant and is detected" (fun () ->
        (* one-token ring: p0 -> t0 -> p1 -> t1 -> p0; the total token
           count is a P-invariant, so losing the token is detected *)
        let net =
          Petri.Net.make
            [ Petri.Net.place "p0"; Petri.Net.place "p1" ]
            [ Petri.Net.transition "t0"; Petri.Net.transition "t1" ]
            [
              Petri.Net.P_to_t ("p0", "t0", 1);
              Petri.Net.T_to_p ("t0", "p1", 1);
              Petri.Net.P_to_t ("p1", "t1", 1);
              Petri.Net.T_to_p ("t1", "p0", 1);
            ]
        in
        let spec =
          {
            Fault.Campaign.np_net = net;
            np_marking = Petri.Marking.of_list [ ("p0", 1) ];
            np_choice_seed = 1;
            np_max_steps = 10;
          }
        in
        let golden = Fault.Campaign.net_run spec [] in
        check Alcotest.bool "golden truncates at the step budget" true
          golden.Fault.Campaign.nr_truncated;
        let injected =
          Fault.Campaign.net_run spec
            [ Fault.Plan.Lose_token { lt_place = "p0"; lt_step = 2 } ]
        in
        check Alcotest.bool "injected deadlocks" true
          injected.Fault.Campaign.nr_deadlocked;
        match Fault.Campaign.classify_net spec ~golden injected with
        | Fault.Campaign.Detected _ -> ()
        | o ->
          Alcotest.failf "expected detection, got %s"
            (Fault.Campaign.show_outcome o));
    tc "activity step budget exhaustion is truncated" (fun () ->
        let act =
          Workload.Gen_activity.series_parallel ~seed:2 ~size:10 ~max_width:3
        in
        let spec =
          {
            Fault.Campaign.ac_activity = act;
            ac_choice_seed = 2;
            ac_max_steps = 1;
          }
        in
        let golden = Fault.Campaign.act_run spec [] in
        check Alcotest.string "stop" "exhausted" golden.Fault.Campaign.ar_stop;
        match Fault.Campaign.classify_act ~golden golden with
        | Fault.Campaign.Truncated _ -> ()
        | o ->
          Alcotest.failf "expected truncation, got %s"
            (Fault.Campaign.show_outcome o));
    tc "dropping every event leaves the statechart behind" (fun () ->
        let sm = toggle_machine () in
        let events =
          Workload.Gen_statechart.event_sequence ~seed:1 ~length:6 2
        in
        let spec =
          {
            Fault.Campaign.ss_machine = sm;
            ss_events = events;
            ss_budget = 1000;
          }
        in
        let golden = Fault.Campaign.sc_run spec [] in
        let faults =
          List.mapi
            (fun i _ -> Fault.Plan.Drop_event { de_index = i })
            events
        in
        let injected = Fault.Campaign.sc_run spec faults in
        check Alcotest.int "no events delivered" 0
          (List.length injected.Fault.Campaign.sc_signatures);
        match Fault.Campaign.classify_sc ~golden injected with
        | Fault.Campaign.Masked | Fault.Campaign.Silent -> ()
        | Fault.Campaign.Detected d -> Alcotest.failf "detected: %s" d
        | Fault.Campaign.Truncated d -> Alcotest.failf "truncated: %s" d);
  ]

(* ------------------------------------------------------------------ *)
(* Event-stream perturbation unit behavior *)

let perturb_tests =
  [
    tc "drop removes exactly the indexed event" (fun () ->
        check
          Alcotest.(list string)
          "drop 1"
          [ "a"; "c" ]
          (Fault.Campaign.perturb_events
             [ Fault.Plan.Drop_event { de_index = 1 } ]
             [ "a"; "b"; "c" ]));
    tc "dup delivers the indexed event twice" (fun () ->
        check
          Alcotest.(list string)
          "dup 0"
          [ "a"; "a"; "b" ]
          (Fault.Campaign.perturb_events
             [ Fault.Plan.Dup_event { du_index = 0 } ]
             [ "a"; "b" ]));
    tc "spurious inserts before the index, appends past the end" (fun () ->
        check
          Alcotest.(list string)
          "insert at 1"
          [ "a"; "x"; "b" ]
          (Fault.Campaign.perturb_events
             [ Fault.Plan.Spurious_event { sp_index = 1; sp_event = "x" } ]
             [ "a"; "b" ]);
        check
          Alcotest.(list string)
          "append"
          [ "a"; "b"; "x" ]
          (Fault.Campaign.perturb_events
             [ Fault.Plan.Spurious_event { sp_index = 9; sp_event = "x" } ]
             [ "a"; "b" ]));
    tc "out-of-range drop and dup are no-ops" (fun () ->
        check
          Alcotest.(list string)
          "unchanged" [ "a"; "b" ]
          (Fault.Campaign.perturb_events
             [
               Fault.Plan.Drop_event { de_index = 5 };
               Fault.Plan.Dup_event { du_index = 7 };
             ]
             [ "a"; "b" ]));
  ]

let () =
  Alcotest.run "fault"
    [
      ("plan", qcheck_plan_roundtrip :: plan_tests);
      ( "identity",
        [
          qcheck_identity_rtl; qcheck_identity_statechart;
          qcheck_identity_tokens;
        ] );
      ("campaign", campaign_tests);
      ("classify", classify_tests);
      ("perturb", perturb_tests);
    ]
