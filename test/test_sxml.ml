(* Tests for the XML substrate: tree queries, printer, parser,
   round-trip. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let doc_tests =
  [
    tc "attr lookup" (fun () ->
        match Sxml.Doc.element ~attrs:[ ("a", "1") ] "t" [] with
        | Sxml.Doc.Element e ->
          check Alcotest.bool "found" true (Sxml.Doc.attr e "a" = Some "1");
          check Alcotest.bool "missing" true (Sxml.Doc.attr e "b" = None)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "find_children filters by tag" (fun () ->
        match
          Sxml.Doc.element "root"
            [
              Sxml.Doc.element "a" [];
              Sxml.Doc.element "b" [];
              Sxml.Doc.element "a" [];
            ]
        with
        | Sxml.Doc.Element e ->
          check Alcotest.int "two" 2 (List.length (Sxml.Doc.find_children e "a"))
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "text_content concatenates" (fun () ->
        match
          Sxml.Doc.element "t"
            [ Sxml.Doc.text "a"; Sxml.Doc.element "x" []; Sxml.Doc.text "b" ]
        with
        | Sxml.Doc.Element e ->
          check Alcotest.string "ab" "ab" (Sxml.Doc.text_content e)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "escape handles the five specials" (fun () ->
        check Alcotest.string "escaped" "&amp;&lt;&gt;&quot;&apos;"
          (Sxml.Doc.escape "&<>\"'"));
    tc "equal ignores attribute order" (fun () ->
        let d1 = Sxml.Doc.element ~attrs:[ ("a", "1"); ("b", "2") ] "t" [] in
        let d2 = Sxml.Doc.element ~attrs:[ ("b", "2"); ("a", "1") ] "t" [] in
        check Alcotest.bool "equal" true (Sxml.Doc.equal d1 d2));
  ]

let parse s = Sxml.Parse.parse_string s

let parser_tests =
  [
    tc "simple element" (fun () ->
        match parse "<a/>" with
        | Sxml.Doc.Element e -> check Alcotest.string "tag" "a" e.Sxml.Doc.tag
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "attributes with both quote styles" (fun () ->
        match parse "<a x=\"1\" y='2'/>" with
        | Sxml.Doc.Element e ->
          check Alcotest.bool "x" true (Sxml.Doc.attr e "x" = Some "1");
          check Alcotest.bool "y" true (Sxml.Doc.attr e "y" = Some "2")
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "nested elements and text" (fun () ->
        match parse "<a><b>hello</b></a>" with
        | Sxml.Doc.Element e -> (
          match Sxml.Doc.find_child e "b" with
          | Some b ->
            check Alcotest.string "text" "hello" (Sxml.Doc.text_content b)
          | None -> Alcotest.fail "child b expected")
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "prolog, doctype and comments are skipped" (fun () ->
        match
          parse
            "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]>\n\
             <!-- hi --><a/><!-- bye -->"
        with
        | Sxml.Doc.Element e -> check Alcotest.string "tag" "a" e.Sxml.Doc.tag
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "entities decode" (fun () ->
        match parse "<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>" with
        | Sxml.Doc.Element e ->
          check Alcotest.string "decoded" "<x> & \"y\" 'z'"
            (Sxml.Doc.text_content e)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "numeric character references" (fun () ->
        match parse "<a>&#65;&#x42;</a>" with
        | Sxml.Doc.Element e ->
          check Alcotest.string "AB" "AB" (Sxml.Doc.text_content e)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "astral-plane character reference encodes as 4 UTF-8 bytes" (fun () ->
        match parse "<a>&#x1F600;</a>" with
        | Sxml.Doc.Element e ->
          check Alcotest.string "U+1F600" "\xF0\x9F\x98\x80"
            (Sxml.Doc.text_content e)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "character reference beyond U+10FFFF fails" (fun () ->
        match parse "<a>&#x200000;</a>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error _ -> ());
    tc "surrogate character reference fails" (fun () ->
        match parse "<a>&#xD800;</a>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error _ -> ());
    tc "negative character reference fails" (fun () ->
        match parse "<a>&#-5;</a>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error _ -> ());
    tc "CDATA preserved verbatim" (fun () ->
        match parse "<a><![CDATA[<not> &parsed;]]></a>" with
        | Sxml.Doc.Element e ->
          check Alcotest.string "raw" "<not> &parsed;" (Sxml.Doc.text_content e)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "entity in attribute value" (fun () ->
        match parse "<a x=\"1 &amp; 2\"/>" with
        | Sxml.Doc.Element e ->
          check Alcotest.bool "decoded" true (Sxml.Doc.attr e "x" = Some "1 & 2")
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "whitespace-only text dropped by default" (fun () ->
        match parse "<a>\n  <b/>\n</a>" with
        | Sxml.Doc.Element e ->
          check Alcotest.int "one child" 1 (List.length e.Sxml.Doc.children)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "keep_whitespace retains it" (fun () ->
        match Sxml.Parse.parse_string ~keep_whitespace:true "<a> <b/> </a>" with
        | Sxml.Doc.Element e ->
          check Alcotest.int "three children" 3
            (List.length e.Sxml.Doc.children)
        | Sxml.Doc.Text _ -> Alcotest.fail "element expected");
    tc "mismatched closing tag fails" (fun () ->
        match parse "<a></b>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error _ -> ());
    tc "trailing content fails" (fun () ->
        match parse "<a/><b/>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error _ -> ());
    tc "unterminated element fails" (fun () ->
        match parse "<a><b></b>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error _ -> ());
    tc "error positions are 1-based" (fun () ->
        match parse "<a>\n<b>oops</a>" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception Sxml.Parse.Error { line; _ } ->
          check Alcotest.int "line 2" 2 line);
    tc "error_message renders" (fun () ->
        match parse "<" with
        | _doc -> Alcotest.fail "expected parse error"
        | exception e ->
          check Alcotest.bool "some" true (Sxml.Parse.error_message e <> None));
  ]

(* random tree round-trip *)
let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "tag"; "x-y"; "ns:t" ] in
  let attr_value =
    oneofl [ "v"; "1 & 2"; "<q>"; "it's"; "\"quoted\""; "plain" ]
  in
  let text_value = oneofl [ "hello"; "a<b"; "x&y"; "tail "; " lead" ] in
  fix
    (fun self depth ->
      let attrs =
        list_size (int_bound 2)
          (map2 (fun k v -> (k, v)) (oneofl [ "k"; "id"; "w" ]) attr_value)
      in
      (* attribute keys must be distinct *)
      let attrs =
        map
          (fun l ->
            let seen = Hashtbl.create 4 in
            List.filter
              (fun (k, _) ->
                if Hashtbl.mem seen k then false
                else begin
                  Hashtbl.add seen k ();
                  true
                end)
              l)
          attrs
      in
      if depth = 0 then
        map2 (fun t a -> Sxml.Doc.element ~attrs:a t []) name attrs
      else
        let child =
          frequency
            [ (3, self (depth - 1)); (1, map Sxml.Doc.text text_value) ]
        in
        map3
          (fun t a cs -> Sxml.Doc.element ~attrs:a t cs)
          name attrs
          (list_size (int_bound 3) child))
    2

let roundtrip_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"print-parse round-trip" ~count:200
         (QCheck.make gen_tree)
         (fun doc ->
           (* adjacent text nodes merge on reparse: normalize both sides *)
           let rec normalize = function
             | Sxml.Doc.Text _ as t -> t
             | Sxml.Doc.Element e ->
               let rec merge = function
                 | Sxml.Doc.Text a :: Sxml.Doc.Text b :: rest ->
                   merge (Sxml.Doc.Text (a ^ b) :: rest)
                 | c :: rest -> normalize c :: merge rest
                 | [] -> []
               in
               Sxml.Doc.element ~attrs:e.Sxml.Doc.attrs e.Sxml.Doc.tag
                 (merge e.Sxml.Doc.children)
           in
           let printed = Sxml.Doc.to_string ~indent:false doc in
           let reparsed =
             Sxml.Parse.parse_string ~keep_whitespace:true printed
           in
           Sxml.Doc.equal (normalize doc) (normalize reparsed)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"indented print-parse round-trip (no text)"
         ~count:100
         (QCheck.make gen_tree)
         (fun doc ->
           (* drop text nodes: indentation only round-trips elements *)
           let rec strip = function
             | Sxml.Doc.Element e ->
               Sxml.Doc.element ~attrs:e.Sxml.Doc.attrs e.Sxml.Doc.tag
                 (List.filter_map
                    (fun c ->
                      match c with
                      | Sxml.Doc.Element _ -> Some (strip c)
                      | Sxml.Doc.Text _ -> None)
                    e.Sxml.Doc.children)
             | Sxml.Doc.Text _ as t -> t
           in
           let doc = strip doc in
           let printed = Sxml.Doc.to_string ~indent:true doc in
           Sxml.Doc.equal doc (Sxml.Parse.parse_string printed)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parser raises nothing but Parse.Error"
         ~count:1000
         (QCheck.make
            QCheck.Gen.(
              string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 60)))
         (fun src ->
           match Sxml.Parse.parse_string src with
           | _doc -> true
           | exception Sxml.Parse.Error _ -> true));
  ]

let () =
  Alcotest.run "sxml"
    [ ("doc", doc_tests); ("parser", parser_tests); ("roundtrip", roundtrip_tests) ]
