(* Tests for the action language: lexer, parser, typechecker,
   interpreter. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* --- lexer -------------------------------------------------------------- *)

let lexer_tests =
  [
    tc "numbers, idents, operators" (fun () ->
        let toks = Asl.Lexer.tokenize "x := 1 + 2.5;" in
        check Alcotest.int "count" 7 (List.length toks);
        check Alcotest.bool "assign" true
          (List.exists (Asl.Lexer.equal_token Asl.Lexer.ASSIGN) toks));
    tc "keywords are not idents" (fun () ->
        match Asl.Lexer.tokenize "if then else end" with
        | [ Asl.Lexer.KW_IF; Asl.Lexer.KW_THEN; Asl.Lexer.KW_ELSE;
            Asl.Lexer.KW_END; Asl.Lexer.EOF ] ->
          ()
        | _other -> Alcotest.fail "keyword tokens expected");
    tc "string literal with escapes" (fun () ->
        match Asl.Lexer.tokenize "\"a\\nb\"" with
        | [ Asl.Lexer.STRING s; Asl.Lexer.EOF ] ->
          check Alcotest.string "escape" "a\nb" s
        | _other -> Alcotest.fail "string token expected");
    tc "comments skipped" (fun () ->
        match Asl.Lexer.tokenize "1 // comment\n 2" with
        | [ Asl.Lexer.INT 1; Asl.Lexer.INT 2; Asl.Lexer.EOF ] -> ()
        | _other -> Alcotest.fail "two ints expected");
    tc "two-char operators" (fun () ->
        match Asl.Lexer.tokenize "<> <= >= :=" with
        | [ Asl.Lexer.NE; Asl.Lexer.LE; Asl.Lexer.GE; Asl.Lexer.ASSIGN;
            Asl.Lexer.EOF ] ->
          ()
        | _other -> Alcotest.fail "operator tokens expected");
    tc "bad character raises" (fun () ->
        match Asl.Lexer.tokenize "@" with
        | _toks -> Alcotest.fail "expected Lex_error"
        | exception Asl.Lexer.Lex_error _ -> ());
    tc "overflowing integer literal raises Lex_error" (fun () ->
        match Asl.Lexer.tokenize "x := 123456789012345678901;" with
        | _toks -> Alcotest.fail "expected Lex_error"
        | exception Asl.Lexer.Lex_error { position; _ } ->
          check Alcotest.int "position" 5 position);
    tc "overflowing real literal raises Lex_error" (fun () ->
        (* a mantissa far beyond the float range *)
        let lit = String.make 400 '9' ^ ".0" in
        match Asl.Lexer.tokenize lit with
        | [ Asl.Lexer.REAL r; Asl.Lexer.EOF ] ->
          (* float_of_string saturates to infinity rather than failing;
             accept either behavior as long as nothing escapes *)
          check Alcotest.bool "infinite" true (r = infinity)
        | _toks -> Alcotest.fail "one real token expected"
        | exception Asl.Lexer.Lex_error _ -> ());
  ]

(* --- parser -------------------------------------------------------------- *)

let parse_e = Asl.Parser.parse_expression
let parse_p = Asl.Parser.parse_program

let parser_tests =
  [
    tc "precedence: mul over add" (fun () ->
        check Alcotest.bool "1+2*3" true
          (Asl.Ast.equal_expr (parse_e "1 + 2 * 3")
             (Asl.Ast.Binop
                ( Asl.Ast.Add,
                  Asl.Ast.Int_lit 1,
                  Asl.Ast.Binop (Asl.Ast.Mul, Asl.Ast.Int_lit 2, Asl.Ast.Int_lit 3) ))));
    tc "precedence: and over or" (fun () ->
        check Alcotest.bool "a or b and c" true
          (Asl.Ast.equal_expr
             (parse_e "true or false and false")
             (Asl.Ast.Binop
                ( Asl.Ast.Or,
                  Asl.Ast.Bool_lit true,
                  Asl.Ast.Binop
                    (Asl.Ast.And, Asl.Ast.Bool_lit false, Asl.Ast.Bool_lit false) ))));
    tc "comparison binds looser than arithmetic" (fun () ->
        match parse_e "x + 1 > y * 2" with
        | Asl.Ast.Binop (Asl.Ast.Gt, _, _) -> ()
        | _other -> Alcotest.fail "top operator must be >");
    tc "postfix attribute chains" (fun () ->
        check Alcotest.bool "a.b.c" true
          (Asl.Ast.equal_expr (parse_e "a.b.c")
             (Asl.Ast.Attr (Asl.Ast.Attr (Asl.Ast.Var "a", "b"), "c"))));
    tc "method call with arguments" (fun () ->
        match parse_e "self.f(1, x)" with
        | Asl.Ast.Call (Some Asl.Ast.Self, "f", [ _; _ ]) -> ()
        | _other -> Alcotest.fail "call expected");
    tc "parenthesized grouping" (fun () ->
        match parse_e "(1 + 2) * 3" with
        | Asl.Ast.Binop (Asl.Ast.Mul, Asl.Ast.Binop (Asl.Ast.Add, _, _), _) -> ()
        | _other -> Alcotest.fail "mul of sum expected");
    tc "statement forms" (fun () ->
        let p =
          parse_p
            "var x := 1; x := x + 1; if x > 1 then y := 1; else y := 2; end; \
             while x < 5 do x := x + 1; end; for i := 1 to 3 do x := x + i; \
             end; send done(x) to self; return x;"
        in
        check Alcotest.int "seven statements" 7 (List.length p));
    tc "if without else" (fun () ->
        match parse_p "if true then x := 1; end;" with
        | [ Asl.Ast.If (_, [ _ ], []) ] -> ()
        | _other -> Alcotest.fail "if expected");
    tc "attribute assignment" (fun () ->
        match parse_p "self.x := 2;" with
        | [ Asl.Ast.Assign (Asl.Ast.L_attr (Asl.Ast.Self, "x"), _) ] -> ()
        | _other -> Alcotest.fail "attr assign expected");
    tc "new and delete" (fun () ->
        match parse_p "var c := new Counter; delete c;" with
        | [ Asl.Ast.Var_decl ("c", Asl.Ast.New "Counter");
            Asl.Ast.Delete (Asl.Ast.Var "c") ] ->
          ()
        | _other -> Alcotest.fail "new/delete expected");
    tc "parse error on garbage" (fun () ->
        match parse_p "if if;" with
        | _p -> Alcotest.fail "expected Parse_error"
        | exception Asl.Parser.Parse_error _ -> ());
    tc "assignment to literal rejected" (fun () ->
        match parse_p "1 := 2;" with
        | _p -> Alcotest.fail "expected Parse_error"
        | exception Asl.Parser.Parse_error _ -> ());
  ]

(* --- typechecker -------------------------------------------------------- *)

let info_ab : Asl.Typecheck.class_info =
  {
    Asl.Typecheck.class_exists = (fun n -> n = "A" || n = "B");
    attr_type =
      (fun c a ->
        match c, a with
        | "A", "x" -> Some Asl.Typecheck.T_int
        | "A", "peer" -> Some (Asl.Typecheck.T_obj (Some "B"))
        | "B", "flag" -> Some Asl.Typecheck.T_bool
        | _other -> None);
    op_signature =
      (fun c o ->
        match c, o with
        | "A", "inc" -> Some ([ Asl.Typecheck.T_int ], Asl.Typecheck.T_int)
        | _other -> None);
  }

let ok_program ?self_class src =
  match Asl.Typecheck.check_program ?self_class info_ab (parse_p src) with
  | Ok () -> true
  | Error _ -> false

let errors_of ?self_class src =
  match Asl.Typecheck.check_program ?self_class info_ab (parse_p src) with
  | Ok () -> []
  | Error es -> es

let typecheck_tests =
  [
    tc "well-typed program accepted" (fun () ->
        check Alcotest.bool "ok" true
          (ok_program ~self_class:"A"
             "var y := self.x + 1; if y > 0 then self.x := y; end;"));
    tc "unbound variable reported" (fun () ->
        check Alcotest.bool "err" true (errors_of "x := zz + 1;" <> []));
    tc "condition must be boolean" (fun () ->
        check Alcotest.bool "err" true
          (errors_of "if 1 then x := 1; end;" <> []));
    tc "unknown attribute reported" (fun () ->
        check Alcotest.bool "err" true
          (errors_of ~self_class:"A" "y := self.ghost;" <> []));
    tc "attribute through object chain" (fun () ->
        check Alcotest.bool "ok" true
          (ok_program ~self_class:"A" "var f := self.peer.flag;"));
    tc "operation arity checked" (fun () ->
        check Alcotest.bool "err" true
          (errors_of ~self_class:"A" "y := self.inc(1, 2);" <> []));
    tc "operation argument type checked" (fun () ->
        check Alcotest.bool "err" true
          (errors_of ~self_class:"A" "y := self.inc(true);" <> []));
    tc "for bounds must be integers" (fun () ->
        check Alcotest.bool "err" true
          (errors_of "for i := true to 3 do x := i; end;" <> []));
    tc "int promotes to real" (fun () ->
        check Alcotest.bool "ok" true (ok_program "var r := 1.5 + 2;"));
    tc "guard must be boolean" (fun () ->
        check Alcotest.bool "bad" true
          (Asl.Typecheck.check_guard Asl.Typecheck.no_classes "1 + 2"
          <> Ok ());
        check Alcotest.bool "good" true
          (Asl.Typecheck.check_guard Asl.Typecheck.no_classes "1 < 2" = Ok ()));
    tc "unknown class in new" (fun () ->
        check Alcotest.bool "err" true (errors_of "var c := new Ghost;" <> []));
    tc "concat needs a string operand" (fun () ->
        check Alcotest.bool "err" true (errors_of "x := 1 & 2;" <> []);
        check Alcotest.bool "ok" true (ok_program "x := \"n=\" & 2;"));
    tc "send target must be an object" (fun () ->
        check Alcotest.bool "err" true
          (errors_of ~self_class:"A" "send go() to 42;" <> []);
        check Alcotest.bool "ok" true
          (ok_program ~self_class:"A" "send go() to self.peer;"));
    tc "attribute assignment type mismatch" (fun () ->
        check Alcotest.bool "err" true
          (errors_of ~self_class:"A" "self.x := \"oops\";" <> []);
        check Alcotest.bool "ok" true
          (ok_program ~self_class:"A" "self.x := 7;"));
    tc "delete on non-object is rejected" (fun () ->
        check Alcotest.bool "err" true (errors_of "delete 3;" <> []));
  ]

(* --- interpreter ---------------------------------------------------------- *)

let run_int ?fuel ?resolve ?self_ ?params src =
  let store = Asl.Store.create () in
  let interp = Asl.Interp.create ?fuel ?resolve store in
  Asl.Interp.run_source ?self_ ?params interp src

let interp_tests =
  [
    tc "arithmetic and return" (fun () ->
        check Alcotest.bool "7" true
          (run_int "return 1 + 2 * 3;" = Some (Asl.Value.V_int 7)));
    tc "mod is mathematical" (fun () ->
        check Alcotest.bool "2" true
          (run_int "return (-3) mod 5;" = Some (Asl.Value.V_int 2)));
    tc "division by zero raises" (fun () ->
        match run_int "return 1 / 0;" with
        | _v -> Alcotest.fail "expected Runtime_error"
        | exception Asl.Interp.Runtime_error _ -> ());
    tc "while loop" (fun () ->
        check Alcotest.bool "10" true
          (run_int "var x := 0; while x < 10 do x := x + 1; end; return x;"
          = Some (Asl.Value.V_int 10)));
    tc "for loop accumulates" (fun () ->
        check Alcotest.bool "55" true
          (run_int
             "var s := 0; for i := 1 to 10 do s := s + i; end; return s;"
          = Some (Asl.Value.V_int 55)));
    tc "short-circuit and" (fun () ->
        (* would raise division by zero if not short-circuited *)
        check Alcotest.bool "false" true
          (run_int "return false and (1 / 0 = 1);"
          = Some (Asl.Value.V_bool false)));
    tc "short-circuit or" (fun () ->
        check Alcotest.bool "true" true
          (run_int "return true or (1 / 0 = 1);"
          = Some (Asl.Value.V_bool true)));
    tc "string concatenation" (fun () ->
        check Alcotest.bool "ab1" true
          (run_int "return \"ab\" & 1;" = Some (Asl.Value.V_string "ab1")));
    tc "builtins" (fun () ->
        check Alcotest.bool "abs" true
          (run_int "return abs(-4);" = Some (Asl.Value.V_int 4));
        check Alcotest.bool "min" true
          (run_int "return min(3, 7);" = Some (Asl.Value.V_int 3));
        check Alcotest.bool "max" true
          (run_int "return max(3, 7);" = Some (Asl.Value.V_int 7)));
    tc "print collects output" (fun () ->
        let store = Asl.Store.create () in
        let interp = Asl.Interp.create store in
        let _r = Asl.Interp.run_source interp "print(1); print(\"two\");" in
        check (Alcotest.list Alcotest.string) "lines" [ "1"; "two" ]
          (Asl.Interp.output interp));
    tc "objects: new, attrs, delete" (fun () ->
        let store = Asl.Store.create () in
        let interp =
          Asl.Interp.create
            ~attr_defaults:(fun _cl -> [ ("x", Asl.Value.V_int 0) ])
            store
        in
        let r =
          Asl.Interp.run_source interp
            "var c := new Counter; c.x := 41; c.x := c.x + 1; return c.x;"
        in
        check Alcotest.bool "42" true (r = Some (Asl.Value.V_int 42));
        check Alcotest.int "live" 1 (Asl.Store.live_count store);
        let _r2 =
          Asl.Interp.run_source interp "var d := new Counter; delete d;"
        in
        check Alcotest.int "still one" 1 (Asl.Store.live_count store));
    tc "deleted object access raises" (fun () ->
        match
          run_int "var c := new K; delete c; return c.x;"
        with
        | _v -> Alcotest.fail "expected Runtime_error"
        | exception Asl.Interp.Runtime_error _ -> ());
    tc "method dispatch through resolver" (fun () ->
        let resolve cl op =
          match cl, op with
          | "K", "double" ->
            Some
              (Asl.Interp.Body
                 ([ "n" ], Asl.Parser.parse_program "return n * 2;"))
          | _other -> None
        in
        check Alcotest.bool "84" true
          (run_int ~resolve "var k := new K; return k.double(42);"
          = Some (Asl.Value.V_int 84)));
    tc "recursive method bounded by fuel" (fun () ->
        let resolve cl op =
          match cl, op with
          | "K", "loop" ->
            Some
              (Asl.Interp.Body ([], Asl.Parser.parse_program "self.loop();"))
          | _other -> None
        in
        match run_int ~fuel:20_000 ~resolve "var k := new K; k.loop();" with
        | _v -> Alcotest.fail "expected fuel exhaustion"
        | exception Asl.Interp.Runtime_error _ -> ());
    tc "infinite while bounded by fuel" (fun () ->
        match run_int ~fuel:20_000 "while true do ; end;" with
        | _v -> Alcotest.fail "expected fuel exhaustion"
        | exception Asl.Interp.Runtime_error _ -> ());
    tc "send collects signals" (fun () ->
        let store = Asl.Store.create () in
        let interp = Asl.Interp.create store in
        let _r =
          Asl.Interp.run_source interp "send go(1); send stop() to null;"
        in
        match Asl.Interp.drain_signals interp with
        | [ s1; s2 ] ->
          check Alcotest.string "go" "go" s1.Asl.Interp.sig_name;
          check Alcotest.string "stop" "stop" s2.Asl.Interp.sig_name;
          check Alcotest.int "drained" 0
            (List.length (Asl.Interp.drain_signals interp))
        | _other -> Alcotest.fail "two signals expected");
    tc "eval_guard" (fun () ->
        let store = Asl.Store.create () in
        let interp = Asl.Interp.create store in
        check Alcotest.bool "true" true
          (Asl.Interp.eval_guard ~params:[ ("x", Asl.Value.V_int 5) ] interp
             "x > 3");
        check Alcotest.bool "false" false
          (Asl.Interp.eval_guard ~params:[ ("x", Asl.Value.V_int 2) ] interp
             "x > 3"));
    tc "params are visible" (fun () ->
        check Alcotest.bool "sum" true
          (run_int
             ~params:[ ("a", Asl.Value.V_int 2); ("b", Asl.Value.V_int 3) ]
             "return a + b;"
          = Some (Asl.Value.V_int 5)));
    tc "comparison across int and real" (fun () ->
        check Alcotest.bool "eq" true
          (run_int "return 2 = 2.0;" = Some (Asl.Value.V_bool true)));
  ]

(* differential property: random integer expressions evaluate like a
   reference evaluator written directly in OCaml *)
let gen_int_expr =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      if depth = 0 then map (fun n -> Asl.Ast.Int_lit n) (int_range (-20) 20)
      else
        frequency
          [
            (2, map (fun n -> Asl.Ast.Int_lit n) (int_range (-20) 20));
            ( 3,
              map3
                (fun op a b -> Asl.Ast.Binop (op, a, b))
                (oneofl [ Asl.Ast.Add; Asl.Ast.Sub; Asl.Ast.Mul ])
                (self (depth - 1))
                (self (depth - 1)) );
            (1, map (fun a -> Asl.Ast.Unop (Asl.Ast.Neg, a)) (self (depth - 1)));
          ])
    3

let rec reference_eval (e : Asl.Ast.expr) =
  match e with
  | Asl.Ast.Int_lit n -> n
  | Asl.Ast.Unop (Asl.Ast.Neg, a) -> -reference_eval a
  | Asl.Ast.Binop (Asl.Ast.Add, a, b) -> reference_eval a + reference_eval b
  | Asl.Ast.Binop (Asl.Ast.Sub, a, b) -> reference_eval a - reference_eval b
  | Asl.Ast.Binop (Asl.Ast.Mul, a, b) -> reference_eval a * reference_eval b
  | _other -> failwith "unexpected node"

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"interpreter agrees with reference arithmetic"
         ~count:300 (QCheck.make gen_int_expr)
         (fun e ->
           let store = Asl.Store.create () in
           let interp = Asl.Interp.create store in
           Asl.Interp.eval interp e = Asl.Value.V_int (reference_eval e)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"lexer raises nothing but Lex_error" ~count:1000
         (QCheck.make
            QCheck.Gen.(
              string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 60)))
         (fun src ->
           match Asl.Lexer.tokenize src with
           | _toks -> true
           | exception Asl.Lexer.Lex_error _ -> true));
  ]

let () =
  Alcotest.run "asl"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("typecheck", typecheck_tests);
      ("interp", interp_tests);
      ("properties", property_tests);
    ]
