(* Differential tests for the compiled discrete-event engine: under
   identical stimulus, Dsim.Fast must agree with the reference
   interpreter Dsim.Sim value-for-value (byte-equal snapshots), the
   waveform renderers must produce byte-identical output over either
   engine, and the engine's telemetry counters must stay monotone. *)

open Hdl

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Seeded random modules: pure single-driver comb processes over
   earlier-declared names (acyclic by construction), plus one clocked
   process with synchronous reset. *)

let rand_ty rng =
  match Workload.Prng.int rng 3 with
  | 0 -> Htype.Bit
  | 1 -> Htype.Unsigned (Workload.Prng.range rng 2 8)
  | _ -> Htype.Unsigned (Workload.Prng.range rng 9 16)

let binops =
  [
    Expr.And; Expr.Or; Expr.Xor; Expr.Add; Expr.Sub; Expr.Mul; Expr.Eq;
    Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Shl; Expr.Shr;
  ]

let rec rand_expr rng avail depth =
  let leaf () =
    if Workload.Prng.bool rng then Expr.Ref (Workload.Prng.pick rng avail)
    else Expr.of_int ~width:8 (Workload.Prng.int rng 256)
  in
  if depth <= 0 then leaf ()
  else (
    let sub () = rand_expr rng avail (depth - 1) in
    match Workload.Prng.int rng 10 with
    | 0 | 1 -> leaf ()
    | 2 -> Expr.Unop (Expr.Not, sub ())
    | 3 ->
      let op =
        if Workload.Prng.bool rng then Expr.Reduce_or else Expr.Reduce_and
      in
      Expr.Unop (op, sub ())
    | 4 -> Expr.Mux (sub (), sub (), sub ())
    | 5 ->
      let lo = Workload.Prng.int rng 6 in
      let hi = lo + Workload.Prng.int rng 5 in
      Expr.Slice (sub (), hi, lo)
    | 6 -> Expr.Concat (sub (), sub ())
    | 7 -> Expr.Resize (sub (), Workload.Prng.range rng 1 12)
    | _n -> Expr.Binop (Workload.Prng.pick rng binops, sub (), sub ()))

let random_module seed =
  let rng = Workload.Prng.create seed in
  let inputs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "in%d" i, rand_ty rng))
  in
  let regs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "r%d" i, rand_ty rng))
  in
  let base = List.map fst inputs @ List.map fst regs in
  let n_wire = Workload.Prng.range rng 1 4 in
  let rec wires acc avail k =
    if k = 0 then List.rev acc
    else (
      let name = Printf.sprintf "w%d" (n_wire - k) in
      let ty = rand_ty rng in
      let e = rand_expr rng avail 3 in
      wires ((name, ty, e) :: acc) (name :: avail) (k - 1))
  in
  let ws = wires [] base n_wire in
  let seq_body =
    List.map (fun (r, _) -> Stmt.Assign (r, rand_expr rng base 3)) regs
  in
  let reset_body =
    List.map (fun (r, _) -> Stmt.Assign (r, Expr.of_int 0)) regs
  in
  Module_.make
    ~ports:
      (Module_.input "clk" Htype.Bit
       :: Module_.input "rst" Htype.Bit
       :: List.map (fun (n, ty) -> Module_.input n ty) inputs)
    ~signals:
      (List.map
         (fun (n, ty) ->
           Module_.signal ~init:(Workload.Prng.int rng 16) n ty)
         regs
       @ List.map (fun (n, ty, _) -> Module_.signal n ty) ws)
    ~processes:
      (Module_.seq_process
         ~reset:("rst", reset_body)
         ~name:"p_seq" ~clock:"clk" seq_body
       :: List.mapi
            (fun i (n, _, e) ->
              Module_.comb_process
                ~name:(Printf.sprintf "p_w%d" i)
                [ Stmt.Assign (n, e) ])
            ws)
    "rand"

(* Two clocked processes driving the SAME registers on the same edge:
   process declaration order decides the winner in both engines, and
   the commit phase must walk declaration order — not hash-table
   internals — or the engines drift apart (regression for the
   [Sim.clock_edge] commit-order bug). *)
let conflicting_writers_module seed =
  let rng = Workload.Prng.create (seed lxor 0x7a11) in
  let inputs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "in%d" i, rand_ty rng))
  in
  let regs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "r%d" i, rand_ty rng))
  in
  let base = List.map fst inputs @ List.map fst regs in
  let body () =
    List.map (fun (r, _) -> Stmt.Assign (r, rand_expr rng base 3)) regs
  in
  let reset_body =
    List.map (fun (r, _) -> Stmt.Assign (r, Expr.of_int 0)) regs
  in
  Module_.make
    ~ports:
      (Module_.input "clk" Htype.Bit
       :: Module_.input "rst" Htype.Bit
       :: List.map (fun (n, ty) -> Module_.input n ty) inputs)
    ~signals:
      (List.map
         (fun (n, ty) ->
           Module_.signal ~init:(Workload.Prng.int rng 16) n ty)
         regs)
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", reset_body)
          ~name:"p_seq_a" ~clock:"clk" (body ());
        Module_.seq_process ~name:"p_seq_b" ~clock:"clk" (body ());
      ]
    "conflict"

(* Drive both engines with the identical random stimulus, asserting
   byte-equal snapshots after every step and monotone fast-engine
   counters throughout. *)
let differential_run seed m steps =
  let rng = Workload.Prng.create (seed lxor 0x5f5f) in
  let sim = Dsim.Sim.create m in
  let fast = Dsim.Fast.create m in
  let inputs =
    List.filter_map
      (fun (p : Module_.port) ->
        match p.Module_.port_dir with
        | Module_.Input ->
          if p.Module_.port_name = "clk" then None
          else Some p.Module_.port_name
        | Module_.Output -> None)
      m.Module_.mod_ports
  in
  let last = ref (0, 0, 0) in
  let monotone = ref true in
  if Dsim.Sim.snapshot sim <> Dsim.Fast.snapshot fast then
    Alcotest.failf "snapshots diverge at create (seed %d)" seed;
  for step = 1 to steps do
    (match Workload.Prng.int rng 3 with
     | 0 ->
       let name = Workload.Prng.pick rng inputs in
       let v = Workload.Prng.int rng 65536 in
       Dsim.Sim.set_input sim name v;
       Dsim.Fast.set_input fast name v
     | 1 ->
       Dsim.Sim.clock_edge sim "clk";
       Dsim.Fast.clock_edge fast "clk"
     | _n ->
       let drive =
         List.filter_map
           (fun name ->
             if Workload.Prng.bool rng then
               Some (name, Workload.Prng.int rng 65536)
             else None)
           inputs
       in
       Dsim.Sim.cycle ~inputs:drive sim "clk";
       Dsim.Fast.cycle ~inputs:drive fast "clk");
    if Dsim.Sim.snapshot sim <> Dsim.Fast.snapshot fast then
      Alcotest.failf "snapshots diverge at step %d (seed %d)" step seed;
    let now =
      ( Dsim.Fast.events fast,
        Dsim.Fast.delta_cycles fast,
        Dsim.Fast.skipped_evals fast )
    in
    let (e0, d0, s0) = !last and (e1, d1, s1) = now in
    if e1 < e0 || d1 < d0 || s1 < s0 then monotone := false;
    last := now
  done;
  if not !monotone then
    Alcotest.failf "telemetry counters regressed (seed %d)" seed;
  true

let qcheck_random_modules =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"random modules: Fast snapshots byte-equal Sim"
       QCheck.(int_range 0 100_000)
       (fun seed -> differential_run seed (random_module seed) 30))

(* Compiled FSMs (Statechart.Flatten |> Codegen.Fsm_compile) driven by
   random event strobes must agree between the engines too — this is
   the module shape the --rtl CLI path and examples run. *)
let qcheck_conflicting_writers =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"conflicting same-edge writers: Fast snapshots byte-equal Sim"
       QCheck.(int_range 0 100_000)
       (fun seed -> differential_run seed (conflicting_writers_module seed) 30))

let qcheck_fsm_modules =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"compiled FSMs: Fast snapshots byte-equal Sim"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let sm =
           Workload.Gen_statechart.flat ~seed ~states:5 ~events:3
         in
         match Statechart.Flatten.flatten sm with
         | Error _ -> true
         | Ok flat -> (
           match Codegen.Fsm_compile.compile flat with
           | Error _ -> true
           | Ok hmod ->
             let sim = Dsim.Sim.create hmod in
             let fast = Dsim.Fast.create hmod in
             let strobe engine_set edge engine_clr ev =
               let port = Codegen.Fsm_compile.event_input ev in
               engine_set port 1;
               edge ();
               engine_clr port 0
             in
             Dsim.Sim.set_input sim "rst" 1;
             Dsim.Fast.set_input fast "rst" 1;
             Dsim.Sim.clock_edge sim "clk";
             Dsim.Fast.clock_edge fast "clk";
             Dsim.Sim.set_input sim "rst" 0;
             Dsim.Fast.set_input fast "rst" 0;
             List.iter
               (fun ev ->
                 strobe (Dsim.Sim.set_input sim)
                   (fun () -> Dsim.Sim.clock_edge sim "clk")
                   (Dsim.Sim.set_input sim) ev;
                 strobe (Dsim.Fast.set_input fast)
                   (fun () -> Dsim.Fast.clock_edge fast "clk")
                   (Dsim.Fast.set_input fast) ev;
                 if Dsim.Sim.snapshot sim <> Dsim.Fast.snapshot fast then
                   Alcotest.failf "FSM snapshots diverge (seed %d)" seed;
                 if
                   Dsim.Sim.get_enum sim "state"
                   <> Dsim.Fast.get_enum fast "state"
                 then Alcotest.failf "FSM states diverge (seed %d)" seed)
               (Workload.Gen_statechart.event_sequence ~seed ~length:25 3);
             true)))

(* ------------------------------------------------------------------ *)
(* Fixtures shared with test_dsim *)

let counter_module () =
  Module_.make
    ~ports:
      [
        Module_.input "clk" Htype.Bit;
        Module_.input "rst" Htype.Bit;
        Module_.input "en" Htype.Bit;
        Module_.output "q" (Htype.Unsigned 4);
      ]
    ~signals:[ Module_.signal ~init:0 "cnt" (Htype.Unsigned 4) ]
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", [ Stmt.Assign ("cnt", Expr.of_int ~width:4 0) ])
          ~name:"p_cnt" ~clock:"clk"
          [
            Stmt.If
              ( Expr.(Ref "en" ==: one),
                [ Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1)) ],
                [] );
          ];
        Module_.comb_process ~name:"p_out" [ Stmt.Assign ("q", Expr.Ref "cnt") ];
      ]
    "counter"

let engine_tests =
  [
    tc "counter behaves identically on the fast engine" (fun () ->
        let fast = Dsim.Fast.create (counter_module ()) in
        Dsim.Fast.set_input fast "en" 1;
        Dsim.Fast.run fast ~clock:"clk" ~cycles:5;
        check Alcotest.int "q" 5 (Dsim.Fast.get fast "q");
        Dsim.Fast.set_input fast "rst" 1;
        Dsim.Fast.clock_edge fast "clk";
        check Alcotest.int "reset" 0 (Dsim.Fast.get fast "q");
        check Alcotest.bool "acyclic comb logic is levelized" true
          (Dsim.Fast.levelized fast));
    tc "uart soc loopback byte matches the reference" (fun () ->
        let flat =
          Hdl.Elaborate.flatten
            (Iplib.Soc.design ~name:"soc"
               [ ("tx", Iplib.Cores.uart_tx ()); ("rx", Iplib.Cores.uart_rx ()) ])
        in
        let sim = Dsim.Sim.create flat in
        let fast = Dsim.Fast.create flat in
        let both_set name v =
          Dsim.Sim.set_input sim name v;
          Dsim.Fast.set_input fast name v
        in
        let both_edge () =
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Fast.clock_edge fast "clk"
        in
        both_set "rst" 1;
        both_edge ();
        both_set "rst" 0;
        both_set "rx_rxd" 1;
        both_edge ();
        both_set "tx_data" 0xA5;
        both_set "tx_start" 1;
        for _ = 1 to 16 do
          both_set "rx_rxd" (Dsim.Sim.get sim "tx_txd");
          both_edge ();
          both_set "tx_start" 0
        done;
        check
          Alcotest.(list (pair string int))
          "snapshots" (Dsim.Sim.snapshot sim) (Dsim.Fast.snapshot fast));
    tc "latch-style self-reading comb falls back and still agrees"
      (fun () ->
        (* q reads itself: the comb dependency graph has a self-loop,
           so levelization must refuse and the worklist fallback run *)
        let m =
          Module_.make
            ~ports:
              [
                Module_.input "en" Htype.Bit;
                Module_.input "d" (Htype.Unsigned 4);
              ]
            ~signals:[ Module_.signal "q" (Htype.Unsigned 4) ]
            ~processes:
              [
                Module_.comb_process ~name:"p_latch"
                  [
                    Stmt.Assign
                      ("q", Expr.Mux (Expr.Ref "en", Expr.Ref "d", Expr.Ref "q"));
                  ];
              ]
            "latch"
        in
        let sim = Dsim.Sim.create m in
        let fast = Dsim.Fast.create m in
        check Alcotest.bool "not levelized" false (Dsim.Fast.levelized fast);
        List.iter
          (fun (en, d) ->
            Dsim.Sim.set_input sim "en" en;
            Dsim.Fast.set_input fast "en" en;
            Dsim.Sim.set_input sim "d" d;
            Dsim.Fast.set_input fast "d" d;
            check
              Alcotest.(list (pair string int))
              "latch snapshot" (Dsim.Sim.snapshot sim)
              (Dsim.Fast.snapshot fast))
          [ (1, 5); (0, 9); (1, 9); (1, 3); (0, 12) ]);
    tc "unstable comb loop raises on both engines" (fun () ->
        let m =
          Module_.make
            ~signals:[ Module_.signal "x" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [ Stmt.Assign ("x", Expr.Unop (Expr.Not, Expr.Ref "x")) ];
              ]
            "osc"
        in
        (match Dsim.Sim.create m with
         | _sim -> Alcotest.fail "reference should not settle"
         | exception Dsim.Sim.Simulation_error _ -> ());
        match Dsim.Fast.create m with
        | _fast -> Alcotest.fail "fast engine should not settle"
        | exception Dsim.Sim.Simulation_error _ -> ());
    tc "settle budget is configurable and names unstable signals" (fun () ->
        let m =
          Module_.make
            ~signals:[ Module_.signal "x" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [ Stmt.Assign ("x", Expr.Unop (Expr.Not, Expr.Ref "x")) ];
              ]
            "osc"
        in
        (match Dsim.Fast.create ~settle_budget:7 m with
         | _fast -> Alcotest.fail "should not settle"
         | exception Dsim.Sim.Simulation_error msg ->
           let contains needle =
             let nh = String.length msg and nn = String.length needle in
             let rec at i =
               i + nn <= nh && (String.sub msg i nn = needle || at (i + 1))
             in
             at 0
           in
           check Alcotest.bool "budget in message" true (contains "7 rounds");
           check Alcotest.bool "signal named" true (contains "x"));
        match Dsim.Fast.create ~settle_budget:0 (counter_module ()) with
        | _fast -> Alcotest.fail "zero budget must be rejected"
        | exception Invalid_argument _ -> ());
    tc "unknown names and enum literals fail at compile time" (fun () ->
        let ghost_read =
          Module_.make
            ~signals:[ Module_.signal "y" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [ Stmt.Assign ("y", Expr.Ref "ghost") ];
              ]
            "bad"
        in
        (match Dsim.Fast.create ghost_read with
         | _fast -> Alcotest.fail "expected Simulation_error"
         | exception Dsim.Sim.Simulation_error _ -> ());
        let ghost_lit =
          Module_.make
            ~signals:[ Module_.signal "y" (Htype.Enum [ "A"; "B" ]) ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [ Stmt.Assign ("y", Expr.Enum_lit "GHOST") ];
              ]
            "bad_lit"
        in
        match Dsim.Fast.create ghost_lit with
        | _fast -> Alcotest.fail "expected Simulation_error"
        | exception Dsim.Sim.Simulation_error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* 62-bit masking regression: (1 lsl w) - 1 overflows the native-int
   sign for w >= 62, which used to corrupt Slice/Resize of wide
   arithmetic (0 - 1 came back as max_int instead of -1). *)

let wide_tests =
  let wide = Htype.Unsigned 62 in
  let m =
    Module_.make
      ~ports:[ Module_.input "a" wide; Module_.input "b" wide ]
      ~signals:[ Module_.signal "res" wide; Module_.signal "sli" wide ]
      ~processes:
        [
          Module_.comb_process ~name:"p_res"
            [
              Stmt.Assign
                ("res", Expr.Resize (Expr.Binop (Expr.Sub, Expr.Ref "a", Expr.Ref "b"), 62));
            ];
          Module_.comb_process ~name:"p_sli"
            [
              Stmt.Assign
                ("sli", Expr.Slice (Expr.Binop (Expr.Sub, Expr.Ref "a", Expr.Ref "b"), 61, 0));
            ];
        ]
      "wide"
  in
  [
    tc "62-bit resize of 0-1 is all-ones on the reference engine" (fun () ->
        let sim = Dsim.Sim.create m in
        Dsim.Sim.set_input sim "b" 1;
        check Alcotest.int "resize" (-1) (Dsim.Sim.get sim "res");
        check Alcotest.int "slice" (-1) (Dsim.Sim.get sim "sli"));
    tc "62-bit resize of 0-1 is all-ones on the fast engine" (fun () ->
        let fast = Dsim.Fast.create m in
        Dsim.Fast.set_input fast "b" 1;
        check Alcotest.int "resize" (-1) (Dsim.Fast.get fast "res");
        check Alcotest.int "slice" (-1) (Dsim.Fast.get fast "sli"));
    tc "mask_bits guards the wide widths" (fun () ->
        check Alcotest.int "w=4" 15 (Dsim.Netlist.mask_bits 4);
        check Alcotest.int "w=61" ((1 lsl 61) - 1) (Dsim.Netlist.mask_bits 61);
        check Alcotest.int "w=62" (-1) (Dsim.Netlist.mask_bits 62);
        check Alcotest.int "w=63" (-1) (Dsim.Netlist.mask_bits 63));
  ]

(* ------------------------------------------------------------------ *)
(* Renderers over either engine *)

let render_tests =
  [
    tc "vcd output is byte-identical across engines" (fun () ->
        let drive set edge sample =
          set "en" 1;
          for t = 0 to 7 do
            edge ();
            sample t
          done
        in
        let sim = Dsim.Sim.create (counter_module ()) in
        let vref = Dsim.Vcd.create sim in
        drive (Dsim.Sim.set_input sim)
          (fun () -> Dsim.Sim.clock_edge sim "clk")
          (fun t -> Dsim.Vcd.sample vref ~time:t);
        let fast = Dsim.Fast.create (counter_module ()) in
        let vfast = Dsim.Vcd.create_fast fast in
        drive (Dsim.Fast.set_input fast)
          (fun () -> Dsim.Fast.clock_edge fast "clk")
          (fun t -> Dsim.Vcd.sample vfast ~time:t);
        check Alcotest.string "vcd" (Dsim.Vcd.render vref)
          (Dsim.Vcd.render vfast));
    tc "timing diagrams are byte-identical across engines" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        let tref = Dsim.Timing.create ~signals:[ "en"; "q" ] sim in
        Dsim.Sim.set_input sim "en" 1;
        for _ = 1 to 5 do
          Dsim.Timing.sample tref;
          Dsim.Sim.clock_edge sim "clk"
        done;
        let fast = Dsim.Fast.create (counter_module ()) in
        let tfast = Dsim.Timing.create_fast ~signals:[ "en"; "q" ] fast in
        Dsim.Fast.set_input fast "en" 1;
        for _ = 1 to 5 do
          Dsim.Timing.sample tfast;
          Dsim.Fast.clock_edge fast "clk"
        done;
        check Alcotest.string "timing" (Dsim.Timing.render tref)
          (Dsim.Timing.render tfast));
    tc "timing rejects unknown signals on the fast engine" (fun () ->
        let fast = Dsim.Fast.create (counter_module ()) in
        match Dsim.Timing.create_fast ~signals:[ "ghost" ] fast with
        | _tm -> Alcotest.fail "expected Simulation_error"
        | exception Dsim.Sim.Simulation_error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let telemetry_tests =
  [
    tc "fast engine registers all three dsim counters" (fun () ->
        let reg = Telemetry.Metrics.create () in
        let fast = Dsim.Fast.create ~metrics:reg (counter_module ()) in
        Dsim.Fast.set_input fast "en" 1;
        Dsim.Fast.run fast ~clock:"clk" ~cycles:20;
        let value name =
          Telemetry.Metrics.counter_value (Telemetry.Metrics.counter reg name)
        in
        check Alcotest.int "events counter" (Dsim.Fast.events fast)
          (value "dsim.events");
        check Alcotest.int "delta counter" (Dsim.Fast.delta_cycles fast)
          (value "dsim.delta_cycles");
        check Alcotest.int "skipped counter" (Dsim.Fast.skipped_evals fast)
          (value "dsim.skipped_evals");
        check Alcotest.bool "events counted" true (Dsim.Fast.events fast > 0);
        check Alcotest.bool "deltas counted" true
          (Dsim.Fast.delta_cycles fast > 0));
    tc "steady state skips comb evaluations" (fun () ->
        let fast = Dsim.Fast.create (counter_module ()) in
        (* en stays 0: cnt never changes, so the comb process q := cnt
           must not be re-evaluated by the settling after each edge *)
        let s0 = Dsim.Fast.skipped_evals fast in
        Dsim.Fast.run fast ~clock:"clk" ~cycles:10;
        check Alcotest.bool "skips accumulate" true
          (Dsim.Fast.skipped_evals fast > s0));
    tc "snapshot matches signals and get" (fun () ->
        let fast = Dsim.Fast.create (counter_module ()) in
        let snap = Dsim.Fast.snapshot fast in
        let sorted =
          List.sort (fun (a, _) (b, _) -> String.compare a b) snap
        in
        check Alcotest.bool "sorted by name" true (snap = sorted);
        List.iter
          (fun (name, v) ->
            check Alcotest.int name v (Dsim.Fast.get fast name))
          snap;
        check Alcotest.int "one entry per signal"
          (List.length (Dsim.Fast.signals fast))
          (List.length snap));
  ]

let () =
  Alcotest.run "dsim_fast"
    [
      ( "differential",
        [
          qcheck_random_modules;
          qcheck_conflicting_writers;
          qcheck_fsm_modules;
        ] );
      ("engine", engine_tests);
      ("wide", wide_tests);
      ("render", render_tests);
      ("telemetry", telemetry_tests);
    ]
