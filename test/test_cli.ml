(* Hostile-input hardening of the socuml CLI: every subcommand driven
   against corrupt fixtures (missing path, directory-as-file, truncated
   XMI, garbage bytes, empty file) must print a one-line diagnostic and
   exit 1 — never an exception trace, never cmdliner's exit 124. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let exe =
  (* tests execute from the build context's test directory *)
  let candidates =
    [ "../bin/socuml.exe"; "_build/default/bin/socuml.exe"; "bin/socuml.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "socuml.exe not found next to the test binary"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let tmp = Filename.get_temp_dir_name ()

(* Run one fully-formed argument list; return (exit_code, stderr). *)
let run_cli args =
  let err = Filename.temp_file "socuml_cli" ".err" in
  let cmd =
    Printf.sprintf "%s %s >/dev/null 2>%s"
      (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stderr = read_file err in
  Sys.remove err;
  (code, stderr)

(* Every subcommand with its required arguments around the model path. *)
let subcommands model =
  [
    [ "validate"; model ]; [ "lint"; model ]; [ "info"; model ];
    [ "gen"; model; "vhdl" ]; [ "simulate"; model ]; [ "trace"; model ];
    [ "partition"; model ]; [ "analyze"; model ]; [ "inject"; model ];
    [ "pack"; model ];
  ]

let assert_graceful label model =
  List.iter
    (fun args ->
      let sub = String.concat " " args in
      let code, stderr = run_cli args in
      if code <> 1 then
        Alcotest.failf "%s on %s: exit %d, want 1 (stderr: %s)" sub label code
          stderr;
      if String.trim stderr = "" then
        Alcotest.failf "%s on %s: no diagnostic on stderr" sub label;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i =
          i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
        in
        at 0
      in
      List.iter
        (fun marker ->
          if contains stderr marker then
            Alcotest.failf "%s on %s: exception trace leaked: %s" sub label
              stderr)
        [ "Fatal error"; "Raised at"; "Raised by"; "Called from" ])
    (subcommands model)

let corrupt_fixture_tests =
  [
    tc "nonexistent path" (fun () ->
        assert_graceful "missing file"
          (Filename.concat tmp "no_such_model_socuml.xmi"));
    tc "directory passed as model" (fun () ->
        let dir = Filename.concat tmp "socuml_cli_dir.xmi" in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        assert_graceful "directory" dir);
    tc "empty file" (fun () ->
        assert_graceful "empty file"
          (write_file (Filename.concat tmp "socuml_cli_empty.xmi") ""));
    tc "garbage bytes" (fun () ->
        assert_graceful "garbage"
          (write_file
             (Filename.concat tmp "socuml_cli_garbage.xmi")
             "\x00\xffnot xml at all \x01\x02<<<"));
    tc "truncated xmi" (fun () ->
        assert_graceful "truncated"
          (write_file
             (Filename.concat tmp "socuml_cli_trunc.xmi")
             "<?xml version=\"1.0\"?>\n<xmi:XMI xmlns:xmi=\"http://www.omg\
              .org/XMI\"><uml:Model name=\"t"));
    tc "well-formed xml that is not a model" (fun () ->
        assert_graceful "wrong schema"
          (write_file
             (Filename.concat tmp "socuml_cli_schema.xmi")
             "<?xml version=\"1.0\"?><root><child attr=\"1\"/></root>"));
  ]

(* Binary snapshots must be exactly as hard to crash as XMI: every
   subcommand gets the same one-line-diagnostic-and-exit-1 treatment on
   truncated, corrupt and future-version snapshot bytes, and accepts a
   healthy `.sumb` transparently. *)
let snapshot_tests =
  let packed_demo () =
    let out = Filename.concat tmp "socuml_cli_snap" in
    let code =
      Sys.command
        (Printf.sprintf "%s demo --out %s >/dev/null 2>&1"
           (Filename.quote exe) (Filename.quote out))
    in
    check Alcotest.int "demo exit" 0 code;
    let model = Filename.concat out "demo_soc.xmi" in
    let code, stderr = run_cli [ "pack"; model ] in
    if code <> 0 then
      Alcotest.failf "pack: exit %d (stderr: %s)" code stderr;
    Filename.concat out "demo_soc.sumb"
  in
  [
    tc "truncated snapshot header" (fun () ->
        assert_graceful "truncated header"
          (write_file (Filename.concat tmp "socuml_cli_hdr.sumb") "\xd3SU"));
    tc "future snapshot version" (fun () ->
        let snap = read_file (packed_demo ()) in
        let data = Bytes.of_string snap in
        Bytes.set data 5 '\x63';
        assert_graceful "future version"
          (write_file
             (Filename.concat tmp "socuml_cli_ver.sumb")
             (Bytes.to_string data)));
    tc "snapshot truncated mid-stream" (fun () ->
        let snap = read_file (packed_demo ()) in
        assert_graceful "mid-stream truncation"
          (write_file
             (Filename.concat tmp "socuml_cli_cut.sumb")
             (String.sub snap 0 (String.length snap / 2))));
    tc "snapshot with trailing bytes" (fun () ->
        let snap = read_file (packed_demo ()) in
        assert_graceful "trailing bytes"
          (write_file
             (Filename.concat tmp "socuml_cli_tail.sumb")
             (snap ^ "\x00\x01")));
    tc "every subcommand accepts a healthy snapshot" (fun () ->
        let snap = packed_demo () in
        List.iter
          (fun args ->
            let code, stderr = run_cli args in
            if code <> 0 then
              Alcotest.failf "%s: exit %d (stderr: %s)"
                (String.concat " " args)
                code stderr)
          [
            [ "validate"; snap ]; [ "lint"; snap ]; [ "info"; snap ];
            [ "gen"; snap; "vhdl" ]; [ "simulate"; snap ];
            [ "partition"; snap ]; [ "analyze"; snap ];
            [ "inject"; snap; "--seed"; "1"; "--faults"; "3" ];
          ]);
    tc "packing a snapshot reproduces it byte-for-byte" (fun () ->
        let snap = packed_demo () in
        let again = Filename.concat tmp "socuml_cli_repack.sumb" in
        let code, stderr = run_cli [ "pack"; snap; "-o"; again ] in
        if code <> 0 then
          Alcotest.failf "re-pack: exit %d (stderr: %s)" code stderr;
        check Alcotest.string "identical bytes" (read_file snap)
          (read_file again));
  ]

(* A healthy model must still work after the hardening: generate the
   demo SoC once and push it through the read-only subcommands. *)
let demo_roundtrip_tests =
  [
    tc "demo model still passes through every subcommand" (fun () ->
        let out = Filename.concat tmp "socuml_cli_demo" in
        let code =
          Sys.command
            (Printf.sprintf "%s demo --out %s >/dev/null 2>&1"
               (Filename.quote exe) (Filename.quote out))
        in
        check Alcotest.int "demo exit" 0 code;
        let model = Filename.concat out "demo_soc.xmi" in
        List.iter
          (fun args ->
            let code, stderr = run_cli args in
            if code <> 0 then
              Alcotest.failf "%s: exit %d (stderr: %s)"
                (String.concat " " args)
                code stderr)
          [
            [ "validate"; model ]; [ "lint"; model ]; [ "info"; model ];
            [ "analyze"; model ];
            [ "inject"; model; "--seed"; "1"; "--faults"; "3" ];
          ]);
  ]

(* Rule-selector hygiene: bogus --only/--disable strings are typos and
   must be rejected with a one-line diagnostic before any model loads;
   valid family selectors keep working; `socuml rules` documents the
   accepted codes in both formats. *)
let selector_tests =
  let demo_model () =
    let out = Filename.concat tmp "socuml_cli_sel" in
    let code =
      Sys.command
        (Printf.sprintf "%s demo --out %s >/dev/null 2>&1"
           (Filename.quote exe) (Filename.quote out))
    in
    check Alcotest.int "demo exit" 0 code;
    Filename.concat out "demo_soc.xmi"
  in
  [
    tc "lint rejects an unknown selector" (fun () ->
        let model = demo_model () in
        let code, stderr = run_cli [ "lint"; "--only"; "DF-99"; model ] in
        check Alcotest.int "exit" 1 code;
        check Alcotest.bool "one-line diagnostic" true
          (String.trim stderr <> ""
          && not (String.contains (String.trim stderr) '\n')));
    tc "analyze rejects an unknown selector" (fun () ->
        let model = demo_model () in
        let code, stderr =
          run_cli [ "analyze"; "--disable"; "BOGUS"; model ]
        in
        check Alcotest.int "exit" 1 code;
        check Alcotest.bool "diagnostic names the selector" true
          (String.trim stderr <> "");
        (* rejection happens before the model is read *)
        let code, _ =
          run_cli
            [ "lint"; "--only"; "NOPE";
              Filename.concat tmp "no_such_model_socuml.xmi" ]
        in
        check Alcotest.int "rejected before load" 1 code);
    tc "family selectors still work" (fun () ->
        let model = demo_model () in
        List.iter
          (fun args ->
            let code, stderr = run_cli args in
            if code <> 0 then
              Alcotest.failf "%s: exit %d (stderr: %s)"
                (String.concat " " args)
                code stderr)
          [
            [ "lint"; "--only"; "ASL"; model ];
            [ "lint"; "--only"; "DF"; "--disable"; "DF-02"; model ];
            [ "analyze"; "--only"; "SC,DF"; model ];
          ]);
    tc "rules prints the table in both formats" (fun () ->
        List.iter
          (fun args ->
            let code, stderr = run_cli args in
            if code <> 0 then
              Alcotest.failf "%s: exit %d (stderr: %s)"
                (String.concat " " args)
                code stderr)
          [ [ "rules" ]; [ "rules"; "--format"; "json" ] ]);
  ]

(* The serve daemon under the same hostile-input discipline as the
   one-shot subcommands: every malformed request line must answer
   exactly one JSON error line, never kill the process, and EOF must
   end the loop cleanly.  (In-process protocol coverage lives in
   test_serve.ml; this drives the real subprocess over a pipe.) *)
let serve_tests =
  let run_serve requests =
    let req =
      write_file
        (Filename.concat tmp "socuml_cli_serve.req")
        (String.concat "\n" requests ^ "\n")
    in
    let out = Filename.concat tmp "socuml_cli_serve.out" in
    let code =
      Sys.command
        (Printf.sprintf "%s serve <%s >%s 2>/dev/null" (Filename.quote exe)
           (Filename.quote req) (Filename.quote out))
    in
    let body = String.trim (read_file out) in
    (code, if body = "" then [] else String.split_on_char '\n' body)
  in
  [
    tc "hostile request lines each answer one JSON line, daemon survives"
      (fun () ->
        let corrupt_snap =
          write_file
            (Filename.concat tmp "socuml_cli_serve_bad.sumb")
            "\xd3SUMBgarbage"
        in
        let oversized =
          Printf.sprintf {|{"op":"info","model":"%s"}|}
            (String.make (1024 * 1024 + 1) 'a')
        in
        let requests =
          [
            "garbage bytes";
            "[1,2,3]";
            {|{"op":"frobnicate"}|};
            {|{"op":"info"}|};
            {|{"op":"info","model":"/no/such/model.xmi"}|};
            Printf.sprintf {|{"op":"validate","model":%S}|} corrupt_snap;
            oversized;
            "";
            {|{"op":"stats"}|};
            {|{"op":"quit"}|};
          ]
        in
        let code, lines = run_serve requests in
        check Alcotest.int "daemon exit" 0 code;
        (* one response per non-blank request line *)
        check Alcotest.int "one response per request" 9 (List.length lines);
        List.iter
          (fun l ->
            check Alcotest.bool "every response is a JSON object" true
              (String.length l > 0 && l.[0] = '{'))
          lines);
    tc "EOF without quit ends the loop cleanly" (fun () ->
        let code, lines = run_serve [ {|{"op":"stats"}|} ] in
        check Alcotest.int "daemon exit" 0 code;
        check Alcotest.int "one response" 1 (List.length lines));
  ]

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle: signals, socket files, health probes             *)

(* Spawn [socuml serve] with the given extra args; returns the pid. *)
let spawn_daemon args =
  let null_in = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let null_out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: "serve" :: args))
      null_in null_out null_out
  in
  Unix.close null_in;
  Unix.close null_out;
  pid

(* Poll for a condition with a bounded wait — daemon startup/shutdown
   is asynchronous, so lifecycle assertions need a grace window. *)
let wait_for ?(timeout = 5.0) what f =
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    if f () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      loop ()
    end
  in
  loop ()

(* One request/response exchange against a daemon socket. *)
let socket_request path line =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_UNIX path);
      let msg = line ^ "\n" in
      let _n = Unix.write_substring sock msg 0 (String.length msg) in
      let ic = Unix.in_channel_of_descr sock in
      input_line ic)

let lifecycle_tests =
  [
    tc "SIGTERM drains, removes the socket file and exits 0" (fun () ->
        let path = Filename.concat tmp "socuml_cli_sigterm.sock" in
        if Sys.file_exists path then Sys.remove path;
        let pid = spawn_daemon [ "--socket"; path ] in
        wait_for "socket to appear" (fun () -> Sys.file_exists path);
        (* the daemon serves before the signal *)
        let resp = socket_request path {|{"op":"health"}|} in
        check Alcotest.bool "health answered" true
          (String.length resp > 0 && resp.[0] = '{');
        Unix.kill pid Sys.sigterm;
        let _pid, status = Unix.waitpid [] pid in
        check Alcotest.bool "clean exit" true (status = Unix.WEXITED 0);
        check Alcotest.bool "socket file removed" false
          (Sys.file_exists path));
    tc "a stale socket file is reclaimed on restart" (fun () ->
        let path = Filename.concat tmp "socuml_cli_stale.sock" in
        if Sys.file_exists path then Sys.remove path;
        (* leave a dead socket file behind, as a crashed daemon would *)
        let dead = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind dead (Unix.ADDR_UNIX path);
        Unix.close dead;
        check Alcotest.bool "stale file present" true (Sys.file_exists path);
        let pid = spawn_daemon [ "--socket"; path ] in
        wait_for "daemon to claim the stale socket" (fun () ->
            match socket_request path {|{"op":"health"}|} with
            | _resp -> true
            | exception Unix.Unix_error _ -> false
            | exception End_of_file -> false);
        ignore (socket_request path {|{"op":"quit"}|});
        let _pid, status = Unix.waitpid [] pid in
        check Alcotest.bool "clean exit" true (status = Unix.WEXITED 0);
        check Alcotest.bool "socket removed on quit" false
          (Sys.file_exists path));
    tc "a live daemon's socket is never stolen" (fun () ->
        let path = Filename.concat tmp "socuml_cli_live.sock" in
        if Sys.file_exists path then Sys.remove path;
        let pid = spawn_daemon [ "--socket"; path ] in
        wait_for "daemon to listen" (fun () ->
            match socket_request path {|{"op":"health"}|} with
            | _resp -> true
            | exception Unix.Unix_error _ -> false
            | exception End_of_file -> false);
        (* a second daemon must refuse with one diagnostic, exit 1 *)
        let code, stderr = run_cli [ "serve"; "--socket"; path ] in
        check Alcotest.int "second daemon refuses" 1 code;
        check Alcotest.bool "diagnostic names the conflict" true
          (String.length stderr > 0
          && String.index stderr '\n' = String.length stderr - 1);
        (* the probe one-shot reaches the live daemon *)
        let code, _stderr =
          run_cli [ "serve"; "--socket"; path; "--health-check" ]
        in
        check Alcotest.int "health probe exits 0" 0 code;
        ignore (socket_request path {|{"op":"quit"}|});
        ignore (Unix.waitpid [] pid));
    tc "serve refuses to replace a non-socket file" (fun () ->
        let path =
          write_file (Filename.concat tmp "socuml_cli_notasock") "data"
        in
        let code, stderr = run_cli [ "serve"; "--socket"; path ] in
        check Alcotest.int "exit 1" 1 code;
        check Alcotest.bool "one-line diagnostic" true
          (String.length stderr > 0
          && String.index stderr '\n' = String.length stderr - 1);
        check Alcotest.bool "file untouched" true (Sys.file_exists path));
    tc "health-check without a socket reports in-process" (fun () ->
        let out = Filename.concat tmp "socuml_cli_health.out" in
        let code =
          Sys.command
            (Printf.sprintf "%s serve --health-check >%s 2>/dev/null"
               (Filename.quote exe) (Filename.quote out))
        in
        check Alcotest.int "exit 0" 0 code;
        let body = String.trim (read_file out) in
        check Alcotest.bool "one JSON line" true
          (String.length body > 0
          && body.[0] = '{'
          && not (String.contains body '\n')));
  ]

let () =
  Alcotest.run "cli"
    [
      ("corrupt inputs", corrupt_fixture_tests);
      ("snapshot inputs", snapshot_tests);
      ("healthy model", demo_roundtrip_tests);
      ("rule selectors", selector_tests);
      ("serve protocol", serve_tests);
      ("serve lifecycle", lifecycle_tests);
    ]
