(* Tests for the whole-model lint subsystem: rule registry, the four
   model passes, the HDL lift, report rendering, and the acceptance
   scenario from the roadmap (one model carrying a defect per layer). *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let codes diags =
  List.sort_uniq compare
    (List.map (fun d -> d.Wfr.diag_rule) diags)

let has_code code diags = List.mem code (codes diags)

(* --- fixtures --------------------------------------------------------- *)

(* A class with an Integer attribute, a non-query op and a query op. *)
let controller () =
  Classifier.make
    ~attributes:[ Classifier.property "threshold" Dtype.Integer ]
    ~operations:
      [
        Classifier.operation
          ~params:
            [
              Classifier.parameter "x" Dtype.Integer;
              Classifier.parameter ~direction:Classifier.Return "r"
                Dtype.Integer;
            ]
          "step";
        Classifier.operation ~is_query:true
          ~params:
            [ Classifier.parameter ~direction:Classifier.Return "r"
                Dtype.Boolean ]
          "ready";
      ]
    "Controller"

let machine_with ?guard ?effect () =
  let cl = controller () in
  let a = Smachine.simple_state "A" in
  let b = Smachine.simple_state "B" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "go" ]
          ?guard ?effect ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
      ]
  in
  let sm =
    Smachine.make ~context:cl.Classifier.cl_id "M" [ region ]
  in
  let m = Model.create "m" in
  Model.add m (Model.E_classifier cl);
  Model.add m (Model.E_state_machine sm);
  m

let lint = Lint.Check.check_model

(* --- rules registry --------------------------------------------------- *)

let rules_tests =
  [
    tc "codes are unique and sorted" (fun () ->
        let cs = List.map (fun r -> r.Lint.Rules.rule_code) Lint.Rules.all in
        check (Alcotest.list Alcotest.string) "sorted unique"
          (List.sort_uniq compare cs) cs);
    tc "find" (fun () ->
        check Alcotest.bool "ASL-01" true (Lint.Rules.find "ASL-01" <> None);
        check Alcotest.bool "ZZZ-99" true (Lint.Rules.find "ZZZ-99" = None));
    tc "selection prefixes" (fun () ->
        let sel =
          Lint.Rules.selection_of_strings ~only:[ "ASL"; "SC-03" ] ()
        in
        check Alcotest.bool "ASL-02 on" true (Lint.Rules.enabled sel "ASL-02");
        check Alcotest.bool "SC-03 on" true (Lint.Rules.enabled sel "SC-03");
        check Alcotest.bool "SC-01 off" false (Lint.Rules.enabled sel "SC-01");
        let sel = Lint.Rules.selection_of_strings ~disabled:[ "HDL" ] () in
        check Alcotest.bool "HDL-05 off" false
          (Lint.Rules.enabled sel "HDL-05");
        check Alcotest.bool "ASL-01 on" true (Lint.Rules.enabled sel "ASL-01"));
    tc "unknown selectors are reported" (fun () ->
        let sel =
          Lint.Rules.selection_of_strings ~only:[ "ASL"; "BOGUS" ] ()
        in
        check (Alcotest.list Alcotest.string) "unknown" [ "BOGUS" ]
          (Lint.Rules.unknown_selectors sel));
  ]

(* --- ASL pass --------------------------------------------------------- *)

let asl_tests =
  [
    tc "well-typed guard and effect are clean" (fun () ->
        let m =
          machine_with ~guard:"e1 > self.threshold"
            ~effect:"self.threshold := e1;" ()
        in
        check (Alcotest.list Alcotest.string) "codes" [] (codes (lint m)));
    tc "guard parse error is ASL-01" (fun () ->
        let m = machine_with ~guard:"1 +" () in
        check Alcotest.bool "ASL-01" true (has_code "ASL-01" (lint m)));
    tc "non-boolean guard is ASL-02" (fun () ->
        let m = machine_with ~guard:"self.threshold" () in
        check Alcotest.bool "ASL-02" true (has_code "ASL-02" (lint m)));
    tc "unknown attribute in guard is ASL-02" (fun () ->
        let m = machine_with ~guard:"self.missing > 0" () in
        check Alcotest.bool "ASL-02" true (has_code "ASL-02" (lint m)));
    tc "non-query call in guard is ASL-03" (fun () ->
        let m = machine_with ~guard:"self.step(1) > 0" () in
        let diags = lint m in
        check Alcotest.bool "ASL-03" true (has_code "ASL-03" diags);
        check Alcotest.bool "no ASL-02" false (has_code "ASL-02" diags));
    tc "query call in guard is clean" (fun () ->
        let m = machine_with ~guard:"self.ready()" () in
        check (Alcotest.list Alcotest.string) "codes" [] (codes (lint m)));
    tc "broken effect is ASL-01" (fun () ->
        let m = machine_with ~effect:"if if" () in
        check Alcotest.bool "ASL-01" true (has_code "ASL-01" (lint m)));
    tc "operation body is checked against its class" (fun () ->
        let cl =
          Classifier.make
            ~operations:
              [ Classifier.operation ~body:"return self.ghost;" "f" ]
            "C"
        in
        let m = Model.create "m" in
        Model.add m (Model.E_classifier cl);
        check Alcotest.bool "ASL-02" true (has_code "ASL-02" (lint m)));
    tc "action bodies share one store across the activity" (fun () ->
        let a1 = Activityg.action ~body:"blocks := 64;" "produce" in
        let a2 = Activityg.action ~body:"blocks := blocks - 1;" "consume" in
        let init = Activityg.initial () in
        let final = Activityg.activity_final () in
        let id = Activityg.node_id in
        let e s t = Activityg.edge ~source:(id s) ~target:(id t) () in
        let act =
          Activityg.make "pipeline"
            [ init; a1; a2; final ]
            [ e init a1; e a1 a2; e a2 final ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity act);
        check (Alcotest.list Alcotest.string) "codes" [] (codes (lint m)));
  ]

(* --- statechart pass -------------------------------------------------- *)

let sc_tests =
  [
    tc "unreachable state is SC-01" (fun () ->
        let a = Smachine.simple_state "A" in
        let orphan = Smachine.simple_state "Orphan" in
        let init = Smachine.pseudostate Smachine.Initial in
        let region =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State orphan ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
            ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
        let diags = lint m in
        check Alcotest.bool "SC-01" true (has_code "SC-01" diags);
        check Alcotest.bool "element" true
          (List.exists
             (fun d ->
               d.Wfr.diag_element = Some orphan.Smachine.st_id)
             diags));
    tc "junction cycle is SC-02" (fun () ->
        let j1 = Smachine.pseudostate ~name:"j1" Smachine.Junction in
        let j2 = Smachine.pseudostate ~name:"j2" Smachine.Junction in
        let a = Smachine.simple_state "A" in
        let init = Smachine.pseudostate Smachine.Initial in
        let region =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.State a; Smachine.Pseudo j1;
              Smachine.Pseudo j2;
            ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
              Smachine.transition ~source:a.Smachine.st_id
                ~target:j1.Smachine.ps_id ();
              Smachine.transition ~source:j1.Smachine.ps_id
                ~target:j2.Smachine.ps_id ();
              Smachine.transition ~source:j2.Smachine.ps_id
                ~target:j1.Smachine.ps_id ();
            ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
        check Alcotest.bool "SC-02" true (has_code "SC-02" (lint m)));
    tc "overlapping transitions are SC-03" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let c = Smachine.simple_state "C" in
        let init = Smachine.pseudostate Smachine.Initial in
        let go = [ Smachine.Signal_trigger "go" ] in
        let region =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.State a; Smachine.State b;
              Smachine.State c;
            ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
              Smachine.transition ~triggers:go ~source:a.Smachine.st_id
                ~target:b.Smachine.st_id ();
              Smachine.transition ~triggers:go ~source:a.Smachine.st_id
                ~target:c.Smachine.st_id ();
            ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
        check Alcotest.bool "SC-03" true (has_code "SC-03" (lint m)));
    tc "distinct guards suppress SC-03" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let c = Smachine.simple_state "C" in
        let init = Smachine.pseudostate Smachine.Initial in
        let go = [ Smachine.Signal_trigger "go" ] in
        let region =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.State a; Smachine.State b;
              Smachine.State c;
            ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
              Smachine.transition ~triggers:go ~guard:"e1 > 0"
                ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
              Smachine.transition ~triggers:go ~guard:"e1 <= 0"
                ~source:a.Smachine.st_id ~target:c.Smachine.st_id ();
            ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
        check Alcotest.bool "no SC-03" false (has_code "SC-03" (lint m)));
    tc "composite region without initial is SC-04" (fun () ->
        let inner = Smachine.simple_state "Inner" in
        let sub_region = Smachine.region [ Smachine.State inner ] [] in
        let comp = Smachine.composite_state "Comp" [ sub_region ] in
        let init = Smachine.pseudostate Smachine.Initial in
        let region =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State comp ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:comp.Smachine.st_id ();
            ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
        check Alcotest.bool "SC-04" true (has_code "SC-04" (lint m)));
    tc "machine without initial skips SC-01" (fun () ->
        let a = Smachine.simple_state "A" in
        let region = Smachine.region [ Smachine.State a ] [] in
        let m = Model.create "m" in
        Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
        check Alcotest.bool "no SC-01" false (has_code "SC-01" (lint m)));
  ]

(* --- activity pass ---------------------------------------------------- *)

(* decision feeds only one branch of a two-input join: structural
   deadlock, and the join (plus everything after it) can never fire. *)
let deadlocking_activity () =
  let init = Activityg.initial () in
  let d = Activityg.decision "d" in
  let a1 = Activityg.action "a1" in
  let a2 = Activityg.action "a2" in
  let j = Activityg.join "j" in
  let final = Activityg.activity_final () in
  let id = Activityg.node_id in
  let e s t = Activityg.edge ~source:(id s) ~target:(id t) () in
  Activityg.make "broken"
    [ init; d; a1; a2; j; final ]
    [ e init d; e d a1; e d a2; e a1 j; e a2 j; e j final ]

let act_tests =
  [
    tc "sound series-parallel activity is clean" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_activity
             (Workload.Gen_activity.series_parallel ~seed:5 ~size:12
                ~max_width:3));
        check (Alcotest.list Alcotest.string) "codes" [] (codes (lint m)));
    tc "decision into join deadlocks (ACT-01)" (fun () ->
        let m = Model.create "m" in
        Model.add m (Model.E_activity (deadlocking_activity ()));
        let diags = lint m in
        check Alcotest.bool "ACT-01" true (has_code "ACT-01" diags);
        check Alcotest.bool "ACT-03 for the dead join" true
          (has_code "ACT-03" diags));
    tc "token-generating loop is ACT-02" (fun () ->
        (* merge-based loop around a fork: every lap leaves one extra
           token on the fork's exit edge *)
        let init = Activityg.initial () in
        let mg = Activityg.merge "m" in
        let a = Activityg.action "a" in
        let f = Activityg.fork "f" in
        let b = Activityg.action "b" in
        let id = Activityg.node_id in
        let e s t = Activityg.edge ~source:(id s) ~target:(id t) () in
        let act =
          Activityg.make "pump"
            [ init; mg; a; f; b ]
            [ e init mg; e mg a; e a f; e f mg; e f b ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity act);
        check Alcotest.bool "ACT-02" true (has_code "ACT-02" (lint m)));
    tc "unresolved edges are skipped (Wfr territory)" (fun () ->
        let a = Activityg.action "a" in
        let act =
          Activityg.make "dangling" [ a ]
            [
              Activityg.edge ~source:(Activityg.node_id a) ~target:"ghost" ();
            ]
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity act);
        check Alcotest.bool "no ACT codes" true
          (List.for_all
             (fun c -> not (String.length c >= 3 && String.sub c 0 3 = "ACT"))
             (codes (lint m))));
  ]

(* --- component pass --------------------------------------------------- *)

let comp_tests =
  [
    tc "unconnected required port is COMP-01" (fun () ->
        let iface = Classifier.make ~kind:Classifier.Interface "IBus" in
        let port =
          Component.port ~required:[ iface.Classifier.cl_id ] "bus"
        in
        let inner = Component.make ~ports:[ port ] "Core" in
        let part = Component.part "u0" inner.Component.cmp_id in
        let outer = Component.make ~parts:[ part ] "Soc" in
        let m = Model.create "m" in
        Model.add m (Model.E_classifier iface);
        Model.add m (Model.E_component inner);
        Model.add m (Model.E_component outer);
        check Alcotest.bool "COMP-01" true (has_code "COMP-01" (lint m)));
    tc "mismatched assembly is COMP-02" (fun () ->
        let i1 = Classifier.make ~kind:Classifier.Interface "I1" in
        let i2 = Classifier.make ~kind:Classifier.Interface "I2" in
        let need = Component.port ~required:[ i1.Classifier.cl_id ] "need" in
        let give = Component.port ~provided:[ i2.Classifier.cl_id ] "give" in
        let c1 = Component.make ~ports:[ need ] "C1" in
        let c2 = Component.make ~ports:[ give ] "C2" in
        let p1 = Component.part "u1" c1.Component.cmp_id in
        let p2 = Component.part "u2" c2.Component.cmp_id in
        let conn =
          Component.assembly
            ~from_:(Some p1.Component.part_id, need.Component.port_id)
            ~to_:(Some p2.Component.part_id, give.Component.port_id)
            ()
        in
        let outer =
          Component.make ~parts:[ p1; p2 ] ~connectors:[ conn ] "Soc"
        in
        let m = Model.create "m" in
        Model.add m (Model.E_classifier i1);
        Model.add m (Model.E_classifier i2);
        Model.add m (Model.E_component c1);
        Model.add m (Model.E_component c2);
        Model.add m (Model.E_component outer);
        check Alcotest.bool "COMP-02" true (has_code "COMP-02" (lint m)));
    tc "matching assembly is clean" (fun () ->
        let i1 = Classifier.make ~kind:Classifier.Interface "I1" in
        let need = Component.port ~required:[ i1.Classifier.cl_id ] "need" in
        let give = Component.port ~provided:[ i1.Classifier.cl_id ] "give" in
        let c1 = Component.make ~ports:[ need ] "C1" in
        let c2 = Component.make ~ports:[ give ] "C2" in
        let p1 = Component.part "u1" c1.Component.cmp_id in
        let p2 = Component.part "u2" c2.Component.cmp_id in
        let conn =
          Component.assembly
            ~from_:(Some p1.Component.part_id, need.Component.port_id)
            ~to_:(Some p2.Component.part_id, give.Component.port_id)
            ()
        in
        let outer =
          Component.make ~parts:[ p1; p2 ] ~connectors:[ conn ] "Soc"
        in
        let m = Model.create "m" in
        Model.add m (Model.E_classifier i1);
        Model.add m (Model.E_component c1);
        Model.add m (Model.E_component c2);
        Model.add m (Model.E_component outer);
        let comp_codes =
          List.filter
            (fun c -> String.length c >= 4 && String.sub c 0 4 = "COMP")
            (codes (lint m))
        in
        check (Alcotest.list Alcotest.string) "codes" [] comp_codes);
  ]

(* --- HDL pass --------------------------------------------------------- *)

let hdl_tests =
  [
    tc "undriven signal lifts to HDL-10" (fun () ->
        let m =
          Hdl.Module_.make
            ~ports:[ Hdl.Module_.output "q" Hdl.Htype.Bit ]
            ~signals:[ Hdl.Module_.signal "floating" Hdl.Htype.Bit ]
            ~processes:
              [
                Hdl.Module_.comb_process ~name:"p"
                  [ Hdl.Stmt.Assign ("q", Hdl.Expr.Ref "floating") ];
              ]
            "m"
        in
        let d = Hdl.Module_.design ~top:"m" [ m ] in
        let diags = Lint.Check.check_design d in
        check Alcotest.bool "HDL-10" true (has_code "HDL-10" diags);
        check Alcotest.bool "is error" true
          (List.exists
             (fun dg ->
               dg.Wfr.diag_rule = "HDL-10"
               && dg.Wfr.diag_severity = Wfr.Error)
             diags));
    tc "selection filters the HDL pass" (fun () ->
        let m =
          Hdl.Module_.make
            ~signals:[ Hdl.Module_.signal "idle" Hdl.Htype.Bit ]
            "m"
        in
        let d = Hdl.Module_.design ~top:"m" [ m ] in
        let sel = Lint.Rules.selection_of_strings ~disabled:[ "HDL-11" ] () in
        check (Alcotest.list Alcotest.string) "filtered" []
          (codes (Lint.Check.check_design ~selection:sel d));
        check Alcotest.bool "present by default" true
          (has_code "HDL-11" (Lint.Check.check_design d)));
  ]

(* --- acceptance: one defect per layer --------------------------------- *)

let acceptance_tests =
  [
    tc "four-layer defect model yields four distinct codes" (fun () ->
        let m = machine_with ~guard:"self.threshold" () in
        (* unreachable state in a second machine *)
        let orphan = Smachine.simple_state "Orphan" in
        let a = Smachine.simple_state "A" in
        let init = Smachine.pseudostate Smachine.Initial in
        let region =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State orphan ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:a.Smachine.st_id ();
            ]
        in
        Model.add m (Model.E_state_machine (Smachine.make "M2" [ region ]));
        Model.add m (Model.E_activity (deadlocking_activity ()));
        let hmod =
          Hdl.Module_.make
            ~ports:[ Hdl.Module_.output "q" Hdl.Htype.Bit ]
            ~signals:[ Hdl.Module_.signal "floating" Hdl.Htype.Bit ]
            ~processes:
              [
                Hdl.Module_.comb_process ~name:"p"
                  [ Hdl.Stmt.Assign ("q", Hdl.Expr.Ref "floating") ];
              ]
            "top"
        in
        let design = Hdl.Module_.design ~top:"top" [ hmod ] in
        let diags = Lint.Check.check ~design m in
        List.iter
          (fun code ->
            check Alcotest.bool code true (has_code code diags))
          [ "ASL-02"; "SC-01"; "ACT-01"; "HDL-10" ];
        check Alcotest.bool "has errors" true (Wfr.errors diags <> []));
  ]

(* --- report rendering ------------------------------------------------- *)

let report_tests =
  [
    tc "text report is stable and counted" (fun () ->
        let m = machine_with ~guard:"self.threshold" () in
        let diags = lint m in
        let text = Lint.Report.to_text ~model:"m" diags in
        check Alcotest.bool "has summary" true
          (List.exists
             (fun line ->
               line = "1 diagnostics (1 errors, 0 warnings)")
             (String.split_on_char '\n' text)));
    tc "json escapes and counts" (fun () ->
        let d =
          {
            Wfr.diag_severity = Wfr.Error;
            diag_rule = "ASL-01";
            diag_element = Some "e1";
            diag_message = "bad \"quote\"\nand newline";
          }
        in
        let json = Lint.Report.to_json ~model:"m\"odel" [ d ] in
        check Alcotest.bool "escaped quote" true
          (let sub = "bad \\\"quote\\\"\\nand newline" in
           let rec find i =
             i + String.length sub <= String.length json
             && (String.sub json i (String.length sub) = sub || find (i + 1))
           in
           find 0);
        check Alcotest.bool "error count" true
          (let sub = "\"errors\": 1" in
           let rec find i =
             i + String.length sub <= String.length json
             && (String.sub json i (String.length sub) = sub || find (i + 1))
           in
           find 0));
  ]

(* --- properties ------------------------------------------------------- *)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"lint never raises on generated models"
         ~count:25
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = Workload.Gen_model.structural ~seed ~classes:12 in
           Model.add m
             (Model.E_state_machine
                (Workload.Gen_statechart.hierarchical ~seed ~depth:3
                   ~breadth:2 ~events:3));
           Model.add m
             (Model.E_state_machine
                (Workload.Gen_statechart.flat ~seed ~states:6 ~events:3));
           Model.add m
             (Model.E_activity
                (Workload.Gen_activity.with_decisions ~seed ~size:10
                   ~max_width:3));
           let _diags = Lint.Check.check_model m in
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"lint reports are deterministic" ~count:10
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let build () =
             Ident.reset_counter ();
             let m = Workload.Gen_model.structural ~seed ~classes:10 in
             Model.add m
               (Model.E_activity
                  (Workload.Gen_activity.series_parallel ~seed ~size:10
                     ~max_width:3));
             m
           in
           let render m =
             let diags = Lint.Check.check_model m in
             Lint.Report.to_text ~model:"w" diags
             ^ Lint.Report.to_json ~model:"w" diags
           in
           render (build ()) = render (build ())));
  ]

let () =
  Alcotest.run "lint"
    [
      ("rules", rules_tests);
      ("asl", asl_tests);
      ("statechart", sc_tests);
      ("activity", act_tests);
      ("component", comp_tests);
      ("hdl", hdl_tests);
      ("acceptance", acceptance_tests);
      ("report", report_tests);
      ("properties", property_tests);
    ]
