(* Differential tests for the work-stealing domain pool (Exec.Pool):
   [--jobs] is a pure throughput knob, so every parallel fan-out in the
   repo — fault campaigns, state-space exploration — must produce
   byte-identical reports, summaries and metrics registries at every
   job count.  Pool unit tests cover scheduling (order preservation,
   stealing under skew, chunked claims) and the lowest-index exception
   rule. *)

open Hdl

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pool unit tests *)

let pool_tests =
  [
    tc "create rejects jobs < 1" (fun () ->
        match Exec.Pool.create ~jobs:0 with
        | _pool -> Alcotest.fail "jobs:0 accepted"
        | exception Invalid_argument _ -> ());
    tc "create clamps to max_jobs" (fun () ->
        let pool = Exec.Pool.create ~jobs:(Exec.Pool.max_jobs + 37) in
        Fun.protect
          ~finally:(fun () -> Exec.Pool.shutdown pool)
          (fun () ->
            check Alcotest.int "clamped" Exec.Pool.max_jobs
              (Exec.Pool.jobs pool)));
    tc "jobs 1 runs inline in index order" (fun () ->
        Exec.Pool.with_pool ~jobs:1 (fun pool ->
            let seen = ref [] in
            Exec.Pool.parallel_for pool ~n:10 (fun i -> seen := i :: !seen);
            check
              Alcotest.(list int)
              "ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
              (List.rev !seen)));
    tc "map_list preserves input order at jobs 4" (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun pool ->
            let xs = List.init 100 (fun i -> i) in
            check
              Alcotest.(list int)
              "squares in order"
              (List.map (fun i -> i * i) xs)
              (Exec.Pool.map_list pool (fun i -> i * i) xs);
            check Alcotest.(list int) "empty" []
              (Exec.Pool.map_list pool (fun i -> i * i) [])));
    tc "skewed task sizes: every task runs exactly once" (fun () ->
        (* The first contiguous block is heavy, the rest trivial —
           idle participants must steal into the slow block rather
           than wait on it. *)
        Exec.Pool.with_pool ~jobs:4 (fun pool ->
            let n = 64 in
            let runs = Array.make n 0 in
            let out = Array.make n 0 in
            Exec.Pool.parallel_for pool ~n (fun i ->
                let spins = if i < 16 then 200_000 else 100 in
                let acc = ref 0 in
                for k = 1 to spins do
                  acc := (!acc + k) mod 65521
                done;
                runs.(i) <- runs.(i) + 1;
                out.(i) <- !acc);
            Array.iteri
              (fun i r ->
                if r <> 1 then Alcotest.failf "task %d ran %d times" i r)
              runs;
            (* same per-index values as the sequential loop *)
            Array.iteri
              (fun i v ->
                let spins = if i < 16 then 200_000 else 100 in
                let acc = ref 0 in
                for k = 1 to spins do
                  acc := (!acc + k) mod 65521
                done;
                check Alcotest.int (Printf.sprintf "task %d" i) !acc v)
              out));
    tc "chunked claims still cover every index" (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun pool ->
            let n = 103 in
            let runs = Array.make n 0 in
            Exec.Pool.parallel_for ~chunk:7 pool ~n (fun i ->
                runs.(i) <- runs.(i) + 1);
            Array.iteri
              (fun i r ->
                if r <> 1 then Alcotest.failf "task %d ran %d times" i r)
              runs));
    tc "lowest-index exception wins; pool stays usable" (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun pool ->
            (match
               Exec.Pool.parallel_for pool ~n:32 (fun i ->
                   if i = 7 || i = 3 then
                     failwith (Printf.sprintf "task %d" i))
             with
            | () -> Alcotest.fail "expected an exception"
            | exception Failure m -> check Alcotest.string "lowest" "task 3" m);
            let runs = Array.make 50 0 in
            Exec.Pool.parallel_for pool ~n:50 (fun i -> runs.(i) <- runs.(i) + 1);
            Array.iteri
              (fun i r ->
                if r <> 1 then
                  Alcotest.failf "task %d ran %d times after exception" i r)
              runs));
    tc "with_pool returns the callback value; shutdown is idempotent" (fun () ->
        check Alcotest.int "value" 42 (Exec.Pool.with_pool ~jobs:2 (fun _ -> 42));
        let pool = Exec.Pool.create ~jobs:2 in
        Exec.Pool.shutdown pool;
        Exec.Pool.shutdown pool);
    tc "n = 0 is a no-op" (fun () ->
        Exec.Pool.with_pool ~jobs:4 (fun pool ->
            Exec.Pool.parallel_for pool ~n:0 (fun _ ->
                Alcotest.fail "task ran")));
  ]

let qcheck_map_determinism =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"map_array agrees at jobs 1/2/4/8"
       QCheck.(pair (int_range 0 100_000) (int_range 0 200))
       (fun (seed, n) ->
         let rng = Workload.Prng.create seed in
         let xs = Array.init n (fun _ -> Workload.Prng.int rng 1_000_000) in
         let f x = x * 2654435761 land 0xFFFFFF in
         let expected = Array.map f xs in
         List.for_all
           (fun jobs ->
             Exec.Pool.with_pool ~jobs (fun pool ->
                 Exec.Pool.map_array pool f xs = expected))
           [ 1; 2; 4; 8 ]))

(* ------------------------------------------------------------------ *)
(* Campaign differential: sharded runs must reproduce the sequential
   report and metrics registry byte-for-byte.  The RTL generator
   mirrors the one in test_fault (test executables are separate). *)

let rand_ty rng =
  match Workload.Prng.int rng 3 with
  | 0 -> Htype.Bit
  | 1 -> Htype.Unsigned (Workload.Prng.range rng 2 8)
  | _ -> Htype.Unsigned (Workload.Prng.range rng 9 16)

let binops =
  [
    Expr.And; Expr.Or; Expr.Xor; Expr.Add; Expr.Sub; Expr.Mul; Expr.Eq;
    Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Shl; Expr.Shr;
  ]

let rec rand_expr rng avail depth =
  let leaf () =
    if Workload.Prng.bool rng then Expr.Ref (Workload.Prng.pick rng avail)
    else Expr.of_int ~width:8 (Workload.Prng.int rng 256)
  in
  if depth <= 0 then leaf ()
  else (
    let sub () = rand_expr rng avail (depth - 1) in
    match Workload.Prng.int rng 6 with
    | 0 | 1 -> leaf ()
    | 2 -> Expr.Unop (Expr.Not, sub ())
    | 3 -> Expr.Mux (sub (), sub (), sub ())
    | 4 -> Expr.Resize (sub (), Workload.Prng.range rng 1 12)
    | _n -> Expr.Binop (Workload.Prng.pick rng binops, sub (), sub ()))

let random_module seed =
  let rng = Workload.Prng.create seed in
  let inputs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "in%d" i, rand_ty rng))
  in
  let regs =
    List.init (Workload.Prng.range rng 1 3) (fun i ->
        (Printf.sprintf "r%d" i, rand_ty rng))
  in
  let base = List.map fst inputs @ List.map fst regs in
  let seq_body =
    List.map (fun (r, _) -> Stmt.Assign (r, rand_expr rng base 3)) regs
  in
  let reset_body =
    List.map (fun (r, _) -> Stmt.Assign (r, Expr.of_int 0)) regs
  in
  Module_.make
    ~ports:
      (Module_.input "clk" Htype.Bit
       :: Module_.input "rst" Htype.Bit
       :: List.map (fun (n, ty) -> Module_.input n ty) inputs)
    ~signals:
      (List.map
         (fun (n, ty) -> Module_.signal ~init:(Workload.Prng.int rng 16) n ty)
         regs)
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", reset_body)
          ~name:"p_seq" ~clock:"clk" seq_body;
      ]
    "rand"

let rtl_spec_of_module seed m =
  let rng = Workload.Prng.create (seed lxor 0x2e2e) in
  let inputs =
    List.filter_map
      (fun (p : Module_.port) ->
        match p.Module_.port_dir with
        | Module_.Input ->
          if p.Module_.port_name = "clk" || p.Module_.port_name = "rst" then
            None
          else Some p.Module_.port_name
        | Module_.Output -> None)
      m.Module_.mod_ports
  in
  let cycles = 12 in
  let stimulus =
    List.init cycles (fun c ->
        ( c,
          List.filter_map
            (fun name ->
              if Workload.Prng.bool rng then
                Some (name, Workload.Prng.int rng 65536)
              else None)
            inputs ))
  in
  {
    Fault.Campaign.rs_module = m;
    rs_clock = "clk";
    rs_reset = Some "rst";
    rs_stimulus = stimulus;
    rs_cycles = cycles;
    rs_settle_budget = 1000;
  }

(* A campaign over all four engine families, parameterized on the plan
   seed; returns a closure so each run gets a fresh registry. *)
let campaign_fixture seed faults =
  let sm = Workload.Gen_statechart.flat ~seed:5 ~states:3 ~events:2 in
  let events = Workload.Gen_statechart.event_sequence ~seed:9 ~length:10 2 in
  let sc =
    { Fault.Campaign.ss_machine = sm; ss_events = events; ss_budget = 1000 }
  in
  let rtl = rtl_spec_of_module seed (random_module seed) in
  let act =
    Workload.Gen_activity.series_parallel ~seed:4 ~size:8 ~max_width:3
  in
  let aspec =
    {
      Fault.Campaign.ac_activity = act;
      ac_choice_seed = 4;
      ac_max_steps = 10_000;
    }
  in
  let net, m0 = Activity.Translate.to_petri act in
  let nspec =
    {
      Fault.Campaign.np_net = net;
      np_marking = m0;
      np_choice_seed = 4;
      np_max_steps = 10_000;
    }
  in
  let surface =
    {
      Fault.Plan.su_signals =
        List.map
          (fun (s : Module_.signal) ->
            (s.Module_.sig_name, Htype.width s.Module_.sig_type))
          rtl.Fault.Campaign.rs_module.Module_.mod_signals;
      su_cycles = rtl.Fault.Campaign.rs_cycles;
      su_events = Workload.Gen_statechart.event_names 2;
      su_length = List.length events;
      su_places =
        List.map
          (fun (p : Petri.Net.place) -> p.Petri.Net.pl_id)
          net.Petri.Net.places;
      su_steps = 20;
    }
  in
  let plan = Fault.Plan.generate ~seed ~count:faults surface in
  fun ?metrics ?pool () ->
    Fault.Campaign.run ?metrics ?pool ~rtl ~statechart:sc ~activity:aspec
      ~net:nspec ~label:"fixture" plan

let qcheck_campaign_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8
       ~name:"campaign: jobs 4 reports and metrics byte-equal sequential"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let go = campaign_fixture seed 12 in
         let m1 =
           Telemetry.Metrics.create ~clock:(Telemetry.Clock.counting ()) ()
         in
         let r1 = go ~metrics:m1 () in
         let m4 =
           Telemetry.Metrics.create ~clock:(Telemetry.Clock.counting ()) ()
         in
         let r4 =
           Exec.Pool.with_pool ~jobs:4 (fun pool -> go ~metrics:m4 ~pool ())
         in
         String.equal (Fault.Campaign.to_text r1) (Fault.Campaign.to_text r4)
         && String.equal (Fault.Campaign.to_json r1)
              (Fault.Campaign.to_json r4)
         && String.equal (Telemetry.Metrics.report m1)
              (Telemetry.Metrics.report m4)))

let campaign_pool_tests =
  [
    tc "jobs 1 pool takes the sequential path" (fun () ->
        let go = campaign_fixture 42 15 in
        let r_none = go () in
        let r_one = Exec.Pool.with_pool ~jobs:1 (fun pool -> go ~pool ()) in
        check Alcotest.string "text"
          (Fault.Campaign.to_text r_none)
          (Fault.Campaign.to_text r_one));
    tc "empty plan under a pool still reports zero injections" (fun () ->
        let go = campaign_fixture 7 0 in
        let m =
          Telemetry.Metrics.create ~clock:(Telemetry.Clock.counting ()) ()
        in
        let r = Exec.Pool.with_pool ~jobs:4 (fun pool -> go ~metrics:m ~pool ()) in
        check Alcotest.string "same as sequential"
          (Fault.Campaign.to_text (go ()))
          (Fault.Campaign.to_text r));
  ]

(* ------------------------------------------------------------------ *)
(* Exploration differential: sharded BFS must reproduce the sequential
   summary exactly — markings in the same BFS order, same truncation
   verdict, bounds, deadlocks and dead transitions. *)

let markings_equal a b =
  List.length a = List.length b && List.for_all2 Petri.Marking.equal a b

let summaries_equal (a : Petri.Analysis.summary) (b : Petri.Analysis.summary) =
  markings_equal a.Petri.Analysis.sum_reach.Petri.Analysis.markings
    b.Petri.Analysis.sum_reach.Petri.Analysis.markings
  && a.Petri.Analysis.sum_reach.Petri.Analysis.state_count
     = b.Petri.Analysis.sum_reach.Petri.Analysis.state_count
  && a.Petri.Analysis.sum_reach.Petri.Analysis.truncated
     = b.Petri.Analysis.sum_reach.Petri.Analysis.truncated
  && markings_equal a.Petri.Analysis.sum_reach.Petri.Analysis.deadlocks
       b.Petri.Analysis.sum_reach.Petri.Analysis.deadlocks
  && a.Petri.Analysis.sum_bound = b.Petri.Analysis.sum_bound
  && a.Petri.Analysis.sum_deadlock_free = b.Petri.Analysis.sum_deadlock_free
  && a.Petri.Analysis.sum_dead_transitions
     = b.Petri.Analysis.sum_dead_transitions

let random_net seed =
  let act =
    if seed mod 2 = 0 then
      Workload.Gen_activity.series_parallel ~seed ~size:10 ~max_width:4
    else Workload.Gen_activity.with_decisions ~seed ~size:10 ~max_width:4
  in
  Activity.Translate.to_petri act

let qcheck_explore_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"explore: pool sharding reproduces the sequential summary"
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let net, m0 = random_net seed in
         let m1 =
           Telemetry.Metrics.create ~clock:(Telemetry.Clock.counting ()) ()
         in
         let s1 = Petri.Analysis.explore ~metrics:m1 net m0 in
         let m4 =
           Telemetry.Metrics.create ~clock:(Telemetry.Clock.counting ()) ()
         in
         let s4, d4 =
           Exec.Pool.with_pool ~jobs:4 (fun pool ->
               ( Petri.Analysis.explore ~metrics:m4 ~pool net m0,
                 Petri.Analysis.dead_transitions ~pool net m0 ))
         in
         summaries_equal s1 s4
         && Petri.Analysis.dead_transitions net m0 = d4
         && String.equal (Telemetry.Metrics.report m1)
              (Telemetry.Metrics.report m4)))

let qcheck_explore_truncation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"explore: truncation point identical under sharding"
       QCheck.(pair (int_range 0 100_000) (int_range 1 9))
       (fun (seed, limit) ->
         let net, m0 = random_net seed in
         let s1 = Petri.Analysis.explore ~limit net m0 in
         let s4 =
           Exec.Pool.with_pool ~jobs:4 (fun pool ->
               Petri.Analysis.explore ~limit ~pool net m0)
         in
         summaries_equal s1 s4))

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation budgets                                   *)

let budget_tests =
  [
    tc "unlimited never expires" (fun () ->
        let b = Exec.Budget.unlimited in
        for _ = 1 to 10_000 do
          Exec.Budget.check b
        done;
        check Alcotest.bool "not expired" false (Exec.Budget.expired b));
    tc "fuel n allows exactly n checks" (fun () ->
        let b = Exec.Budget.fuel 5 in
        for _ = 1 to 5 do
          Exec.Budget.check b
        done;
        check Alcotest.bool "still live" false (Exec.Budget.expired b);
        (match Exec.Budget.check b with
         | () -> Alcotest.fail "expected Expired"
         | exception Exec.Budget.Expired msg ->
           check Alcotest.string "deterministic message"
             "budget expired: fuel limit 5 exhausted" msg);
        check Alcotest.bool "sticky" true (Exec.Budget.expired b);
        (* once dead, every further check raises immediately *)
        match Exec.Budget.check b with
        | () -> Alcotest.fail "expected Expired again"
        | exception Exec.Budget.Expired _ -> ());
    tc "fuel 0 expires on the first check" (fun () ->
        match Exec.Budget.check (Exec.Budget.fuel 0) with
        | () -> Alcotest.fail "expected Expired"
        | exception Exec.Budget.Expired _ -> ());
    tc "negative fuel and non-positive deadlines are rejected" (fun () ->
        (match Exec.Budget.fuel (-1) with
         | _b -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ());
        match Exec.Budget.deadline ~now:(fun () -> 0.) ~ms:0 with
        | _b -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "deadline consults the injected clock, not the stride counter"
      (fun () ->
        let t = ref 0.0 in
        let b = Exec.Budget.deadline ~now:(fun () -> !t) ~ms:100 in
        (* clock frozen inside the horizon: any number of checks pass *)
        for _ = 1 to 1000 do
          Exec.Budget.check b
        done;
        check Alcotest.bool "live inside horizon" false
          (Exec.Budget.expired b);
        t := 0.2;
        (* past the horizon: expires within one clock stride *)
        match
          for _ = 1 to 100 do
            Exec.Budget.check b
          done
        with
        | () -> Alcotest.fail "expected Expired past the horizon"
        | exception Exec.Budget.Expired msg ->
          check Alcotest.string "deterministic message"
            "budget expired: deadline 100 ms exceeded" msg);
    tc "a worker-side expiry surfaces in the caller" (fun () ->
        let b = Exec.Budget.fuel 10 in
        match
          Exec.Pool.with_pool ~jobs:4 (fun pool ->
              Exec.Pool.parallel_for pool ~n:1000 (fun _i ->
                  Exec.Budget.check b))
        with
        | () -> Alcotest.fail "expected Expired"
        | exception Exec.Budget.Expired _ ->
          check Alcotest.bool "sticky across domains" true
            (Exec.Budget.expired b));
  ]

let qcheck_budget_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"explore: fuel expiry point identical under sharding"
       QCheck.(pair (int_range 0 100_000) (int_range 0 40))
       (fun (seed, fuel) ->
         let net, m0 = random_net seed in
         let run jobs =
           let budget = Exec.Budget.fuel fuel in
           match
             if jobs = 1 then Petri.Analysis.explore ~budget net m0
             else
               Exec.Pool.with_pool ~jobs (fun pool ->
                   Petri.Analysis.explore ~budget ~pool net m0)
           with
           | s -> Ok s
           | exception Exec.Budget.Expired msg -> Error msg
         in
         match (run 1, run 4) with
         | Ok s1, Ok s4 -> summaries_equal s1 s4
         | Error e1, Error e4 -> String.equal e1 e4
         | Ok _, Error _ | Error _, Ok _ -> false))

let () =
  Alcotest.run "parallel"
    [
      ("pool", pool_tests @ [ qcheck_map_determinism ]);
      ("campaign", campaign_pool_tests @ [ qcheck_campaign_differential ]);
      ("explore", [ qcheck_explore_differential; qcheck_explore_truncation ]);
      ("budget", budget_tests @ [ qcheck_budget_differential ]);
    ]
