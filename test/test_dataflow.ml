(* Tests for the dataflow static-analysis tier: CFG lowering, the
   abstract-interpretation engine, the three passes (ASL, event-flow,
   netlist clock/reset) and their lint integration.  Every new rule
   (DF-01..DF-06, HDL-12, HDL-13) gets a positive and a negative
   fixture. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f

let parse src =
  match Asl.Compiled.program_result (Asl.Compiled.program src) with
  | Ok prog -> prog
  | Error msg -> Alcotest.failf "fixture %S does not parse: %s" src msg

let codes diags =
  List.sort_uniq compare
    (List.map (fun (d : Wfr.diagnostic) -> d.Wfr.diag_rule) diags)

let has code diags = List.mem code (codes diags)

let check_has src_desc code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires %s" src_desc code)
    true (has code diags)

let check_not src_desc code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s does not fire %s" src_desc code)
    false (has code diags)

(* --- model fixtures ---------------------------------------------------- *)

(* A two-state machine whose only behaviors are the given guard/effect
   on the a->b transition; no sends, so the event-flow pass stays
   silent and the ASL findings are isolated. *)
let machine_model ?guard ?effect () =
  Ident.reset_counter ();
  let m = Model.create "fixture" in
  let a = Smachine.simple_state "A" in
  let b = Smachine.simple_state "B" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "step" ]
          ?guard ?effect ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
      ]
  in
  Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
  m

let effect_diags effect =
  Lint.Df_pass.check_model (machine_model ~effect ())

let guard_diags guard = Lint.Df_pass.check_model (machine_model ~guard ())

(* An initial -> first -> second -> final activity with the two action
   bodies supplied in node-list order (first_listed appears first in
   [ac_nodes]) but token order second_listed-is-first when [reversed]. *)
let activity_model ~reversed body_x body_y =
  Ident.reset_counter ();
  let m = Model.create "fixture" in
  let ax = Activityg.action ~body:body_x "ax" in
  let ay = Activityg.action ~body:body_y "ay" in
  let start = Activityg.initial () in
  let stop = Activityg.activity_final () in
  let e a b =
    Activityg.edge ~source:(Activityg.node_id a) ~target:(Activityg.node_id b)
      ()
  in
  let edges =
    if reversed then [ e start ay; e ay ax; e ax stop ]
    else [ e start ax; e ax ay; e ay stop ]
  in
  Model.add m
    (Model.E_activity (Activityg.make "Act" [ start; ax; ay; stop ] edges));
  m

(* --- CFG --------------------------------------------------------------- *)

let cfg_tests =
  [
    tc "straight line links entry to exit" (fun () ->
        let cfg = Dataflow.Cfg.of_program (parse "x := 1; y := x;") in
        let r = Dataflow.Absint.analyze cfg in
        Alcotest.(check bool) "all reachable" true
          (Array.for_all (fun b -> b) r.Dataflow.Absint.res_reachable));
    tc "branch successors are positional [then; else]" (fun () ->
        let cfg =
          Dataflow.Cfg.of_program
            (parse "if e1 > 0 then x := 1; else x := 2; end;")
        in
        let branch =
          Array.to_list cfg.Dataflow.Cfg.nodes
          |> List.filter (fun (n : Dataflow.Cfg.node) ->
                 match n.Dataflow.Cfg.n_kind with
                 | Dataflow.Cfg.Branch _ -> true
                 | Dataflow.Cfg.Entry | Dataflow.Cfg.Exit | Dataflow.Cfg.Nop
                 | Dataflow.Cfg.Stmt _ | Dataflow.Cfg.For_head _ ->
                   false)
        in
        match branch with
        | [ b ] ->
          Alcotest.(check int) "two successors" 2
            (List.length b.Dataflow.Cfg.n_succs)
        | other ->
          Alcotest.failf "expected exactly one Branch node, got %d"
            (List.length other));
    tc "statements after return are unlinked" (fun () ->
        let cfg = Dataflow.Cfg.of_program (parse "return 1; x := 2;") in
        let r = Dataflow.Absint.analyze cfg in
        Alcotest.(check int) "one unreachable region head" 1
          (List.length r.Dataflow.Absint.res_unreachable));
    tc "expr_vars dedups in first-occurrence order" (fun () ->
        match parse "return a + b * a;" with
        | [ Asl.Ast.Return (Some e) ] ->
          Alcotest.(check (list string))
            "vars" [ "a"; "b" ]
            (Dataflow.Cfg.expr_vars e)
        | _other -> Alcotest.fail "unexpected parse shape");
  ]

(* --- DF-01 use before initialization ----------------------------------- *)

let df01_tests =
  [
    tc "branch-only assignment read after the branch" (fun () ->
        check_has "maybe-uninit read" "DF-01"
          (effect_diags "if e1 > 0 then x := 1; end; y := x; return y;"));
    tc "both-branch assignment is definite" (fun () ->
        check_not "definite read" "DF-01"
          (effect_diags
             "if e1 > 0 then x := 1; else x := 2; end; y := x; return y;"));
    tc "event parameters count as assigned" (fun () ->
        check_not "e1 read" "DF-01" (effect_diags "x := e1 + 1; return x;"));
    tc "cross-action read in token order" (fun () ->
        (* ay (token-first) reads blocks; only ax assigns it.  The
           node-list order ax-then-ay typechecks (ASL-02 silent) — the
           dataflow pass follows the edges instead. *)
        check_has "reversed activity" "DF-01"
          (Lint.Df_pass.check_model
             (activity_model ~reversed:true "blocks := 64;"
                "limit := blocks + 1;")));
    tc "cross-action read in correct order" (fun () ->
        check_not "forward activity" "DF-01"
          (Lint.Df_pass.check_model
             (activity_model ~reversed:false "blocks := 64;"
                "limit := blocks + 1;")));
  ]

(* --- DF-02 dead stores ------------------------------------------------- *)

let df02_tests =
  [
    tc "overwritten before any read" (fun () ->
        check_has "dead first store" "DF-02"
          (effect_diags "x := 1; x := 2; return x;"));
    tc "value read before overwrite" (fun () ->
        check_not "live store" "DF-02"
          (effect_diags "x := 1; y := x; x := 2; return x + y;"));
    tc "activity bindings outlive the action" (fun () ->
        (* ax's binding is read by ay, and even ay's binding stays in
           the shared store (Live_all) — no dead stores either way. *)
        check_not "shared store" "DF-02"
          (Lint.Df_pass.check_model
             (activity_model ~reversed:false "blocks := 64;"
                "limit := blocks + 1;")));
    tc "call stores are never dead" (fun () ->
        check_not "effectful RHS" "DF-02"
          (effect_diags "x := compute(); x := 2; return x;"));
  ]

(* --- DF-03 unreachable under constant folding -------------------------- *)

let df03_tests =
  [
    tc "then branch of a false constant" (fun () ->
        check_has "folded branch" "DF-03"
          (effect_diags "if 1 > 2 then x := 1; else x := 2; end; return x;"));
    tc "statements after return" (fun () ->
        check_has "after return" "DF-03" (effect_diags "return 1; x := 2;"));
    tc "data-dependent branch is live" (fun () ->
        check_not "live branch" "DF-03"
          (effect_diags
             "if e1 > 0 then x := 1; else x := 2; end; return x;"));
    tc "only the region head is reported" (fun () ->
        let diags = effect_diags "return 1; x := 2; y := 3; z := 4;" in
        Alcotest.(check int) "one DF-03" 1
          (List.length
             (List.filter
                (fun (d : Wfr.diagnostic) -> d.Wfr.diag_rule = "DF-03")
                diags)));
  ]

(* --- DF-04 constant guards --------------------------------------------- *)

let df04_tests =
  [
    tc "provably false comparison" (fun () ->
        check_has "1 > 2" "DF-04" (guard_diags "1 > 2"));
    tc "provably true disjunction absorbs unknowns" (fun () ->
        check_has "or-true" "DF-04" (guard_diags "e1 < 0 or 0 < 1"));
    tc "data-dependent guard is silent" (fun () ->
        check_not "e1 > 0" "DF-04" (guard_diags "e1 > 0"));
    tc "division is not folded" (fun () ->
        check_not "division" "DF-04" (guard_diags "1 / 1 > 0"));
  ]

(* --- DF-05 / DF-06 event flow ------------------------------------------ *)

let send_model ~entry ~triggers () =
  Ident.reset_counter ();
  let m = Model.create "fixture" in
  let a = Smachine.simple_state ~entry "A" in
  let b = Smachine.simple_state "B" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition ~triggers ~source:a.Smachine.st_id
          ~target:b.Smachine.st_id ();
      ]
  in
  Model.add m (Model.E_state_machine (Smachine.make "M" [ region ]));
  m

let event_tests =
  [
    tc "emitted but never consumed" (fun () ->
        let m =
          send_model ~entry:"send done(1);"
            ~triggers:[ Smachine.Signal_trigger "go" ]
            ()
        in
        let diags = Lint.Df_pass.check_model m in
        check_has "dead letter" "DF-05" diags;
        check_has "unemitted trigger" "DF-06" diags);
    tc "emitted and consumed is silent" (fun () ->
        let m =
          send_model ~entry:"send go(1);"
            ~triggers:[ Smachine.Signal_trigger "go" ]
            ()
        in
        let diags = Lint.Df_pass.check_model m in
        check_not "matched event" "DF-05" diags;
        check_not "matched trigger" "DF-06" diags);
    tc "any-trigger consumes every event" (fun () ->
        let m =
          send_model ~entry:"send done(1);" ~triggers:[ Smachine.Any_trigger ]
            ()
        in
        check_not "any-trigger" "DF-05" (Lint.Df_pass.check_model m));
    tc "models that emit nothing are externally driven" (fun () ->
        let m =
          send_model ~entry:"x := 1;"
            ~triggers:[ Smachine.Signal_trigger "toggle" ]
            ()
        in
        check_not "no emissions" "DF-06" (Lint.Df_pass.check_model m));
  ]

(* --- HDL-12 / HDL-13 netlist ------------------------------------------- *)

(* A two-domain design: pa (clk_a, reset) feeds a_reg to pb (clk_b).
   [sync] adds a second clk_b flop so pb becomes a 2-FF synchronizer
   head; [init_b]/[reset_b] close the HDL-13 hole. *)
let cdc_design ?(sync = false) ?(init_b = false) ?(reset_b = false) () =
  let b_sig =
    if init_b then Hdl.Module_.signal ~init:0 "b_reg" Hdl.Htype.Bit
    else Hdl.Module_.signal "b_reg" Hdl.Htype.Bit
  in
  let pb_body = [ Hdl.Stmt.Assign ("b_reg", Hdl.Expr.Ref "a_reg") ] in
  let pb =
    if reset_b then
      Hdl.Module_.seq_process ~name:"pb" ~clock:"clk_b"
        ~reset:("rst", [ Hdl.Stmt.Assign ("b_reg", Hdl.Expr.zero) ])
        pb_body
    else Hdl.Module_.seq_process ~name:"pb" ~clock:"clk_b" pb_body
  in
  let tail =
    if sync then
      [
        Hdl.Module_.seq_process ~name:"pb2" ~clock:"clk_b"
          ~reset:("rst", [ Hdl.Stmt.Assign ("b_reg2", Hdl.Expr.zero) ])
          [ Hdl.Stmt.Assign ("b_reg2", Hdl.Expr.Ref "b_reg") ];
        Hdl.Module_.comb_process ~name:"po"
          [ Hdl.Stmt.Assign ("q", Hdl.Expr.Ref "b_reg2") ];
      ]
    else
      [
        Hdl.Module_.comb_process ~name:"po"
          [ Hdl.Stmt.Assign ("q", Hdl.Expr.Ref "b_reg") ];
      ]
  in
  let signals =
    [ Hdl.Module_.signal ~init:0 "a_reg" Hdl.Htype.Bit; b_sig ]
    @ if sync then [ Hdl.Module_.signal "b_reg2" Hdl.Htype.Bit ] else []
  in
  let m =
    Hdl.Module_.make "cdc"
      ~ports:
        [ Hdl.Module_.input "clk_a" Hdl.Htype.Bit;
          Hdl.Module_.input "clk_b" Hdl.Htype.Bit;
          Hdl.Module_.input "rst" Hdl.Htype.Bit;
          Hdl.Module_.input "din" Hdl.Htype.Bit;
          Hdl.Module_.output "q" Hdl.Htype.Bit ]
      ~signals
      ~processes:
        ([ Hdl.Module_.seq_process ~name:"pa" ~clock:"clk_a"
             ~reset:("rst", [ Hdl.Stmt.Assign ("a_reg", Hdl.Expr.zero) ])
             [ Hdl.Stmt.Assign ("a_reg", Hdl.Expr.Ref "din") ];
           pb ]
        @ tail)
  in
  Hdl.Module_.design ~top:"cdc" [ m ]

let single_clock_design () =
  let m =
    Hdl.Module_.make "sc"
      ~ports:
        [ Hdl.Module_.input "clk" Hdl.Htype.Bit;
          Hdl.Module_.input "rst" Hdl.Htype.Bit;
          Hdl.Module_.input "din" Hdl.Htype.Bit;
          Hdl.Module_.output "q" Hdl.Htype.Bit ]
      ~signals:[ Hdl.Module_.signal ~init:0 "r" Hdl.Htype.Bit ]
      ~processes:
        [ Hdl.Module_.seq_process ~name:"p" ~clock:"clk"
            ~reset:("rst", [ Hdl.Stmt.Assign ("r", Hdl.Expr.zero) ])
            [ Hdl.Stmt.Assign ("r", Hdl.Expr.Ref "din") ];
          Hdl.Module_.comb_process ~name:"po"
            [ Hdl.Stmt.Assign ("q", Hdl.Expr.Ref "r") ] ]
  in
  Hdl.Module_.design ~top:"sc" [ m ]

let netlist_tests =
  [
    tc "naked crossing with a comb reader" (fun () ->
        let diags = Lint.Df_pass.check_design (cdc_design ()) in
        check_has "naked CDC" "HDL-12" diags;
        Alcotest.(check bool) "HDL-12 is an error" true
          (List.exists
             (fun (d : Wfr.diagnostic) ->
               d.Wfr.diag_rule = "HDL-12"
               && d.Wfr.diag_severity = Wfr.Error)
             diags));
    tc "2-FF synchronizer head is exempt" (fun () ->
        check_not "synchronized CDC" "HDL-12"
          (Lint.Df_pass.check_design (cdc_design ~sync:true ~reset_b:true ())));
    tc "single-clock design has no crossings" (fun () ->
        check_not "single clock" "HDL-12"
          (Lint.Df_pass.check_design (single_clock_design ())));
    tc "unreset register reaching an output" (fun () ->
        check_has "undefined output" "HDL-13"
          (Lint.Df_pass.check_design (cdc_design ())));
    tc "declared init suppresses HDL-13" (fun () ->
        check_not "initialized" "HDL-13"
          (Lint.Df_pass.check_design (cdc_design ~init_b:true ())));
    tc "reset branch suppresses HDL-13" (fun () ->
        check_not "reset" "HDL-13"
          (Lint.Df_pass.check_design (cdc_design ~reset_b:true ())));
    tc "designs with HDL errors are skipped" (fun () ->
        (* q is never driven: Hdl.Check owns that (HDL-10), the
           dataflow pass must stay out of the way. *)
        let m =
          Hdl.Module_.make "broken"
            ~ports:
              [ Hdl.Module_.input "clk" Hdl.Htype.Bit;
                Hdl.Module_.output "q" Hdl.Htype.Bit ]
        in
        Alcotest.(check int) "no findings" 0
          (List.length
             (Lint.Df_pass.check_design (Hdl.Module_.design ~top:"broken" [ m ]))));
  ]

(* --- lint integration -------------------------------------------------- *)

let integration_tests =
  [
    tc "selection restricts to the DF family" (fun () ->
        let m = machine_model ~guard:"1 > 2" ~effect:"x := 1; x := 2;" () in
        let selection =
          Lint.Rules.selection_of_strings ~only:[ "DF" ] ()
        in
        let diags = Lint.Check.check_model ~selection m in
        Alcotest.(check bool) "only DF codes" true
          (List.for_all
             (fun (d : Wfr.diagnostic) ->
               String.length d.Wfr.diag_rule >= 3
               && String.sub d.Wfr.diag_rule 0 3 = "DF-")
             diags);
        Alcotest.(check bool) "DF-04 still present" true (has "DF-04" diags));
    tc "unknown selectors are reported" (fun () ->
        let selection =
          Lint.Rules.selection_of_strings ~only:[ "DF-99"; "HDL" ]
            ~disabled:[ "BOGUS" ] ()
        in
        Alcotest.(check (list string))
          "typos" [ "BOGUS"; "DF-99" ]
          (List.sort compare (Lint.Rules.unknown_selectors selection)));
    tc "every DF rule is registered" (fun () ->
        List.iter
          (fun code ->
            match Lint.Rules.find code with
            | Some _ -> ()
            | None -> Alcotest.failf "rule %s not registered" code)
          [ "DF-01"; "DF-02"; "DF-03"; "DF-04"; "DF-05"; "DF-06"; "HDL-12";
            "HDL-13" ]);
    tc "telemetry counters record pass volume" (fun () ->
        let metrics = Telemetry.Metrics.create () in
        let m = machine_model ~guard:"1 > 2" ~effect:"x := 1; x := 2;" () in
        let _diags = Lint.Check.check_model ~metrics m in
        let v name =
          Telemetry.Metrics.counter_value
            (Telemetry.Metrics.counter metrics name)
        in
        Alcotest.(check bool) "programs counted" true
          (v "dataflow.asl.programs" > 0);
        Alcotest.(check bool) "guards counted" true
          (v "dataflow.asl.guards" > 0);
        Alcotest.(check bool) "findings counted" true
          (v "dataflow.asl.findings" > 0));
    tc "netlist counters record process volume" (fun () ->
        let metrics = Telemetry.Metrics.create () in
        let _diags =
          Lint.Check.check_design ~metrics (cdc_design ())
        in
        Alcotest.(check int) "two seq processes" 2
          (Telemetry.Metrics.counter_value
             (Telemetry.Metrics.counter metrics
                "dataflow.netlist.seq_processes")));
  ]

(* --- properties -------------------------------------------------------- *)

(* Random ASL programs over a tiny variable pool: the analysis must be
   total (never raise) and deterministic (same result on every run). *)
let gen_program =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let gen_expr =
    fix
      (fun self depth ->
        if depth = 0 then
          oneof
            [ map (fun n -> Asl.Ast.Int_lit n) (int_range (-8) 8);
              map (fun x -> Asl.Ast.Var x) var;
              map (fun b -> Asl.Ast.Bool_lit b) bool ]
        else
          frequency
            [
              (2, map (fun n -> Asl.Ast.Int_lit n) (int_range (-8) 8));
              (2, map (fun x -> Asl.Ast.Var x) var);
              ( 3,
                map3
                  (fun op a b -> Asl.Ast.Binop (op, a, b))
                  (oneofl
                     [ Asl.Ast.Add; Asl.Ast.Sub; Asl.Ast.Mul; Asl.Ast.Div;
                       Asl.Ast.Lt; Asl.Ast.Le; Asl.Ast.Eq; Asl.Ast.And;
                       Asl.Ast.Or ])
                  (self (depth - 1))
                  (self (depth - 1)) );
              ( 1,
                map (fun a -> Asl.Ast.Unop (Asl.Ast.Not, a)) (self (depth - 1))
              );
            ])
      2
  in
  let gen_stmt =
    fix
      (fun self depth ->
        let leaf =
          oneof
            [
              return Asl.Ast.Skip;
              map2 (fun x e -> Asl.Ast.Var_decl (x, e)) var gen_expr;
              map2
                (fun x e -> Asl.Ast.Assign (Asl.Ast.L_var x, e))
                var gen_expr;
              map (fun e -> Asl.Ast.Return (Some e)) gen_expr;
              return (Asl.Ast.Return None);
              map (fun e -> Asl.Ast.Send ("sig", [ e ], None)) gen_expr;
            ]
        in
        if depth = 0 then leaf
        else
          frequency
            [
              (4, leaf);
              ( 1,
                map3
                  (fun c t e -> Asl.Ast.If (c, t, e))
                  gen_expr
                  (list_size (int_bound 3) (self (depth - 1)))
                  (list_size (int_bound 3) (self (depth - 1))) );
              ( 1,
                map2
                  (fun c b -> Asl.Ast.While (c, b))
                  gen_expr
                  (list_size (int_bound 3) (self (depth - 1))) );
              ( 1,
                map3
                  (fun x (lo, hi) b -> Asl.Ast.For (x, lo, hi, b))
                  var
                  (pair gen_expr gen_expr)
                  (list_size (int_bound 3) (self (depth - 1))) );
            ])
      2
  in
  QCheck.Gen.list_size (int_bound 8) gen_stmt

let analysis_fingerprint (r : Dataflow.Absint.result) =
  ( r.Dataflow.Absint.res_uninit,
    r.Dataflow.Absint.res_dead,
    r.Dataflow.Absint.res_unreachable,
    r.Dataflow.Absint.res_exit_assigned )

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"analysis is total on random programs"
         ~count:500 (QCheck.make gen_program)
         (fun prog ->
           let cfg = Dataflow.Cfg.of_program prog in
           let _r =
             Dataflow.Absint.analyze ~assigned:[ "a" ]
               ~liveout:Dataflow.Absint.Live_all cfg
           in
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"analysis is deterministic" ~count:300
         (QCheck.make gen_program)
         (fun prog ->
           let run () =
             analysis_fingerprint
               (Dataflow.Absint.analyze (Dataflow.Cfg.of_program prog))
           in
           run () = run ()));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"reported lists are sorted" ~count:300
         (QCheck.make gen_program)
         (fun prog ->
           let r = Dataflow.Absint.analyze (Dataflow.Cfg.of_program prog) in
           let sorted l = List.sort compare l = l in
           sorted r.Dataflow.Absint.res_uninit
           && sorted r.Dataflow.Absint.res_dead
           && sorted r.Dataflow.Absint.res_unreachable
           && sorted r.Dataflow.Absint.res_exit_assigned));
  ]

let () =
  Alcotest.run "dataflow"
    [
      ("cfg", cfg_tests);
      ("df01", df01_tests);
      ("df02", df02_tests);
      ("df03", df03_tests);
      ("df04", df04_tests);
      ("events", event_tests);
      ("netlist", netlist_tests);
      ("integration", integration_tests);
      ("properties", property_tests);
    ]
