(* The serve daemon: JSON wire format, the content-hash artifact cache,
   protocol hardening (every hostile line answers exactly one error
   line and the daemon keeps serving), serve-vs-CLI byte-identity, and
   per-request telemetry isolation. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let exe =
  (* tests execute from the build context's test directory *)
  let candidates =
    [ "../bin/socuml.exe"; "_build/default/bin/socuml.exe"; "bin/socuml.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "socuml.exe not found next to the test binary"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let tmp = Filename.get_temp_dir_name ()

(* Run one CLI invocation, capturing stdout and stderr separately. *)
let run_cli args =
  let out = Filename.temp_file "socuml_serve" ".out" in
  let err = Filename.temp_file "socuml_serve" ".err" in
  let cmd =
    Printf.sprintf "%s %s >%s 2>%s" (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

(* The demo SoC on disk (built once), plus its packed snapshot. *)
let demo_model =
  lazy
    (let out = Filename.concat tmp "socuml_serve_demo" in
     let code, _, stderr = run_cli [ "demo"; "--out"; out ] in
     if code <> 0 then Alcotest.failf "demo: exit %d (stderr: %s)" code stderr;
     Filename.concat out "demo_soc.xmi")

let demo_snapshot =
  lazy
    (let model = Lazy.force demo_model in
     let snap = Filename.concat (Filename.dirname model) "demo_soc.sumb" in
     let code, _, stderr = run_cli [ "pack"; model; "-o"; snap ] in
     if code <> 0 then Alcotest.failf "pack: exit %d (stderr: %s)" code stderr;
     snap)

(* A tiny distinct model on disk, for cache-shape tests. *)
let tiny_model name path =
  let m = Uml.Model.create name in
  Xmi.Write.write_file m path;
  path

(* An empty persist directory, wiped of any previous run's snapshots. *)
let fresh_dir path =
  if Sys.file_exists path then
    Array.iter
      (fun f -> Sys.remove (Filename.concat path f))
      (Sys.readdir path);
  path

(* ------------------------------------------------------------------ *)
(* JSON wire format                                                   *)

let json_tests =
  let parse_ok s =
    match Serve.Json.parse s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  let parse_err s =
    match Serve.Json.parse s with
    | Ok _v -> Alcotest.failf "parse %S: expected an error" s
    | Error e -> e
  in
  [
    tc "roundtrip of a nested value" (fun () ->
        let v =
          Serve.Json.Obj
            [
              ("a", Serve.Json.Int 1);
              ("b", Serve.Json.List
                 [ Serve.Json.Str "x"; Serve.Json.Null;
                   Serve.Json.Bool true ]);
              ("c", Serve.Json.Obj [ ("d", Serve.Json.Float 2.5) ]);
            ]
        in
        let s = Serve.Json.to_string v in
        check Alcotest.bool "roundtrips" true (parse_ok s = v));
    tc "printer output is always one line" (fun () ->
        let s =
          Serve.Json.to_string
            (Serve.Json.Obj
               [ ("msg", Serve.Json.Str "two\nlines\twith\x01controls") ])
        in
        check Alcotest.bool "no raw newline" false (String.contains s '\n');
        check Alcotest.bool "reparses" true
          (parse_ok s
          = Serve.Json.Obj
              [ ("msg", Serve.Json.Str "two\nlines\twith\x01controls") ]));
    tc "nan and infinity print as null" (fun () ->
        check Alcotest.string "nan" "null"
          (Serve.Json.to_string (Serve.Json.Float Float.nan));
        check Alcotest.string "inf" "null"
          (Serve.Json.to_string (Serve.Json.Float Float.infinity)));
    tc "duplicate keys are rejected" (fun () ->
        ignore (parse_err {|{"a":1,"a":2}|}));
    tc "trailing bytes are rejected" (fun () ->
        ignore (parse_err {|{"a":1} trailing|}));
    tc "unterminated string is rejected" (fun () ->
        ignore (parse_err {|{"a":"unclosed}|}));
    tc "raw control characters in strings are rejected" (fun () ->
        ignore (parse_err "{\"a\":\"x\ny\"}"));
    tc "error messages name the byte offset" (fun () ->
        let e = parse_err "[1,2,@]" in
        check Alcotest.bool "offset named" true
          (String.length e > 0
          && List.exists
               (fun i ->
                 i + 6 <= String.length e && String.sub e i 6 = "byte 5")
               (List.init (String.length e) Fun.id)));
    tc "pathological nesting depth is rejected, not a stack overflow"
      (fun () ->
        let deep = String.make 4096 '[' in
        ignore (parse_err deep));
    tc "accessors decode the request shapes" (fun () ->
        let v = parse_ok {|{"n":3,"f":4.0,"s":"x","b":true,"l":["a","b"]}|} in
        check Alcotest.(option int) "int" (Some 3)
          (Option.bind (Serve.Json.member "n" v) Serve.Json.to_int);
        check Alcotest.(option int) "integral float as int" (Some 4)
          (Option.bind (Serve.Json.member "f" v) Serve.Json.to_int);
        check Alcotest.(option string) "str" (Some "x")
          (Option.bind (Serve.Json.member "s" v) Serve.Json.to_str);
        check Alcotest.(option bool) "bool" (Some true)
          (Option.bind (Serve.Json.member "b" v) Serve.Json.to_bool);
        check Alcotest.(option (list string)) "list" (Some [ "a"; "b" ])
          (Option.bind (Serve.Json.member "l" v) Serve.Json.str_list);
        check Alcotest.(option (list string)) "single str as list"
          (Some [ "solo" ])
          (Serve.Json.str_list (Serve.Json.Str "solo")));
  ]

(* ------------------------------------------------------------------ *)
(* Content-hash artifact cache                                        *)

let load_state cache path =
  match Serve.Cache.load cache path with
  | Ok (_art, _key, state) -> Serve.Cache.state_name state
  | Error msg -> Alcotest.failf "load %s: %s" path msg

let cache_tests =
  [
    tc "second load of the same bytes is a hit" (fun () ->
        let p = tiny_model "m1" (Filename.concat tmp "serve_cache_a.xmi") in
        let c = Serve.Cache.create () in
        check Alcotest.string "cold" "miss" (load_state c p);
        check Alcotest.string "warm" "hit" (load_state c p);
        let s = Serve.Cache.stats c in
        check Alcotest.int "one entry" 1 s.Serve.Cache.cs_entries;
        check Alcotest.int "one hit" 1 s.Serve.Cache.cs_hits;
        check Alcotest.int "one miss" 1 s.Serve.Cache.cs_misses);
    tc "keys are content hashes, not paths" (fun () ->
        let a = tiny_model "same" (Filename.concat tmp "serve_cache_b.xmi") in
        let b = write_file (Filename.concat tmp "serve_cache_c.xmi")
            (read_file a) in
        let c = Serve.Cache.create () in
        check Alcotest.string "first path" "miss" (load_state c a);
        check Alcotest.string "same bytes, other path" "hit" (load_state c b);
        check Alcotest.int "one entry"
          1 (Serve.Cache.stats c).Serve.Cache.cs_entries);
    tc "editing the file changes the key" (fun () ->
        let p = tiny_model "v1" (Filename.concat tmp "serve_cache_d.xmi") in
        let c = Serve.Cache.create () in
        check Alcotest.string "cold" "miss" (load_state c p);
        ignore (tiny_model "v2" p);
        check Alcotest.string "edited file misses" "miss" (load_state c p));
    tc "entry count bound evicts least-recently-used" (fun () ->
        let p i =
          tiny_model
            (Printf.sprintf "lru%d" i)
            (Filename.concat tmp (Printf.sprintf "serve_cache_lru%d.xmi" i))
        in
        let a = p 0 and b = p 1 and cc = p 2 in
        let c = Serve.Cache.create ~max_entries:2 () in
        check Alcotest.string "a cold" "miss" (load_state c a);
        check Alcotest.string "b cold" "miss" (load_state c b);
        (* touch a so b is now least recently used *)
        check Alcotest.string "a warm" "hit" (load_state c a);
        check Alcotest.string "c cold" "miss" (load_state c cc);
        let s = Serve.Cache.stats c in
        check Alcotest.int "bounded" 2 s.Serve.Cache.cs_entries;
        check Alcotest.int "one eviction" 1 s.Serve.Cache.cs_evictions;
        check Alcotest.string "a survived" "hit" (load_state c a);
        check Alcotest.string "b was evicted" "miss" (load_state c b));
    tc "byte budget evicts, but never the newest entry" (fun () ->
        let a = tiny_model "big1" (Filename.concat tmp "serve_cache_e.xmi") in
        let b = tiny_model "big2" (Filename.concat tmp "serve_cache_f.xmi") in
        (* budget below one model: each insert evicts the other, the
           just-inserted entry always stays *)
        let c = Serve.Cache.create ~max_bytes:1 () in
        check Alcotest.string "a cold" "miss" (load_state c a);
        check Alcotest.int "oversized single entry kept" 1
          (Serve.Cache.stats c).Serve.Cache.cs_entries;
        check Alcotest.string "a resident" "hit" (load_state c a);
        check Alcotest.string "b cold" "miss" (load_state c b);
        let s = Serve.Cache.stats c in
        check Alcotest.int "still one entry" 1 s.Serve.Cache.cs_entries;
        check Alcotest.bool "eviction happened" true
          (s.Serve.Cache.cs_evictions >= 1));
    tc "persist dir refills a fresh cache from snapshots" (fun () ->
        let dir = fresh_dir (Filename.concat tmp "serve_cache_persist") in
        let p = tiny_model "persist_me"
            (Filename.concat tmp "serve_cache_g.xmi") in
        let c1 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "cold parse" "miss" (load_state c1 p);
        check Alcotest.int "snapshot written" 1
          (Serve.Cache.stats c1).Serve.Cache.cs_persisted;
        (* a new cache (fresh process, same dir) refills from the
           snapshot instead of re-parsing the XMI *)
        let c2 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "warm restart" "snap" (load_state c2 p);
        check Alcotest.int "refill counted" 1
          (Serve.Cache.stats c2).Serve.Cache.cs_snap_refills;
        check Alcotest.string "then resident" "hit" (load_state c2 p));
    tc "corrupt persisted snapshots fall back to the source" (fun () ->
        let dir = fresh_dir (Filename.concat tmp "serve_cache_persist_bad") in
        let p = tiny_model "corrupt_snap"
            (Filename.concat tmp "serve_cache_h.xmi") in
        let c1 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "cold" "miss" (load_state c1 p);
        (* corrupt every persisted snapshot in the dir *)
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".sumb" then
              ignore
                (write_file (Filename.concat dir f) "\xd3SUMBgarbage"))
          (Sys.readdir dir);
        let c2 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "falls back to parsing" "miss"
          (load_state c2 p);
        check Alcotest.int "no refill" 0
          (Serve.Cache.stats c2).Serve.Cache.cs_snap_refills);
    tc "snapshot sources are not re-persisted" (fun () ->
        let dir = fresh_dir (Filename.concat tmp "serve_cache_persist_sumb") in
        let snap = Lazy.force demo_snapshot in
        let c = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "snapshot loads" "miss" (load_state c snap);
        check Alcotest.int "nothing persisted" 0
          (Serve.Cache.stats c).Serve.Cache.cs_persisted);
    tc "load errors carry the standard diagnostics" (fun () ->
        let c = Serve.Cache.create () in
        let missing = Filename.concat tmp "serve_cache_missing.xmi" in
        (match Serve.Cache.load c missing with
         | Ok _ -> Alcotest.fail "expected an error"
         | Error msg ->
           check Alcotest.string "missing file" (missing ^ ": no such file")
             msg);
        match Serve.Cache.load c tmp with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error msg ->
          check Alcotest.string "directory"
            (tmp ^ ": is a directory, not a model file") msg);
    tc "bounds below 1 are rejected" (fun () ->
        (match Serve.Cache.create ~max_entries:0 () with
         | _c -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ());
        match Serve.Cache.create ~max_bytes:0 () with
        | _c -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Daemon protocol                                                    *)

(* Send one line; expect one parsed response object back. *)
let send d line =
  let response, continue = Serve.Daemon.handle_line d line in
  match response with
  | None -> Alcotest.failf "no response to %S" line
  | Some r ->
    check Alcotest.bool "response is one line" false (String.contains r '\n');
    (match Serve.Json.parse r with
     | Error e -> Alcotest.failf "unparseable response %S: %s" r e
     | Ok v -> (v, continue))

let rmember key v = Serve.Json.member key v

let rstr key v =
  match Option.bind (rmember key v) Serve.Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string %S" key

let rint key v =
  match Option.bind (rmember key v) Serve.Json.to_int with
  | Some n -> n
  | None -> Alcotest.failf "response lacks int %S" key

let rbool key v =
  match Option.bind (rmember key v) Serve.Json.to_bool with
  | Some b -> b
  | None -> Alcotest.failf "response lacks bool %S" key

(* The protocol-error shape: ok:false, a non-empty error, and the
   daemon keeps serving (checked by following up with a healthy
   request). *)
let assert_protocol_error d line =
  let v, continue = send d line in
  check Alcotest.bool "ok:false" false (rbool "ok" v);
  check Alcotest.bool "error is non-empty" true (rstr "error" v <> "");
  check Alcotest.bool "daemon keeps serving" true continue;
  let model = Lazy.force demo_model in
  let v, _ = send d (Printf.sprintf {|{"op":"info","model":%S}|} model) in
  check Alcotest.bool "healthy request still served" true (rbool "ok" v)

let daemon_tests =
  [
    tc "blank lines are skipped without a response" (fun () ->
        let d = Serve.Daemon.create () in
        check Alcotest.bool "none" true
          (fst (Serve.Daemon.handle_line d "   ") = None));
    tc "hostile lines answer one error line each, daemon keeps serving"
      (fun () ->
        let d = Serve.Daemon.create () in
        List.iter (assert_protocol_error d)
          [
            "garbage";
            {|{"op":"lint","models":}|};
            "42";
            {|["not","an","object"]|};
            {|{"model":"x.xmi"}|};
            {|{"op":17}|};
            {|{"op":"frobnicate"}|};
            {|{"op":"info"}|};
            {|{"op":"info","model":17}|};
            {|{"op":"info","model":"x.xmi","bogus":1}|};
            {|{"op":"info","model":"x.xmi","id":[3]}|};
            {|{"op":"lint","models":[]}|};
            {|{"op":"lint","model":"a.xmi","models":["b.xmi"]}|};
            {|{"op":"gen","model":"x.xmi","lang":"cobol"}|};
            {|{"op":"validate","model":"x.xmi","format":"yaml"}|};
            {|{"op":"simulate","model":"x.xmi","rtl":"yes"}|};
            {|{"op":"stats","model":"x.xmi"}|};
          ]);
    tc "oversized request lines are refused before parsing" (fun () ->
        let d = Serve.Daemon.create () in
        let big =
          Printf.sprintf {|{"op":"info","model":"%s"}|}
            (String.make (Serve.Daemon.max_line_bytes + 1) 'a')
        in
        assert_protocol_error d big);
    tc "a missing model is an op failure, not a dead daemon" (fun () ->
        let d = Serve.Daemon.create () in
        let missing = Filename.concat tmp "serve_daemon_missing.xmi" in
        let v, continue =
          send d (Printf.sprintf {|{"op":"info","model":%S}|} missing)
        in
        check Alcotest.bool "ok:false" false (rbool "ok" v);
        check Alcotest.int "exit 1" 1 (rint "exit" v);
        check Alcotest.string "diagnostic on the error stream"
          (missing ^ ": no such file\n") (rstr "error" v);
        check Alcotest.bool "keeps serving" true continue);
    tc "a corrupt snapshot is an op failure with one diagnostic line"
      (fun () ->
        let d = Serve.Daemon.create () in
        let bad =
          write_file
            (Filename.concat tmp "serve_daemon_bad.sumb")
            "\xd3SUMBgarbage"
        in
        let v, _ =
          send d (Printf.sprintf {|{"op":"validate","model":%S}|} bad)
        in
        check Alcotest.int "exit 1" 1 (rint "exit" v);
        let err = rstr "error" v in
        check Alcotest.bool "one line" true
          (String.length err > 0
          && String.index err '\n' = String.length err - 1);
        let model = Lazy.force demo_model in
        let v, _ = send d (Printf.sprintf {|{"op":"info","model":%S}|} model) in
        check Alcotest.bool "keeps serving" true (rbool "ok" v));
    tc "ids are echoed verbatim" (fun () ->
        let d = Serve.Daemon.create () in
        let model = Lazy.force demo_model in
        let v, _ =
          send d (Printf.sprintf {|{"id":42,"op":"info","model":%S}|} model)
        in
        check Alcotest.int "int id" 42 (rint "id" v);
        let v, _ =
          send d
            (Printf.sprintf {|{"id":"req-7","op":"info","model":%S}|} model)
        in
        check Alcotest.string "string id" "req-7" (rstr "id" v));
    tc "cache states progress miss -> hit across requests" (fun () ->
        let d = Serve.Daemon.create () in
        let model = Lazy.force demo_model in
        let state v =
          match rmember "cache" v with
          | Some (Serve.Json.List [ entry ]) -> rstr "state" entry
          | Some _ | None -> Alcotest.fail "expected one cache entry"
        in
        let v, _ = send d (Printf.sprintf {|{"op":"info","model":%S}|} model) in
        check Alcotest.string "cold" "miss" (state v);
        let v, _ = send d (Printf.sprintf {|{"op":"info","model":%S}|} model) in
        check Alcotest.string "warm" "hit" (state v);
        let v, _ =
          send d (Printf.sprintf {|{"op":"validate","model":%S}|} model)
        in
        check Alcotest.string "shared across ops" "hit" (state v));
    tc "a persist dir makes the next daemon start warm" (fun () ->
        let dir = fresh_dir (Filename.concat tmp "serve_daemon_persist") in
        let model = Lazy.force demo_model in
        let state v =
          match rmember "cache" v with
          | Some (Serve.Json.List [ entry ]) -> rstr "state" entry
          | Some _ | None -> Alcotest.fail "expected one cache entry"
        in
        let d1 = Serve.Daemon.create ~persist_dir:dir () in
        let v, _ =
          send d1 (Printf.sprintf {|{"op":"info","model":%S}|} model)
        in
        check Alcotest.string "cold" "miss" (state v);
        let d2 = Serve.Daemon.create ~persist_dir:dir () in
        let v, _ =
          send d2 (Printf.sprintf {|{"op":"info","model":%S}|} model)
        in
        check Alcotest.string "snapshot refill" "snap" (state v));
    tc "stats reports request, cache and memo counters" (fun () ->
        let d = Serve.Daemon.create () in
        let model = Lazy.force demo_model in
        ignore (send d (Printf.sprintf {|{"op":"info","model":%S}|} model));
        ignore (send d "garbage");
        let v, _ = send d {|{"op":"stats"}|} in
        check Alcotest.bool "ok" true (rbool "ok" v);
        check Alcotest.int "requests counted" 3 (rint "requests" v);
        check Alcotest.int "protocol errors counted" 1
          (rint "protocol_errors" v);
        (match rmember "cache" v with
         | Some cache ->
           check Alcotest.int "one miss" 1 (rint "misses" cache);
           check Alcotest.int "one entry" 1 (rint "entries" cache)
         | None -> Alcotest.fail "no cache stats");
        match rmember "asl_memo" v with
        | Some memo -> ignore (rint "cap" memo)
        | None -> Alcotest.fail "no asl_memo stats");
    tc "quit acknowledges and stops the loop" (fun () ->
        let d = Serve.Daemon.create () in
        let v, continue = send d {|{"op":"quit","id":9}|} in
        check Alcotest.bool "ok" true (rbool "ok" v);
        check Alcotest.int "id echoed" 9 (rint "id" v);
        check Alcotest.bool "loop stops" false continue);
  ]

(* ------------------------------------------------------------------ *)
(* Serve-vs-CLI byte-identity                                         *)

(* Run the same op one-shot and through a daemon; stdout, stderr and
   exit code must agree byte-for-byte. *)
let assert_differential d ~args ~request =
  let code, stdout, stderr = run_cli args in
  let v, _ = send d request in
  check Alcotest.int
    (Printf.sprintf "exit (%s)" (String.concat " " args))
    code (rint "exit" v);
  check Alcotest.string
    (Printf.sprintf "stdout (%s)" (String.concat " " args))
    stdout (rstr "output" v);
  check Alcotest.string
    (Printf.sprintf "stderr (%s)" (String.concat " " args))
    stderr (rstr "error" v)

let differential_tests =
  let req fmt = Printf.sprintf fmt in
  [
    tc "model ops are byte-identical, cold and warm, at every job count"
      (fun () ->
        let model = Lazy.force demo_model in
        let snap = Lazy.force demo_snapshot in
        let d = Serve.Daemon.create () in
        let cases =
          [
            ([ "validate"; model ],
             req {|{"op":"validate","model":%S}|} model);
            ([ "validate"; "--format"; "json"; model ],
             req {|{"op":"validate","model":%S,"format":"json"}|} model);
            ([ "lint"; model ], req {|{"op":"lint","model":%S}|} model);
            ([ "lint"; "--jobs"; "4"; "--format"; "json"; model; snap ],
             req {|{"op":"lint","models":[%S,%S],"jobs":4,"format":"json"}|}
               model snap);
            ([ "lint"; "--only"; "SC"; "--no-hdl"; model ],
             req {|{"op":"lint","model":%S,"only":["SC"],"no_hdl":true}|}
               model);
            ([ "info"; model ], req {|{"op":"info","model":%S}|} model);
            ([ "gen"; model; "vhdl" ],
             req {|{"op":"gen","model":%S,"lang":"vhdl"}|} model);
            ([ "simulate"; "--events"; "toggle,toggle"; model ],
             req {|{"op":"simulate","model":%S,"events":"toggle,toggle"}|}
               model);
            ([ "simulate"; "--rtl"; "--events"; "toggle"; snap ],
             req {|{"op":"simulate","model":%S,"rtl":true,"events":"toggle"}|}
               snap);
            ([ "simulate"; "--metrics"; "--events"; "toggle"; model ],
             req
               {|{"op":"simulate","model":%S,"metrics":true,"events":"toggle"}|}
               model);
            ([ "trace"; "--events"; "toggle"; model ],
             req {|{"op":"trace","model":%S,"events":"toggle"}|} model);
            ([ "partition"; model ],
             req {|{"op":"partition","model":%S}|} model);
            ([ "partition"; "--budget"; "2"; model ],
             req {|{"op":"partition","model":%S,"budget":2}|} model);
            ([ "analyze"; "--metrics"; "--jobs"; "2"; model ],
             req {|{"op":"analyze","model":%S,"metrics":true,"jobs":2}|}
               model);
            ([ "inject"; "--seed"; "3"; "--faults"; "5"; model ],
             req {|{"op":"inject","model":%S,"seed":3,"faults":5}|} model);
            ([ "inject"; "--format"; "json"; "--jobs"; "4"; model ],
             req {|{"op":"inject","model":%S,"format":"json","jobs":4}|}
               model);
          ]
        in
        (* twice: first pass misses the daemon cache, second is all
           warm hits — both must match the one-shot CLI *)
        List.iter
          (fun (args, request) -> assert_differential d ~args ~request)
          cases;
        List.iter
          (fun (args, request) -> assert_differential d ~args ~request)
          cases);
    tc "failure diagnostics are byte-identical" (fun () ->
        let model = Lazy.force demo_model in
        let missing = Filename.concat tmp "serve_diff_missing.xmi" in
        let garbage =
          write_file (Filename.concat tmp "serve_diff_garbage.xmi") "not xml"
        in
        let d = Serve.Daemon.create () in
        List.iter
          (fun (args, request) -> assert_differential d ~args ~request)
          [
            ([ "info"; missing ], req {|{"op":"info","model":%S}|} missing);
            ([ "lint"; garbage; model ],
             req {|{"op":"lint","models":[%S,%S]}|} garbage model);
            ([ "lint"; "--only"; "NOPE"; model ],
             req {|{"op":"lint","model":%S,"only":["NOPE"]}|} model);
            ([ "analyze"; "--disable"; "BOGUS,SC"; model ],
             req {|{"op":"analyze","model":%S,"disable":["BOGUS","SC"]}|}
               model);
            ([ "lint"; "--jobs"; "0"; model ],
             req {|{"op":"lint","model":%S,"jobs":0}|} model);
            ([ "simulate"; "--machine"; "NoSuch"; model ],
             req {|{"op":"simulate","model":%S,"machine":"NoSuch"}|} model);
            ([ "inject"; "--faults=-1"; model ],
             req {|{"op":"inject","model":%S,"faults":-1}|} model);
          ]);
    tc "pack through the daemon writes identical snapshots" (fun () ->
        let model = Lazy.force demo_model in
        let out_cli = Filename.concat tmp "serve_diff_cli.sumb" in
        let out_d = Filename.concat tmp "serve_diff_daemon.sumb" in
        let code, _, stderr = run_cli [ "pack"; model; "-o"; out_cli ] in
        if code <> 0 then
          Alcotest.failf "pack: exit %d (stderr: %s)" code stderr;
        let d = Serve.Daemon.create () in
        let v, _ =
          send d (req {|{"op":"pack","model":%S,"out":%S}|} model out_d)
        in
        check Alcotest.bool "ok" true (rbool "ok" v);
        check Alcotest.string "identical snapshot bytes" (read_file out_cli)
          (read_file out_d));
  ]

(* ------------------------------------------------------------------ *)
(* Per-request telemetry isolation                                    *)

let metrics_tests =
  [
    tc "identical metrics requests report identical counters" (fun () ->
        let model = Lazy.force demo_model in
        let d = Serve.Daemon.create () in
        let request =
          Printf.sprintf
            {|{"op":"simulate","model":%S,"metrics":true,"events":"toggle,toggle"}|}
            model
        in
        let v1, _ = send d request in
        (* an interleaved metrics-carrying request must not leak into
           the next one's report *)
        ignore
          (send d
             (Printf.sprintf {|{"op":"analyze","model":%S,"metrics":true}|}
                model));
        let v2, _ = send d request in
        check Alcotest.string "identical output" (rstr "output" v1)
          (rstr "output" v2);
        check Alcotest.bool "metrics present in output" true
          (String.length (rstr "output" v1) > 0));
    tc "metrics reports match the one-shot CLI at any cache state"
      (fun () ->
        let model = Lazy.force demo_model in
        let d = Serve.Daemon.create () in
        let args = [ "analyze"; "--metrics"; model ] in
        let request =
          Printf.sprintf {|{"op":"analyze","model":%S,"metrics":true}|} model
        in
        assert_differential d ~args ~request;
        assert_differential d ~args ~request);
  ]

(* ------------------------------------------------------------------ *)
(* Resilience: deadlines, degradation, health, quarantine, shutdown   *)

let serve_counter v key =
  match rmember "serve" v with
  | Some s -> rint key s
  | None -> Alcotest.fail "stats response lacks the serve ledger"

(* The ledger invariant the chaos suite holds the daemon to. *)
let assert_ledger_reconciles v =
  check Alcotest.int "ledger reconciles" (rint "requests" v)
    (rint "protocol_errors" v
    + serve_counter v "completed"
    + serve_counter v "timeouts"
    + serve_counter v "resource_exhausted"
    + serve_counter v "sheds"
    + serve_counter v "drained")

let resilience_tests =
  [
    tc "health answers protocol version and occupancy" (fun () ->
        let d = Serve.Daemon.create ~deadline_ms:5000 ~max_queue:7 () in
        let model = Lazy.force demo_model in
        ignore (send d (Printf.sprintf {|{"op":"info","model":%S}|} model));
        let v, continue = send d {|{"op":"health","id":3}|} in
        check Alcotest.bool "ok" true (rbool "ok" v);
        check Alcotest.bool "keeps serving" true continue;
        check Alcotest.int "protocol version"
          Serve.Daemon.protocol_version (rint "protocol" v);
        check Alcotest.int "uptime counts this request" 2
          (rint "uptime_requests" v);
        check Alcotest.int "configured deadline" 5000 (rint "deadline_ms" v);
        check Alcotest.int "configured queue bound" 7 (rint "max_queue" v);
        (match rmember "cache" v with
         | Some cache ->
           check Alcotest.int "one resident entry" 1 (rint "entries" cache);
           check Alcotest.bool "bytes charged" true (rint "bytes" cache > 0)
         | None -> Alcotest.fail "no cache occupancy");
        match rmember "asl_memo" v with
        | Some memo -> ignore (rint "cap" memo)
        | None -> Alcotest.fail "no asl_memo occupancy");
    tc "fuel expiry answers a typed timeout, warm retry is byte-identical"
      (fun () ->
        let model = Lazy.force demo_model in
        let d = Serve.Daemon.create () in
        let v, continue =
          send d
            (Printf.sprintf
               {|{"op":"simulate","model":%S,"rtl":true,"fuel":2}|} model)
        in
        check Alcotest.bool "ok:false" false (rbool "ok" v);
        check Alcotest.string "typed code" "timeout" (rstr "code" v);
        check Alcotest.string "deterministic diagnostic"
          "budget expired: fuel limit 2 exhausted\n" (rstr "error" v);
        check Alcotest.bool "daemon keeps serving" true continue;
        (* the expired request must not have poisoned the cache: the
           warm retry matches the one-shot CLI byte-for-byte *)
        assert_differential d
          ~args:[ "simulate"; "--rtl"; model ]
          ~request:
            (Printf.sprintf {|{"op":"simulate","model":%S,"rtl":true}|} model);
        let v, _ = send d {|{"op":"stats"}|} in
        check Alcotest.int "timeout counted" 1 (serve_counter v "timeouts");
        assert_ledger_reconciles v);
    tc "fuel cancels analyze and inject too" (fun () ->
        let model = Lazy.force demo_model in
        let d = Serve.Daemon.create () in
        List.iter
          (fun req ->
            let v, _ = send d req in
            check Alcotest.string "typed code" "timeout" (rstr "code" v))
          [
            Printf.sprintf {|{"op":"analyze","model":%S,"fuel":1}|} model;
            Printf.sprintf
              {|{"op":"inject","model":%S,"faults":3,"fuel":1}|} model;
          ];
        let v, _ = send d {|{"op":"stats"}|} in
        check Alcotest.int "both counted" 2 (serve_counter v "timeouts"));
    tc "wall-clock deadline requests stay well-formed" (fun () ->
        let model = Lazy.force demo_model in
        let d = Serve.Daemon.create () in
        (* can't pin whether 1 ms suffices on this machine — pin the
           protocol: either a clean success or a typed timeout *)
        let v, continue =
          send d
            (Printf.sprintf
               {|{"op":"analyze","model":%S,"deadline_ms":1}|} model)
        in
        check Alcotest.bool "keeps serving" true continue;
        (if rbool "ok" v then ()
         else check Alcotest.string "typed code" "timeout" (rstr "code" v));
        let v, _ = send d {|{"op":"stats"}|} in
        assert_ledger_reconciles v);
    tc "budget fields are validated" (fun () ->
        let d = Serve.Daemon.create () in
        List.iter (assert_protocol_error d)
          [
            {|{"op":"simulate","model":"x.xmi","fuel":3,"deadline_ms":5}|};
            {|{"op":"analyze","model":"x.xmi","fuel":-1}|};
            {|{"op":"inject","model":"x.xmi","deadline_ms":0}|};
            (* only the long-running ops take budgets *)
            {|{"op":"validate","model":"x.xmi","fuel":3}|};
            {|{"op":"lint","model":"x.xmi","deadline_ms":5}|};
          ]);
    tc "degradation evicts caches, retries once, answers typed error"
      (fun () ->
        let d = Serve.Daemon.create () in
        let model = Lazy.force demo_model in
        ignore (send d (Printf.sprintf {|{"op":"info","model":%S}|} model));
        (* first crash: caches evicted, thunk retried and succeeds *)
        let crashes = ref 1 in
        (match
           Serve.Daemon.with_degradation d (fun () ->
               if !crashes > 0 then begin
                 decr crashes;
                 raise Out_of_memory
               end
               else 42)
         with
         | Ok n -> check Alcotest.int "retry succeeded" 42 n
         | Error e -> Alcotest.failf "expected recovery, got: %s" e);
        (* the crash evicted the resident artifact cache *)
        let v, _ = send d (Printf.sprintf {|{"op":"info","model":%S}|} model) in
        (match rmember "cache" v with
         | Some (Serve.Json.List [ entry ]) ->
           check Alcotest.string "cache was evicted" "miss"
             (rstr "state" entry)
         | Some _ | None -> Alcotest.fail "expected one cache entry");
        (* a double crash is a typed error, not a dead daemon *)
        (match Serve.Daemon.with_degradation d (fun () -> raise Out_of_memory)
         with
         | Ok _ -> Alcotest.fail "expected Error"
         | Error msg ->
           check Alcotest.bool "diagnostic names the crash" true
             (String.length msg > 0));
        (* budget expiry passes through untouched *)
        (match
           Serve.Daemon.with_degradation d (fun () ->
               raise (Exec.Budget.Expired "x"))
         with
         | Ok _ | Error _ -> Alcotest.fail "Expired must pass through"
         | exception Exec.Budget.Expired _ -> ());
        let v, _ = send d {|{"op":"stats"}|} in
        check Alcotest.int "degradations counted" 2
          (serve_counter v "degradations"));
    tc "corrupt persisted snapshots are quarantined and counted" (fun () ->
        let dir = fresh_dir (Filename.concat tmp "serve_quarantine") in
        let p =
          tiny_model "quarantine_me"
            (Filename.concat tmp "serve_quarantine_src.xmi")
        in
        let c1 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "cold" "miss" (load_state c1 p);
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".sumb" then
              ignore (write_file (Filename.concat dir f) "\xd3SUMBgarbage"))
          (Sys.readdir dir);
        let c2 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "falls back to parsing" "miss"
          (load_state c2 p);
        check Alcotest.int "quarantine counted" 1
          (Serve.Cache.stats c2).Serve.Cache.cs_quarantined;
        check Alcotest.bool "rotten file renamed aside" true
          (Array.exists
             (fun f -> Filename.check_suffix f ".corrupt")
             (Sys.readdir dir));
        (* the reparse self-heals: a fresh, valid snapshot replaces the
           quarantined one, and the next cold start refills from it
           without touching quarantine again *)
        let c3 = Serve.Cache.create ~persist_dir:dir () in
        check Alcotest.string "healed snapshot refills" "snap"
          (load_state c3 p);
        check Alcotest.int "inspected at most once" 0
          (Serve.Cache.stats c3).Serve.Cache.cs_quarantined);
    tc "request_stop is observable and sticky" (fun () ->
        let d = Serve.Daemon.create () in
        check Alcotest.bool "initially live" false
          (Serve.Daemon.stop_requested d);
        Serve.Daemon.request_stop d;
        check Alcotest.bool "stopping" true (Serve.Daemon.stop_requested d);
        Serve.Daemon.request_stop d;
        check Alcotest.bool "idempotent" true
          (Serve.Daemon.stop_requested d));
  ]

(* ------------------------------------------------------------------ *)
(* Protocol boundary properties                                       *)

let qcheck_depth_cap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"json: nesting accepted through depth 129, rejected past it"
       QCheck.(int_range 1 40)
       (fun extra ->
         let nest n =
           String.concat "" (List.init n (fun _ -> "["))
           ^ String.concat "" (List.init n (fun _ -> "]"))
         in
         let accepted n =
           match Serve.Json.parse (nest n) with
           | Ok _ -> true
           | Error _ -> false
         in
         accepted 129 && (not (accepted 130)) && not (accepted (129 + extra))))

let qcheck_line_cap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20
       ~name:"daemon: line cap accepts exactly-at-limit, refuses one past"
       QCheck.(int_range 0 64)
       (fun slack ->
         let d = Serve.Daemon.create () in
         (* pad a healthy request with trailing blanks (trimmed by the
            protocol) to hit an exact byte length *)
         let padded target =
           let body = {|{"op":"stats"}|} in
           body ^ String.make (target - String.length body) ' '
         in
         let at_limit, _ =
           send d (padded (Serve.Daemon.max_line_bytes - slack))
         in
         let over, _ =
           send d
             (padded (Serve.Daemon.max_line_bytes + 1 + slack))
         in
         rbool "ok" at_limit
         && (not (rbool "ok" over))
         && rstr "error" over
            = Printf.sprintf "request line exceeds %d bytes"
                Serve.Daemon.max_line_bytes))

let () =
  Alcotest.run "serve"
    [
      ("json", json_tests);
      ("cache", cache_tests);
      ("daemon", daemon_tests);
      ("differential", differential_tests);
      ("metrics", metrics_tests);
      ("resilience", resilience_tests @ [ qcheck_depth_cap; qcheck_line_cap ]);
    ]
