(* Quickstart: build a model with the public API, check it, round-trip
   it through XMI, and generate hardware from its state machine.

   Run with: dune exec examples/quickstart.exe *)

open Uml

let () =
  (* 1. A model with a class and a state machine (a blinking LED). *)
  let m = Model.create "quickstart" in
  let led =
    Classifier.make
      ~attributes:[ Classifier.property "on" Dtype.Boolean ]
      ~operations:
        [ Classifier.operation ~body:"self.on := not self.on; return self.on;"
            "toggle" ]
      "Led"
  in
  Model.add m (Model.E_classifier led);

  let off = Smachine.simple_state ~entry:"level := 0;" "Off" in
  let on = Smachine.simple_state ~entry:"level := 1;" "On" in
  let init = Smachine.pseudostate Smachine.Initial in
  let t0 =
    Smachine.transition ~source:init.Smachine.ps_id ~target:off.Smachine.st_id ()
  in
  let t1 =
    Smachine.transition
      ~triggers:[ Smachine.Signal_trigger "toggle" ]
      ~source:off.Smachine.st_id ~target:on.Smachine.st_id ()
  in
  let t2 =
    Smachine.transition
      ~triggers:[ Smachine.Signal_trigger "toggle" ]
      ~source:on.Smachine.st_id ~target:off.Smachine.st_id ()
  in
  let region =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State off; Smachine.State on ]
      [ t0; t1; t2 ]
  in
  let blink = Smachine.make ~context:led.Classifier.cl_id "Blink" [ region ] in
  Model.add m (Model.E_state_machine blink);

  (* 2. Well-formedness. *)
  let diagnostics = Wfr.check m in
  Printf.printf "well-formedness: %d diagnostics\n" (List.length diagnostics);
  List.iter (fun d -> print_endline ("  " ^ Wfr.to_string d)) diagnostics;

  (* 3. Execute the model (xUML style). *)
  let engine = Statechart.Engine.create blink in
  Statechart.Engine.start engine;
  Printf.printf "machine starts in: %s\n" (Statechart.Engine.signature engine);
  Statechart.Engine.dispatch engine (Statechart.Event.make "toggle");
  Printf.printf "after toggle:      %s\n" (Statechart.Engine.signature engine);

  (* 4. XMI round-trip. *)
  let text = Xmi.Write.to_string m in
  let m' = Xmi.Read.model_of_string text in
  Printf.printf "XMI round-trip equal: %b (%d bytes)\n" (Model.equal m m')
    (String.length text);

  (* 5. Generate hardware for the state machine. *)
  (match Statechart.Flatten.flatten blink with
   | Error reason -> Printf.printf "not flattenable: %s\n" reason
   | Ok flat -> (
     match Codegen.Fsm_compile.compile flat with
     | Error reason -> Printf.printf "not synthesizable: %s\n" reason
     | Ok hmod ->
       let design = Hdl.Module_.design ~top:hmod.Hdl.Module_.mod_name [ hmod ] in
       let vhdl = Codegen.Vhdl.of_design design in
       Printf.printf "generated VHDL (%d lines):\n%s\n"
         (List.length (String.split_on_char '\n' vhdl))
         vhdl))
