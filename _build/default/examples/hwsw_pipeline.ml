(* HW/SW codesign of an image pipeline: model the pipeline as a UML
   activity, extract a task graph, and compare partitioning algorithms
   under an area budget — the codesign story of the paper's §4.

   Run with: dune exec examples/hwsw_pipeline.exe *)

open Uml

(* A JPEG-encoder-like pipeline: read -> [color conversion, downsample]
   in parallel -> DCT -> quantize -> entropy-code -> write. *)
let build_activity () =
  let read = Activityg.action ~body:"blocks := 64;" "read_frame" in
  let fork = Activityg.fork "split" in
  let color = Activityg.action "color_convert" in
  let down = Activityg.action "downsample" in
  let join = Activityg.join "merge" in
  let dct = Activityg.action "dct" in
  let quant = Activityg.action "quantize" in
  let entropy = Activityg.action "entropy_code" in
  let write = Activityg.action "write_stream" in
  let init = Activityg.initial () in
  let final = Activityg.activity_final () in
  let nodes =
    [ init; read; fork; color; down; join; dct; quant; entropy; write; final ]
  in
  let id = Activityg.node_id in
  let e source target = Activityg.edge ~source:(id source) ~target:(id target) () in
  let edges =
    [
      e init read; e read fork; e fork color; e fork down; e color join;
      e down join; e join dct; e dct quant; e quant entropy; e entropy write;
      e write final;
    ]
  in
  Activityg.make "jpeg_pipeline" nodes edges

(* Profiling-style costs per stage: (sw_time, hw_time, hw_area). *)
let costs = function
  | "read_frame" -> (40, 38, 60)
  | "color_convert" -> (90, 12, 180)
  | "downsample" -> (60, 10, 120)
  | "dct" -> (150, 15, 300)
  | "quantize" -> (70, 9, 140)
  | "entropy_code" -> (120, 30, 260)
  | "write_stream" -> (40, 36, 80)
  | _other -> (50, 10, 100)

let () =
  let act = build_activity () in
  let diagnostics = Wfr.check (let m = Model.create "p" in
                               Model.add m (Model.E_activity act); m) in
  Printf.printf "activity diagnostics: %d\n" (List.length diagnostics);

  let g = Hwsw.Taskgraph.of_activity ~costs act in
  Printf.printf "task graph: %d tasks, %d edges\n"
    (List.length g.Hwsw.Taskgraph.tasks)
    (List.length g.Hwsw.Taskgraph.edges);

  let all_sw = Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g) in
  let all_hw = Hwsw.Schedule.run g (Hwsw.Schedule.all_hw g) in
  Printf.printf "all-SW makespan %d | all-HW makespan %d (area %d)\n"
    all_sw.Hwsw.Schedule.makespan all_hw.Hwsw.Schedule.makespan
    all_hw.Hwsw.Schedule.hw_area;

  print_endline "budget  exhaustive  greedy  improved   speedup";
  List.iter
    (fun budget ->
      let opt = Hwsw.Partition.exhaustive ~budget g in
      let greedy = Hwsw.Partition.greedy ~budget g in
      let improved = Hwsw.Partition.improve ~budget g in
      Printf.printf "%6d  %10d  %6d  %8d   %5.2fx\n" budget
        opt.Hwsw.Partition.cost greedy.Hwsw.Partition.cost
        improved.Hwsw.Partition.cost
        (float_of_int all_sw.Hwsw.Schedule.makespan
        /. float_of_int improved.Hwsw.Partition.cost))
    [ 0; 200; 400; 600; 800; 1200 ];

  (* show the chosen partition at budget 600 *)
  let chosen = Hwsw.Partition.improve ~budget:600 g in
  print_endline "partition at budget 600:";
  List.iter
    (fun (t : Hwsw.Taskgraph.task) ->
      let side =
        match Hwsw.Schedule.side_of chosen.Hwsw.Partition.assignment
                t.Hwsw.Taskgraph.task_id with
        | Hwsw.Schedule.Hw -> "HW"
        | Hwsw.Schedule.Sw -> "SW"
      in
      Printf.printf "  %-14s %s\n" t.Hwsw.Taskgraph.task_name side)
    g.Hwsw.Taskgraph.tasks;
  let sched = Hwsw.Schedule.run g chosen.Hwsw.Partition.assignment in
  print_endline "generated software runner:";
  print_string (Hwsw.Swgen.c_of_schedule ~name:"jpeg_pipeline" g sched);
  print_endline "schedule:";
  List.iter
    (fun (s : Hwsw.Schedule.slot) ->
      let name =
        match Hwsw.Taskgraph.find_task g s.Hwsw.Schedule.slot_task with
        | Some t -> t.Hwsw.Taskgraph.task_name
        | None -> s.Hwsw.Schedule.slot_task
      in
      Printf.printf "  %4d..%4d %s (%s)\n" s.Hwsw.Schedule.slot_start
        s.Hwsw.Schedule.slot_finish name
        (match s.Hwsw.Schedule.slot_side with
         | Hwsw.Schedule.Hw -> "HW"
         | Hwsw.Schedule.Sw -> "SW"))
    sched.Hwsw.Schedule.slots
