examples/uart_soc.mli:
