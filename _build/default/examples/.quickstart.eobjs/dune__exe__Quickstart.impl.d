examples/quickstart.ml: Classifier Codegen Dtype Hdl List Model Printf Smachine Statechart String Uml Wfr Xmi
