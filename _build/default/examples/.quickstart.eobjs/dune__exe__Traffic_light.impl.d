examples/traffic_light.ml: Codegen Dsim List Printf Smachine Statechart String Uml
