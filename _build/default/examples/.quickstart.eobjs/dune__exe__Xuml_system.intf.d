examples/xuml_system.mli:
