examples/xuml_system.ml: Asl Classifier Dtype Interaction List Model Printf Smachine Uml Vspec Wfr Xuml
