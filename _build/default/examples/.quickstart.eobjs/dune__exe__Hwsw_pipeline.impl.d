examples/hwsw_pipeline.ml: Activityg Hwsw List Model Printf Uml Wfr
