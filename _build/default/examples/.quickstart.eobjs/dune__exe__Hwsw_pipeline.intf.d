examples/hwsw_pipeline.mli:
