examples/mda_flow.ml: Classifier Component Dtype List Mda Model Printf Smachine String Uml
