examples/uart_soc.ml: Codegen Dsim Hdl Iplib List Mda Printf Profiles String Uml
