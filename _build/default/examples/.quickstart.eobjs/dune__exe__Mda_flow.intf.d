examples/mda_flow.mli:
