examples/quickstart.mli:
