(* MDA flow: one platform-independent model (PIM) of a protocol
   controller, transformed to platform-specific models (PSMs) for four
   platforms, with full code generation — VHDL, Verilog, SystemC and C
   from the same source model.  This is §3 of the paper made concrete,
   including the "code generation for hardware descriptions" it calls
   for, plus the reuse measurement behind the MDA portability claim.

   Run with: dune exec examples/mda_flow.exe *)

open Uml

(* PIM: an active controller class with a protocol state machine and a
   companion data class using Real (which the hw mapping lowers). *)
let build_pim () =
  let m = Model.create "protocol_ctrl" in
  let sample =
    Classifier.make
      ~attributes:
        [
          Classifier.property "value" Dtype.Real;
          Classifier.property "count" Dtype.Integer;
        ]
      ~operations:
        [
          Classifier.operation
            ~params:
              [
                Classifier.parameter "x" Dtype.Integer;
                Classifier.parameter ~direction:Classifier.Return "r"
                  Dtype.Integer;
              ]
            ~body:"self.count := self.count + x; return self.count;"
            "accumulate";
        ]
      "Sample"
  in
  Model.add m (Model.E_classifier sample);
  let ctrl =
    Classifier.make ~is_active:true
      ~operations:
        [ Classifier.operation ~body:"return 1;" "ready" ]
      "Controller"
  in
  Model.add m (Model.E_classifier ctrl);
  let idle = Smachine.simple_state ~entry:"phase := 0;" "Idle" in
  let syncing = Smachine.simple_state ~entry:"phase := 1;" "Syncing" in
  let active = Smachine.simple_state ~entry:"phase := 2;" "Active" in
  let init = Smachine.pseudostate Smachine.Initial in
  let region =
    Smachine.region
      [
        Smachine.Pseudo init; Smachine.State idle; Smachine.State syncing;
        Smachine.State active;
      ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:idle.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "connect" ]
          ~source:idle.Smachine.st_id ~target:syncing.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "synced" ]
          ~source:syncing.Smachine.st_id ~target:active.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "disconnect" ]
          ~source:active.Smachine.st_id ~target:idle.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "disconnect" ]
          ~source:syncing.Smachine.st_id ~target:idle.Smachine.st_id ();
      ]
  in
  let sm =
    Smachine.make ~context:ctrl.Classifier.cl_id "ProtocolMachine" [ region ]
  in
  Model.add m (Model.E_state_machine sm);
  let port = Component.port "io" in
  let comp = Component.make ~ports:[ port ] "CtrlUnit" in
  Model.add m (Model.E_component comp);
  m

let () =
  let pim = build_pim () in
  Printf.printf "PIM %s: %d elements (%d counting features)\n"
    (Model.name pim) (Model.size pim)
    (Mda.Generate.model_element_count pim);

  let platforms =
    [
      Mda.Platform.asic_vhdl;
      Mda.Platform.fpga_verilog;
      Mda.Platform.virtual_systemc;
      Mda.Platform.sw_c;
    ]
  in
  print_endline "platform          reuse   changed  artifacts (lines)";
  List.iter
    (fun plat ->
      let psm, trace = Mda.Mapping.to_psm plat pim in
      let artifacts = Mda.Generate.artifacts plat psm in
      let total_loc =
        List.fold_left
          (fun acc (_f, text) -> acc + Mda.Generate.loc text)
          0 artifacts
      in
      Printf.printf "%-16s %5.0f%%   %7d  %d file(s), %d lines\n"
        plat.Mda.Platform.plat_name
        (100. *. Mda.Transform.reuse_fraction trace)
        (Mda.Transform.changed_count trace)
        (List.length artifacts) total_loc)
    platforms;

  (* show a slice of two generated artifacts *)
  let show plat n =
    let psm, _trace = Mda.Mapping.to_psm plat pim in
    match Mda.Generate.artifacts plat psm with
    | (file, text) :: _rest ->
      let lines = String.split_on_char '\n' text in
      let slice = List.filteri (fun i _ -> i < n) lines in
      Printf.printf "--- %s (first %d lines) ---\n%s\n" file n
        (String.concat "\n" slice)
    | [] -> ()
  in
  show Mda.Platform.asic_vhdl 16;
  show Mda.Platform.sw_c 18;

  (* the expansion factor the paper's productivity argument rests on *)
  let hw_psm, _ = Mda.Mapping.to_psm Mda.Platform.asic_vhdl pim in
  let sw_psm, _ = Mda.Mapping.to_psm Mda.Platform.sw_c pim in
  let generated =
    List.fold_left
      (fun acc (_f, text) -> acc + Mda.Generate.loc text)
      0
      (Mda.Generate.artifacts Mda.Platform.asic_vhdl hw_psm
      @ Mda.Generate.artifacts Mda.Platform.sw_c sw_psm)
  in
  let model_size = Mda.Generate.model_element_count pim in
  Printf.printf
    "expansion: %d model elements -> %d generated lines (%.1fx)\n"
    model_size generated
    (float_of_int generated /. float_of_int model_size)
