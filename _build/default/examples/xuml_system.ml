(* Executable UML: a whole model run as a system of communicating
   objects (the xUML approach of the paper's §3), with a sequence
   diagram used as a conformance oracle for the observed traffic.

   A Sensor object samples values and signals them to a Filter, which
   forwards every reading above a threshold to a Logger.

   Run with: dune exec examples/xuml_system.exe *)

open Uml

let active_class ?(attrs = []) name machine_builder m =
  let cl = Classifier.make ~is_active:true ~attributes:attrs name in
  let sm = machine_builder cl in
  let cl = { cl with Classifier.cl_behaviors = [ sm.Smachine.sm_id ] } in
  Model.add m (Model.E_classifier cl);
  Model.add m (Model.E_state_machine sm);
  cl

let build_model () =
  let m = Model.create "sensor_chain" in
  (* Logger: counts accepted readings *)
  let _logger =
    active_class
      ~attrs:[ Classifier.property ~default:(Vspec.of_int 0) "logged" Dtype.Integer ]
      "Logger"
      (fun cl ->
        let s = Smachine.simple_state "Ready" in
        let i = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo i; Smachine.State s ]
            [
              Smachine.transition ~source:i.Smachine.ps_id
                ~target:s.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "log" ]
                ~effect:
                  "self.logged := self.logged + 1; print(\"logged \" & e1);"
                ~kind:Smachine.Internal ~source:s.Smachine.st_id
                ~target:s.Smachine.st_id ();
            ]
        in
        Smachine.make ~context:cl.Classifier.cl_id "LoggerSM" [ r ])
      m
  in
  (* Filter: forwards readings above the threshold *)
  let logger_id =
    match Model.classifier_named m "Logger" with
    | Some c -> c.Classifier.cl_id
    | None -> assert false
  in
  let _filter =
    active_class
      ~attrs:
        [
          Classifier.property ~default:(Vspec.of_int 50) "threshold"
            Dtype.Integer;
          Classifier.property "sink" (Dtype.Ref logger_id);
        ]
      "Filter"
      (fun cl ->
        let s = Smachine.simple_state "Filtering" in
        let i = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo i; Smachine.State s ]
            [
              Smachine.transition ~source:i.Smachine.ps_id
                ~target:s.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "reading" ]
                ~guard:"e1 > self.threshold"
                ~effect:"send log(e1) to self.sink;" ~kind:Smachine.Internal
                ~source:s.Smachine.st_id ~target:s.Smachine.st_id ();
            ]
        in
        Smachine.make ~context:cl.Classifier.cl_id "FilterSM" [ r ])
      m
  in
  (* Sensor: emits a fixed sample burst when kicked *)
  let filter_id =
    match Model.classifier_named m "Filter" with
    | Some c -> c.Classifier.cl_id
    | None -> assert false
  in
  let _sensor =
    active_class
      ~attrs:
        [
          Classifier.property ~default:(Vspec.of_int 0) "i" Dtype.Integer;
          Classifier.property "out" (Dtype.Ref filter_id);
        ]
      "Sensor"
      (fun cl ->
        let idle = Smachine.simple_state "Idle" in
        let burst = Smachine.simple_state "Burst" in
        let i = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo i; Smachine.State idle; Smachine.State burst ]
            [
              Smachine.transition ~source:i.Smachine.ps_id
                ~target:idle.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "measure" ]
                ~source:idle.Smachine.st_id ~target:burst.Smachine.st_id ();
              (* completion loop: 5 samples, values 20,40,60,80,100 *)
              Smachine.transition ~guard:"self.i < 5"
                ~effect:
                  "self.i := self.i + 1; send reading(self.i * 20) to \
                   self.out;"
                ~source:burst.Smachine.st_id ~target:burst.Smachine.st_id ();
              Smachine.transition ~guard:"self.i >= 5"
                ~source:burst.Smachine.st_id ~target:idle.Smachine.st_id ();
            ]
        in
        Smachine.make ~context:cl.Classifier.cl_id "SensorSM" [ r ])
      m
  in
  m

let () =
  let m = build_model () in
  Printf.printf "model: %d elements, well-formed: %b\n" (Model.size m)
    (Wfr.errors (Wfr.check m) = []);

  let sys = Xuml.System.create m in
  let logger = Xuml.System.instantiate sys "Logger" in
  let filter = Xuml.System.instantiate sys "Filter" in
  let sensor = Xuml.System.instantiate sys "Sensor" in
  let store = Xuml.System.store sys in
  ignore (Asl.Store.set_attr store filter "sink" (Asl.Value.V_obj logger));
  ignore (Asl.Store.set_attr store sensor "out" (Asl.Value.V_obj filter));

  Xuml.System.send sys ~to_:sensor "measure";
  let events = Xuml.System.run sys in
  Printf.printf "system quiesced after %d machine events\n" events;
  List.iter
    (fun (name, state) -> Printf.printf "  %-10s in %s\n" name state)
    (Xuml.System.configuration sys);
  (match Asl.Store.get_attr store logger "logged" with
   | Some (Asl.Value.V_int n) ->
     Printf.printf "logger accepted %d of 5 readings (threshold 50)\n" n
   | _other -> ());
  List.iter print_endline (Xuml.System.output sys);

  (* sequence diagram oracle: sensor sends 5 readings to the filter,
     the filter forwards 3 logs (60, 80, 100) to the logger *)
  let sensor_ll = Interaction.lifeline "sensor" in
  let filter_ll = Interaction.lifeline "filter" in
  let logger_ll = Interaction.lifeline "logger" in
  let msg from_ to_ name =
    Interaction.Message
      (Interaction.message ~from_:from_.Interaction.ll_id
         ~to_:to_.Interaction.ll_id name)
  in
  (* The sensor's completion loop emits its whole burst in one
     run-to-completion turn, so the global order is: 5 readings, then
     the 3 forwarded logs.  A loop fragment expresses both bursts. *)
  let expected =
    Interaction.make "expected"
      [ sensor_ll; filter_ll; logger_ll ]
      [
        Interaction.Fragment
          (Interaction.fragment
             (Interaction.Loop (5, Some 5))
             [ Interaction.operand [ msg sensor_ll filter_ll "reading" ] ]);
        Interaction.Fragment
          (Interaction.fragment
             (Interaction.Loop (3, Some 3))
             [ Interaction.operand [ msg filter_ll logger_ll "log" ] ]);
      ]
  in
  let v =
    Xuml.Msc.check
      ~bindings:
        [
          ("sensor", "Sensor#3"); ("filter", "Filter#2");
          ("logger", "Logger#1");
        ]
      sys expected
  in
  Printf.printf "sequence-diagram conformance: %b (observed %d messages)\n"
    v.Xuml.Msc.matched
    (List.length v.Xuml.Msc.observed);
  (match v.Xuml.Msc.reason with
   | Some r -> print_endline r
   | None -> ());
  if not v.Xuml.Msc.matched then exit 1
