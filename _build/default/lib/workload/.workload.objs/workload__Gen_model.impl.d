lib/workload/gen_model.ml: Classifier Component Dtype List Model Printf Prng Uml
