lib/workload/gen_activity.mli: Uml
