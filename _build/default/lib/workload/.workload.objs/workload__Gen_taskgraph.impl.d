lib/workload/gen_taskgraph.ml: Array Hwsw List Printf Prng
