lib/workload/gen_statechart.mli: Uml
