lib/workload/gen_activity.ml: Activityg Ident List Printf Prng Uml
