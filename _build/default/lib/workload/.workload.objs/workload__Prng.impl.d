lib/workload/prng.ml: List
