lib/workload/prng.mli:
