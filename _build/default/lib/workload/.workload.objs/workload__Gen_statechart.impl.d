lib/workload/gen_statechart.ml: Array List Printf Prng Smachine Uml
