lib/workload/gen_taskgraph.mli: Hwsw
