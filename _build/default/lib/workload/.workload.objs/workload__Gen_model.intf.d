lib/workload/gen_model.mli: Uml
