let layered ~seed ~tasks ~layers =
  let rng = Prng.create seed in
  let layers = max 1 layers in
  let layer_of = Array.init tasks (fun i -> i * layers / max 1 tasks) in
  let task_list =
    List.init tasks (fun i ->
        let sw = Prng.range rng 20 120 in
        let speedup = Prng.range rng 4 10 in
        let hw = max 1 (sw / speedup) in
        let area = Prng.range rng 40 240 in
        Hwsw.Taskgraph.task ~sw_time:sw ~hw_time:hw ~hw_area:area
          (Printf.sprintf "t%d" i))
  in
  let edges = ref [] in
  for i = 0 to tasks - 1 do
    if layer_of.(i) > 0 then begin
      let earlier =
        List.filteri (fun j _ -> layer_of.(j) < layer_of.(i))
          (List.init tasks (fun j -> j))
      in
      match earlier with
      | [] -> ()
      | candidates ->
        let how_many = 1 + Prng.int rng 2 in
        for _ = 1 to how_many do
          let p = Prng.pick rng candidates in
          let e =
            Hwsw.Taskgraph.edge
              ~comm:(Prng.range rng 1 20)
              (Printf.sprintf "t%d" p)
              (Printf.sprintf "t%d" i)
          in
          if
            not
              (List.exists
                 (fun (x : Hwsw.Taskgraph.edge) ->
                   x.Hwsw.Taskgraph.edge_from = e.Hwsw.Taskgraph.edge_from
                   && x.Hwsw.Taskgraph.edge_to = e.Hwsw.Taskgraph.edge_to)
                 !edges)
          then edges := e :: !edges
        done
    end
  done;
  Hwsw.Taskgraph.make task_list (List.rev !edges)
