open Uml

let structural ~seed ~classes =
  let rng = Prng.create seed in
  let m = Model.create (Printf.sprintf "random_%d_%d" seed classes) in
  let interface_ids = ref [] in
  let class_ids = ref [] in
  let types =
    [ Dtype.Integer; Dtype.Boolean; Dtype.String_type; Dtype.Real ]
  in
  for i = 0 to classes - 1 do
    if i mod 4 = 0 then begin
      let ops =
        List.init
          (1 + Prng.int rng 3)
          (fun j ->
            Classifier.operation
              ~params:
                [
                  Classifier.parameter "arg" (Prng.pick rng types);
                  Classifier.parameter ~direction:Classifier.Return "result"
                    (Prng.pick rng types);
                ]
              (Printf.sprintf "op_i%d_%d" i j))
      in
      let itf =
        Classifier.make ~kind:Classifier.Interface ~operations:ops
          (Printf.sprintf "I%d" i)
      in
      Model.add m (Model.E_classifier itf);
      interface_ids := itf.Classifier.cl_id :: !interface_ids
    end;
    let attrs =
      List.init
        (1 + Prng.int rng 4)
        (fun j ->
          Classifier.property
            (Printf.sprintf "attr%d_%d" i j)
            (Prng.pick rng types))
    in
    let ops =
      List.init
        (Prng.int rng 3)
        (fun j ->
          Classifier.operation
            ~body:(Printf.sprintf "return %d;" (Prng.int rng 100))
            (Printf.sprintf "op%d_%d" i j))
    in
    let generals =
      match !class_ids with
      | [] -> []
      | ids -> if Prng.int rng 3 = 0 then [ Prng.pick rng ids ] else []
    in
    let realized =
      match !interface_ids with
      | [] -> []
      | ids -> if Prng.bool rng then [ Prng.pick rng ids ] else []
    in
    let cl =
      Classifier.make ~attributes:attrs ~operations:ops ~generals ~realized
        (Printf.sprintf "C%d" i)
    in
    Model.add m (Model.E_classifier cl);
    class_ids := cl.Classifier.cl_id :: !class_ids;
    if i mod 8 = 7 && !interface_ids <> [] then begin
      let provided = [ Prng.pick rng !interface_ids ] in
      let required =
        if Prng.bool rng then [ Prng.pick rng !interface_ids ] else []
      in
      let port = Component.port ~provided ~required "p0" in
      let comp =
        Component.make ~ports:[ port ] (Printf.sprintf "Comp%d" i)
      in
      Model.add m (Model.E_component comp)
    end
  done;
  m
