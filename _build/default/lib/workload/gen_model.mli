(** Random structural models (classes, interfaces, components) for the
    XMI round-trip and transformation-scaling experiments. *)

val structural : seed:int -> classes:int -> Uml.Model.t
(** [classes] classes with attributes/operations, one interface per
    four classes, generalizations to earlier classes, one component per
    eight classes with ports typed by the interfaces.  Well-formed. *)
