(** Random state machine generation.

    All generated machines are well-formed (pass {!Uml.Wfr.check}) and
    flattenable by construction when [flat]-friendly options are used. *)

val flat :
  seed:int -> states:int -> events:int -> Uml.Smachine.t
(** A flat machine: [states] simple states in a cycle-ish topology with
    [events] distinct signal events; every state has at least one
    outgoing transition, so any event sequence keeps the machine live. *)

val hierarchical :
  seed:int -> depth:int -> breadth:int -> events:int -> Uml.Smachine.t
(** A nested machine: composite states down to [depth] levels with
    [breadth] children per composite; inner and outer transitions on
    shared events exercise conflict priority.  No orthogonal regions or
    history (flattenable). *)

val event_names : int -> string list
(** [ev0 .. evN-1] — the event alphabet used by the generators. *)

val event_sequence : seed:int -> length:int -> int -> string list
(** Random sequence over {!event_names}. *)
