type t = { mutable state : int }

let create seed = { state = (seed * 2654435761) land 0x3FFFFFFF }

let next t =
  t.state <- ((t.state * 1103515245) + 12345) land 0x3FFFFFFF;
  t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let bool t = int t 2 = 1
let range t lo hi = lo + int t (hi - lo + 1)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let tagged = List.map (fun x -> (next t, x)) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)
