open Uml

let event_names n = List.init n (fun i -> Printf.sprintf "ev%d" i)

let event_sequence ~seed ~length n =
  let rng = Prng.create seed in
  let names = event_names n in
  List.init length (fun _ -> Prng.pick rng names)

let flat ~seed ~states ~events =
  let rng = Prng.create seed in
  let names = event_names events in
  let state_list =
    List.init states (fun i -> Smachine.simple_state (Printf.sprintf "S%d" i))
  in
  let arr = Array.of_list state_list in
  let init = Smachine.pseudostate Smachine.Initial in
  let init_tr =
    Smachine.transition ~source:init.Smachine.ps_id
      ~target:arr.(0).Smachine.st_id ()
  in
  (* every state gets one transition per event to a pseudo-random state;
     deterministic target choice keeps runs replayable *)
  let transitions =
    List.concat_map
      (fun (s : Smachine.state) ->
        List.map
          (fun ev ->
            let target = arr.(Prng.int rng states) in
            Smachine.transition
              ~triggers:[ Smachine.Signal_trigger ev ]
              ~source:s.Smachine.st_id ~target:target.Smachine.st_id ())
          names)
      state_list
  in
  let region =
    Smachine.region
      (Smachine.Pseudo init :: List.map (fun s -> Smachine.State s) state_list)
      (init_tr :: transitions)
  in
  Smachine.make (Printf.sprintf "flat_s%d_e%d" states events) [ region ]

let hierarchical ~seed ~depth ~breadth ~events =
  let rng = Prng.create seed in
  let names = event_names events in
  let counter = ref 0 in
  let fresh_name prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  (* build a composite tree; returns the state and its region-internal
     transition targets (the children) *)
  let rec build level =
    if level >= depth then Smachine.simple_state (fresh_name "L")
    else begin
      let children = List.init breadth (fun _ -> build (level + 1)) in
      let init = Smachine.pseudostate Smachine.Initial in
      let first =
        match children with
        | c :: _ -> c
        | [] -> assert false
      in
      let init_tr =
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:first.Smachine.st_id ()
      in
      let arr = Array.of_list children in
      let sibling_transitions =
        List.concat_map
          (fun (c : Smachine.state) ->
            (* one or two events move between siblings *)
            let how_many = 1 + Prng.int rng 2 in
            List.init how_many (fun _ ->
                let ev = Prng.pick rng names in
                let target = arr.(Prng.int rng breadth) in
                Smachine.transition
                  ~triggers:[ Smachine.Signal_trigger ev ]
                  ~source:c.Smachine.st_id ~target:target.Smachine.st_id ()))
          children
      in
      let region =
        Smachine.region
          (Smachine.Pseudo init
          :: List.map (fun c -> Smachine.State c) children)
          (init_tr :: sibling_transitions)
      in
      Smachine.composite_state (fresh_name "C") [ region ]
    end
  in
  let root = build 0 in
  let init = Smachine.pseudostate Smachine.Initial in
  let init_tr =
    Smachine.transition ~source:init.Smachine.ps_id ~target:root.Smachine.st_id
      ()
  in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State root ]
      [ init_tr ]
  in
  Smachine.make
    (Printf.sprintf "hier_d%d_b%d_e%d" depth breadth events)
    [ top ]
