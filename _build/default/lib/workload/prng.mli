(** Deterministic pseudo-random generator for workload synthesis.

    A plain linear-congruential generator: the same seed always produces
    the same workload, across runs and machines — the substitution rule
    for the paper's unavailable production designs. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t bound] in [0, bound). @raise Invalid_argument if bound <= 0. *)

val bool : t -> bool
val range : t -> int -> int -> int
(** [range t lo hi] inclusive. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a list -> 'a list
