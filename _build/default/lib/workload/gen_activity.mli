(** Random activity generation: series-parallel token-flow graphs.

    Generated activities are sound by construction (one initial node,
    one activity-final, fork/join balanced), well-formed per
    {!Uml.Wfr.check}, and guard-free so that the {!Activity} engine and
    the Petri translation explore the same behavior (experiment E3). *)

val series_parallel :
  seed:int -> size:int -> max_width:int -> Uml.Activityg.t
(** Roughly [size] action nodes arranged by recursive series/parallel
    composition; parallel sections are fork/join bounded by
    [max_width]. *)

val with_decisions :
  seed:int -> size:int -> max_width:int -> Uml.Activityg.t
(** Like {!series_parallel} but some sections become decision/merge
    alternatives (still guard-free: non-deterministic choice). *)
