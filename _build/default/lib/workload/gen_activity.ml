open Uml

(* A fragment is a subgraph with one entry point and one exit point;
   composition wires fragments with fresh edges. *)
type fragment = {
  fr_nodes : Activityg.node list;
  fr_edges : Activityg.edge list;
  fr_entry : Ident.t;  (** node receiving the incoming edge *)
  fr_exit : Ident.t;  (** node producing the outgoing edge *)
}

let counter = ref 0

let fresh_action () =
  incr counter;
  Activityg.action (Printf.sprintf "a%d" !counter)

let single () =
  let n = fresh_action () in
  let id = Activityg.node_id n in
  { fr_nodes = [ n ]; fr_edges = []; fr_entry = id; fr_exit = id }

let series f1 f2 =
  let connect =
    Activityg.edge ~source:f1.fr_exit ~target:f2.fr_entry ()
  in
  {
    fr_nodes = f1.fr_nodes @ f2.fr_nodes;
    fr_edges = f1.fr_edges @ (connect :: f2.fr_edges);
    fr_entry = f1.fr_entry;
    fr_exit = f2.fr_exit;
  }

let parallel branches =
  let fork = Activityg.fork "fork" in
  let join = Activityg.join "join" in
  let fork_id = Activityg.node_id fork in
  let join_id = Activityg.node_id join in
  let edges =
    List.concat_map
      (fun f ->
        [
          Activityg.edge ~source:fork_id ~target:f.fr_entry ();
          Activityg.edge ~source:f.fr_exit ~target:join_id ();
        ]
        @ f.fr_edges)
      branches
  in
  {
    fr_nodes = (fork :: join :: List.concat_map (fun f -> f.fr_nodes) branches);
    fr_edges = edges;
    fr_entry = fork_id;
    fr_exit = join_id;
  }

let alternative branches =
  let dec = Activityg.decision "dec" in
  let mrg = Activityg.merge "mrg" in
  let dec_id = Activityg.node_id dec in
  let mrg_id = Activityg.node_id mrg in
  let edges =
    List.concat_map
      (fun f ->
        [
          Activityg.edge ~source:dec_id ~target:f.fr_entry ();
          Activityg.edge ~source:f.fr_exit ~target:mrg_id ();
        ]
        @ f.fr_edges)
      branches
  in
  {
    fr_nodes = (dec :: mrg :: List.concat_map (fun f -> f.fr_nodes) branches);
    fr_edges = edges;
    fr_entry = dec_id;
    fr_exit = mrg_id;
  }

let rec build rng ~decisions budget max_width =
  if budget <= 1 then single ()
  else
    match Prng.int rng (if decisions then 3 else 2) with
    | 0 ->
      (* series split *)
      let left = 1 + Prng.int rng (budget - 1) in
      series
        (build rng ~decisions left max_width)
        (build rng ~decisions (budget - left) max_width)
    | 1 ->
      let width = min max_width (max 2 (Prng.int rng max_width + 1)) in
      let share = max 1 (budget / width) in
      parallel
        (List.init width (fun _ -> build rng ~decisions share max_width))
    | _alternative ->
      let width = min max_width (max 2 (Prng.int rng max_width + 1)) in
      let share = max 1 (budget / width) in
      alternative
        (List.init width (fun _ -> build rng ~decisions share max_width))

let wrap name f =
  let init = Activityg.initial () in
  let final = Activityg.activity_final () in
  let init_id = Activityg.node_id init in
  let final_id = Activityg.node_id final in
  let edges =
    Activityg.edge ~source:init_id ~target:f.fr_entry ()
    :: Activityg.edge ~source:f.fr_exit ~target:final_id ()
    :: f.fr_edges
  in
  Activityg.make name (init :: final :: f.fr_nodes) edges

let series_parallel ~seed ~size ~max_width =
  counter := 0;
  let rng = Prng.create seed in
  let f = build rng ~decisions:false size (max 2 max_width) in
  wrap (Printf.sprintf "sp_%d_%d" size max_width) f

let with_decisions ~seed ~size ~max_width =
  counter := 0;
  let rng = Prng.create seed in
  let f = build rng ~decisions:true size (max 2 max_width) in
  wrap (Printf.sprintf "spd_%d_%d" size max_width) f
