(** Random task graphs for partitioning experiments. *)

val layered :
  seed:int -> tasks:int -> layers:int -> Hwsw.Taskgraph.t
(** A layered DAG: tasks are spread over [layers]; each task depends on
    one or two tasks of an earlier layer.  Costs: software time in
    [20, 120], hardware time 4–10x faster, area in [40, 240],
    communication in [1, 20]. *)
