lib/dsim/timing.ml: Buffer Hdl List Printf Sim String
