lib/dsim/sim.mli: Hdl
