lib/dsim/timing.mli: Sim
