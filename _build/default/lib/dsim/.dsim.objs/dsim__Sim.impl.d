lib/dsim/sim.ml: Expr Hashtbl Hdl Htype List Module_ Printf Stmt String
