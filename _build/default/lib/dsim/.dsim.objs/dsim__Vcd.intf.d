lib/dsim/vcd.mli: Sim
