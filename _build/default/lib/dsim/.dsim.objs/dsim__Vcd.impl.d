lib/dsim/vcd.ml: Buffer Bytes Char Hdl List Printf Sim String
