(** Value-change-dump (VCD) waveform writer.

    Records snapshots of a running {!Sim} per timestep and renders the
    standard VCD text format accepted by GTKWave and friends. *)

type t

val create : Sim.t -> t
(** Register every signal of the simulator. *)

val sample : t -> time:int -> unit
(** Record current values at the given time (only changes are stored). *)

val render : t -> string
(** Full VCD file contents. *)

val write_file : t -> string -> unit
