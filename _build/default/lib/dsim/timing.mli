(** Timing-diagram rendering (UML's 13th diagram type, grounded in the
    simulator).

    Records selected signals cycle by cycle and renders an ASCII timing
    diagram: bit signals as waveform lanes, vectors as value lanes with
    transitions marked.

    {v
      clk   : _#_#_#_#
      tick  : ______#_
      count :  0 1 2 3
    v} *)

type t

val create : ?signals:string list -> Sim.t -> t
(** Track the given signals (default: all ports, declaration order).
    @raise Sim.Simulation_error for unknown names. *)

val sample : t -> unit
(** Record the current values as the next time step. *)

val length : t -> int
(** Samples recorded so far. *)

val render : t -> string
(** The diagram; one lane per signal, one column (or value cell) per
    sample. *)
