(** Sequence diagrams as test oracles.

    UML 2.0 Sequence Diagrams are "comparable to an SDL Message Sequence
    Chart" (paper §2) — i.e. they specify the admissible message
    exchanges of a scenario.  This module checks an executed xUML system
    against an interaction: the observed inter-object signal trace
    (restricted to the bound lifelines) must be one of the interaction's
    traces, or a prefix of one when [partial] is allowed. *)

type verdict = {
  matched : bool;
  observed : string list;  (** relevant observed message names, in order *)
  candidate_traces : int;  (** traces enumerated from the interaction *)
  reason : string option;  (** why it failed, when it failed *)
}

val check :
  ?bindings:(string * string) list ->
  ?partial:bool ->
  System.t ->
  Uml.Interaction.t ->
  verdict
(** [check sys interaction] compares {!System.message_trace} with
    the interaction's traces.

    [bindings] maps lifeline names to object names ("prod" ->
    "Producer#2"); lifelines without a binding match the object of the
    same name.  Only observed messages whose sender *and* receiver are
    bound lifelines are considered (other traffic is ignored, like an
    [ignore] fragment over everything else).

    [partial] (default [false]) accepts proper prefixes of an admissible
    trace. *)

val stimuli : lifeline:string -> Uml.Interaction.t -> string list
(** Scenario-driven testing: the message names received by the given
    lifeline along the interaction's first trace — the event sequence to
    dispatch to that object's machine to replay the scenario. *)

val observed_communication :
  System.t -> (string * string * int) list
(** The Communication-Diagram view of an executed system: (sender,
    receiver, message count) per connected object pair, first-occurrence
    order (unknown endpoints are dropped). *)
