open Uml

type violation = {
  viol_object : string;
  viol_invariant : string;
  viol_reason : string;
}

let starts_with_inv name =
  String.length name >= 4 && String.sub name 0 4 = "inv_"

let invariant_names m class_name =
  let rec collect seen acc cl_id =
    if Ident.Set.mem cl_id seen then (seen, acc)
    else
      let seen = Ident.Set.add cl_id seen in
      match Model.find_classifier m cl_id with
      | None -> (seen, acc)
      | Some cl ->
        let acc =
          List.fold_left
            (fun acc (op : Classifier.operation) ->
              if
                starts_with_inv op.Classifier.op_name
                && not (List.mem op.Classifier.op_name acc)
              then acc @ [ op.Classifier.op_name ]
              else acc)
            acc cl.Classifier.cl_operations
        in
        List.fold_left
          (fun (seen, acc) parent -> collect seen acc parent)
          (seen, acc) cl.Classifier.cl_generals
  in
  match
    List.find_opt
      (fun c -> c.Classifier.cl_name = class_name)
      (Model.classifiers m)
  with
  | None -> []
  | Some cl ->
    let _, acc = collect Ident.Set.empty [] cl.Classifier.cl_id in
    acc

let object_name sys r =
  match
    List.find_opt (fun (_n, r') -> r' = r) (System.objects sys)
  with
  | Some (n, _) -> n
  | None -> Printf.sprintf "<obj %d>" r

let check_object sys r =
  let store = System.store sys in
  match Asl.Store.class_of store r with
  | None -> []
  | Some class_name ->
    let names = invariant_names (System.model sys) class_name in
    List.filter_map
      (fun inv ->
        match System.call sys ~self_:r inv [] with
        | Asl.Value.V_bool true -> None
        | Asl.Value.V_bool false ->
          Some
            {
              viol_object = object_name sys r;
              viol_invariant = inv;
              viol_reason = "returned false";
            }
        | other ->
          Some
            {
              viol_object = object_name sys r;
              viol_invariant = inv;
              viol_reason =
                Printf.sprintf "returned %s (Boolean expected)"
                  (Asl.Value.to_string other);
            }
        | exception System.Xuml_error msg ->
          Some
            {
              viol_object = object_name sys r;
              viol_invariant = inv;
              viol_reason = msg;
            })
      names

let check sys =
  let store = System.store sys in
  List.concat_map
    (fun (_name, r) ->
      if Asl.Store.is_alive store r then check_object sys r else [])
    (System.objects sys)
