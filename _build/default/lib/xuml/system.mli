(** Executable UML (xUML) system runtime.

    The paper (§3) presents xUML — models made executable through an
    action language — as the path to "complete system specification".
    This module is that executor for whole models:

    - every instantiated object of an *active* class whose classifier
      behavior is a state machine gets its own {!Statechart.Engine};
    - all objects share one ASL object store and interpreter, so guards
      and effects see attributes of any object;
    - operation calls inside ASL dispatch to the operation bodies
      modeled on the receiving class (with inherited operations resolved
      through generalization);
    - [send sig(args) to expr] statements route signal events to the
      target object's state machine; [send] without a target goes to the
      sender's own machine;
    - a run-to-completion scheduler drains all machine pools and the
      signal traffic between them (round-robin, deterministic).

    Objects of passive classes participate as plain data. *)

type t

exception Xuml_error of string

val create : Uml.Model.t -> t
(** Build a runtime for a model.  Operation bodies are parsed once;
    bodies that fail to parse raise {!Xuml_error} naming the operation. *)

val model : t -> Uml.Model.t
val interp : t -> Asl.Interp.t
val store : t -> Asl.Store.t

val instantiate : t -> string -> Asl.Value.obj_ref
(** [instantiate t class_name] creates an object with modeled attribute
    defaults; if the class is active and owns a state machine behavior,
    the machine is created and started (entry actions run with [self]
    bound to the new object).
    @raise Xuml_error for unknown classes. *)

val object_of_name : t -> string -> Asl.Value.obj_ref option
(** Instances get remembered under ["<ClassName>#<n>"]; also retrievable
    by creation order. *)

val objects : t -> (string * Asl.Value.obj_ref) list
(** All instantiated objects, creation order. *)

val engine_of : t -> Asl.Value.obj_ref -> Statechart.Engine.t option
(** The state machine engine of an active object, if any. *)

val send : t -> ?args:Asl.Value.t list -> to_:Asl.Value.obj_ref -> string ->
  unit
(** Enqueue an external signal to an object's machine.
    @raise Xuml_error if the object has no machine. *)

val call :
  t -> self_:Asl.Value.obj_ref -> string -> Asl.Value.t list -> Asl.Value.t
(** Invoke a modeled operation on an object ([Asl.Value.V_null] for
    operations without a return). *)

val run : ?max_rounds:int -> t -> int
(** Run-to-completion over the whole system: repeatedly let every
    machine drain its pool and deliver the ASL signal outbox, until no
    machine has pending work (or [max_rounds], default 1000, is hit —
    then {!Xuml_error} is raised).  Returns the number of events
    processed. *)

val configuration : t -> (string * string) list
(** [(object name, machine signature)] for every active object. *)

val output : t -> string list
(** Collected [print] lines of the shared interpreter. *)

val message_trace : t -> (string option * string option * string) list
(** Observed inter-object signals, oldest first: (sender object name,
    receiver object name, signal).  [None] endpoints are signals from or
    to the outside / passive objects.  This is the observation the MSC
    conformance checker ({!Msc}) replays against sequence diagrams. *)

val clear_message_trace : t -> unit
