open Uml

type verdict = {
  matched : bool;
  observed : string list;
  candidate_traces : int;
  reason : string option;
}

let rec is_prefix short long =
  match short, long with
  | [], _rest -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

let stimuli ~lifeline (interaction : Interaction.t) =
  let ll =
    List.find_opt
      (fun l -> l.Interaction.ll_name = lifeline)
      interaction.Interaction.in_lifelines
  in
  match ll with
  | None -> []
  | Some ll -> (
    match Interaction.traces ~max_traces:1 interaction with
    | trace :: _rest ->
      List.filter_map
        (fun (m : Interaction.message) ->
          if Ident.equal m.Interaction.msg_to ll.Interaction.ll_id then
            Some m.Interaction.msg_name
          else None)
        trace
    | [] -> [])

let observed_communication sys =
  let add acc (from_, to_, _name) =
    match from_, to_ with
    | Some f, Some t ->
      let rec bump = function
        | [] -> [ (f, t, 1) ]
        | (f', t', n) :: rest when f' = f && t' = t -> (f', t', n + 1) :: rest
        | entry :: rest -> entry :: bump rest
      in
      bump acc
    | _other -> acc
  in
  List.fold_left add [] (System.message_trace sys)

let check ?(bindings = []) ?(partial = false) sys (interaction : Interaction.t) =
  let object_of_lifeline (ll : Interaction.lifeline) =
    match List.assoc_opt ll.Interaction.ll_name bindings with
    | Some obj -> Some obj
    | None ->
      (* default: an object with the lifeline's name *)
      Option.map (fun _ -> ll.Interaction.ll_name)
        (System.object_of_name sys ll.Interaction.ll_name)
  in
  let lifeline_by_id id =
    List.find_opt
      (fun ll -> Ident.equal ll.Interaction.ll_id id)
      interaction.Interaction.in_lifelines
  in
  let bound_objects =
    List.filter_map object_of_lifeline interaction.Interaction.in_lifelines
  in
  (* observed messages between bound objects, as (from, to, name) *)
  let observed =
    List.filter_map
      (fun (from_, to_, name) ->
        match from_, to_ with
        | Some f, Some t when List.mem f bound_objects && List.mem t bound_objects ->
          Some (f, t, name)
        | _other -> None)
      (System.message_trace sys)
  in
  (* expected traces as (from_obj, to_obj, name) triples *)
  let traces = Interaction.traces interaction in
  let resolve_msg (m : Interaction.message) =
    let from_obj =
      Option.bind (lifeline_by_id m.Interaction.msg_from) object_of_lifeline
    in
    let to_obj =
      Option.bind (lifeline_by_id m.Interaction.msg_to) object_of_lifeline
    in
    match from_obj, to_obj with
    | Some f, Some t -> Some (f, t, m.Interaction.msg_name)
    | _other -> None
  in
  let expected_traces =
    List.map (fun trace -> List.filter_map resolve_msg trace) traces
  in
  let accept expected =
    if partial then is_prefix observed expected else observed = expected
  in
  let matched = List.exists accept expected_traces in
  {
    matched;
    observed = List.map (fun (_, _, n) -> n) observed;
    candidate_traces = List.length expected_traces;
    reason =
      (if matched then None
       else
         Some
           (Printf.sprintf
              "observed [%s] matches none of %d admissible traces"
              (String.concat "; "
                 (List.map (fun (f, t, n) -> f ^ "->" ^ t ^ ":" ^ n) observed))
              (List.length expected_traces)));
  }
