(** Class invariants, checked against the running system.

    Invariants are modeled as Boolean query operations whose name starts
    with [inv_] — no metamodel extension needed, and they serialize with
    the class through XMI.  [check] evaluates every such operation on
    every live object (inherited invariants included). *)

type violation = {
  viol_object : string;  (** instance name, e.g. ["Counter#1"] *)
  viol_invariant : string;  (** operation name *)
  viol_reason : string;  (** "returned false" or a runtime error *)
}

val invariant_names : Uml.Model.t -> string -> string list
(** The [inv_*] operations visible on a class (own + inherited),
    deterministic order. *)

val check : System.t -> violation list
(** Violations over all live objects; empty = all invariants hold. *)

val check_object : System.t -> Asl.Value.obj_ref -> violation list
