(** Object-Diagram snapshots of a running system.

    "Instances of a Class Diagram are called an Object Diagram" (paper
    §2) — this closes the loop: the live object store of an executing
    xUML system is reflected back into the metamodel as instance
    specifications (slots from current attribute values) and links (from
    object-valued attributes), ready for well-formedness checking, XMI
    export, or diagramming. *)

val to_model : ?name:string -> System.t -> Uml.Model.t
(** A fresh model containing the system's classes (copied), one
    [InstanceSpecification] per live object (named as in
    {!System.objects}), one [Link] per object-valued attribute that
    points at another live object, and an Object Diagram listing them.
    Dead (deleted) objects are omitted. *)

val snapshot_conforms : System.t -> bool
(** Every snapshot instance structurally conforms to its classifier
    (see {!Uml.Instance.conforms_to}). *)
