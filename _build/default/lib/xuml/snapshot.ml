open Uml

let vspec_of_value = function
  | Asl.Value.V_int i -> Vspec.Int_literal i
  | Asl.Value.V_real r -> Vspec.Real_literal r
  | Asl.Value.V_bool b -> Vspec.Bool_literal b
  | Asl.Value.V_string s -> Vspec.String_literal s
  | Asl.Value.V_null -> Vspec.Null_literal
  | Asl.Value.V_obj r -> Vspec.Opaque_expression (Printf.sprintf "<obj %d>" r)

let to_model ?(name = "snapshot") sys =
  let m = Model.create name in
  let source = System.model sys in
  (* copy the classes so instance classifier references resolve; the
     snapshot is structural, so owned-behavior references (state
     machines that stay in the source model) are dropped *)
  List.iter
    (fun cl ->
      Model.add m
        (Model.E_classifier { cl with Classifier.cl_behaviors = [] }))
    (Model.classifiers source);
  let store = System.store sys in
  let live =
    List.filter (fun (_n, r) -> Asl.Store.is_alive store r) (System.objects sys)
  in
  (* instances, remembering obj ref -> instance id for links *)
  let inst_of_ref = Hashtbl.create 8 in
  let instances =
    List.map
      (fun (obj_name, r) ->
        let classifier =
          Option.bind (Asl.Store.class_of store r) (fun cname ->
              Option.map
                (fun c -> c.Classifier.cl_id)
                (Model.classifier_named source cname))
        in
        let slots =
          List.filter_map
            (fun (attr, v) ->
              match v with
              | Asl.Value.V_obj _ -> None (* becomes a link instead *)
              | value -> Some (Instance.slot attr [ vspec_of_value value ]))
            (Asl.Store.attrs store r)
        in
        let inst = Instance.make ?classifier ~slots obj_name in
        Hashtbl.replace inst_of_ref r inst.Instance.inst_id;
        inst)
      live
  in
  List.iter (fun i -> Model.add m (Model.E_instance i)) instances;
  (* links from object-valued attributes *)
  let link_ids =
    List.concat_map
      (fun (_obj_name, r) ->
        List.filter_map
          (fun (_attr, v) ->
            match v with
            | Asl.Value.V_obj target when Hashtbl.mem inst_of_ref target ->
              let l =
                Instance.link
                  (Hashtbl.find inst_of_ref r)
                  (Hashtbl.find inst_of_ref target)
              in
              Model.add m (Model.E_link l);
              Some l.Instance.link_id
            | _other -> None)
          (Asl.Store.attrs store r))
      live
  in
  let shown =
    List.map (fun (i : Instance.t) -> i.Instance.inst_id) instances @ link_ids
  in
  Model.add_diagram m
    (Diagram.make ~elements:shown Diagram.Object_diagram (name ^ "_objects"));
  m

let snapshot_conforms sys =
  let m = to_model sys in
  List.for_all
    (fun (i : Instance.t) ->
      match i.Instance.inst_classifier with
      | None -> true
      | Some cid -> (
        match Model.find_classifier m cid with
        | Some cl -> Instance.conforms_to i cl
        | None -> false))
    (Model.instances m)
