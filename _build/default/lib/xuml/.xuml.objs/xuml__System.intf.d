lib/xuml/system.mli: Asl Statechart Uml
