lib/xuml/invariants.ml: Asl Classifier Ident List Model Printf String System Uml
