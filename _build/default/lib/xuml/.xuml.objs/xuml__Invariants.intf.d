lib/xuml/invariants.mli: Asl System Uml
