lib/xuml/snapshot.mli: System Uml
