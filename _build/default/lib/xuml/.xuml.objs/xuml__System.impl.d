lib/xuml/system.ml: Asl Classifier Dtype Hashtbl Ident List Model Printf Statechart Uml Vspec
