lib/xuml/msc.mli: System Uml
