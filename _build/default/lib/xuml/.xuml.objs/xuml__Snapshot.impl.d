lib/xuml/snapshot.ml: Asl Classifier Diagram Hashtbl Instance List Model Option Printf System Uml Vspec
