lib/xuml/msc.ml: Ident Interaction List Option Printf String System Uml
