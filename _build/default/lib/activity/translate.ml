open Uml

let place_of_edge e = "p_" ^ Ident.to_string e
let start_place n = "p_start_" ^ Ident.to_string n
let done_place = "p_done"
let transition_of_node n = "t_" ^ Ident.to_string n

let decision_branch n e =
  Printf.sprintf "t_%s__out_%s" (Ident.to_string n) (Ident.to_string e)

let merge_branch n e =
  Printf.sprintf "t_%s__in_%s" (Ident.to_string n) (Ident.to_string e)

let to_petri (a : Activityg.t) =
  let open Activityg in
  let places = ref [] in
  let transitions = ref [] in
  let arcs = ref [] in
  let add_place id name = places := Petri.Net.place ~name id :: !places in
  let add_transition id name =
    transitions := Petri.Net.transition ~name id :: !transitions
  in
  List.iter
    (fun e -> add_place (place_of_edge e.ed_id) ("edge " ^ e.ed_id))
    a.ac_edges;
  let marked = ref [] in
  let node_arcs n =
    let id = node_id n in
    let ins = incoming a id in
    let outs = outgoing a id in
    let consume tn =
      List.iter
        (fun e ->
          arcs := Petri.Net.P_to_t (place_of_edge e.ed_id, tn, e.ed_weight) :: !arcs)
        ins
    in
    let produce tn =
      List.iter
        (fun e -> arcs := Petri.Net.T_to_p (tn, place_of_edge e.ed_id, 1) :: !arcs)
        outs
    in
    match n with
    | Initial_node _ ->
      let sp = start_place id in
      add_place sp ("start " ^ node_name n);
      marked := (sp, 1) :: !marked;
      let tn = transition_of_node id in
      add_transition tn (node_name n);
      arcs := Petri.Net.P_to_t (sp, tn, 1) :: !arcs;
      produce tn
    | Decision_node _ ->
      List.iter
        (fun out_e ->
          let tn = decision_branch id out_e.ed_id in
          add_transition tn (node_name n);
          consume tn;
          arcs :=
            Petri.Net.T_to_p (tn, place_of_edge out_e.ed_id, 1) :: !arcs)
        outs
    | Merge_node _ ->
      List.iter
        (fun in_e ->
          let tn = merge_branch id in_e.ed_id in
          add_transition tn (node_name n);
          arcs :=
            Petri.Net.P_to_t (place_of_edge in_e.ed_id, tn, in_e.ed_weight)
            :: !arcs;
          produce tn)
        ins
    | Activity_final _ ->
      let tn = transition_of_node id in
      add_transition tn (node_name n);
      consume tn;
      arcs := Petri.Net.T_to_p (tn, done_place, 1) :: !arcs
    | Flow_final _ ->
      let tn = transition_of_node id in
      add_transition tn (node_name n);
      consume tn
    | Action _ | Call_behavior _ | Send_signal _ | Accept_event _
    | Object_node _ | Fork_node _ | Join_node _ ->
      let tn = transition_of_node id in
      add_transition tn (node_name n);
      consume tn;
      produce tn
  in
  add_place done_place "done";
  List.iter node_arcs a.ac_nodes;
  let net =
    Petri.Net.make (List.rev !places) (List.rev !transitions) (List.rev !arcs)
  in
  (net, Petri.Marking.of_list !marked)
