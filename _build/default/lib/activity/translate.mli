(** Structural translation of activities to place/transition nets.

    This realizes the paper's remark that UML 2.0 activity token
    semantics are "semantically close to high-level Petri Nets": each
    activity edge becomes a place; each node becomes one or more
    transitions.  The naming scheme is shared with the token engine
    ({!Exec}) so that an engine run is literally an occurrence sequence
    of the translated net:

    - edge [e] → place [p_e];
    - an initial node [n] additionally gets a start place [p_start_n]
      marked with one token;
    - most nodes [n] → a single transition [t_n] consuming every
      incoming edge place (with the edge weight) and producing one token
      into every outgoing edge place;
    - a decision node [n] → one transition [t_n__out_e] per outgoing
      edge [e]; a merge node → one transition [t_n__in_e] per incoming
      edge;
    - an activity-final node feeds a [p_done] place.

    Edge guards are dropped (the net over-approximates the activity);
    object-node capacity bounds are likewise dropped. *)

val place_of_edge : Uml.Ident.t -> string
val start_place : Uml.Ident.t -> string
val done_place : string

val transition_of_node : Uml.Ident.t -> string
val decision_branch : Uml.Ident.t -> Uml.Ident.t -> string
(** [decision_branch node out_edge] *)

val merge_branch : Uml.Ident.t -> Uml.Ident.t -> string
(** [merge_branch node in_edge] *)

val to_petri : Uml.Activityg.t -> Petri.Net.t * Petri.Marking.t
(** The net and its initial marking (start places of initial nodes). *)
