lib/activity/exec.pp.ml: Activityg Asl List Map Printf String Translate Uml
