lib/activity/conform.pp.ml: Exec List Petri Printf String Translate
