lib/activity/conform.pp.mli: Uml
