lib/activity/translate.pp.mli: Petri Uml
