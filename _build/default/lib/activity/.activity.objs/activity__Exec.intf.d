lib/activity/exec.pp.mli: Asl Uml
