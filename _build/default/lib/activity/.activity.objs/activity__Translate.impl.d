lib/activity/translate.pp.ml: Activityg Ident List Petri Printf Uml
