(** Differential oracle: activity engine runs vs the translated net.

    Because {!Exec} labels every firing with the {!Translate} transition
    name, an engine run conforms to UML-token-semantics-as-Petri-nets
    iff the label sequence is an occurrence sequence of the translated
    net and both sides end in the same marking. *)

type report = {
  steps : int;
  conforms : bool;
  mismatch : string option;  (** description of the first divergence *)
}

val check_trace : Uml.Activityg.t -> string list -> report
(** Replay the labels on the translated net. *)

val run_and_check :
  ?seed:int -> ?max_steps:int -> Uml.Activityg.t -> report
(** Run a fresh engine with the given seed, then {!check_trace} the
    produced labels and compare final markings. *)
