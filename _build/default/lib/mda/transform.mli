(** Rule-based model-to-model transformation with traces.

    A transformation walks the source model in element order; for every
    element the first applicable rule produces the PSM elements (and
    says whether they differ from the source); non-matching elements are
    copied verbatim.  The trace records, per source element, which rule
    fired and what it produced — the raw data behind the reuse-fraction
    measurement of experiment E5. *)

type trace_entry = {
  te_rule : string;  (** ["copy"] for the implicit identity rule *)
  te_source : Uml.Ident.t;
  te_results : Uml.Ident.t list;
  te_changed : bool;
}

type trace = trace_entry list

type rule = {
  rule_name : string;
  rule_transform :
    Uml.Model.t -> Uml.Model.element -> (Uml.Model.element list * bool) option;
      (** [rule_transform pim element]: [None] when not applicable;
          [Some (results, changed)] otherwise. *)
}

val run : rule list -> psm_name:string -> Uml.Model.t -> Uml.Model.t * trace
(** Stereotype applications and diagrams are carried over when their
    target elements survive with the same identifier. *)

val reuse_fraction : trace -> float
(** Fraction of source elements copied unchanged. *)

val changed_count : trace -> int
