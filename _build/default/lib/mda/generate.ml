open Uml

type hw_result = {
  design : Hdl.Module_.design option;
  compiled : string list;
  skipped : (string * string) list;
}

let hw_design m =
  let compile_machine (sm : Smachine.t) =
    match Statechart.Flatten.flatten sm with
    | Error reason -> Error reason
    | Ok flat -> Codegen.Fsm_compile.compile flat
  in
  let compiled, skipped =
    List.fold_left
      (fun (ok, bad) sm ->
        match compile_machine sm with
        | Ok hmod -> ((sm.Smachine.sm_name, hmod) :: ok, bad)
        | Error reason -> (ok, (sm.Smachine.sm_name, reason) :: bad))
      ([], [])
      (Model.state_machines m)
  in
  let compiled = List.rev compiled in
  let skipped = List.rev skipped in
  match compiled with
  | [] -> { design = None; compiled = []; skipped }
  | (_, first) :: _rest ->
    let modules = List.map snd compiled in
    {
      design =
        Some (Hdl.Module_.design ~top:first.Hdl.Module_.mod_name modules);
      compiled = List.map fst compiled;
      skipped;
    }

let artifacts plat m =
  match plat.Platform.plat_language with
  | "c" -> [ (Model.name m ^ ".c", Codegen.Cgen.of_model m) ]
  | lang -> (
    let r = hw_design m in
    match r.design with
    | None -> []
    | Some d -> (
      match lang with
      | "vhdl" -> [ (Model.name m ^ ".vhd", Codegen.Vhdl.of_design d) ]
      | "verilog" -> [ (Model.name m ^ ".v", Codegen.Verilog.of_design d) ]
      | "systemc" -> [ (Model.name m ^ ".h", Codegen.Systemc.of_design d) ]
      | other ->
        invalid_arg (Printf.sprintf "Generate.artifacts: unknown language %s" other)))

let loc text =
  let lines = String.split_on_char '\n' text in
  List.length
    (List.filter (fun l -> String.trim l <> "") lines)

let classifier_feature_count (c : Classifier.t) =
  List.length c.Classifier.cl_attributes
  + List.length c.Classifier.cl_operations
  + List.length c.Classifier.cl_receptions

let model_element_count m =
  Model.fold
    (fun acc e ->
      let features =
        match e with
        | Model.E_classifier c -> classifier_feature_count c
        | Model.E_state_machine sm ->
          List.length (Smachine.all_vertices sm)
          + List.length (Smachine.all_transitions sm)
        | Model.E_activity a ->
          List.length a.Activityg.ac_nodes + List.length a.Activityg.ac_edges
        | Model.E_component c ->
          List.length c.Component.cmp_ports
          + List.length c.Component.cmp_parts
          + List.length c.Component.cmp_connectors
        | Model.E_interaction i -> Interaction.message_count i
        | Model.E_association _ | Model.E_package _ | Model.E_use_case _
        | Model.E_instance _ | Model.E_link _ | Model.E_deployment_node _
        | Model.E_artifact _ | Model.E_deployment _
        | Model.E_communication_path _ | Model.E_profile _ ->
          0
      in
      acc + 1 + features)
    0 m
