type trace_entry = {
  te_rule : string;
  te_source : Uml.Ident.t;
  te_results : Uml.Ident.t list;
  te_changed : bool;
}

type trace = trace_entry list

type rule = {
  rule_name : string;
  rule_transform :
    Uml.Model.t -> Uml.Model.element -> (Uml.Model.element list * bool) option;
}

let run rules ~psm_name pim =
  let psm = Uml.Model.create psm_name in
  let apply_first element =
    let rec try_rules = function
      | [] -> None
      | r :: rest -> (
        match r.rule_transform pim element with
        | Some (results, changed) -> Some (r.rule_name, results, changed)
        | None -> try_rules rest)
    in
    try_rules rules
  in
  let trace =
    Uml.Model.fold
      (fun acc element ->
        let source = Uml.Model.element_id element in
        match apply_first element with
        | Some (rule_name, results, changed) ->
          List.iter (Uml.Model.replace psm) results;
          {
            te_rule = rule_name;
            te_source = source;
            te_results = List.map Uml.Model.element_id results;
            te_changed = changed;
          }
          :: acc
        | None ->
          Uml.Model.replace psm element;
          {
            te_rule = "copy";
            te_source = source;
            te_results = [ source ];
            te_changed = false;
          }
          :: acc)
      [] pim
  in
  (* carry applications/diagrams whose anchors survived *)
  List.iter
    (fun (a : Uml.Profile.application) ->
      if Uml.Model.mem psm a.Uml.Profile.app_element then
        Uml.Model.add_application psm a)
    (Uml.Model.applications pim);
  List.iter
    (fun (d : Uml.Diagram.t) ->
      let surviving =
        List.filter (Uml.Model.mem psm) d.Uml.Diagram.dg_elements
      in
      Uml.Model.add_diagram psm { d with Uml.Diagram.dg_elements = surviving })
    (Uml.Model.diagrams pim);
  (psm, List.rev trace)

let reuse_fraction trace =
  match trace with
  | [] -> 1.0
  | entries ->
    let unchanged =
      List.length (List.filter (fun e -> not e.te_changed) entries)
    in
    float_of_int unchanged /. float_of_int (List.length entries)

let changed_count trace =
  List.length (List.filter (fun e -> e.te_changed) trace)
