(** PSM → code: the "complete code generation" step of MDA (§3).

    Hardware: every state machine in the PSM is flattened and compiled
    to an FSM module; the resulting design is rendered in the platform's
    language.  Software: the PSM's classes are rendered as C.

    Machines that cannot be flattened/compiled are reported, never
    silently skipped. *)

type hw_result = {
  design : Hdl.Module_.design option;  (** [None] when nothing compiled *)
  compiled : string list;  (** machine names that became modules *)
  skipped : (string * string) list;  (** machine name, reason *)
}

val hw_design : Uml.Model.t -> hw_result

val artifacts : Platform.t -> Uml.Model.t -> (string * string) list
(** (filename, contents) pairs for the platform's language.  Hardware
    platforms render the compiled design; the software platform renders
    C for the classes. *)

val loc : string -> int
(** Non-blank line count — the measure behind experiment E1. *)

val model_element_count : Uml.Model.t -> int
(** Elements plus owned features (attributes, operations, states,
    transitions, nodes, edges, ports) — the "model size" of E1. *)
