lib/mda/transform.ml: List Uml
