lib/mda/transform.mli: Uml
