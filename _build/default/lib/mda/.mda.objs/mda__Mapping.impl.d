lib/mda/mapping.ml: Classifier Component Dtype List Model Platform Printf Transform Uml
