lib/mda/mapping.mli: Platform Transform Uml
