lib/mda/platform.mli:
