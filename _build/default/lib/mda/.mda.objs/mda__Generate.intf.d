lib/mda/generate.mli: Hdl Platform Uml
