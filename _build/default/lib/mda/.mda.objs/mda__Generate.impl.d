lib/mda/generate.ml: Activityg Classifier Codegen Component Hdl Interaction List Model Platform Printf Smachine Statechart String Uml
