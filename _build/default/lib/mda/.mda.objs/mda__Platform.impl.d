lib/mda/platform.ml: List
