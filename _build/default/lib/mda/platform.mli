(** Platform descriptions for PIM → PSM mappings (§3, MDA).

    A platform names the realization domain (hardware or software), the
    target language of the final code-generation step, and the
    platform-specific facts the mapping injects into the PSM. *)

type realization =
  | Hardware
  | Software

type t = {
  plat_name : string;
  plat_realization : realization;
  plat_language : string;  (** "vhdl" | "verilog" | "systemc" | "c" *)
  plat_data_width : int;
  plat_clock : string;
  plat_reset : string;
}

val asic_vhdl : t
val fpga_verilog : t
val virtual_systemc : t
val sw_c : t

val all : t list
val by_name : string -> t option
