type realization =
  | Hardware
  | Software

type t = {
  plat_name : string;
  plat_realization : realization;
  plat_language : string;
  plat_data_width : int;
  plat_clock : string;
  plat_reset : string;
}

let asic_vhdl =
  {
    plat_name = "asic_vhdl";
    plat_realization = Hardware;
    plat_language = "vhdl";
    plat_data_width = 32;
    plat_clock = "clk";
    plat_reset = "rst";
  }

let fpga_verilog =
  {
    plat_name = "fpga_verilog";
    plat_realization = Hardware;
    plat_language = "verilog";
    plat_data_width = 32;
    plat_clock = "clk";
    plat_reset = "rst";
  }

let virtual_systemc =
  {
    plat_name = "virtual_systemc";
    plat_realization = Hardware;
    plat_language = "systemc";
    plat_data_width = 32;
    plat_clock = "clk";
    plat_reset = "rst";
  }

let sw_c =
  {
    plat_name = "sw_c";
    plat_realization = Software;
    plat_language = "c";
    plat_data_width = 32;
    plat_clock = "";
    plat_reset = "";
  }

let all = [ asic_vhdl; fpga_verilog; virtual_systemc; sw_c ]
let by_name n = List.find_opt (fun p -> p.plat_name = n) all
