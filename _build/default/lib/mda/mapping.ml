open Uml

let lower_real (ty : Dtype.t) =
  match ty with
  | Dtype.Real -> (Dtype.Integer, true)
  | Dtype.Boolean | Dtype.Integer | Dtype.Unlimited_natural
  | Dtype.String_type | Dtype.Void | Dtype.Ref _ ->
    (ty, false)

let real_to_fixed_rule =
  {
    Transform.rule_name = "real-to-fixed";
    rule_transform =
      (fun _pim element ->
        match element with
        | Model.E_classifier c ->
          let changed = ref false in
          let attributes =
            List.map
              (fun (p : Classifier.property) ->
                let ty, ch = lower_real p.Classifier.prop_type in
                if ch then changed := true;
                { p with Classifier.prop_type = ty })
              c.Classifier.cl_attributes
          in
          let operations =
            List.map
              (fun (o : Classifier.operation) ->
                let params =
                  List.map
                    (fun (pa : Classifier.parameter) ->
                      let ty, ch = lower_real pa.Classifier.param_type in
                      if ch then changed := true;
                      { pa with Classifier.param_type = ty })
                    o.Classifier.op_params
                in
                { o with Classifier.op_params = params })
              c.Classifier.cl_operations
          in
          if !changed then
            Some
              ( [
                  Model.E_classifier
                    {
                      c with
                      Classifier.cl_attributes = attributes;
                      cl_operations = operations;
                    };
                ],
                true )
          else None
        | _other -> None);
  }

let add_clock_reset_rule (plat : Platform.t) =
  {
    Transform.rule_name = "add-clock-reset";
    rule_transform =
      (fun _pim element ->
        match element with
        | Model.E_component c ->
          let has name =
            List.exists
              (fun (p : Component.port) -> p.Component.port_name = name)
              c.Component.cmp_ports
          in
          let missing =
            (if has plat.Platform.plat_clock then []
             else [ Component.port plat.Platform.plat_clock ])
            @
            if has plat.Platform.plat_reset then []
            else [ Component.port plat.Platform.plat_reset ]
          in
          if missing = [] then None
          else
            Some
              ( [
                  Model.E_component
                    {
                      c with
                      Component.cmp_ports = c.Component.cmp_ports @ missing;
                    };
                ],
                true )
        | _other -> None);
  }

let passivate_rule =
  {
    Transform.rule_name = "active-to-task";
    rule_transform =
      (fun _pim element ->
        match element with
        | Model.E_classifier c when c.Classifier.cl_is_active ->
          Some
            ([ Model.E_classifier { c with Classifier.cl_is_active = false } ],
             true)
        | _other -> None);
  }

let hw_rules plat = [ real_to_fixed_rule; add_clock_reset_rule plat ]
let sw_rules _plat = [ passivate_rule ]

let to_psm plat pim =
  let rules =
    match plat.Platform.plat_realization with
    | Platform.Hardware -> hw_rules plat
    | Platform.Software -> sw_rules plat
  in
  let psm_name =
    Printf.sprintf "%s__%s" (Model.name pim) plat.Platform.plat_name
  in
  Transform.run rules ~psm_name pim
