(** Built-in PIM → PSM mappings.

    Hardware mapping:
    - [Real] attributes/parameters become [Integer] (fixed-point
      lowering) — changed;
    - components gain clock and reset ports named after the platform —
      changed;
    - everything else is copied (reused).

    Software mapping:
    - active classes become passive tasks (a scheduler owns the
      threads) — changed;
    - everything else is copied. *)

val hw_rules : Platform.t -> Transform.rule list
val sw_rules : Platform.t -> Transform.rule list

val to_psm : Platform.t -> Uml.Model.t -> Uml.Model.t * Transform.trace
(** Apply the realization-appropriate rules; the PSM is named
    ["<pim>__<platform>"]. *)
