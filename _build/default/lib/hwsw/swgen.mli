(** Software synthesis from a partitioned schedule.

    Generates the C skeleton of the codesign result: software tasks run
    on the CPU in schedule order; hardware tasks are started and awaited
    through accelerator hooks.  This is the artifact a downstream user
    compiles against their HAL ([hw_start]/[hw_wait] externs). *)

val c_of_schedule :
  ?name:string -> Taskgraph.t -> Schedule.result -> string
(** Deterministic; one [run_<name>] function executing the slots in
    start-time order.  SW tasks call [task_<id>()] (declared extern);
    HW tasks call [hw_start("<id>")] at their start slot and
    [hw_wait("<id>")] where a software successor first needs them. *)
