type outcome = {
  assignment : Schedule.assignment;
  cost : int;
  area : int;
  evaluations : int;
}

let evaluate g assignment =
  let r = Schedule.run g assignment in
  (r.Schedule.makespan, r.Schedule.hw_area)

let exhaustive ?(max_tasks = 20) ~budget g =
  let n = List.length g.Taskgraph.tasks in
  if n > max_tasks then
    invalid_arg
      (Printf.sprintf "Partition.exhaustive: %d tasks exceeds limit %d" n
         max_tasks);
  let ids = List.map (fun t -> t.Taskgraph.task_id) g.Taskgraph.tasks in
  let best = ref None in
  let evaluations = ref 0 in
  let total = 1 lsl n in
  for mask = 0 to total - 1 do
    let assignment =
      List.mapi
        (fun i id ->
          (id, if (mask lsr i) land 1 = 1 then Schedule.Hw else Schedule.Sw))
        ids
    in
    let cost, area = evaluate g assignment in
    incr evaluations;
    if area <= budget then begin
      match !best with
      | Some (best_cost, _, _) when best_cost <= cost -> ()
      | Some _ | None -> best := Some (cost, area, assignment)
    end
  done;
  match !best with
  | Some (cost, area, assignment) ->
    { assignment; cost; area; evaluations = !evaluations }
  | None ->
    (* all-SW is always feasible (area 0) and enumerated; unreachable *)
    assert false

let greedy ~budget g =
  (* start all-software; move the best speedup-per-area task to HW while
     the budget allows and the makespan improves *)
  let evaluations = ref 0 in
  let eval a =
    incr evaluations;
    evaluate g a
  in
  let rec loop assignment cost area =
    let candidates =
      List.filter_map
        (fun (t : Taskgraph.task) ->
          if Schedule.side_of assignment t.Taskgraph.task_id = Schedule.Hw
          then None
          else if area + t.Taskgraph.hw_area > budget then None
          else
            let moved =
              (t.Taskgraph.task_id, Schedule.Hw)
              :: List.remove_assoc t.Taskgraph.task_id assignment
            in
            let cost', area' = eval moved in
            if cost' < cost then Some (cost', area', moved) else None)
        g.Taskgraph.tasks
    in
    match candidates with
    | [] -> (assignment, cost, area)
    | _nonempty ->
      let best_cost, best_area, best_assignment =
        List.fold_left
          (fun (bc, ba, bassign) (c, a, assign) ->
            if c < bc then (c, a, assign) else (bc, ba, bassign))
          (List.hd candidates |> fun (c, a, assign) -> (c, a, assign))
          (List.tl candidates)
      in
      loop best_assignment best_cost best_area
  in
  let start = Schedule.all_sw g in
  let cost0, area0 = eval start in
  let assignment, cost, area = loop start cost0 area0 in
  { assignment; cost; area; evaluations = !evaluations }

let improve ?start ?(max_passes = 8) ~budget g =
  let evaluations = ref 0 in
  let eval a =
    incr evaluations;
    evaluate g a
  in
  let initial =
    match start with
    | Some a -> a
    | None ->
      let o = greedy ~budget g in
      evaluations := !evaluations + o.evaluations;
      o.assignment
  in
  let flip assignment id =
    let current = Schedule.side_of assignment id in
    let flipped =
      match current with
      | Schedule.Sw -> Schedule.Hw
      | Schedule.Hw -> Schedule.Sw
    in
    (id, flipped) :: List.remove_assoc id assignment
  in
  let rec pass n assignment cost area =
    if n >= max_passes then (assignment, cost, area)
    else begin
      let improved = ref false in
      let current = ref (assignment, cost, area) in
      (* single-flip moves *)
      List.iter
        (fun (t : Taskgraph.task) ->
          let a, c, _ar = !current in
          let candidate = flip a t.Taskgraph.task_id in
          let c', ar' = eval candidate in
          if ar' <= budget && c' < c then begin
            current := (candidate, c', ar');
            improved := true
          end)
        g.Taskgraph.tasks;
      (* KL-style pair swaps: move one task off HW and another onto it,
         useful when the budget blocks every single move *)
      List.iter
        (fun (t1 : Taskgraph.task) ->
          List.iter
            (fun (t2 : Taskgraph.task) ->
              let a, c, _ar = !current in
              let s1 = Schedule.side_of a t1.Taskgraph.task_id in
              let s2 = Schedule.side_of a t2.Taskgraph.task_id in
              if s1 = Schedule.Hw && s2 = Schedule.Sw then begin
                let candidate = flip (flip a t1.Taskgraph.task_id) t2.Taskgraph.task_id in
                let c', ar' = eval candidate in
                if ar' <= budget && c' < c then begin
                  current := (candidate, c', ar');
                  improved := true
                end
              end)
            g.Taskgraph.tasks)
        g.Taskgraph.tasks;
      let a, c, ar = !current in
      if !improved then pass (n + 1) a c ar else (a, c, ar)
    end
  in
  let cost0, area0 = eval initial in
  let assignment, cost, area = pass 0 initial cost0 area0 in
  { assignment; cost; area; evaluations = !evaluations }

let annealed ?(seed = 1) ?(iterations = 2000) ~budget g =
  let evaluations = ref 0 in
  let eval a =
    incr evaluations;
    evaluate g a
  in
  let state = ref (seed land 0x3FFFFFFF) in
  let next_float () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. float_of_int 0x40000000
  in
  let next_int bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let tasks = Array.of_list g.Taskgraph.tasks in
  let n = Array.length tasks in
  let flip assignment id =
    let flipped =
      match Schedule.side_of assignment id with
      | Schedule.Sw -> Schedule.Hw
      | Schedule.Hw -> Schedule.Sw
    in
    (id, flipped) :: List.remove_assoc id assignment
  in
  let current = ref (Schedule.all_sw g) in
  let current_cost, current_area = eval !current in
  let cost = ref current_cost in
  let area = ref current_area in
  let best = ref (!current, !cost, !area) in
  let temperature = ref (float_of_int !cost /. 5.0 +. 1.0) in
  for _ = 1 to iterations do
    if n > 0 then begin
      let id = tasks.(next_int n).Taskgraph.task_id in
      let candidate = flip !current id in
      let c', a' = eval candidate in
      if a' <= budget then begin
        let delta = float_of_int (c' - !cost) in
        let accept =
          delta <= 0.0 || next_float () < exp (-.delta /. !temperature)
        in
        if accept then begin
          current := candidate;
          cost := c';
          area := a';
          let _, bc, _ = !best in
          if c' < bc then best := (candidate, c', a')
        end
      end
    end;
    temperature := !temperature *. 0.998
  done;
  let assignment, cost, area = !best in
  { assignment; cost; area; evaluations = !evaluations }

let quality_ratio ~optimal o =
  if optimal.cost = 0 then 1.0 else float_of_int o.cost /. float_of_int optimal.cost
