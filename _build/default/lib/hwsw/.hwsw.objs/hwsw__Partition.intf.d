lib/hwsw/partition.pp.mli: Schedule Taskgraph
