lib/hwsw/taskgraph.pp.ml: Hashtbl List Ppx_deriving_runtime Printf Set String Uml
