lib/hwsw/taskgraph.pp.mli: Ppx_deriving_runtime Uml
