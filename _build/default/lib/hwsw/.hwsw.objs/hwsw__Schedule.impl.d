lib/hwsw/schedule.pp.ml: Hashtbl List Ppx_deriving_runtime String Taskgraph
