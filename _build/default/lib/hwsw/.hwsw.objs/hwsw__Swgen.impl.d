lib/hwsw/swgen.pp.ml: Buffer Hashtbl List Printf Schedule String Taskgraph
