lib/hwsw/alloc.pp.ml: Deployment Ident List Model Schedule Taskgraph Uml
