lib/hwsw/alloc.pp.mli: Schedule Taskgraph Uml
