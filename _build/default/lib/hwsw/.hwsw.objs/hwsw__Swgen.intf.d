lib/hwsw/swgen.pp.mli: Schedule Taskgraph
