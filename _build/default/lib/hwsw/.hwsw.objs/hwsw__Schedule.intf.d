lib/hwsw/schedule.pp.mli: Ppx_deriving_runtime Taskgraph
