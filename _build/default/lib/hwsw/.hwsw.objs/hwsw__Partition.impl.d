lib/hwsw/partition.pp.ml: Array List Printf Schedule Taskgraph
