type side =
  | Sw
  | Hw
[@@deriving eq, ord, show]

type assignment = (string * side) list

type slot = {
  slot_task : string;
  slot_side : side;
  slot_start : int;
  slot_finish : int;
}
[@@deriving eq, show]

type result = {
  makespan : int;
  slots : slot list;
  hw_area : int;
}
[@@deriving eq, show]

let side_of assignment id =
  match List.assoc_opt id assignment with
  | Some s -> s
  | None -> Sw

let run g assignment =
  let order = Taskgraph.topological_order g in
  let finish_times = Hashtbl.create 16 in
  let cpu_free = ref 0 in
  let slots = ref [] in
  let area = ref 0 in
  List.iter
    (fun id ->
      let t =
        match Taskgraph.find_task g id with
        | Some t -> t
        | None -> assert false
      in
      let my_side = side_of assignment id in
      let duration =
        match my_side with
        | Sw -> t.Taskgraph.sw_time
        | Hw -> t.Taskgraph.hw_time
      in
      if my_side = Hw then area := !area + t.Taskgraph.hw_area;
      let data_ready =
        List.fold_left
          (fun acc (e : Taskgraph.edge) ->
            let pred_finish =
              match Hashtbl.find_opt finish_times e.Taskgraph.edge_from with
              | Some f -> f
              | None -> 0
            in
            let cross =
              if side_of assignment e.Taskgraph.edge_from <> my_side then
                e.Taskgraph.comm
              else 0
            in
            max acc (pred_finish + cross))
          0
          (Taskgraph.predecessors g id)
      in
      let start =
        match my_side with
        | Sw -> max data_ready !cpu_free
        | Hw -> data_ready
      in
      let finish = start + duration in
      if my_side = Sw then cpu_free := finish;
      Hashtbl.replace finish_times id finish;
      slots :=
        { slot_task = id; slot_side = my_side; slot_start = start;
          slot_finish = finish }
        :: !slots)
    order;
  let slots =
    List.sort
      (fun a b ->
        match compare a.slot_start b.slot_start with
        | 0 -> String.compare a.slot_task b.slot_task
        | c -> c)
      !slots
  in
  let makespan =
    List.fold_left (fun acc s -> max acc s.slot_finish) 0 slots
  in
  { makespan; slots; hw_area = !area }

let all_sw g = List.map (fun t -> (t.Taskgraph.task_id, Sw)) g.Taskgraph.tasks
let all_hw g = List.map (fun t -> (t.Taskgraph.task_id, Hw)) g.Taskgraph.tasks
