(** List scheduling of a partitioned task graph.

    Model: software tasks share a single CPU (sequential); each
    hardware task runs on its own unit (fully parallel); an edge whose
    endpoints live on different sides adds its communication cost to
    the data-ready time. *)

type side =
  | Sw
  | Hw
[@@deriving eq, ord, show]

type assignment = (string * side) list
(** task id -> side; tasks not listed default to [Sw]. *)

type slot = {
  slot_task : string;
  slot_side : side;
  slot_start : int;
  slot_finish : int;
}
[@@deriving eq, show]

type result = {
  makespan : int;
  slots : slot list;  (** start-time order *)
  hw_area : int;  (** total area of hardware-assigned tasks *)
}
[@@deriving eq, show]

val side_of : assignment -> string -> side
val run : Taskgraph.t -> assignment -> result
(** Deterministic list schedule in topological order. *)

val all_sw : Taskgraph.t -> assignment
val all_hw : Taskgraph.t -> assignment
