(** Task graphs for hardware/software partitioning.

    Each task carries a software execution time, a hardware execution
    time, and a hardware area cost; edges carry communication volumes
    that cost extra latency when they cross the HW/SW boundary. *)

type task = {
  task_id : string;
  task_name : string;
  sw_time : int;  (** cycles when executed on the CPU *)
  hw_time : int;  (** cycles when implemented in hardware *)
  hw_area : int;  (** area units when implemented in hardware *)
}
[@@deriving eq, ord, show]

type edge = {
  edge_from : string;
  edge_to : string;
  comm : int;  (** extra latency when the edge crosses the boundary *)
}
[@@deriving eq, ord, show]

type t = {
  tasks : task list;
  edges : edge list;
}
[@@deriving eq, show]

val make : task list -> edge list -> t
(** @raise Invalid_argument on duplicate task ids, unknown edge
    endpoints, negative costs, or a dependency cycle. *)

val task : ?name:string -> sw_time:int -> hw_time:int -> hw_area:int ->
  string -> task

val edge : ?comm:int -> string -> string -> edge

val find_task : t -> string -> task option
val predecessors : t -> string -> edge list
val successors : t -> string -> edge list

val topological_order : t -> string list
(** Deterministic (stable w.r.t. declaration order). *)

val of_activity :
  ?costs:(string -> int * int * int) -> Uml.Activityg.t -> t
(** Extract a task graph from an activity: every executable node
    (actions, behaviors, signal actions) becomes a task; control-flow
    reachability through pure control nodes becomes edges.  [costs]
    maps a node name to (sw_time, hw_time, hw_area); the default derives
    deterministic pseudo-costs from the name. *)
