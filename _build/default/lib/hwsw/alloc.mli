(** Deployment-driven partitioning.

    The paper's Deployment Diagrams describe "the physical deployment of
    a system"; here they drive the HW/SW split: a task is assigned to
    hardware when an artifact manifesting its activity node is deployed
    onto a [Device] node, to software when deployed onto an
    [ExecutionEnvironment] (or generic [Node]).  Undeployed tasks
    default to software. *)

val of_deployment :
  Uml.Model.t -> Taskgraph.t -> Schedule.assignment
(** Derive an assignment for a task graph extracted from one of the
    model's activities (task ids are activity-node identifiers). *)

val deployment_report :
  Uml.Model.t -> Taskgraph.t -> (string * Schedule.side * string option) list
(** Per task: (task id, side, deployment-target node name when any). *)
