open Uml

(* Find the deployment-target node of the artifact manifesting the
   given element, if any. *)
let target_node_of m element_id =
  let artifacts =
    List.filter_map
      (fun e ->
        match e with
        | Model.E_artifact a
          when List.exists (Ident.equal element_id) a.Deployment.art_manifests
          ->
          Some a
        | _other -> None)
      (Model.elements m)
  in
  let deployments =
    List.filter_map
      (fun e ->
        match e with
        | Model.E_deployment d -> Some d
        | _other -> None)
      (Model.elements m)
  in
  List.find_map
    (fun (a : Deployment.artifact) ->
      List.find_map
        (fun (d : Deployment.deployment) ->
          if Ident.equal d.Deployment.dep_artifact a.Deployment.art_id then
            match Model.find m d.Deployment.dep_target with
            | Some (Model.E_deployment_node n) -> Some n
            | Some _ | None -> None
          else None)
        deployments)
    artifacts

let side_of_node (n : Deployment.node) =
  match n.Deployment.dn_kind with
  | Deployment.Device -> Schedule.Hw
  | Deployment.Execution_environment | Deployment.Node -> Schedule.Sw

let of_deployment m g =
  List.map
    (fun (t : Taskgraph.task) ->
      let side =
        match target_node_of m (Ident.of_string t.Taskgraph.task_id) with
        | Some n -> side_of_node n
        | None -> Schedule.Sw
      in
      (t.Taskgraph.task_id, side))
    g.Taskgraph.tasks

let deployment_report m g =
  List.map
    (fun (t : Taskgraph.task) ->
      match target_node_of m (Ident.of_string t.Taskgraph.task_id) with
      | Some n ->
        (t.Taskgraph.task_id, side_of_node n, Some n.Deployment.dn_name)
      | None -> (t.Taskgraph.task_id, Schedule.Sw, None))
    g.Taskgraph.tasks
