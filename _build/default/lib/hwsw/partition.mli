(** HW/SW partitioning under an area budget.

    Objective: minimize the scheduled makespan subject to
    [hw_area <= budget].  Three algorithms share the objective so that
    experiment E6 can compare solution quality and runtime:

    - {!exhaustive}: optimal, enumerates all feasible assignments
      (guarded to small graphs);
    - {!greedy}: speedup-per-area ratio, single pass;
    - {!improve}: Kernighan–Lin-style single-move hill climbing on top
      of any starting assignment, deterministic pass structure. *)

type outcome = {
  assignment : Schedule.assignment;
  cost : int;  (** makespan of the scheduled assignment *)
  area : int;
  evaluations : int;  (** schedules evaluated (work measure) *)
}

val exhaustive : ?max_tasks:int -> budget:int -> Taskgraph.t -> outcome
(** @raise Invalid_argument when the graph exceeds [max_tasks]
    (default 20). *)

val greedy : budget:int -> Taskgraph.t -> outcome

val improve :
  ?start:Schedule.assignment -> ?max_passes:int -> budget:int ->
  Taskgraph.t -> outcome
(** Defaults: start = greedy's result, 8 passes. *)

val annealed :
  ?seed:int -> ?iterations:int -> budget:int -> Taskgraph.t -> outcome
(** Simulated annealing with a deterministic LCG (default seed 1,
    2000 iterations): random single flips, Metropolis acceptance with
    geometric cooling, infeasible moves rejected.  Returns the best
    feasible assignment seen. *)

val quality_ratio : optimal:outcome -> outcome -> float
(** [cost / optimal.cost]; 1.0 = optimal. *)
