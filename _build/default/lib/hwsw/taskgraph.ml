type task = {
  task_id : string;
  task_name : string;
  sw_time : int;
  hw_time : int;
  hw_area : int;
}
[@@deriving eq, ord, show]

type edge = {
  edge_from : string;
  edge_to : string;
  comm : int;
}
[@@deriving eq, ord, show]

type t = {
  tasks : task list;
  edges : edge list;
}
[@@deriving eq, show]

let task ?name ~sw_time ~hw_time ~hw_area task_id =
  let task_name =
    match name with
    | Some n -> n
    | None -> task_id
  in
  { task_id; task_name; sw_time; hw_time; hw_area }

let edge ?(comm = 1) edge_from edge_to = { edge_from; edge_to; comm }

let find_task g id = List.find_opt (fun t -> t.task_id = id) g.tasks
let predecessors g id = List.filter (fun e -> e.edge_to = id) g.edges
let successors g id = List.filter (fun e -> e.edge_from = id) g.edges

let topological_order g =
  let in_degree = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace in_degree t.task_id 0) g.tasks;
  List.iter
    (fun e ->
      match Hashtbl.find_opt in_degree e.edge_to with
      | Some d -> Hashtbl.replace in_degree e.edge_to (d + 1)
      | None -> ())
    g.edges;
  let rec loop acc remaining =
    let ready, rest =
      List.partition
        (fun t -> Hashtbl.find in_degree t.task_id = 0)
        remaining
    in
    match ready with
    | [] ->
      if rest = [] then List.rev acc
      else invalid_arg "Taskgraph: dependency cycle"
    | _nonempty ->
      List.iter
        (fun t ->
          List.iter
            (fun e ->
              match Hashtbl.find_opt in_degree e.edge_to with
              | Some d -> Hashtbl.replace in_degree e.edge_to (d - 1)
              | None -> ())
            (successors g t.task_id))
        ready;
      loop (List.rev_append (List.map (fun t -> t.task_id) ready) acc) rest
  in
  loop [] g.tasks

let make tasks edges =
  let module S = Set.Make (String) in
  let ids =
    List.fold_left
      (fun s t ->
        if S.mem t.task_id s then
          invalid_arg (Printf.sprintf "Taskgraph: duplicate task %s" t.task_id)
        else S.add t.task_id s)
      S.empty tasks
  in
  List.iter
    (fun t ->
      if t.sw_time < 0 || t.hw_time < 0 || t.hw_area < 0 then
        invalid_arg "Taskgraph: negative cost")
    tasks;
  List.iter
    (fun e ->
      if not (S.mem e.edge_from ids) then
        invalid_arg (Printf.sprintf "Taskgraph: unknown task %s" e.edge_from);
      if not (S.mem e.edge_to ids) then
        invalid_arg (Printf.sprintf "Taskgraph: unknown task %s" e.edge_to);
      if e.comm < 0 then invalid_arg "Taskgraph: negative communication cost")
    edges;
  let g = { tasks; edges } in
  let _order = topological_order g in
  g

(* deterministic pseudo-costs from a name *)
let default_costs name =
  let h = Hashtbl.hash name in
  let sw = 20 + (h mod 80) in
  let hw = 2 + (h mod 9) in
  let area = 50 + ((h / 7) mod 200) in
  (sw, hw, area)

let of_activity ?(costs = default_costs) (a : Uml.Activityg.t) =
  let mk_task = task in
  let mk_edge = edge in
  let mk_graph = make in
  let open Uml.Activityg in
  let is_task n =
    match n with
    | Action _ | Call_behavior _ | Send_signal _ | Accept_event _ -> true
    | Object_node _ | Initial_node _ | Activity_final _ | Flow_final _
    | Fork_node _ | Join_node _ | Decision_node _ | Merge_node _ ->
      false
  in
  let task_nodes = List.filter is_task a.ac_nodes in
  let tasks =
    List.map
      (fun n ->
        let name = node_name n in
        let sw, hw, area = costs name in
        mk_task ~name ~sw_time:sw ~hw_time:hw ~hw_area:area
          (Uml.Ident.to_string (node_id n)))
      task_nodes
  in
  (* edges: reachability between task nodes through control nodes *)
  let task_ids =
    List.map (fun n -> Uml.Ident.to_string (node_id n)) task_nodes
  in
  let is_task_id id = List.mem (Uml.Ident.to_string id) task_ids in
  let rec reach_tasks seen id =
    if List.exists (Uml.Ident.equal id) seen then []
    else
      let seen = id :: seen in
      List.concat_map
        (fun e ->
          if is_task_id e.ed_target then [ e.ed_target ]
          else reach_tasks seen e.ed_target)
        (outgoing a id)
  in
  let edges =
    List.concat_map
      (fun n ->
        let src = node_id n in
        let targets = reach_tasks [] src in
        (* dedup *)
        let seen = Hashtbl.create 4 in
        List.filter_map
          (fun tgt ->
            let tgt_s = Uml.Ident.to_string tgt in
            if Hashtbl.mem seen tgt_s then None
            else begin
              Hashtbl.add seen tgt_s ();
              Some (mk_edge (Uml.Ident.to_string src) tgt_s)
            end)
          targets)
      task_nodes
  in
  mk_graph tasks edges
