(** XMI import: the inverse of {!Write}.

    [model_of_string (Write.to_string m)] returns a model equal to [m]
    (per {!Uml.Model.equal}); imported identifiers are preserved
    verbatim. *)

exception Import_error of string

val of_xml : Sxml.Doc.t -> Uml.Model.t
(** @raise Import_error on structural problems. *)

val model_of_string : string -> Uml.Model.t
(** Parse then {!of_xml}.
    @raise Import_error also on XML parse errors. *)

val read_file : string -> Uml.Model.t
