lib/xmi/codec.ml: Printf Sxml Uml
