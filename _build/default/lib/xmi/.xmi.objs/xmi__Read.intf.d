lib/xmi/read.mli: Sxml Uml
