lib/xmi/read.ml: Activityg Classifier Codec Component Deployment Diagram Ident Instance Interaction List Model Option Pkg Printf Profile Smachine String Sxml Uml Usecase
