lib/xmi/codec.mli: Sxml Uml
