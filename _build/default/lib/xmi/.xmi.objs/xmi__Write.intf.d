lib/xmi/write.mli: Sxml Uml
