lib/xmi/write.ml: Activityg Classifier Codec Component Deployment Diagram Ident Instance Interaction List Model Pkg Profile Smachine String Sxml Uml Usecase
