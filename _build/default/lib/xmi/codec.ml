exception Decode_error of string

let decode_error fmt = Printf.ksprintf (fun m -> raise (Decode_error m)) fmt

let bool_attr name b = if b then [ (name, "true") ] else []

let opt_attr name = function
  | Some v -> [ (name, v) ]
  | None -> []

let int_attr name i = [ (name, string_of_int i) ]

let vspec_attrs prefix (v : Uml.Vspec.t) =
  let kind = prefix ^ "Kind" in
  match v with
  | Uml.Vspec.Int_literal i -> [ (kind, "int"); (prefix, string_of_int i) ]
  | Uml.Vspec.Real_literal r -> [ (kind, "real"); (prefix, string_of_float r) ]
  | Uml.Vspec.Bool_literal b -> [ (kind, "bool"); (prefix, string_of_bool b) ]
  | Uml.Vspec.String_literal s -> [ (kind, "string"); (prefix, s) ]
  | Uml.Vspec.Enum_literal s -> [ (kind, "enum"); (prefix, s) ]
  | Uml.Vspec.Null_literal -> [ (kind, "null") ]
  | Uml.Vspec.Opaque_expression s -> [ (kind, "opaque"); (prefix, s) ]

let vspec_of_attrs prefix e =
  let kind = prefix ^ "Kind" in
  match Sxml.Doc.attr e kind with
  | None -> None
  | Some k -> (
    let payload () =
      match Sxml.Doc.attr e prefix with
      | Some p -> p
      | None -> decode_error "missing %s payload for kind %s" prefix k
    in
    match k with
    | "int" -> (
      match int_of_string_opt (payload ()) with
      | Some i -> Some (Uml.Vspec.Int_literal i)
      | None -> decode_error "bad int literal %s" (payload ()))
    | "real" -> (
      match float_of_string_opt (payload ()) with
      | Some r -> Some (Uml.Vspec.Real_literal r)
      | None -> decode_error "bad real literal %s" (payload ()))
    | "bool" -> (
      match payload () with
      | "true" -> Some (Uml.Vspec.Bool_literal true)
      | "false" -> Some (Uml.Vspec.Bool_literal false)
      | other -> decode_error "bad bool literal %s" other)
    | "string" -> Some (Uml.Vspec.String_literal (payload ()))
    | "enum" -> Some (Uml.Vspec.Enum_literal (payload ()))
    | "null" -> Some Uml.Vspec.Null_literal
    | "opaque" -> Some (Uml.Vspec.Opaque_expression (payload ()))
    | other -> decode_error "unknown value kind %s" other)

let dtype_attrs name (ty : Uml.Dtype.t) =
  let kind = name ^ "Kind" in
  match ty with
  | Uml.Dtype.Boolean -> [ (kind, "Boolean") ]
  | Uml.Dtype.Integer -> [ (kind, "Integer") ]
  | Uml.Dtype.Real -> [ (kind, "Real") ]
  | Uml.Dtype.Unlimited_natural -> [ (kind, "UnlimitedNatural") ]
  | Uml.Dtype.String_type -> [ (kind, "String") ]
  | Uml.Dtype.Void -> []
  | Uml.Dtype.Ref id -> [ (kind, "ref"); (name, Uml.Ident.to_string id) ]

let dtype_of_attrs name e =
  let kind = name ^ "Kind" in
  match Sxml.Doc.attr e kind with
  | None -> Uml.Dtype.Void
  | Some "Boolean" -> Uml.Dtype.Boolean
  | Some "Integer" -> Uml.Dtype.Integer
  | Some "Real" -> Uml.Dtype.Real
  | Some "UnlimitedNatural" -> Uml.Dtype.Unlimited_natural
  | Some "String" -> Uml.Dtype.String_type
  | Some "ref" -> (
    match Sxml.Doc.attr e name with
    | Some id -> Uml.Dtype.Ref (Uml.Ident.of_string id)
    | None -> decode_error "type ref without target")
  | Some other -> decode_error "unknown type kind %s" other

let mult_attrs (m : Uml.Mult.t) =
  let upper =
    match m.Uml.Mult.upper with
    | Uml.Mult.Bounded n -> string_of_int n
    | Uml.Mult.Unbounded -> "*"
  in
  [ ("lower", string_of_int m.Uml.Mult.lower); ("upper", upper) ]

let mult_of_attrs e =
  match Sxml.Doc.attr e "lower", Sxml.Doc.attr e "upper" with
  | Some lo, Some up -> (
    let lower =
      match int_of_string_opt lo with
      | Some l -> l
      | None -> decode_error "bad multiplicity lower %s" lo
    in
    match up with
    | "*" -> { Uml.Mult.lower; upper = Uml.Mult.Unbounded }
    | n -> (
      match int_of_string_opt n with
      | Some u -> { Uml.Mult.lower; upper = Uml.Mult.Bounded u }
      | None -> decode_error "bad multiplicity upper %s" n))
  | _missing1, _missing2 -> Uml.Mult.one

let get_attr e name =
  match Sxml.Doc.attr e name with
  | Some v -> v
  | None -> decode_error "element <%s> missing attribute %s" e.Sxml.Doc.tag name

let get_bool e name =
  match Sxml.Doc.attr e name with
  | Some "true" -> true
  | Some "false" | None -> false
  | Some other -> decode_error "bad boolean attribute %s=%s" name other

let get_int e name =
  match int_of_string_opt (get_attr e name) with
  | Some i -> i
  | None -> decode_error "bad integer attribute %s" name

let get_int_opt e name =
  match Sxml.Doc.attr e name with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> Some i
    | None -> decode_error "bad integer attribute %s=%s" name v)

let get_opt e name = Sxml.Doc.attr e name
