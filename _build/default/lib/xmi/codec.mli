(** Shared attribute encodings between {!Write} and {!Read}.

    Values and type references are stored as two attributes
    ([fooKind] + [foo]) so that every {!Uml.Vspec.t} and {!Uml.Dtype.t}
    round-trips exactly. *)

exception Decode_error of string

val decode_error : ('a, unit, string, 'b) format4 -> 'a

val bool_attr : string -> bool -> (string * string) list
(** Empty when false (false is the default on decode). *)

val opt_attr : string -> string option -> (string * string) list
val int_attr : string -> int -> (string * string) list

val vspec_attrs : string -> Uml.Vspec.t -> (string * string) list
val vspec_of_attrs : string -> Sxml.Doc.element -> Uml.Vspec.t option
(** @raise Decode_error on malformed payloads. *)

val dtype_attrs : string -> Uml.Dtype.t -> (string * string) list
val dtype_of_attrs : string -> Sxml.Doc.element -> Uml.Dtype.t
(** Defaults to [Void] when absent. *)

val mult_attrs : Uml.Mult.t -> (string * string) list
val mult_of_attrs : Sxml.Doc.element -> Uml.Mult.t

val get_attr : Sxml.Doc.element -> string -> string
(** @raise Decode_error when missing. *)

val get_bool : Sxml.Doc.element -> string -> bool
val get_int : Sxml.Doc.element -> string -> int
val get_int_opt : Sxml.Doc.element -> string -> int option
val get_opt : Sxml.Doc.element -> string -> string option
