(** XMI export.

    Serializes a whole {!Uml.Model.t} to an XMI-2.x-style XML document:
    a [xmi:XMI] root holding a [uml:Model] with [packagedElement]
    children (one per model element, tagged with [xmi:type] and
    [xmi:id]), followed by stereotype applications and diagrams.  The
    encoding is self-contained and lossless: {!Read.model_of_string}
    returns an equal model. *)

val to_xml : Uml.Model.t -> Sxml.Doc.t
val to_string : Uml.Model.t -> string
val write_file : Uml.Model.t -> string -> unit
