(** RTL expressions. *)

type unop =
  | Not  (** bitwise complement *)
  | Reduce_or
  | Reduce_and
[@@deriving eq, ord, show]

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Shl
  | Shr
[@@deriving eq, ord, show]

type t =
  | Const of int * Htype.t
  | Enum_lit of string
  | Ref of string  (** signal, port or variable name *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** [Mux (cond, if_true, if_false)] *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)] *)
  | Concat of t * t
  | Resize of t * int  (** zero-extend / truncate to width *)
[@@deriving eq, ord, show]

val zero : t
val one : t
val of_bool : bool -> t
val of_int : ?width:int -> int -> t
val ( &&: ) : t -> t -> t
val ( ||: ) : t -> t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t

val refs : t -> string list
(** Free signal names, each once, first-occurrence order. *)

val is_boolean_op : binop -> bool
(** Comparison operators yield a single bit. *)
