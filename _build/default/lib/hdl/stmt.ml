type case_choice =
  | Ch_int of int
  | Ch_enum of string
[@@deriving eq, ord, show]

type t =
  | Assign of string * Expr.t
  | If of Expr.t * t list * t list
  | Case of Expr.t * (case_choice * t list) list * t list option
  | Null
[@@deriving eq, ord, show]

let dedup names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let rec assigned_one acc = function
  | Assign (name, _) -> name :: acc
  | If (_, t_branch, e_branch) ->
    let acc = List.fold_left assigned_one acc t_branch in
    List.fold_left assigned_one acc e_branch
  | Case (_, branches, default) ->
    let acc =
      List.fold_left
        (fun acc (_, body) -> List.fold_left assigned_one acc body)
        acc branches
    in
    (match default with
     | Some body -> List.fold_left assigned_one acc body
     | None -> acc)
  | Null -> acc

let assigned stmts = dedup (List.rev (List.fold_left assigned_one [] stmts))

let rec read_one acc = function
  | Assign (_, e) -> List.rev_append (Expr.refs e) acc
  | If (cond, t_branch, e_branch) ->
    let acc = List.rev_append (Expr.refs cond) acc in
    let acc = List.fold_left read_one acc t_branch in
    List.fold_left read_one acc e_branch
  | Case (sel, branches, default) ->
    let acc = List.rev_append (Expr.refs sel) acc in
    let acc =
      List.fold_left
        (fun acc (_, body) -> List.fold_left read_one acc body)
        acc branches
    in
    (match default with
     | Some body -> List.fold_left read_one acc body
     | None -> acc)
  | Null -> acc

let read stmts = dedup (List.rev (List.fold_left read_one [] stmts))
