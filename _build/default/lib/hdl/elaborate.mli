(** Hierarchy elaboration: inline every instance into one flat module.

    Instance-local names are prefixed with the instance path
    ([u_core.u_fifo.head]); port connections become wire aliases
    resolved by substitution, so the flat module contains only
    processes over flat signals — the form the discrete-event simulator
    executes. *)

exception Elaboration_error of string

val flatten : Module_.design -> Module_.t
(** @raise Elaboration_error on unknown modules, dangling connections or
    instance recursion. *)
