lib/hdl/expr.pp.ml: Hashtbl Htype List Ppx_deriving_runtime
