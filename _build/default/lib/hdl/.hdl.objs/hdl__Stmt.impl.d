lib/hdl/stmt.pp.ml: Expr Hashtbl List Ppx_deriving_runtime
