lib/hdl/module_.pp.mli: Htype Ppx_deriving_runtime Stmt
