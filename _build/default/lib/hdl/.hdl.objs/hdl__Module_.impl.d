lib/hdl/module_.pp.ml: Htype List Ppx_deriving_runtime Stmt
