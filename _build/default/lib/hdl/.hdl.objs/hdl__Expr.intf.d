lib/hdl/expr.pp.mli: Htype Ppx_deriving_runtime
