lib/hdl/check.pp.mli: Expr Htype Module_
