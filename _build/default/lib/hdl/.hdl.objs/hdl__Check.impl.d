lib/hdl/check.pp.ml: Expr Hashtbl Htype List Module_ Printf Stmt String
