lib/hdl/elaborate.pp.mli: Module_
