lib/hdl/htype.pp.ml: List Ppx_deriving_runtime Printf String
