lib/hdl/elaborate.pp.ml: Expr Hashtbl List Module_ Option Printf Stmt
