lib/hdl/stmt.pp.mli: Expr Ppx_deriving_runtime
