lib/hdl/htype.pp.mli: Ppx_deriving_runtime
