type t =
  | Bit
  | Unsigned of int
  | Enum of string list
[@@deriving eq, ord, show]

(* bits needed to represent values 0 .. n-1 *)
let bits_for n =
  let rec go bits capacity = if capacity >= n then bits else go (bits + 1) (capacity * 2) in
  go 1 2

let width = function
  | Bit -> 1
  | Unsigned w -> w
  | Enum lits -> bits_for (List.length lits)

let max_value = function
  | Bit -> 1
  | Unsigned w -> (1 lsl w) - 1
  | Enum lits -> max 0 (List.length lits - 1)

let to_string = function
  | Bit -> "bit"
  | Unsigned w -> Printf.sprintf "unsigned(%d)" w
  | Enum lits -> Printf.sprintf "enum{%s}" (String.concat "," lits)

let enum_index t lit =
  match t with
  | Enum lits ->
    let rec find i = function
      | [] -> None
      | l :: _rest when l = lit -> Some i
      | _l :: rest -> find (i + 1) rest
    in
    find 0 lits
  | Bit | Unsigned _ -> None
