(** Sequential statements inside processes. *)

type case_choice =
  | Ch_int of int
  | Ch_enum of string
[@@deriving eq, ord, show]

type t =
  | Assign of string * Expr.t  (** signal assignment *)
  | If of Expr.t * t list * t list
  | Case of Expr.t * (case_choice * t list) list * t list option
      (** selector, branches, optional default branch *)
  | Null
[@@deriving eq, ord, show]

val assigned : t list -> string list
(** Signals assigned anywhere in a statement list, each once. *)

val read : t list -> string list
(** Signals read (in conditions, selectors, right-hand sides), each
    once. *)
