type unop =
  | Not
  | Reduce_or
  | Reduce_and
[@@deriving eq, ord, show]

type binop =
  | And
  | Or
  | Xor
  | Add
  | Sub
  | Mul
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Shl
  | Shr
[@@deriving eq, ord, show]

type t =
  | Const of int * Htype.t
  | Enum_lit of string
  | Ref of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Slice of t * int * int
  | Concat of t * t
  | Resize of t * int
[@@deriving eq, ord, show]

let zero = Const (0, Htype.Bit)
let one = Const (1, Htype.Bit)
let of_bool b = if b then one else zero
let of_int ?width n =
  let ty =
    match width with
    | Some w -> Htype.Unsigned w
    | None -> Htype.Unsigned (max 1 (if n = 0 then 1 else
        let rec bits v = if v = 0 then 0 else 1 + bits (v lsr 1) in
        bits n))
  in
  Const (n, ty)

let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Neq, a, b)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)

let refs e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Const _ | Enum_lit _ -> ()
    | Ref name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        out := name :: !out
      end
    | Unop (_, e1) | Slice (e1, _, _) | Resize (e1, _) -> go e1
    | Binop (_, e1, e2) | Concat (e1, e2) ->
      go e1;
      go e2
    | Mux (c, a, b) ->
      go c;
      go a;
      go b
  in
  go e;
  List.rev !out

let is_boolean_op = function
  | Eq | Neq | Lt | Le | Gt | Ge -> true
  | And | Or | Xor | Add | Sub | Mul | Shl | Shr -> false
