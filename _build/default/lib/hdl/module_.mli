(** RTL modules and designs. *)

type port_dir =
  | Input
  | Output
[@@deriving eq, ord, show]

type port = {
  port_name : string;
  port_dir : port_dir;
  port_type : Htype.t;
}
[@@deriving eq, ord, show]

type signal = {
  sig_name : string;
  sig_type : Htype.t;
  sig_init : int option;  (** reset/initial value *)
}
[@@deriving eq, ord, show]

type process =
  | Seq of seq_process
  | Comb of comb_process

and seq_process = {
  sp_name : string;
  sp_clock : string;  (** rising-edge clock signal *)
  sp_reset : (string * Stmt.t list) option;
      (** synchronous reset signal and reset body *)
  sp_body : Stmt.t list;
}

and comb_process = {
  cp_name : string;
  cp_body : Stmt.t list;  (** sensitivity list inferred from reads *)
}
[@@deriving eq, ord, show]

type instance = {
  inst_name : string;
  inst_module : string;
  inst_conns : (string * string) list;  (** formal port -> actual signal *)
}
[@@deriving eq, ord, show]

type t = {
  mod_name : string;
  mod_ports : port list;
  mod_signals : signal list;
  mod_processes : process list;
  mod_instances : instance list;
}
[@@deriving eq, ord, show]

type design = {
  des_modules : t list;
  des_top : string;
}
[@@deriving eq, ord, show]

val input : string -> Htype.t -> port
val output : string -> Htype.t -> port
val signal : ?init:int -> string -> Htype.t -> signal

val seq_process : ?reset:string * Stmt.t list -> name:string -> clock:string ->
  Stmt.t list -> process

val comb_process : name:string -> Stmt.t list -> process

val make : ?ports:port list -> ?signals:signal list ->
  ?processes:process list -> ?instances:instance list -> string -> t

val design : top:string -> t list -> design
val find_module : design -> string -> t option
val find_port : t -> string -> port option
val find_signal : t -> string -> signal option

val declared_type : t -> string -> Htype.t option
(** Type of a name, whether port or internal signal. *)

val process_name : process -> string
val process_body : process -> Stmt.t list
