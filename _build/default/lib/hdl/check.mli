(** Static checks over RTL designs: name resolution, driver rules,
    width compatibility, instance wiring, combinational loops. *)

val infer_type : Module_.t -> Expr.t -> (Htype.t, string) result
(** Infer the type of an expression in a module's name scope.
    Arithmetic joins to the wider operand; comparisons and reductions
    yield [Bit]; [Concat] adds widths. *)

val check_module : Module_.t -> string list
(** Diagnostics local to one module (no instance resolution). *)

val check_design : Module_.design -> string list
(** All module diagnostics plus instance wiring and hierarchy checks.
    Empty list = clean. *)

val has_comb_loop : Module_.t -> bool
(** Combinational cycle through the module's [Comb] processes. *)
