type port_dir =
  | Input
  | Output
[@@deriving eq, ord, show]

type port = {
  port_name : string;
  port_dir : port_dir;
  port_type : Htype.t;
}
[@@deriving eq, ord, show]

type signal = {
  sig_name : string;
  sig_type : Htype.t;
  sig_init : int option;
}
[@@deriving eq, ord, show]

type process =
  | Seq of seq_process
  | Comb of comb_process

and seq_process = {
  sp_name : string;
  sp_clock : string;
  sp_reset : (string * Stmt.t list) option;
  sp_body : Stmt.t list;
}

and comb_process = {
  cp_name : string;
  cp_body : Stmt.t list;
}
[@@deriving eq, ord, show]

type instance = {
  inst_name : string;
  inst_module : string;
  inst_conns : (string * string) list;
}
[@@deriving eq, ord, show]

type t = {
  mod_name : string;
  mod_ports : port list;
  mod_signals : signal list;
  mod_processes : process list;
  mod_instances : instance list;
}
[@@deriving eq, ord, show]

type design = {
  des_modules : t list;
  des_top : string;
}
[@@deriving eq, ord, show]

let input port_name port_type = { port_name; port_dir = Input; port_type }
let output port_name port_type = { port_name; port_dir = Output; port_type }
let signal ?init sig_name sig_type = { sig_name; sig_type; sig_init = init }

let seq_process ?reset ~name ~clock body =
  Seq { sp_name = name; sp_clock = clock; sp_reset = reset; sp_body = body }

let comb_process ~name body = Comb { cp_name = name; cp_body = body }

let make ?(ports = []) ?(signals = []) ?(processes = []) ?(instances = [])
    name =
  {
    mod_name = name;
    mod_ports = ports;
    mod_signals = signals;
    mod_processes = processes;
    mod_instances = instances;
  }

let design ~top modules = { des_modules = modules; des_top = top }

let find_module d name =
  List.find_opt (fun m -> m.mod_name = name) d.des_modules

let find_port m name = List.find_opt (fun p -> p.port_name = name) m.mod_ports

let find_signal m name =
  List.find_opt (fun s -> s.sig_name = name) m.mod_signals

let declared_type m name =
  match find_port m name with
  | Some p -> Some p.port_type
  | None -> (
    match find_signal m name with
    | Some s -> Some s.sig_type
    | None -> None)

let process_name = function
  | Seq p -> p.sp_name
  | Comb p -> p.cp_name

let process_body = function
  | Seq p -> p.sp_body
  | Comb p -> p.cp_body
