exception Elaboration_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Elaboration_error m)) fmt

let rec subst_expr map (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Enum_lit _ -> e
  | Expr.Ref name -> (
    match Hashtbl.find_opt map name with
    | Some n -> Expr.Ref n
    | None -> e)
  | Expr.Unop (op, e1) -> Expr.Unop (op, subst_expr map e1)
  | Expr.Binop (op, e1, e2) ->
    Expr.Binop (op, subst_expr map e1, subst_expr map e2)
  | Expr.Mux (c, a, b) ->
    Expr.Mux (subst_expr map c, subst_expr map a, subst_expr map b)
  | Expr.Slice (e1, hi, lo) -> Expr.Slice (subst_expr map e1, hi, lo)
  | Expr.Concat (e1, e2) -> Expr.Concat (subst_expr map e1, subst_expr map e2)
  | Expr.Resize (e1, w) -> Expr.Resize (subst_expr map e1, w)

let rec subst_stmt map (s : Stmt.t) =
  match s with
  | Stmt.Null -> Stmt.Null
  | Stmt.Assign (target, e) ->
    let target =
      match Hashtbl.find_opt map target with
      | Some n -> n
      | None -> target
    in
    Stmt.Assign (target, subst_expr map e)
  | Stmt.If (c, t_branch, e_branch) ->
    Stmt.If
      ( subst_expr map c,
        List.map (subst_stmt map) t_branch,
        List.map (subst_stmt map) e_branch )
  | Stmt.Case (sel, branches, default) ->
    Stmt.Case
      ( subst_expr map sel,
        List.map (fun (c, body) -> (c, List.map (subst_stmt map) body)) branches,
        Option.map (List.map (subst_stmt map)) default )

(* Inline [m] under path prefix [prefix]; [bindings] maps m's port names
   to enclosing flat signal names.  Returns flat signals and processes. *)
let rec inline d depth prefix (m : Module_.t) bindings =
  if depth > 64 then err "instance nesting too deep (recursion?)";
  let map = Hashtbl.create 16 in
  List.iter (fun (formal, actual) -> Hashtbl.replace map formal actual) bindings;
  let local_name n = if prefix = "" then n else prefix ^ "." ^ n in
  (* unconnected ports become local signals *)
  let port_signals =
    List.filter_map
      (fun (p : Module_.port) ->
        if Hashtbl.mem map p.Module_.port_name then None
        else begin
          let flat = local_name p.Module_.port_name in
          Hashtbl.replace map p.Module_.port_name flat;
          Some (Module_.signal flat p.Module_.port_type)
        end)
      m.Module_.mod_ports
  in
  let local_signals =
    List.map
      (fun (s : Module_.signal) ->
        let flat = local_name s.Module_.sig_name in
        Hashtbl.replace map s.Module_.sig_name flat;
        { s with Module_.sig_name = flat })
      m.Module_.mod_signals
  in
  let rename_process p =
    match p with
    | Module_.Seq sp ->
      let clock =
        match Hashtbl.find_opt map sp.Module_.sp_clock with
        | Some n -> n
        | None -> sp.Module_.sp_clock
      in
      let reset =
        Option.map
          (fun (rst, body) ->
            let rst =
              match Hashtbl.find_opt map rst with
              | Some n -> n
              | None -> rst
            in
            (rst, List.map (subst_stmt map) body))
          sp.Module_.sp_reset
      in
      Module_.Seq
        {
          Module_.sp_name = local_name sp.Module_.sp_name;
          sp_clock = clock;
          sp_reset = reset;
          sp_body = List.map (subst_stmt map) sp.Module_.sp_body;
        }
    | Module_.Comb cp ->
      Module_.Comb
        {
          Module_.cp_name = local_name cp.Module_.cp_name;
          cp_body = List.map (subst_stmt map) cp.Module_.cp_body;
        }
  in
  let processes = List.map rename_process m.Module_.mod_processes in
  let sub_results =
    List.map
      (fun (inst : Module_.instance) ->
        match Module_.find_module d inst.Module_.inst_module with
        | None ->
          err "instance %s: unknown module %s" inst.Module_.inst_name
            inst.Module_.inst_module
        | Some target ->
          let sub_bindings =
            List.map
              (fun (formal, actual) ->
                match Hashtbl.find_opt map actual with
                | Some flat -> (formal, flat)
                | None ->
                  err "instance %s: connection %s -> %s unresolved"
                    inst.Module_.inst_name formal actual)
              inst.Module_.inst_conns
          in
          inline d (depth + 1)
            (local_name inst.Module_.inst_name)
            target sub_bindings)
      m.Module_.mod_instances
  in
  let sub_signals = List.concat_map fst sub_results in
  let sub_processes = List.concat_map snd sub_results in
  (port_signals @ local_signals @ sub_signals, processes @ sub_processes)

let flatten d =
  match Module_.find_module d d.Module_.des_top with
  | None -> err "top module %s not found" d.Module_.des_top
  | Some top ->
    (* top ports stay ports of the flat module *)
    let bindings =
      List.map
        (fun (p : Module_.port) -> (p.Module_.port_name, p.Module_.port_name))
        top.Module_.mod_ports
    in
    let signals, processes = inline d 0 "" top bindings in
    Module_.make ~ports:top.Module_.mod_ports ~signals ~processes
      (top.Module_.mod_name ^ "_flat")
