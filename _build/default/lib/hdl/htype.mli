(** Hardware value types. *)

type t =
  | Bit
  | Unsigned of int  (** bit vector of the given width, unsigned *)
  | Enum of string list  (** symbolic FSM state types *)
[@@deriving eq, ord, show]

val width : t -> int
(** Bits needed to represent a value ([Enum] is ceil-log2 of the literal
    count, minimum 1). *)

val max_value : t -> int
(** Largest representable value: 1 for [Bit], [2^w - 1] for vectors,
    [n-1] for an [Enum] with [n] literals. *)

val to_string : t -> string
val enum_index : t -> string -> int option
(** Position of a literal in an [Enum]; [None] otherwise. *)
