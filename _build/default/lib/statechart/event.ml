type t = {
  name : string;
  args : Asl.Value.t list;
}
[@@deriving eq, show]

let make ?(args = []) name = { name; args }
let completion_name = "__completion"
let time_name = "__time"

let matches trigger ev =
  match trigger with
  | Uml.Smachine.Signal_trigger n -> n = ev.name
  | Uml.Smachine.Any_trigger ->
    ev.name <> completion_name && ev.name <> time_name
  | Uml.Smachine.Time_trigger _ -> false
  | Uml.Smachine.Completion -> false
