(** Event instances dispatched to state machines. *)

type t = {
  name : string;
  args : Asl.Value.t list;
}
[@@deriving eq, show]

val make : ?args:Asl.Value.t list -> string -> t

val matches : Uml.Smachine.trigger -> t -> bool
(** Does a trigger accept this event?  [Time_trigger] and [Completion]
    triggers never match external events (they are raised internally by
    the engine). *)

val completion_name : string
(** Reserved name of internally generated completion events. *)

val time_name : string
(** Reserved name of internally generated time events. *)
