open Uml

type t = {
  tm : Smachine.t;
  vertices : (Ident.t, Smachine.vertex) Hashtbl.t;
  region_of_vertex_tbl : (Ident.t, Ident.t) Hashtbl.t;
  state_of_region_tbl : (Ident.t, Ident.t option) Hashtbl.t;
  regions : (Ident.t, Smachine.region) Hashtbl.t;
  outgoing_tbl : (Ident.t, Smachine.transition list) Hashtbl.t;
  incoming_tbl : (Ident.t, Smachine.transition list) Hashtbl.t;
}

let push tbl key v =
  let current =
    match Hashtbl.find_opt tbl key with
    | Some l -> l
    | None -> []
  in
  Hashtbl.replace tbl key (current @ [ v ])

let build tm =
  let t =
    {
      tm;
      vertices = Hashtbl.create 64;
      region_of_vertex_tbl = Hashtbl.create 64;
      state_of_region_tbl = Hashtbl.create 16;
      regions = Hashtbl.create 16;
      outgoing_tbl = Hashtbl.create 64;
      incoming_tbl = Hashtbl.create 64;
    }
  in
  let rec scan_region owner (r : Smachine.region) =
    Hashtbl.replace t.regions r.Smachine.rg_id r;
    Hashtbl.replace t.state_of_region_tbl r.Smachine.rg_id owner;
    List.iter
      (fun tr ->
        push t.outgoing_tbl tr.Smachine.tr_source tr;
        push t.incoming_tbl tr.Smachine.tr_target tr)
      r.Smachine.rg_transitions;
    List.iter
      (fun v ->
        let id = Smachine.vertex_id v in
        Hashtbl.replace t.vertices id v;
        Hashtbl.replace t.region_of_vertex_tbl id r.Smachine.rg_id;
        match v with
        | Smachine.State s ->
          List.iter (scan_region (Some s.Smachine.st_id)) s.Smachine.st_regions
        | Smachine.Pseudo _ | Smachine.Final _ -> ())
      r.Smachine.rg_vertices
  in
  List.iter (scan_region None) tm.Smachine.sm_regions;
  t

let machine t = t.tm
let vertex t id = Hashtbl.find t.vertices id
let vertex_opt t id = Hashtbl.find_opt t.vertices id
let region_of_vertex t id = Hashtbl.find t.region_of_vertex_tbl id
let state_of_region t id = Hashtbl.find t.state_of_region_tbl id
let region t id = Hashtbl.find t.regions id

let outgoing t id =
  match Hashtbl.find_opt t.outgoing_tbl id with
  | Some l -> l
  | None -> []

let incoming t id =
  match Hashtbl.find_opt t.incoming_tbl id with
  | Some l -> l
  | None -> []

let region_chain t id =
  let rec up acc region_id =
    let acc = region_id :: acc in
    match state_of_region t region_id with
    | None -> acc
    | Some st -> up acc (region_of_vertex t st)
  in
  up [] (region_of_vertex t id)

let ancestor_states t id =
  let rec up acc region_id =
    match state_of_region t region_id with
    | None -> acc
    | Some st -> up (st :: acc) (region_of_vertex t st)
  in
  up [] (region_of_vertex t id)

let depth t id = List.length (region_chain t id)

let lca_region t id1 id2 =
  let c1 = region_chain t id1 in
  let c2 = region_chain t id2 in
  let rec common last l1 l2 =
    match l1, l2 with
    | r1 :: tl1, r2 :: tl2 when Ident.equal r1 r2 -> common (Some r1) tl1 tl2
    | _l1, _l2 -> last
  in
  common None c1 c2

let initial_of_region (r : Smachine.region) =
  List.find_map
    (fun v ->
      match v with
      | Smachine.Pseudo p when p.Smachine.ps_kind = Smachine.Initial -> Some p
      | Smachine.Pseudo _ | Smachine.State _ | Smachine.Final _ -> None)
    r.Smachine.rg_vertices

let history_of_region (r : Smachine.region) =
  List.find_map
    (fun v ->
      match v with
      | Smachine.Pseudo p
        when p.Smachine.ps_kind = Smachine.Deep_history
             || p.Smachine.ps_kind = Smachine.Shallow_history ->
        Some p
      | Smachine.Pseudo _ | Smachine.State _ | Smachine.Final _ -> None)
    r.Smachine.rg_vertices

let is_within t ~ancestor id =
  List.exists (Ident.equal ancestor) (ancestor_states t id)
