(** Flattening hierarchical state machines.

    Code generators for hardware targets want a flat machine: one state
    register, one transition table.  This module lowers a hierarchical
    machine to that form, composing exit/effect/entry behavior lists and
    resolving default (initial) entry chains and junction chains.

    Restrictions (reported as [Error _], never silently mis-compiled):
    orthogonal regions, history, fork/join, entry/exit points, terminate,
    deferred events and [after n] triggers are not flattenable here —
    they remain the execution engine's domain. *)

type flat_transition = {
  ft_source : string;  (** qualified leaf name *)
  ft_target : string;
  ft_event : string option;  (** [None] = completion (eventless) *)
  ft_guards : string list;  (** conjunction of ASL guards *)
  ft_effects : string list;  (** exit actions, effects, entry actions *)
  ft_priority : int;  (** depth of the original source; larger wins *)
}
[@@deriving eq, show]

type t = {
  fm_name : string;
  fm_states : string list;  (** qualified leaf names, deterministic order *)
  fm_initial : string;
  fm_finals : string list;
  fm_transitions : flat_transition list;  (** priority-sorted per source *)
}
[@@deriving eq, show]

val flatten : Uml.Smachine.t -> (t, string) result

val events_of : t -> string list
(** All event names referenced, sorted. *)

val simulate :
  ?eval_guard:(string -> bool) -> t -> string list -> string list
(** Flat-machine reference interpreter used for differential testing
    against {!Engine}: feed event names, get the state name after each
    event (eventless transitions are chased to a fixpoint, bounded).
    [eval_guard] decides guards (default: all true). *)
