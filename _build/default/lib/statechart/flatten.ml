open Uml

type flat_transition = {
  ft_source : string;
  ft_target : string;
  ft_event : string option;
  ft_guards : string list;
  ft_effects : string list;
  ft_priority : int;
}
[@@deriving eq, show]

type t = {
  fm_name : string;
  fm_states : string list;
  fm_initial : string;
  fm_finals : string list;
  fm_transitions : flat_transition list;
}
[@@deriving eq, show]

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type ctx = {
  topo : Topology.t;
}

let check_supported ctx =
  let sm = Topology.machine ctx.topo in
  if List.length sm.Smachine.sm_regions <> 1 then
    unsupported "machine has %d top regions (need exactly 1)"
      (List.length sm.Smachine.sm_regions);
  List.iter
    (fun v ->
      match v with
      | Smachine.State s ->
        if Smachine.is_orthogonal s then
          unsupported "orthogonal state %s" s.Smachine.st_name;
        if s.Smachine.st_deferred <> [] then
          unsupported "deferred events in state %s" s.Smachine.st_name;
        if s.Smachine.st_do <> None then
          unsupported "do-activity in state %s" s.Smachine.st_name
      | Smachine.Pseudo p -> (
        match p.Smachine.ps_kind with
        | Smachine.Initial | Smachine.Junction | Smachine.Choice -> ()
        | Smachine.Deep_history | Smachine.Shallow_history ->
          unsupported "history pseudostate"
        | Smachine.Fork | Smachine.Join -> unsupported "fork/join"
        | Smachine.Entry_point | Smachine.Exit_point ->
          unsupported "entry/exit point"
        | Smachine.Terminate -> unsupported "terminate")
      | Smachine.Final _ -> ())
    (Smachine.all_vertices sm);
  List.iter
    (fun tr ->
      List.iter
        (fun trg ->
          match trg with
          | Smachine.Time_trigger _ -> unsupported "after-trigger"
          | Smachine.Any_trigger -> unsupported "any-trigger"
          | Smachine.Signal_trigger _ | Smachine.Completion -> ())
        tr.Smachine.tr_triggers)
    (Smachine.all_transitions sm)

let qualified ctx id =
  let names =
    List.map
      (fun a -> Smachine.vertex_name (Topology.vertex ctx.topo a))
      (Topology.ancestor_states ctx.topo id)
    @ [ Smachine.vertex_name (Topology.vertex ctx.topo id) ]
  in
  String.concat "." names

let is_leaf_state ctx id =
  match Topology.vertex ctx.topo id with
  | Smachine.State s -> not (Smachine.is_composite s)
  | Smachine.Final _ -> true
  | Smachine.Pseudo _ -> false

(* Follow default-entry (initial chains) from a vertex down to a leaf,
   accumulating effects and entry actions.  Also resolves guard-free
   junction chains on the way. *)
let rec resolve_entry ctx acc id =
  match Topology.vertex ctx.topo id with
  | Smachine.Final _ -> (acc, id)
  | Smachine.State s ->
    let acc =
      match s.Smachine.st_entry with
      | Some e -> acc @ [ e ]
      | None -> acc
    in
    if Smachine.is_composite s then begin
      match s.Smachine.st_regions with
      | [ r ] -> (
        match Topology.initial_of_region r with
        | None -> unsupported "composite %s has no initial" s.Smachine.st_name
        | Some init -> (
          match Topology.outgoing ctx.topo init.Smachine.ps_id with
          | [] -> unsupported "initial without outgoing transition"
          | tr :: _rest ->
            let acc =
              match tr.Smachine.tr_effect with
              | Some e -> acc @ [ e ]
              | None -> acc
            in
            resolve_entry ctx acc tr.Smachine.tr_target))
      | _other -> unsupported "orthogonal state %s" s.Smachine.st_name
    end
    else (acc, id)
  | Smachine.Pseudo p -> (
    match p.Smachine.ps_kind with
    | Smachine.Junction | Smachine.Choice -> (
      match Topology.outgoing ctx.topo p.Smachine.ps_id with
      | [ tr ] when tr.Smachine.tr_guard = None ->
        let acc =
          match tr.Smachine.tr_effect with
          | Some e -> acc @ [ e ]
          | None -> acc
        in
        resolve_entry ctx acc tr.Smachine.tr_target
      | _branches ->
        unsupported "guarded junction in default-entry chain"
    )
    | _other -> unsupported "pseudostate in default-entry chain")

(* Entry actions for entering [target] coming from outside: entries of
   every ancestor below the scope region, outermost first, then the
   default-entry chain below the target. *)
let entry_actions ctx ~scope_region target =
  let ancestors = Topology.ancestor_states ctx.topo target in
  let below_scope =
    List.filter
      (fun a ->
        let chain = Topology.region_chain ctx.topo a in
        match scope_region with
        | None -> true
        | Some scope ->
          (* a is inside scope iff scope appears in a's region chain *)
          List.exists (Ident.equal scope) chain)
      ancestors
  in
  let ancestor_entries =
    List.concat_map
      (fun a ->
        match Topology.vertex ctx.topo a with
        | Smachine.State s -> (
          match s.Smachine.st_entry with
          | Some e -> [ e ]
          | None -> [])
        | Smachine.Pseudo _ | Smachine.Final _ -> [])
      below_scope
  in
  let chain_entries, leaf = resolve_entry ctx [] target in
  (ancestor_entries @ chain_entries, leaf)

(* Exit actions from leaf [leaf] up to and including [root]. *)
let exit_actions ctx ~leaf ~root =
  let chain = leaf :: List.rev (Topology.ancestor_states ctx.topo leaf) in
  (* chain: leaf, parent, grandparent, ... outermost *)
  let rec take acc = function
    | [] -> acc (* root not on chain: exit nothing beyond *)
    | id :: rest ->
      let acc =
        match Topology.vertex ctx.topo id with
        | Smachine.State s -> (
          match s.Smachine.st_exit with
          | Some e -> acc @ [ e ]
          | None -> acc)
        | Smachine.Pseudo _ | Smachine.Final _ -> acc
      in
      if Ident.equal id root then acc else take acc rest
  in
  take [] chain

(* Expand a transition target through junction branches, producing one
   (guards, effects, final target) alternative per branch. *)
let rec expand_target ctx guards effects target =
  match Topology.vertex ctx.topo target with
  | Smachine.Pseudo p
    when p.Smachine.ps_kind = Smachine.Junction
         || p.Smachine.ps_kind = Smachine.Choice ->
    let branches = Topology.outgoing ctx.topo p.Smachine.ps_id in
    if branches = [] then unsupported "junction without outgoing transitions";
    List.concat_map
      (fun tr ->
        let guards =
          match tr.Smachine.tr_guard with
          | Some g -> guards @ [ g ]
          | None -> guards
        in
        let effects =
          match tr.Smachine.tr_effect with
          | Some e -> effects @ [ e ]
          | None -> effects
        in
        expand_target ctx guards effects tr.Smachine.tr_target)
      branches
  | Smachine.Pseudo p ->
    unsupported "unsupported pseudostate target %s"
      (Smachine.show_pseudostate_kind p.Smachine.ps_kind)
  | Smachine.State _ | Smachine.Final _ -> [ (guards, effects, target) ]

let flatten_exn sm =
  let ctx = { topo = Topology.build sm } in
  check_supported ctx;
  let all = Smachine.all_vertices sm in
  let leaves =
    List.filter_map
      (fun v ->
        let id = Smachine.vertex_id v in
        if is_leaf_state ctx id then Some id else None)
      all
  in
  let finals =
    List.filter_map
      (fun v ->
        match v with
        | Smachine.Final f -> Some (qualified ctx f.Smachine.fs_id)
        | Smachine.State _ | Smachine.Pseudo _ -> None)
      all
  in
  (* initial leaf *)
  let top_region =
    match sm.Smachine.sm_regions with
    | [ r ] -> r
    | _other -> assert false (* checked *)
  in
  let init_effects, initial_leaf =
    match Topology.initial_of_region top_region with
    | None -> unsupported "machine has no initial pseudostate"
    | Some init -> (
      match Topology.outgoing ctx.topo init.Smachine.ps_id with
      | [] -> unsupported "initial without outgoing transition"
      | tr :: _rest ->
        let effects =
          match tr.Smachine.tr_effect with
          | Some e -> [ e ]
          | None -> []
        in
        let chain, leaf = resolve_entry ctx effects tr.Smachine.tr_target in
        (chain, leaf))
  in
  let _ = init_effects in
  (* transitions: for each leaf, transitions of the leaf and of its
     ancestors apply (inner priority = depth) *)
  let flat_of_leaf leaf =
    let sources = leaf :: List.rev (Topology.ancestor_states ctx.topo leaf) in
    List.concat_map
      (fun src ->
        let depth = Topology.depth ctx.topo src in
        List.concat_map
          (fun tr ->
            if
              Smachine.equal_transition_kind tr.Smachine.tr_kind
                Smachine.Internal
            then []
            else
              let event =
                match tr.Smachine.tr_triggers with
                | [] -> None
                | Smachine.Signal_trigger n :: _rest -> Some n
                | Smachine.Completion :: _rest -> None
                | (Smachine.Time_trigger _ | Smachine.Any_trigger) :: _rest ->
                  assert false (* checked *)
              in
              let scope_region =
                (* a local transition from a composite into itself scopes
                   to the region of the target inside the source (same
                   rule as the execution engine) *)
                let local_scope =
                  if
                    Smachine.equal_transition_kind tr.Smachine.tr_kind
                      Smachine.Local
                    && (match Topology.vertex_opt ctx.topo src with
                        | Some (Smachine.State s) -> Smachine.is_composite s
                        | Some (Smachine.Pseudo _ | Smachine.Final _) | None ->
                          false)
                    && Topology.is_within ctx.topo ~ancestor:src
                         tr.Smachine.tr_target
                  then
                    List.find_opt
                      (fun rid ->
                        match Topology.state_of_region ctx.topo rid with
                        | Some owner -> Ident.equal owner src
                        | None -> false)
                      (Topology.region_chain ctx.topo tr.Smachine.tr_target)
                  else None
                in
                match local_scope with
                | Some _ as s -> s
                | None -> Topology.lca_region ctx.topo src tr.Smachine.tr_target
              in
              let root =
                (* the exited vertex: the leaf's ancestor-or-self sitting
                   directly in the scope region *)
                match scope_region with
                | None -> src
                | Some scope ->
                  if
                    Ident.equal (Topology.region_of_vertex ctx.topo leaf) scope
                  then leaf
                  else (
                    match
                      List.find_opt
                        (fun a ->
                          Ident.equal
                            (Topology.region_of_vertex ctx.topo a)
                            scope)
                        (Topology.ancestor_states ctx.topo leaf)
                    with
                    | Some a -> a
                    | None -> src)
              in
              let exits = exit_actions ctx ~leaf ~root in
              let base_guards =
                match tr.Smachine.tr_guard with
                | Some g -> [ g ]
                | None -> []
              in
              let base_effects =
                match tr.Smachine.tr_effect with
                | Some e -> [ e ]
                | None -> []
              in
              let alternatives =
                expand_target ctx base_guards base_effects
                  tr.Smachine.tr_target
              in
              List.map
                (fun (guards, effects, target) ->
                  let entries, target_leaf =
                    entry_actions ctx ~scope_region target
                  in
                  {
                    ft_source = qualified ctx leaf;
                    ft_target = qualified ctx target_leaf;
                    ft_event = event;
                    ft_guards = guards;
                    ft_effects = exits @ effects @ entries;
                    ft_priority = depth;
                  })
                alternatives)
          (Topology.outgoing ctx.topo src))
      sources
  in
  let transitions =
    List.concat_map
      (fun leaf ->
        (* completion sources: final states have no outgoing transitions
           themselves, but completion transitions of their composite
           parent apply — handled because parents are in [sources]. *)
        flat_of_leaf leaf)
      leaves
  in
  let transitions =
    List.stable_sort
      (fun a b ->
        match String.compare a.ft_source b.ft_source with
        | 0 -> compare b.ft_priority a.ft_priority
        | c -> c)
      transitions
  in
  {
    fm_name = sm.Smachine.sm_name;
    fm_states = List.map (qualified ctx) leaves;
    fm_initial = qualified ctx initial_leaf;
    fm_finals = finals;
    fm_transitions = transitions;
  }

let flatten sm =
  match flatten_exn sm with
  | flat -> Ok flat
  | exception Unsupported m -> Error m

let events_of t =
  let module S = Set.Make (String) in
  let events =
    List.fold_left
      (fun s tr ->
        match tr.ft_event with
        | Some e -> S.add e s
        | None -> s)
      S.empty t.fm_transitions
  in
  S.elements events

let simulate ?(eval_guard = fun _g -> true) t events =
  let applicable state event tr =
    tr.ft_source = state
    && tr.ft_event = event
    && List.for_all eval_guard tr.ft_guards
  in
  (* chase eventless transitions to a bounded fixpoint *)
  let rec settle state budget =
    if budget = 0 then state
    else
      match
        List.find_opt (fun tr -> applicable state None tr) t.fm_transitions
      with
      | Some tr -> settle tr.ft_target (budget - 1)
      | None -> state
  in
  let step state event =
    match
      List.find_opt
        (fun tr -> applicable state (Some event) tr)
        t.fm_transitions
    with
    | Some tr -> settle tr.ft_target 100
    | None -> state
  in
  let rec loop state acc = function
    | [] -> List.rev acc
    | ev :: rest ->
      let state' = step state ev in
      loop state' (state' :: acc) rest
  in
  loop (settle t.fm_initial 100) [] events
