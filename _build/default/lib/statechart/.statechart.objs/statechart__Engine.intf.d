lib/statechart/engine.pp.mli: Asl Event Ppx_deriving_runtime Uml
