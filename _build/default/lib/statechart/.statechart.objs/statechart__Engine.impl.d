lib/statechart/engine.pp.ml: Asl Event Hashtbl Ident List Ppx_deriving_runtime Printf Queue Smachine String Topology Uml
