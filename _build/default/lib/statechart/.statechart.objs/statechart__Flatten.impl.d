lib/statechart/flatten.pp.ml: Ident List Ppx_deriving_runtime Printf Set Smachine String Topology Uml
