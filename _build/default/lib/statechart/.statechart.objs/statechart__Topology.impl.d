lib/statechart/topology.pp.ml: Hashtbl Ident List Smachine Uml
