lib/statechart/event.pp.mli: Asl Ppx_deriving_runtime Uml
