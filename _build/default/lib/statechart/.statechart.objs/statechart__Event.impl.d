lib/statechart/event.pp.ml: Asl List Ppx_deriving_runtime Uml
