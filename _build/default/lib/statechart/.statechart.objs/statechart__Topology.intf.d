lib/statechart/topology.pp.mli: Ident Smachine Uml
