lib/statechart/flatten.pp.mli: Ppx_deriving_runtime Uml
