(** Structural tables precomputed over a state machine: ownership
    chains, transition indexes, and least-common-ancestor queries used
    by the execution engine. *)

open Uml

type t

val build : Smachine.t -> t
val machine : t -> Smachine.t

val vertex : t -> Ident.t -> Smachine.vertex
(** @raise Not_found for foreign identifiers. *)

val vertex_opt : t -> Ident.t -> Smachine.vertex option

val region_of_vertex : t -> Ident.t -> Ident.t
(** Owning region of a vertex. *)

val state_of_region : t -> Ident.t -> Ident.t option
(** Owning composite state of a region; [None] for top-level regions. *)

val region : t -> Ident.t -> Smachine.region

val outgoing : t -> Ident.t -> Smachine.transition list
val incoming : t -> Ident.t -> Smachine.transition list

val region_chain : t -> Ident.t -> Ident.t list
(** Regions containing the vertex, outermost first (the last element is
    the vertex's own region). *)

val ancestor_states : t -> Ident.t -> Ident.t list
(** Composite states containing the vertex, outermost first; excludes
    the vertex itself. *)

val depth : t -> Ident.t -> int
(** Nesting depth of a vertex (number of containing regions). *)

val lca_region : t -> Ident.t -> Ident.t -> Ident.t option
(** Deepest region containing both vertices; [None] only if the
    machine has several top regions and the vertices live in different
    ones (the engine then treats the machine itself as the scope). *)

val initial_of_region : Smachine.region -> Smachine.pseudostate option
val history_of_region : Smachine.region -> Smachine.pseudostate option
(** Either kind of history pseudostate owned by the region, if any. *)

val is_within : t -> ancestor:Ident.t -> Ident.t -> bool
(** Is the vertex (strictly) inside composite state [ancestor]? *)
