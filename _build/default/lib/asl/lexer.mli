(** Lexer for the ASL concrete syntax. *)

type token =
  | INT of int
  | REAL of float
  | STRING of string
  | IDENT of string
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_END
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_TO
  | KW_VAR
  | KW_RETURN
  | KW_SEND
  | KW_NEW
  | KW_DELETE
  | KW_SELF
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_MOD
  | ASSIGN  (** [:=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | AMP
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | EOF
[@@deriving eq, show]

exception Lex_error of {
  position : int;
  message : string;
}

val tokenize : string -> token list
(** Turn ASL source into a token list terminated by [EOF].  Comments run
    from ["//"] to end of line.
    @raise Lex_error on an unexpected character. *)

val token_name : token -> string
