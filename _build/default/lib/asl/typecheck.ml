type ty =
  | T_int
  | T_real
  | T_bool
  | T_string
  | T_obj of string option
  | T_null
  | T_void
[@@deriving eq, show]

type class_info = {
  class_exists : string -> bool;
  attr_type : string -> string -> ty option;
  op_signature : string -> string -> (ty list * ty) option;
}

let no_classes =
  {
    class_exists = (fun _name -> false);
    attr_type = (fun _c _a -> None);
    op_signature = (fun _c _o -> None);
  }

let ty_name = function
  | T_int -> "Integer"
  | T_real -> "Real"
  | T_bool -> "Boolean"
  | T_string -> "String"
  | T_obj (Some c) -> c
  | T_obj None -> "Object"
  | T_null -> "Null"
  | T_void -> "void"

type ctx = {
  info : class_info;
  self_class : string option;
  mutable vars : (string * ty) list;
  mutable errors : string list;  (** reverse order *)
}

let err ctx fmt = Printf.ksprintf (fun m -> ctx.errors <- m :: ctx.errors) fmt

let numeric = function
  | T_int | T_real -> true
  | T_bool | T_string | T_obj _ | T_null | T_void -> false

let join_numeric t1 t2 =
  match t1, t2 with
  | T_int, T_int -> T_int
  | (T_int | T_real), (T_int | T_real) -> T_real
  | _other1, _other2 -> T_real

(* [T_null] is assignable to objects; numerics promote. *)
let compatible expected actual =
  equal_ty expected actual
  ||
  match expected, actual with
  | T_real, T_int -> true
  | T_obj _, T_null -> true
  | T_obj None, T_obj _ -> true
  | T_obj (Some _), T_obj None -> true
  | _other1, _other2 -> false

let rec infer ctx (e : Ast.expr) : ty =
  match e with
  | Ast.Int_lit _ -> T_int
  | Ast.Real_lit _ -> T_real
  | Ast.Bool_lit _ -> T_bool
  | Ast.String_lit _ -> T_string
  | Ast.Null_lit -> T_null
  | Ast.Self -> (
    match ctx.self_class with
    | Some c -> T_obj (Some c)
    | None ->
      err ctx "self used outside a classifier context";
      T_obj None)
  | Ast.Var name -> (
    match List.assoc_opt name ctx.vars with
    | Some t -> t
    | None ->
      err ctx "unbound variable %s" name;
      T_void)
  | Ast.New class_name ->
    if not (ctx.info.class_exists class_name) then
      err ctx "unknown class %s" class_name;
    T_obj (Some class_name)
  | Ast.Attr (obj, attr) -> (
    let obj_ty = infer ctx obj in
    match obj_ty with
    | T_obj (Some c) -> (
      match ctx.info.attr_type c attr with
      | Some t -> t
      | None ->
        err ctx "class %s has no attribute %s" c attr;
        T_void)
    | T_obj None | T_null -> T_obj None (* dynamic: cannot check further *)
    | other ->
      err ctx "attribute access on non-object (%s)" (ty_name other);
      T_void)
  | Ast.Unop (Ast.Neg, e1) ->
    let t = infer ctx e1 in
    if not (numeric t) then err ctx "unary minus on %s" (ty_name t);
    t
  | Ast.Unop (Ast.Not, e1) ->
    let t = infer ctx e1 in
    if not (equal_ty t T_bool) then err ctx "not on %s" (ty_name t);
    T_bool
  | Ast.Binop (op, e1, e2) -> infer_binop ctx op e1 e2
  | Ast.Call (recv, name, args) -> infer_call ctx recv name args

and infer_binop ctx op e1 e2 =
  let t1 = infer ctx e1 in
  let t2 = infer ctx e2 in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Mod ->
    if not (numeric t1 && numeric t2) then
      err ctx "arithmetic %s on %s and %s" (Ast.binop_name op) (ty_name t1)
        (ty_name t2);
    join_numeric t1 t2
  | Ast.Div ->
    if not (numeric t1 && numeric t2) then
      err ctx "arithmetic / on %s and %s" (ty_name t1) (ty_name t2);
    join_numeric t1 t2
  | Ast.Concat ->
    if not (equal_ty t1 T_string || equal_ty t2 T_string) then
      err ctx "concatenation needs at least one string operand";
    T_string
  | Ast.Eq | Ast.Ne ->
    if
      not
        (compatible t1 t2 || compatible t2 t1
        || (numeric t1 && numeric t2))
    then
      err ctx "comparing incompatible types %s and %s" (ty_name t1)
        (ty_name t2);
    T_bool
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    let orderable t = numeric t || equal_ty t T_string in
    if not (orderable t1 && orderable t2) then
      err ctx "ordering %s on %s and %s" (Ast.binop_name op) (ty_name t1)
        (ty_name t2);
    T_bool
  | Ast.And | Ast.Or ->
    if not (equal_ty t1 T_bool && equal_ty t2 T_bool) then
      err ctx "boolean %s on %s and %s" (Ast.binop_name op) (ty_name t1)
        (ty_name t2);
    T_bool

and infer_call ctx recv name args =
  let arg_tys = List.map (infer ctx) args in
  let builtin =
    match recv, name, arg_tys with
    | None, "abs", [ t ] when numeric t -> Some t
    | None, ("min" | "max"), [ t1; t2 ] when numeric t1 && numeric t2 ->
      Some (join_numeric t1 t2)
    | None, "print", [ _any ] -> Some T_void
    | None, "to_string", [ _any ] -> Some T_string
    | _other -> None
  in
  match builtin with
  | Some t -> t
  | None -> (
    let class_name =
      match recv with
      | None -> ctx.self_class
      | Some r -> (
        match infer ctx r with
        | T_obj c -> c
        | other ->
          err ctx "operation call on non-object (%s)" (ty_name other);
          None)
    in
    match class_name with
    | None -> T_void (* dynamic receiver: unchecked *)
    | Some c -> (
      match ctx.info.op_signature c name with
      | None ->
        err ctx "class %s has no operation %s" c name;
        T_void
      | Some (params, result) ->
        if List.length params <> List.length arg_tys then
          err ctx "operation %s.%s expects %d arguments, got %d" c name
            (List.length params) (List.length arg_tys)
        else
          List.iteri
            (fun i (expected, actual) ->
              if not (compatible expected actual) then
                err ctx "argument %d of %s.%s: expected %s, got %s" (i + 1) c
                  name (ty_name expected) (ty_name actual))
            (List.combine params arg_tys);
        result))

let check_bool ctx what e =
  let t = infer ctx e in
  if not (equal_ty t T_bool) then
    err ctx "%s must be Boolean, got %s" what (ty_name t)

let rec check_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Skip -> ()
  | Ast.Var_decl (name, e) ->
    let t = infer ctx e in
    ctx.vars <- (name, t) :: ctx.vars
  | Ast.Assign (Ast.L_var name, e) -> (
    let t = infer ctx e in
    match List.assoc_opt name ctx.vars with
    | Some declared ->
      if not (compatible declared t) then
        err ctx "assigning %s to variable %s of type %s" (ty_name t) name
          (ty_name declared)
    | None -> ctx.vars <- (name, t) :: ctx.vars (* implicit declaration *))
  | Ast.Assign (Ast.L_attr (obj, attr), e) -> (
    let t = infer ctx e in
    match infer ctx obj with
    | T_obj (Some c) -> (
      match ctx.info.attr_type c attr with
      | Some declared ->
        if not (compatible declared t) then
          err ctx "assigning %s to %s.%s of type %s" (ty_name t) c attr
            (ty_name declared)
      | None -> err ctx "class %s has no attribute %s" c attr)
    | T_obj None | T_null -> ()
    | other -> err ctx "attribute assignment on non-object (%s)" (ty_name other))
  | Ast.Expr_stmt e ->
    let _t = infer ctx e in
    ()
  | Ast.If (cond, then_branch, else_branch) ->
    check_bool ctx "if condition" cond;
    check_block ctx then_branch;
    check_block ctx else_branch
  | Ast.While (cond, body) ->
    check_bool ctx "while condition" cond;
    check_block ctx body
  | Ast.For (name, low, high, body) ->
    let tl = infer ctx low in
    let th = infer ctx high in
    if not (equal_ty tl T_int) then
      err ctx "for lower bound must be Integer, got %s" (ty_name tl);
    if not (equal_ty th T_int) then
      err ctx "for upper bound must be Integer, got %s" (ty_name th);
    let saved = ctx.vars in
    ctx.vars <- (name, T_int) :: ctx.vars;
    check_block ctx body;
    ctx.vars <- saved
  | Ast.Return None -> ()
  | Ast.Return (Some e) ->
    let _t = infer ctx e in
    ()
  | Ast.Send (_signal, args, target) ->
    List.iter (fun a -> ignore (infer ctx a)) args;
    (match target with
     | None -> ()
     | Some t -> (
       match infer ctx t with
       | T_obj _ | T_null -> ()
       | other -> err ctx "send target must be an object, got %s" (ty_name other)))
  | Ast.Delete e -> (
    match infer ctx e with
    | T_obj _ | T_null -> ()
    | other -> err ctx "delete on non-object (%s)" (ty_name other))

and check_block ctx stmts =
  let saved = ctx.vars in
  List.iter (check_stmt ctx) stmts;
  ctx.vars <- saved

let make_ctx ?self_class ?(env = []) info =
  { info; self_class; vars = env; errors = [] }

let result_of ctx v =
  match List.rev ctx.errors with
  | [] -> Ok v
  | errs -> Error errs

let check_program ?self_class ?env info prog =
  let ctx = make_ctx ?self_class ?env info in
  List.iter (check_stmt ctx) prog;
  result_of ctx ()

let check_expression ?self_class ?env info e =
  let ctx = make_ctx ?self_class ?env info in
  let t = infer ctx e in
  result_of ctx t

let check_guard ?self_class ?env info src =
  match Parser.parse_expression src with
  | exception exn -> (
    match Parser.error_message exn with
    | Some m -> Error [ m ]
    | None -> raise exn)
  | e -> (
    let ctx = make_ctx ?self_class ?env info in
    check_bool ctx "guard" e;
    result_of ctx ())
