(** Object store: the heap of class instances manipulated by ASL
    programs ([new]/[delete], attribute reads and writes). *)

type t

val create : unit -> t

val alloc : t -> class_name:string -> attrs:(string * Value.t) list ->
  Value.obj_ref
(** Allocate a live object with initial attribute values. *)

val is_alive : t -> Value.obj_ref -> bool
val class_of : t -> Value.obj_ref -> string option

val get_attr : t -> Value.obj_ref -> string -> Value.t option
(** [None] if the object is dead/unknown or has no such attribute. *)

val set_attr : t -> Value.obj_ref -> string -> Value.t -> bool
(** [false] if the object is dead or unknown; creates the attribute slot
    otherwise. *)

val delete : t -> Value.obj_ref -> bool
(** Mark dead; [false] if already dead or unknown. *)

val live_count : t -> int
val attrs : t -> Value.obj_ref -> (string * Value.t) list
(** Current attribute values, sorted by name; empty for dead objects. *)
