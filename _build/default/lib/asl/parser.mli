(** Recursive-descent parser for ASL.

    Precedence, loosest to tightest:
    [or] < [and] < comparisons < [& + -] < [* / mod] < unary < postfix
    ([.attr], [.op(...)]) < atoms. *)

exception Parse_error of {
  token : Lexer.token;
  message : string;
}

val parse_program : string -> Ast.program
(** Parse a statement sequence (operation body, transition effect).
    @raise Parse_error / [Lexer.Lex_error] on malformed input. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (guard).  Trailing tokens are an error. *)

val error_message : exn -> string option
