exception Parse_error of {
  token : Lexer.token;
  message : string;
}

type state = { mutable tokens : Lexer.token list }

let fail st message =
  let token =
    match st.tokens with
    | t :: _ -> t
    | [] -> Lexer.EOF
  in
  raise (Parse_error { token; message })

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> Lexer.EOF

let advance st =
  match st.tokens with
  | _ :: tl -> st.tokens <- tl
  | [] -> ()

let expect st tok =
  if Lexer.equal_token (peek st) tok then advance st
  else fail st (Printf.sprintf "expected %s" (Lexer.token_name tok))

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    name
  | _other -> fail st "expected an identifier"

(* --- expressions ------------------------------------------------- *)

let rec parse_or st =
  let lhs = parse_and st in
  let rec loop lhs =
    match peek st with
    | Lexer.KW_OR ->
      advance st;
      let rhs = parse_and st in
      loop (Ast.Binop (Ast.Or, lhs, rhs))
    | _other -> lhs
  in
  loop lhs

and parse_and st =
  let lhs = parse_cmp st in
  let rec loop lhs =
    match peek st with
    | Lexer.KW_AND ->
      advance st;
      let rhs = parse_cmp st in
      loop (Ast.Binop (Ast.And, lhs, rhs))
    | _other -> lhs
  in
  loop lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Ast.Eq
    | Lexer.NE -> Some Ast.Ne
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | _other -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    let rhs = parse_add st in
    Ast.Binop (op, lhs, rhs)

and parse_add st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | Lexer.AMP ->
      advance st;
      loop (Ast.Binop (Ast.Concat, lhs, parse_mul st))
    | _other -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Lexer.SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Lexer.KW_MOD ->
      advance st;
      loop (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _other -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Lexer.KW_NOT ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | _other -> parse_postfix st

and parse_postfix st =
  let atom = parse_atom st in
  let rec loop expr =
    match peek st with
    | Lexer.DOT -> (
      advance st;
      let name = expect_ident st in
      match peek st with
      | Lexer.LPAREN ->
        advance st;
        let args = parse_args st in
        loop (Ast.Call (Some expr, name, args))
      | _other -> loop (Ast.Attr (expr, name)))
    | _other -> expr
  in
  loop atom

and parse_args st =
  if Lexer.equal_token (peek st) Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_or st in
      match peek st with
      | Lexer.COMMA ->
        advance st;
        loop (e :: acc)
      | Lexer.RPAREN ->
        advance st;
        List.rev (e :: acc)
      | _other -> fail st "expected ',' or ')' in argument list"
    in
    loop []

and parse_atom st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    Ast.Int_lit i
  | Lexer.REAL r ->
    advance st;
    Ast.Real_lit r
  | Lexer.STRING s ->
    advance st;
    Ast.String_lit s
  | Lexer.KW_TRUE ->
    advance st;
    Ast.Bool_lit true
  | Lexer.KW_FALSE ->
    advance st;
    Ast.Bool_lit false
  | Lexer.KW_NULL ->
    advance st;
    Ast.Null_lit
  | Lexer.KW_SELF ->
    advance st;
    Ast.Self
  | Lexer.KW_NEW ->
    advance st;
    Ast.New (expect_ident st)
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    advance st;
    match peek st with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      Ast.Call (None, name, args)
    | _other -> Ast.Var name)
  | other -> fail st (Printf.sprintf "unexpected %s" (Lexer.token_name other))

(* --- statements --------------------------------------------------- *)

let rec parse_stmts st stop_tokens =
  let stops t = List.exists (Lexer.equal_token t) stop_tokens in
  let rec loop acc =
    if stops (peek st) then List.rev acc
    else
      let s = parse_stmt st in
      loop (s :: acc)
  in
  loop []

and parse_stmt st =
  match peek st with
  | Lexer.SEMI ->
    advance st;
    Ast.Skip
  | Lexer.KW_VAR ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.ASSIGN;
    let e = parse_or st in
    expect st Lexer.SEMI;
    Ast.Var_decl (name, e)
  | Lexer.KW_IF ->
    advance st;
    let cond = parse_or st in
    expect st Lexer.KW_THEN;
    let then_branch = parse_stmts st [ Lexer.KW_ELSE; Lexer.KW_END ] in
    let else_branch =
      if Lexer.equal_token (peek st) Lexer.KW_ELSE then begin
        advance st;
        parse_stmts st [ Lexer.KW_END ]
      end
      else []
    in
    expect st Lexer.KW_END;
    expect st Lexer.SEMI;
    Ast.If (cond, then_branch, else_branch)
  | Lexer.KW_WHILE ->
    advance st;
    let cond = parse_or st in
    expect st Lexer.KW_DO;
    let body = parse_stmts st [ Lexer.KW_END ] in
    expect st Lexer.KW_END;
    expect st Lexer.SEMI;
    Ast.While (cond, body)
  | Lexer.KW_FOR ->
    advance st;
    let name = expect_ident st in
    expect st Lexer.ASSIGN;
    let low = parse_or st in
    expect st Lexer.KW_TO;
    let high = parse_or st in
    expect st Lexer.KW_DO;
    let body = parse_stmts st [ Lexer.KW_END ] in
    expect st Lexer.KW_END;
    expect st Lexer.SEMI;
    Ast.For (name, low, high, body)
  | Lexer.KW_RETURN ->
    advance st;
    if Lexer.equal_token (peek st) Lexer.SEMI then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_or st in
      expect st Lexer.SEMI;
      Ast.Return (Some e)
    end
  | Lexer.KW_SEND ->
    advance st;
    let signal = expect_ident st in
    let args =
      if Lexer.equal_token (peek st) Lexer.LPAREN then begin
        advance st;
        parse_args st
      end
      else []
    in
    let target =
      if Lexer.equal_token (peek st) Lexer.KW_TO then begin
        advance st;
        Some (parse_or st)
      end
      else None
    in
    expect st Lexer.SEMI;
    Ast.Send (signal, args, target)
  | Lexer.KW_DELETE ->
    advance st;
    let e = parse_or st in
    expect st Lexer.SEMI;
    Ast.Delete e
  | _other ->
    (* expression or assignment *)
    let e = parse_or st in
    if Lexer.equal_token (peek st) Lexer.ASSIGN then begin
      advance st;
      let rhs = parse_or st in
      expect st Lexer.SEMI;
      let lv =
        match e with
        | Ast.Var name -> Ast.L_var name
        | Ast.Attr (obj, name) -> Ast.L_attr (obj, name)
        | _other -> fail st "invalid assignment target"
      in
      Ast.Assign (lv, rhs)
    end
    else begin
      expect st Lexer.SEMI;
      Ast.Expr_stmt e
    end

let parse_program src =
  let st = { tokens = Lexer.tokenize src } in
  let stmts = parse_stmts st [ Lexer.EOF ] in
  expect st Lexer.EOF;
  stmts

let parse_expression src =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_or st in
  expect st Lexer.EOF;
  e

let error_message = function
  | Parse_error { token; message } ->
    Some
      (Printf.sprintf "ASL parse error near %s: %s" (Lexer.token_name token)
         message)
  | Lexer.Lex_error { position; message } ->
    Some (Printf.sprintf "ASL lex error at offset %d: %s" position message)
  | _exn -> None
