type obj_ref = int [@@deriving eq, ord, show]

type t =
  | V_int of int
  | V_real of float
  | V_bool of bool
  | V_string of string
  | V_null
  | V_obj of obj_ref
[@@deriving eq, ord, show]

let to_string = function
  | V_int i -> string_of_int i
  | V_real r -> string_of_float r
  | V_bool b -> string_of_bool b
  | V_string s -> s
  | V_null -> "null"
  | V_obj r -> Printf.sprintf "<obj %d>" r

let of_vspec s =
  match int_of_string_opt s with
  | Some i -> Some (V_int i)
  | None -> (
    match float_of_string_opt s with
    | Some r -> Some (V_real r)
    | None -> (
      match s with
      | "true" -> Some (V_bool true)
      | "false" -> Some (V_bool false)
      | "null" -> Some V_null
      | _other -> None))

let type_name = function
  | V_int _ -> "Integer"
  | V_real _ -> "Real"
  | V_bool _ -> "Boolean"
  | V_string _ -> "String"
  | V_null -> "Null"
  | V_obj _ -> "Object"
