(** Static typechecker for ASL programs.

    Checking happens against a [class_info] oracle describing the
    surrounding UML model (attribute types, operation signatures), so the
    checker has no dependency on the metamodel library itself. *)

type ty =
  | T_int
  | T_real
  | T_bool
  | T_string
  | T_obj of string option  (** class name when known *)
  | T_null
  | T_void
[@@deriving eq, show]

type class_info = {
  class_exists : string -> bool;
  attr_type : string -> string -> ty option;
      (** [attr_type class_name attr_name] *)
  op_signature : string -> string -> (ty list * ty) option;
      (** [op_signature class_name op_name] = parameter types, result *)
}

val no_classes : class_info
(** Oracle for model-free programs: no classes, no attributes. *)

val ty_name : ty -> string

val check_program :
  ?self_class:string ->
  ?env:(string * ty) list ->
  class_info ->
  Ast.program ->
  (unit, string list) result
(** All type errors found (deterministic order), or [Ok ()]. *)

val check_expression :
  ?self_class:string ->
  ?env:(string * ty) list ->
  class_info ->
  Ast.expr ->
  (ty, string list) result

val check_guard :
  ?self_class:string ->
  ?env:(string * ty) list ->
  class_info ->
  string ->
  (unit, string list) result
(** Parse and check a guard: its type must be [T_bool]. *)
