type unop =
  | Neg
  | Not
[@@deriving eq, ord, show]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat
[@@deriving eq, ord, show]

type expr =
  | Int_lit of int
  | Real_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Null_lit
  | Self
  | Var of string
  | Attr of expr * string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of expr option * string * expr list
  | New of string
[@@deriving eq, ord, show]

type lvalue =
  | L_var of string
  | L_attr of expr * string
[@@deriving eq, ord, show]

type stmt =
  | Skip
  | Var_decl of string * expr
  | Assign of lvalue * expr
  | Expr_stmt of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list
  | Return of expr option
  | Send of string * expr list * expr option
  | Delete of expr
[@@deriving eq, ord, show]

type program = stmt list [@@deriving eq, ord, show]

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "mod"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"
  | Concat -> "&"

let unop_name = function
  | Neg -> "-"
  | Not -> "not"
