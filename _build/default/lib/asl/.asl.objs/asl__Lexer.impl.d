lib/asl/lexer.pp.ml: Buffer List Ppx_deriving_runtime Printf String
