lib/asl/interp.pp.mli: Ast Store Value
