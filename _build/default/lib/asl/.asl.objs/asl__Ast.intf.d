lib/asl/ast.pp.mli: Ppx_deriving_runtime
