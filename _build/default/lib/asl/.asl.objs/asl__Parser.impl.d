lib/asl/parser.pp.ml: Ast Lexer List Printf
