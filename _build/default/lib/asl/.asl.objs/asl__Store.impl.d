lib/asl/store.pp.ml: Hashtbl List String Value
