lib/asl/store.pp.mli: Value
