lib/asl/value.pp.mli: Ppx_deriving_runtime
