lib/asl/typecheck.pp.ml: Ast List Parser Ppx_deriving_runtime Printf
