lib/asl/typecheck.pp.mli: Ast Ppx_deriving_runtime
