lib/asl/interp.pp.ml: Ast Float Hashtbl List Parser Printf Store String Value
