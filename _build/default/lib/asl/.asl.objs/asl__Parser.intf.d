lib/asl/parser.pp.mli: Ast Lexer
