lib/asl/lexer.pp.mli: Ppx_deriving_runtime
