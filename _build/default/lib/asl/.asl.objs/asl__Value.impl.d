lib/asl/value.pp.ml: Ppx_deriving_runtime Printf
