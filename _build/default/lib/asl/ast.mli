(** Abstract syntax of the Action Specification Language (ASL).

    The language plays the role the paper assigns to ASL/OMG Action
    Semantics: "notation and semantics for single actions like operation
    calls and assignments in UML models", closing "the last gap to
    complete system specification".  It is a small imperative language
    over model objects:

    {v
      x := 1 + 2;
      self.count := self.count + 1;
      if x > 3 then y := 1; else y := 2; end;
      while x < 10 do x := x + 1; end;
      for i := 1 to 8 do total := total + i; end;
      send ack(x) to self.peer;
      var c := new Counter;
      c.step(2);
      delete c;
      return total;
    v} *)

type unop =
  | Neg
  | Not
[@@deriving eq, ord, show]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat
[@@deriving eq, ord, show]

type expr =
  | Int_lit of int
  | Real_lit of float
  | Bool_lit of bool
  | String_lit of string
  | Null_lit
  | Self
  | Var of string
  | Attr of expr * string  (** [e.name] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of expr option * string * expr list
      (** [recv.op(args)] or [op(args)] *)
  | New of string  (** [new ClassName] *)
[@@deriving eq, ord, show]

type lvalue =
  | L_var of string
  | L_attr of expr * string
[@@deriving eq, ord, show]

type stmt =
  | Skip
  | Var_decl of string * expr  (** [var x := e;] *)
  | Assign of lvalue * expr
  | Expr_stmt of expr  (** a call evaluated for effect *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list  (** [for i := a to b do ... end] *)
  | Return of expr option
  | Send of string * expr list * expr option
      (** [send sig(args) to target;]; [None] target = enclosing machine *)
  | Delete of expr
[@@deriving eq, ord, show]

type program = stmt list [@@deriving eq, ord, show]

val binop_name : binop -> string
val unop_name : unop -> string
