(** Runtime values of the ASL interpreter. *)

type obj_ref = int [@@deriving eq, ord, show]

type t =
  | V_int of int
  | V_real of float
  | V_bool of bool
  | V_string of string
  | V_null
  | V_obj of obj_ref
[@@deriving eq, ord, show]

val to_string : t -> string

val of_vspec : string -> t option
(** Interpret a literal rendered by {!Uml.Vspec.to_string}-style text:
    ints, floats, [true]/[false], [null]; anything else is [None]. *)

val type_name : t -> string
