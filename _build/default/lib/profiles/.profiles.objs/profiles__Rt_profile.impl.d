lib/profiles/rt_profile.ml: Classifier Dtype Ident List Model Printf Profile Uml Vspec Wfr
