lib/profiles/rt_profile.mli: Uml
