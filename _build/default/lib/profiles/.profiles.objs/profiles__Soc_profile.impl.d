lib/profiles/soc_profile.ml: Classifier Component Dtype Ident List Model Printf Profile Uml Vspec Wfr
