lib/profiles/soc_profile.mli: Uml
