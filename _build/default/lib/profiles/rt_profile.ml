open Uml

let stereotype_names = [ "capsule"; "protocol"; "rtPort"; "periodic" ]

let profile () =
  let tag = Profile.tag in
  let stereotypes =
    [
      Profile.stereotype ~extends:[ Profile.M_class ]
        ~tags:[ tag ~default:(Vspec.Int_literal 0) "priority" Dtype.Integer ]
        "capsule";
      Profile.stereotype ~extends:[ Profile.M_interface ] "protocol";
      Profile.stereotype ~extends:[ Profile.M_port ]
        ~tags:
          [ tag ~default:(Vspec.Bool_literal false) "conjugated" Dtype.Boolean ]
        "rtPort";
      Profile.stereotype ~extends:[ Profile.M_operation ]
        ~tags:
          [
            tag "period" Dtype.Integer;
            tag "deadline" Dtype.Integer;
            tag "wcet" Dtype.Integer;
          ]
        "periodic";
    ]
  in
  Profile.make "RT" stereotypes

let install m =
  let p = profile () in
  Model.add m (Model.E_profile p);
  p

let apply m ~profile:p ~stereotype ?(values = []) element =
  match Profile.find_stereotype p stereotype with
  | None ->
    invalid_arg (Printf.sprintf "Rt_profile.apply: no stereotype %s" stereotype)
  | Some s ->
    Model.add_application m
      (Profile.apply ~values ~stereotype:s.Profile.ster_id ~element ())

let diag rule element message =
  {
    Wfr.diag_severity = Wfr.Error;
    diag_rule = rule;
    diag_element = Some element;
    diag_message = message;
  }

let int_value m ster_name element tagname =
  match Model.stereotype_named m ster_name with
  | None -> None
  | Some (_, ster) -> (
    let app =
      List.find_opt
        (fun a ->
          Ident.equal a.Profile.app_element element
          && Ident.equal a.Profile.app_stereotype ster.Profile.ster_id)
        (Model.applications m)
    in
    match app with
    | None -> None
    | Some app -> (
      match Profile.tag_value ster app tagname with
      | Some (Vspec.Int_literal i) -> Some i
      | Some _ | None -> None))

let check m =
  let check_capsule acc (cl : Classifier.t) =
    if
      Model.has_stereotype m cl.Classifier.cl_id "capsule"
      && not cl.Classifier.cl_is_active
    then
      diag "RT-01" cl.Classifier.cl_id
        (Printf.sprintf "«capsule» %s must be an active class"
           cl.Classifier.cl_name)
      :: acc
    else acc
  in
  let check_periodic acc (cl : Classifier.t) =
    List.fold_left
      (fun acc (op : Classifier.operation) ->
        if not (Model.has_stereotype m op.Classifier.op_id "periodic") then acc
        else
          let period = int_value m "periodic" op.Classifier.op_id "period" in
          let deadline =
            int_value m "periodic" op.Classifier.op_id "deadline"
          in
          let acc =
            match period with
            | Some p when p <= 0 ->
              diag "RT-02" op.Classifier.op_id
                (Printf.sprintf "«periodic» %s has non-positive period"
                   op.Classifier.op_name)
              :: acc
            | Some _ | None -> acc
          in
          match period, deadline with
          | Some p, Some d when d > p ->
            diag "RT-03" op.Classifier.op_id
              (Printf.sprintf "«periodic» %s deadline %d exceeds period %d"
                 op.Classifier.op_name d p)
            :: acc
          | _other1, _other2 -> acc)
      acc cl.Classifier.cl_operations
  in
  let acc = List.fold_left check_capsule [] (Model.classifiers m) in
  let acc = List.fold_left check_periodic acc (Model.classifiers m) in
  List.rev acc
