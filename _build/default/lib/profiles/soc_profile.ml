open Uml

let stereotype_names =
  [
    "hwModule";
    "ip";
    "bus";
    "hwPort";
    "clock";
    "reset";
    "register";
    "memory";
    "swTask";
    "hwAccelerator";
  ]

let profile () =
  let tag = Profile.tag in
  let stereotypes =
    [
      Profile.stereotype ~extends:[ Profile.M_component ]
        ~tags:
          [
            tag ~default:(Vspec.Int_literal 0) "area" Dtype.Integer;
            tag ~default:(Vspec.String_literal "clk") "clockDomain"
              Dtype.String_type;
          ]
        "hwModule";
      Profile.stereotype ~extends:[ Profile.M_component ]
        ~tags:
          [
            tag "vendor" Dtype.String_type;
            tag ~default:(Vspec.String_literal "1.0") "version"
              Dtype.String_type;
          ]
        "ip";
      Profile.stereotype ~extends:[ Profile.M_component ]
        ~tags:
          [
            tag ~default:(Vspec.Int_literal 32) "dataWidth" Dtype.Integer;
            tag ~default:(Vspec.Int_literal 16) "addrWidth" Dtype.Integer;
          ]
        "bus";
      Profile.stereotype ~extends:[ Profile.M_port ]
        ~tags:
          [
            tag ~default:(Vspec.Int_literal 1) "width" Dtype.Integer;
            tag ~default:(Vspec.String_literal "in") "direction"
              Dtype.String_type;
          ]
        "hwPort";
      Profile.stereotype ~extends:[ Profile.M_port ] "clock";
      Profile.stereotype ~extends:[ Profile.M_port ] "reset";
      Profile.stereotype ~extends:[ Profile.M_property ]
        ~tags:
          [
            tag "address" Dtype.Integer;
            tag ~default:(Vspec.String_literal "rw") "access"
              Dtype.String_type;
          ]
        "register";
      Profile.stereotype ~extends:[ Profile.M_component ]
        ~tags:
          [
            tag ~default:(Vspec.Int_literal 256) "depth" Dtype.Integer;
            tag ~default:(Vspec.Int_literal 8) "width" Dtype.Integer;
          ]
        "memory";
      Profile.stereotype ~extends:[ Profile.M_class ]
        ~tags:[ tag ~default:(Vspec.Int_literal 0) "priority" Dtype.Integer ]
        "swTask";
      Profile.stereotype ~extends:[ Profile.M_class ] "hwAccelerator";
    ]
  in
  Profile.make "SoC" stereotypes

let install m =
  let p = profile () in
  Model.add m (Model.E_profile p);
  p

let apply m ~profile:p ~stereotype ?(values = []) element =
  match Profile.find_stereotype p stereotype with
  | None -> invalid_arg (Printf.sprintf "Soc_profile.apply: no stereotype %s" stereotype)
  | Some s ->
    Model.add_application m
      (Profile.apply ~values ~stereotype:s.Profile.ster_id ~element ())

let hw_stereotypes = [ "hwModule"; "ip"; "bus"; "memory" ]

let hw_modules m =
  List.filter
    (fun c ->
      List.exists
        (fun name -> Model.has_stereotype m c.Component.cmp_id name)
        hw_stereotypes)
    (Model.components m)

let sw_tasks m =
  List.filter
    (fun c -> Model.has_stereotype m c.Classifier.cl_id "swTask")
    (Model.classifiers m)

let tag_int m ~element ~stereotype tagname =
  match Model.stereotype_named m stereotype with
  | None -> None
  | Some (_, ster) -> (
    let app =
      List.find_opt
        (fun a ->
          Ident.equal a.Profile.app_element element
          && Ident.equal a.Profile.app_stereotype ster.Profile.ster_id)
        (Model.applications m)
    in
    match app with
    | None -> None
    | Some app -> (
      match Profile.tag_value ster app tagname with
      | Some (Vspec.Int_literal i) -> Some i
      | Some _ | None -> None))

(* --- profile-specific WFRs ------------------------------------------ *)

let diag rule element message =
  {
    Wfr.diag_severity = Wfr.Error;
    diag_rule = rule;
    diag_element = Some element;
    diag_message = message;
  }

let check m =
  let port_has m port_id name = Model.has_stereotype m port_id name in
  let check_hw_module acc (c : Component.t) =
    if not (Model.has_stereotype m c.Component.cmp_id "hwModule") then acc
    else begin
      let clocks =
        List.filter
          (fun p -> port_has m p.Component.port_id "clock")
          c.Component.cmp_ports
      in
      let resets =
        List.filter
          (fun p -> port_has m p.Component.port_id "reset")
          c.Component.cmp_ports
      in
      let acc =
        if List.length clocks = 1 then acc
        else
          diag "SOC-01" c.Component.cmp_id
            (Printf.sprintf "«hwModule» %s must have exactly one «clock» port (has %d)"
               c.Component.cmp_name (List.length clocks))
          :: acc
      in
      if List.length resets <= 1 then acc
      else
        diag "SOC-02" c.Component.cmp_id
          (Printf.sprintf "«hwModule» %s has %d «reset» ports"
             c.Component.cmp_name (List.length resets))
        :: acc
    end
  in
  let check_hw_ports acc (c : Component.t) =
    List.fold_left
      (fun acc (p : Component.port) ->
        if not (port_has m p.Component.port_id "hwPort") then acc
        else
          match
            tag_int m ~element:p.Component.port_id ~stereotype:"hwPort"
              "width"
          with
          | Some w when w <= 0 ->
            diag "SOC-03" p.Component.port_id
              (Printf.sprintf "«hwPort» %s has non-positive width %d"
                 p.Component.port_name w)
            :: acc
          | Some _ | None -> acc)
      acc c.Component.cmp_ports
  in
  let check_registers acc (cl : Classifier.t) =
    let addressed =
      List.filter_map
        (fun (p : Classifier.property) ->
          if Model.has_stereotype m p.Classifier.prop_id "register" then
            match
              tag_int m ~element:p.Classifier.prop_id ~stereotype:"register"
                "address"
            with
            | Some a -> Some (p.Classifier.prop_name, a)
            | None -> None
          else None)
        cl.Classifier.cl_attributes
    in
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) addressed in
    let rec collide acc = function
      | (n1, a1) :: ((n2, a2) :: _ as rest) ->
        let acc =
          if a1 = a2 then
            diag "SOC-04" cl.Classifier.cl_id
              (Printf.sprintf
                 "registers %s and %s of %s share address 0x%x" n1 n2
                 cl.Classifier.cl_name a1)
            :: acc
          else acc
        in
        collide acc rest
      | [ _ ] | [] -> acc
    in
    collide acc sorted
  in
  let check_bus acc (c : Component.t) =
    if not (Model.has_stereotype m c.Component.cmp_id "bus") then acc
    else
      match
        tag_int m ~element:c.Component.cmp_id ~stereotype:"bus" "dataWidth"
      with
      | Some w when w <= 0 ->
        diag "SOC-05" c.Component.cmp_id
          (Printf.sprintf "«bus» %s has non-positive dataWidth"
             c.Component.cmp_name)
        :: acc
      | Some _ | None -> acc
  in
  let acc = List.fold_left check_hw_module [] (Model.components m) in
  let acc = List.fold_left check_hw_ports acc (Model.components m) in
  let acc = List.fold_left check_registers acc (Model.classifiers m) in
  let acc = List.fold_left check_bus acc (Model.components m) in
  List.rev acc
