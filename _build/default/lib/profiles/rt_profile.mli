(** A UML-RT-flavoured real-time profile.

    The paper credits ROOM/UML-RT as the template for profile-based
    tailoring.  This profile provides:

    - [«capsule»] on classes: an active object communicating only
      through ports (tags: [priority]);
    - [«protocol»] on interfaces: a message set exchanged over a
      connector;
    - [«rtPort»] on ports (tags: [conjugated] Boolean);
    - [«periodic»] on operations (tags: [period], [deadline], [wcet]). *)

val profile : unit -> Uml.Profile.t
val install : Uml.Model.t -> Uml.Profile.t
val stereotype_names : string list

val apply :
  Uml.Model.t -> profile:Uml.Profile.t -> stereotype:string ->
  ?values:(string * Uml.Vspec.t) list -> Uml.Ident.t -> unit

val check : Uml.Model.t -> Uml.Wfr.diagnostic list
(** [«capsule»] classes must be active; [«periodic»] operations need
    [period > 0] and [deadline <= period] when both are given. *)
