(** The SoC profile: the "domain specific subset of the UML and its
    semantics" the paper calls for (§2, §4).

    Stereotypes give hardware meaning to UML elements:

    - [«hwModule»] on components: a synthesizable hardware block
      (tags: [area] gate estimate, [clockDomain]);
    - [«ip»] on components: an integrable IP core
      (tags: [vendor], [version]);
    - [«bus»] on components (tags: [dataWidth], [addrWidth]);
    - [«hwPort»] on ports (tags: [width], [direction] in|out);
    - [«clock»] / [«reset»] on ports;
    - [«register»] on properties (tags: [address], [access] ro|rw|wo);
    - [«memory»] on components (tags: [depth], [width]);
    - [«swTask»] on classes: behavior realized in software
      (tags: [priority]);
    - [«hwAccelerator»] on classes: behavior realized in hardware. *)

val profile : unit -> Uml.Profile.t
(** A fresh instance of the profile (fresh identifiers). *)

val install : Uml.Model.t -> Uml.Profile.t
(** Create the profile and add it to the model; returns it. *)

val stereotype_names : string list
(** All stereotype names defined by this profile. *)

val apply :
  Uml.Model.t -> profile:Uml.Profile.t -> stereotype:string ->
  ?values:(string * Uml.Vspec.t) list -> Uml.Ident.t -> unit
(** Apply a stereotype of this profile by name.
    @raise Invalid_argument for unknown stereotype names. *)

val hw_modules : Uml.Model.t -> Uml.Component.t list
(** Components stereotyped [«hwModule»] (or [«ip»], [«bus»],
    [«memory»] — all hardware-realizable). *)

val sw_tasks : Uml.Model.t -> Uml.Classifier.t list

val tag_int :
  Uml.Model.t -> element:Uml.Ident.t -> stereotype:string -> string ->
  int option
(** Integer tag value of an application on the element, with the tag's
    declared default as fallback. *)

val check : Uml.Model.t -> Uml.Wfr.diagnostic list
(** Profile-specific well-formedness: a [«hwModule»] component must have
    exactly one [«clock»] port and at most one [«reset»] port;
    [«hwPort»] widths must be positive; [«register»] addresses must not
    collide within one component; [«bus»] needs positive [dataWidth]. *)
