open Hdl

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let type_string m ty =
  match ty with
  | Htype.Bit -> "std_logic"
  | Htype.Unsigned w -> Printf.sprintf "unsigned(%d downto 0)" (w - 1)
  | Htype.Enum _ -> sanitize m.Module_.mod_name ^ "_state_t"

let enum_literal lit = "S_" ^ sanitize lit

let const_string ty v =
  match ty with
  | Htype.Bit -> if v = 0 then "'0'" else "'1'"
  | Htype.Unsigned w -> Printf.sprintf "to_unsigned(%d, %d)" v w
  | Htype.Enum lits -> (
    match List.nth_opt lits v with
    | Some l -> enum_literal l
    | None -> Printf.sprintf "to_unsigned(%d, 8)" v)

let binop_string = function
  | Expr.And -> "and"
  | Expr.Or -> "or"
  | Expr.Xor -> "xor"
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Eq -> "="
  | Expr.Neq -> "/="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.Shl -> "sll"
  | Expr.Shr -> "srl"

(* Expressions that syntactically yield booleans in VHDL must be wrapped
   when used as values, and vice versa; [want_bool] tracks context. *)
let rec expr_string m ~want_bool (e : Expr.t) =
  let as_value s = s in
  match e with
  | Expr.Const (v, ty) ->
    let s = const_string ty v in
    if want_bool then
      (match ty with
       | Htype.Bit -> Printf.sprintf "(%s = '1')" s
       | Htype.Unsigned _ | Htype.Enum _ -> s)
    else s
  | Expr.Enum_lit lit -> enum_literal lit
  | Expr.Ref name ->
    let s = sanitize name in
    if want_bool then
      (match Module_.declared_type m name with
       | Some Htype.Bit -> Printf.sprintf "(%s = '1')" s
       | Some _ | None -> s)
    else as_value s
  | Expr.Unop (Expr.Not, e1) ->
    if want_bool then
      Printf.sprintf "(not %s)" (expr_string m ~want_bool:true e1)
    else Printf.sprintf "(not %s)" (expr_string m ~want_bool:false e1)
  | Expr.Unop (Expr.Reduce_or, e1) ->
    let inner = expr_string m ~want_bool:false e1 in
    if want_bool then Printf.sprintf "(or_reduce(%s) = '1')" inner
    else Printf.sprintf "or_reduce(%s)" inner
  | Expr.Unop (Expr.Reduce_and, e1) ->
    let inner = expr_string m ~want_bool:false e1 in
    if want_bool then Printf.sprintf "(and_reduce(%s) = '1')" inner
    else Printf.sprintf "and_reduce(%s)" inner
  | Expr.Binop (op, e1, e2) when Expr.is_boolean_op op ->
    let s =
      Printf.sprintf "(%s %s %s)"
        (expr_string m ~want_bool:false e1)
        (binop_string op)
        (expr_string m ~want_bool:false e2)
    in
    if want_bool then s else Printf.sprintf "b2sl%s" s
  | Expr.Binop (((Expr.And | Expr.Or | Expr.Xor) as op), e1, e2) ->
    Printf.sprintf "(%s %s %s)"
      (expr_string m ~want_bool e1)
      (binop_string op)
      (expr_string m ~want_bool e2)
  | Expr.Binop (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)"
      (expr_string m ~want_bool:false e1)
      (binop_string op)
      (expr_string m ~want_bool:false e2)
  | Expr.Mux (c, a, b) ->
    Printf.sprintf "(%s when %s else %s)"
      (expr_string m ~want_bool:false a)
      (expr_string m ~want_bool:true c)
      (expr_string m ~want_bool:false b)
  | Expr.Slice (e1, hi, lo) ->
    if hi = lo then
      Printf.sprintf "%s(%d)" (expr_string m ~want_bool:false e1) lo
    else
      Printf.sprintf "%s(%d downto %d)"
        (expr_string m ~want_bool:false e1)
        hi lo
  | Expr.Concat (e1, e2) ->
    Printf.sprintf "(%s & %s)"
      (expr_string m ~want_bool:false e1)
      (expr_string m ~want_bool:false e2)
  | Expr.Resize (e1, w) ->
    Printf.sprintf "resize(%s, %d)" (expr_string m ~want_bool:false e1) w

let rec stmt_lines m indent (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Stmt.Null -> [ pad ^ "null;" ]
  | Stmt.Assign (target, e) ->
    [
      Printf.sprintf "%s%s <= %s;" pad (sanitize target)
        (expr_string m ~want_bool:false e);
    ]
  | Stmt.If (c, t_branch, e_branch) ->
    let cond = expr_string m ~want_bool:true c in
    let then_lines = List.concat_map (stmt_lines m (indent + 2)) t_branch in
    let else_lines = List.concat_map (stmt_lines m (indent + 2)) e_branch in
    (Printf.sprintf "%sif %s then" pad cond :: then_lines)
    @ (if else_lines = [] then [] else (pad ^ "else") :: else_lines)
    @ [ pad ^ "end if;" ]
  | Stmt.Case (sel, branches, default) ->
    let sel_s = expr_string m ~want_bool:false sel in
    let branch_lines =
      List.concat_map
        (fun (choice, body) ->
          let label =
            match choice with
            | Stmt.Ch_int i -> string_of_int i
            | Stmt.Ch_enum lit -> enum_literal lit
          in
          (Printf.sprintf "%s  when %s =>" pad label)
          :: List.concat_map (stmt_lines m (indent + 4)) body)
        branches
    in
    let default_lines =
      match default with
      | Some body ->
        (pad ^ "  when others =>")
        :: List.concat_map (stmt_lines m (indent + 4)) body
      | None -> [ pad ^ "  when others => null;" ]
    in
    ((Printf.sprintf "%scase %s is" pad sel_s) :: branch_lines)
    @ default_lines
    @ [ pad ^ "end case;" ]

let enum_types m =
  (* collect distinct enum types used by ports/signals *)
  let tys =
    List.map (fun p -> p.Module_.port_type) m.Module_.mod_ports
    @ List.map (fun s -> s.Module_.sig_type) m.Module_.mod_signals
  in
  List.filter_map
    (fun ty ->
      match ty with
      | Htype.Enum lits -> Some lits
      | Htype.Bit | Htype.Unsigned _ -> None)
    tys
  |> List.sort_uniq compare

let port_line m (p : Module_.port) =
  let dir =
    match p.Module_.port_dir with
    | Module_.Input -> "in"
    | Module_.Output -> "out"
  in
  Printf.sprintf "    %s : %s %s" (sanitize p.Module_.port_name) dir
    (type_string m p.Module_.port_type)

let of_module m =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let name = sanitize m.Module_.mod_name in
  line "library ieee;";
  line "use ieee.std_logic_1164.all;";
  line "use ieee.numeric_std.all;";
  line "";
  line "entity %s is" name;
  (match m.Module_.mod_ports with
   | [] -> ()
   | ports ->
     line "  port (";
     Buffer.add_string buf
       (String.concat ";\n" (List.map (port_line m) ports));
     line "";
     line "  );");
  line "end entity %s;" name;
  line "";
  line "architecture rtl of %s is" name;
  (match enum_types m with
   | [] -> ()
   | enums ->
     List.iter
       (fun lits ->
         line "  type %s_state_t is (%s);" name
           (String.concat ", " (List.map enum_literal lits)))
       enums);
  List.iter
    (fun (s : Module_.signal) ->
      let init =
        match s.Module_.sig_init with
        | Some v -> Printf.sprintf " := %s" (const_string s.Module_.sig_type v)
        | None -> ""
      in
      line "  signal %s : %s%s;" (sanitize s.Module_.sig_name)
        (type_string m s.Module_.sig_type)
        init)
    m.Module_.mod_signals;
  line "begin";
  List.iter
    (fun (inst : Module_.instance) ->
      line "  %s : entity work.%s" (sanitize inst.Module_.inst_name)
        (sanitize inst.Module_.inst_module);
      line "    port map (";
      Buffer.add_string buf
        (String.concat ",\n"
           (List.map
              (fun (formal, actual) ->
                Printf.sprintf "      %s => %s" (sanitize formal)
                  (sanitize actual))
              inst.Module_.inst_conns));
      line "";
      line "    );")
    m.Module_.mod_instances;
  List.iter
    (fun p ->
      match p with
      | Module_.Comb cp ->
        line "";
        line "  %s : process (all)" (sanitize cp.Module_.cp_name);
        line "  begin";
        List.iter
          (fun s -> List.iter (line "%s") (stmt_lines m 4 s))
          cp.Module_.cp_body;
        line "  end process;"
      | Module_.Seq sp ->
        line "";
        line "  %s : process (%s)" (sanitize sp.Module_.sp_name)
          (sanitize sp.Module_.sp_clock);
        line "  begin";
        line "    if rising_edge(%s) then" (sanitize sp.Module_.sp_clock);
        (match sp.Module_.sp_reset with
         | Some (rst, reset_body) ->
           line "      if %s = '1' then" (sanitize rst);
           List.iter
             (fun s -> List.iter (line "%s") (stmt_lines m 8 s))
             reset_body;
           line "      else";
           List.iter
             (fun s -> List.iter (line "%s") (stmt_lines m 8 s))
             sp.Module_.sp_body;
           line "      end if;"
         | None ->
           List.iter
             (fun s -> List.iter (line "%s") (stmt_lines m 6 s))
             sp.Module_.sp_body);
        line "    end if;";
        line "  end process;")
    m.Module_.mod_processes;
  line "end architecture rtl;";
  Buffer.contents buf

let of_design d =
  (* dependencies first: topological order by instantiation *)
  let emitted = Hashtbl.create 8 in
  let buf = Buffer.create 4096 in
  let rec emit name =
    if not (Hashtbl.mem emitted name) then begin
      Hashtbl.add emitted name ();
      match Module_.find_module d name with
      | None -> ()
      | Some m ->
        List.iter
          (fun (i : Module_.instance) -> emit i.Module_.inst_module)
          m.Module_.mod_instances;
        Buffer.add_string buf (of_module m);
        Buffer.add_char buf '\n'
    end
  in
  List.iter (fun (m : Module_.t) -> emit m.Module_.mod_name) d.Module_.des_modules;
  Buffer.contents buf
