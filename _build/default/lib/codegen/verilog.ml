open Hdl

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let range ty =
  let w = Htype.width ty in
  if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

(* enum literals are localparams; collect them per module *)
let enum_params m =
  let tys =
    List.map (fun p -> p.Module_.port_type) m.Module_.mod_ports
    @ List.map (fun s -> s.Module_.sig_type) m.Module_.mod_signals
  in
  let lits =
    List.concat_map
      (fun ty ->
        match ty with
        | Htype.Enum lits ->
          List.mapi (fun i l -> (l, i, Htype.width ty)) lits
        | Htype.Bit | Htype.Unsigned _ -> [])
      tys
  in
  (* dedup on literal name *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (l, _, _) ->
      if Hashtbl.mem seen l then false
      else begin
        Hashtbl.add seen l ();
        true
      end)
    lits

let binop_string = function
  | Expr.And -> "&"
  | Expr.Or -> "|"
  | Expr.Xor -> "^"
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Eq -> "=="
  | Expr.Neq -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.Shl -> "<<"
  | Expr.Shr -> ">>"

let rec expr_string (e : Expr.t) =
  match e with
  | Expr.Const (v, ty) ->
    let w = Htype.width ty in
    Printf.sprintf "%d'd%d" w v
  | Expr.Enum_lit lit -> "S_" ^ sanitize lit
  | Expr.Ref name -> sanitize name
  | Expr.Unop (Expr.Not, e1) -> Printf.sprintf "(~%s)" (expr_string e1)
  | Expr.Unop (Expr.Reduce_or, e1) -> Printf.sprintf "(|%s)" (expr_string e1)
  | Expr.Unop (Expr.Reduce_and, e1) -> Printf.sprintf "(&%s)" (expr_string e1)
  | Expr.Binop (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)" (expr_string e1) (binop_string op)
      (expr_string e2)
  | Expr.Mux (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_string c) (expr_string a)
      (expr_string b)
  | Expr.Slice (e1, hi, lo) ->
    if hi = lo then Printf.sprintf "%s[%d]" (expr_string e1) lo
    else Printf.sprintf "%s[%d:%d]" (expr_string e1) hi lo
  | Expr.Concat (e1, e2) ->
    Printf.sprintf "{%s, %s}" (expr_string e1) (expr_string e2)
  | Expr.Resize (e1, _w) -> expr_string e1

let rec stmt_lines ~blocking indent (s : Stmt.t) =
  let pad = String.make indent ' ' in
  let arrow = if blocking then "=" else "<=" in
  match s with
  | Stmt.Null -> [ pad ^ ";" ]
  | Stmt.Assign (target, e) ->
    [ Printf.sprintf "%s%s %s %s;" pad (sanitize target) arrow (expr_string e) ]
  | Stmt.If (c, t_branch, e_branch) ->
    let then_lines =
      List.concat_map (stmt_lines ~blocking (indent + 2)) t_branch
    in
    let else_lines =
      List.concat_map (stmt_lines ~blocking (indent + 2)) e_branch
    in
    (Printf.sprintf "%sif (%s) begin" pad (expr_string c) :: then_lines)
    @ (if else_lines = [] then [ pad ^ "end" ]
       else ((pad ^ "end else begin") :: else_lines) @ [ pad ^ "end" ])
  | Stmt.Case (sel, branches, default) ->
    let branch_lines =
      List.concat_map
        (fun (choice, body) ->
          let label =
            match choice with
            | Stmt.Ch_int i -> string_of_int i
            | Stmt.Ch_enum lit -> "S_" ^ sanitize lit
          in
          (Printf.sprintf "%s  %s: begin" pad label
          :: List.concat_map (stmt_lines ~blocking (indent + 4)) body)
          @ [ pad ^ "  end" ])
        branches
    in
    let default_lines =
      match default with
      | Some body ->
        ((pad ^ "  default: begin")
        :: List.concat_map (stmt_lines ~blocking (indent + 4)) body)
        @ [ pad ^ "  end" ]
      | None -> [ pad ^ "  default: ;" ]
    in
    ((Printf.sprintf "%scase (%s)" pad (expr_string sel)) :: branch_lines)
    @ default_lines
    @ [ pad ^ "endcase" ]

let of_module m =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let name = sanitize m.Module_.mod_name in
  let port_decl (p : Module_.port) =
    let dir =
      match p.Module_.port_dir with
      | Module_.Input -> "input"
      | Module_.Output -> "output reg"
    in
    Printf.sprintf "  %s %s%s" dir (range p.Module_.port_type)
      (sanitize p.Module_.port_name)
  in
  line "module %s (" name;
  Buffer.add_string buf
    (String.concat ",\n" (List.map port_decl m.Module_.mod_ports));
  line "";
  line ");";
  List.iter
    (fun (l, i, w) -> line "  localparam S_%s = %d'd%d;" (sanitize l) w i)
    (enum_params m);
  List.iter
    (fun (s : Module_.signal) ->
      let init =
        match s.Module_.sig_init with
        | Some v -> Printf.sprintf " = %d" v
        | None -> ""
      in
      line "  reg %s%s%s;" (range s.Module_.sig_type)
        (sanitize s.Module_.sig_name)
        init)
    m.Module_.mod_signals;
  List.iter
    (fun (inst : Module_.instance) ->
      line "  %s %s (" (sanitize inst.Module_.inst_module)
        (sanitize inst.Module_.inst_name);
      Buffer.add_string buf
        (String.concat ",\n"
           (List.map
              (fun (formal, actual) ->
                Printf.sprintf "    .%s(%s)" (sanitize formal)
                  (sanitize actual))
              inst.Module_.inst_conns));
      line "";
      line "  );")
    m.Module_.mod_instances;
  List.iter
    (fun p ->
      match p with
      | Module_.Comb cp ->
        line "";
        line "  // %s" (sanitize cp.Module_.cp_name);
        line "  always @* begin";
        List.iter
          (fun s ->
            List.iter (line "%s") (stmt_lines ~blocking:true 4 s))
          cp.Module_.cp_body;
        line "  end"
      | Module_.Seq sp ->
        line "";
        line "  // %s" (sanitize sp.Module_.sp_name);
        line "  always @(posedge %s) begin" (sanitize sp.Module_.sp_clock);
        (match sp.Module_.sp_reset with
         | Some (rst, reset_body) ->
           line "    if (%s) begin" (sanitize rst);
           List.iter
             (fun s ->
               List.iter (line "%s") (stmt_lines ~blocking:false 6 s))
             reset_body;
           line "    end else begin";
           List.iter
             (fun s ->
               List.iter (line "%s") (stmt_lines ~blocking:false 6 s))
             sp.Module_.sp_body;
           line "    end"
         | None ->
           List.iter
             (fun s ->
               List.iter (line "%s") (stmt_lines ~blocking:false 4 s))
             sp.Module_.sp_body);
        line "  end")
    m.Module_.mod_processes;
  line "endmodule";
  Buffer.contents buf

let of_design d =
  let emitted = Hashtbl.create 8 in
  let buf = Buffer.create 4096 in
  let rec emit name =
    if not (Hashtbl.mem emitted name) then begin
      Hashtbl.add emitted name ();
      match Module_.find_module d name with
      | None -> ()
      | Some m ->
        List.iter
          (fun (i : Module_.instance) -> emit i.Module_.inst_module)
          m.Module_.mod_instances;
        Buffer.add_string buf (of_module m);
        Buffer.add_char buf '\n'
    end
  in
  List.iter
    (fun (m : Module_.t) -> emit m.Module_.mod_name)
    d.Module_.des_modules;
  Buffer.contents buf
