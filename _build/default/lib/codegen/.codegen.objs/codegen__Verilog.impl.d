lib/codegen/verilog.ml: Buffer Expr Hashtbl Hdl Htype List Module_ Printf Stmt String
