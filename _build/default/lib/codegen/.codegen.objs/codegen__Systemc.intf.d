lib/codegen/systemc.mli: Hdl
