lib/codegen/cgen.ml: Asl Buffer Classifier Dtype List Model Option Printf String Uml Vspec
