lib/codegen/fsm_compile.ml: Asl Expr Hdl Htype List Module_ Printf Statechart Stmt String
