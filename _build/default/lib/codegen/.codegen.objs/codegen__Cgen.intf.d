lib/codegen/cgen.mli: Uml
