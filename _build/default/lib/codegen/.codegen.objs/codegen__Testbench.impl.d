lib/codegen/testbench.ml: Buffer Fsm_compile Hdl Htype List Module_ Printf String
