lib/codegen/verilog.mli: Hdl
