lib/codegen/vhdl.mli: Hdl
