lib/codegen/fsm_compile.mli: Hdl Statechart
