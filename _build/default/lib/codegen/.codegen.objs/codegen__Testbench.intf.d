lib/codegen/testbench.mli: Hdl
