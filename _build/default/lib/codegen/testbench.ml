open Hdl

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let vhdl_for_fsm ?(clock_period_ns = 10) m ~events =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let name = sanitize m.Module_.mod_name in
  let half = clock_period_ns / 2 in
  line "library ieee;";
  line "use ieee.std_logic_1164.all;";
  line "use ieee.numeric_std.all;";
  line "";
  line "entity %s_tb is" name;
  line "end entity %s_tb;" name;
  line "";
  line "architecture sim of %s_tb is" name;
  List.iter
    (fun (p : Module_.port) ->
      let ty =
        match p.Module_.port_type with
        | Htype.Bit -> "std_logic"
        | Htype.Unsigned w -> Printf.sprintf "unsigned(%d downto 0)" (w - 1)
        | Htype.Enum _ -> Printf.sprintf "%s_state_t" name
      in
      let init =
        match p.Module_.port_type with
        | Htype.Bit -> " := '0'"
        | Htype.Unsigned _ | Htype.Enum _ -> ""
      in
      line "  signal %s : %s%s;" (sanitize p.Module_.port_name) ty init)
    m.Module_.mod_ports;
  line "begin";
  line "  dut : entity work.%s" name;
  line "    port map (";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (p : Module_.port) ->
            Printf.sprintf "      %s => %s"
              (sanitize p.Module_.port_name)
              (sanitize p.Module_.port_name))
          m.Module_.mod_ports));
  line "";
  line "    );";
  line "";
  line "  clk_gen : process";
  line "  begin";
  line "    clk <= '0'; wait for %d ns;" half;
  line "    clk <= '1'; wait for %d ns;" half;
  line "  end process;";
  line "";
  line "  stimulus : process";
  line "  begin";
  line "    rst <= '1';";
  line "    wait until rising_edge(clk);";
  line "    rst <= '0';";
  line "    wait until rising_edge(clk);";
  List.iter
    (fun ev ->
      let port = Fsm_compile.event_input ev in
      if Module_.find_port m port <> None then begin
        line "    %s <= '1';" (sanitize port);
        line "    wait until rising_edge(clk);";
        line "    %s <= '0';" (sanitize port)
      end
      else line "    -- event %s: no matching input port, skipped" ev)
    events;
  line "    wait for %d ns;" (clock_period_ns * 4);
  line "    assert false report \"end of scenario\" severity note;";
  line "    wait;";
  line "  end process;";
  line "end architecture sim;";
  Buffer.contents buf
