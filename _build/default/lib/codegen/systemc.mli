(** SystemC-flavoured C++ generation from the HDL IR.

    Each module becomes an [SC_MODULE] with [sc_in]/[sc_out] ports,
    clocked [SC_METHOD]s for sequential processes and combinational
    [SC_METHOD]s with explicit sensitivity.  Deterministic. *)

val of_module : Hdl.Module_.t -> string
val of_design : Hdl.Module_.design -> string
(** One header-style translation unit with all modules. *)
