open Uml

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let function_name ~class_name ~op = sanitize class_name ^ "_" ^ sanitize op

let c_type (ty : Dtype.t) =
  match ty with
  | Dtype.Boolean | Dtype.Integer | Dtype.Unlimited_natural -> "int"
  | Dtype.Real -> "double"
  | Dtype.String_type -> "const char *"
  | Dtype.Void -> "void"
  | Dtype.Ref _ -> "void *" (* refined below when the class is known *)

let c_type_in m (ty : Dtype.t) =
  match ty with
  | Dtype.Ref id -> (
    match Model.find_classifier m id with
    | Some cl -> Printf.sprintf "struct %s *" (sanitize cl.Classifier.cl_name)
    | None -> "void *")
  | Dtype.Boolean | Dtype.Integer | Dtype.Unlimited_natural | Dtype.Real
  | Dtype.String_type | Dtype.Void ->
    c_type ty

let default_value (ty : Dtype.t) (v : Vspec.t option) =
  match v with
  | Some (Vspec.Int_literal i) -> string_of_int i
  | Some (Vspec.Real_literal r) -> string_of_float r
  | Some (Vspec.Bool_literal b) -> if b then "1" else "0"
  | Some (Vspec.String_literal s) -> Printf.sprintf "%S" s
  | Some (Vspec.Enum_literal s) -> sanitize s
  | Some Vspec.Null_literal -> "0"
  | Some (Vspec.Opaque_expression _) | None -> (
    match ty with
    | Dtype.Real -> "0.0"
    | Dtype.String_type -> "\"\""
    | Dtype.Ref _ -> "0"
    | Dtype.Boolean | Dtype.Integer | Dtype.Unlimited_natural | Dtype.Void ->
      "0")

(* --- expression translation ------------------------------------------ *)

(* Variables' classes for method-call receivers are resolved with the
   ASL typechecker against the model. *)
let class_info_of_model m : Asl.Typecheck.class_info =
  let find_class name =
    List.find_opt
      (fun c -> c.Classifier.cl_name = name)
      (Model.classifiers m)
  in
  let ty_of_dtype (d : Dtype.t) : Asl.Typecheck.ty =
    match d with
    | Dtype.Boolean -> Asl.Typecheck.T_bool
    | Dtype.Integer | Dtype.Unlimited_natural -> Asl.Typecheck.T_int
    | Dtype.Real -> Asl.Typecheck.T_real
    | Dtype.String_type -> Asl.Typecheck.T_string
    | Dtype.Void -> Asl.Typecheck.T_void
    | Dtype.Ref id -> (
      match Model.find_classifier m id with
      | Some cl -> Asl.Typecheck.T_obj (Some cl.Classifier.cl_name)
      | None -> Asl.Typecheck.T_obj None)
  in
  {
    Asl.Typecheck.class_exists = (fun n -> find_class n <> None);
    attr_type =
      (fun cname aname ->
        match find_class cname with
        | None -> None
        | Some cl ->
          Option.map
            (fun (p : Classifier.property) -> ty_of_dtype p.Classifier.prop_type)
            (Classifier.find_attribute cl aname));
    op_signature =
      (fun cname oname ->
        match find_class cname with
        | None -> None
        | Some cl -> (
          match Classifier.find_operation cl oname with
          | None -> None
          | Some op ->
            let params =
              List.filter_map
                (fun (p : Classifier.parameter) ->
                  if p.Classifier.param_direction = Classifier.Return then None
                  else Some (ty_of_dtype p.Classifier.param_type))
                op.Classifier.op_params
            in
            Some (params, ty_of_dtype (Classifier.result_type op))));
  }

exception Untranslatable of string

let untranslatable fmt =
  Printf.ksprintf (fun m -> raise (Untranslatable m)) fmt

type env = {
  info : Asl.Typecheck.class_info;
  self_class : string option;
  mutable var_classes : (string * string) list;  (** var -> class name *)
}

(* Best-effort receiver class of an expression for call dispatch. *)
let rec receiver_class env (e : Asl.Ast.expr) =
  match e with
  | Asl.Ast.Self -> env.self_class
  | Asl.Ast.Var name -> List.assoc_opt name env.var_classes
  | Asl.Ast.New cname -> Some cname
  | Asl.Ast.Attr (obj, attr) -> (
    match receiver_class env obj with
    | None -> None
    | Some c -> (
      match env.info.Asl.Typecheck.attr_type c attr with
      | Some (Asl.Typecheck.T_obj (Some c')) -> Some c'
      | Some _ | None -> None))
  | Asl.Ast.Call _ | Asl.Ast.Int_lit _ | Asl.Ast.Real_lit _
  | Asl.Ast.Bool_lit _ | Asl.Ast.String_lit _ | Asl.Ast.Null_lit
  | Asl.Ast.Unop _ | Asl.Ast.Binop _ ->
    None

let binop_c = function
  | Asl.Ast.Add -> "+"
  | Asl.Ast.Sub -> "-"
  | Asl.Ast.Mul -> "*"
  | Asl.Ast.Div -> "/"
  | Asl.Ast.Mod -> "%"
  | Asl.Ast.Eq -> "=="
  | Asl.Ast.Ne -> "!="
  | Asl.Ast.Lt -> "<"
  | Asl.Ast.Le -> "<="
  | Asl.Ast.Gt -> ">"
  | Asl.Ast.Ge -> ">="
  | Asl.Ast.And -> "&&"
  | Asl.Ast.Or -> "||"
  | Asl.Ast.Concat -> untranslatable "string concatenation"

let rec expr_c env (e : Asl.Ast.expr) =
  match e with
  | Asl.Ast.Int_lit i -> string_of_int i
  | Asl.Ast.Real_lit r -> string_of_float r
  | Asl.Ast.Bool_lit b -> if b then "1" else "0"
  | Asl.Ast.String_lit s -> Printf.sprintf "%S" s
  | Asl.Ast.Null_lit -> "0"
  | Asl.Ast.Self -> "self"
  | Asl.Ast.Var name -> sanitize name
  | Asl.Ast.Attr (obj, attr) ->
    Printf.sprintf "%s->%s" (expr_c env obj) (sanitize attr)
  | Asl.Ast.Unop (Asl.Ast.Neg, e1) -> Printf.sprintf "(-%s)" (expr_c env e1)
  | Asl.Ast.Unop (Asl.Ast.Not, e1) -> Printf.sprintf "(!%s)" (expr_c env e1)
  | Asl.Ast.Binop (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)" (expr_c env e1) (binop_c op) (expr_c env e2)
  | Asl.Ast.New cname ->
    Printf.sprintf "%s_new()" (sanitize cname)
  | Asl.Ast.Call (recv, name, args) -> call_c env recv name args

and call_c env recv name args =
  let args_c = List.map (expr_c env) args in
  match recv, name, args_c with
  | None, "abs", [ a ] -> Printf.sprintf "abs(%s)" a
  | None, "min", [ a; b ] -> Printf.sprintf "((%s) < (%s) ? (%s) : (%s))" a b a b
  | None, "max", [ a; b ] -> Printf.sprintf "((%s) > (%s) ? (%s) : (%s))" a b a b
  | None, "print", [ a ] -> Printf.sprintf "printf(\"%%d\\n\", (int)(%s))" a
  | None, "to_string", [ _a ] -> untranslatable "to_string"
  | _other -> (
    let receiver_code, cls =
      match recv with
      | None -> ("self", env.self_class)
      | Some r -> (expr_c env r, receiver_class env r)
    in
    match cls with
    | None -> untranslatable "call %s on receiver of unknown class" name
    | Some c ->
      Printf.sprintf "%s(%s%s)"
        (function_name ~class_name:c ~op:name)
        receiver_code
        (String.concat "" (List.map (fun a -> ", " ^ a) args_c)))

let rec stmt_c env indent (s : Asl.Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Asl.Ast.Skip -> [ pad ^ ";" ]
  | Asl.Ast.Var_decl (name, e) ->
    (match receiver_class env e with
     | Some c -> env.var_classes <- (name, c) :: env.var_classes
     | None -> ());
    let decl_type =
      match receiver_class env e with
      | Some c -> Printf.sprintf "struct %s *" (sanitize c)
      | None -> "int "
    in
    [ Printf.sprintf "%s%s%s = %s;" pad decl_type (sanitize name) (expr_c env e) ]
  | Asl.Ast.Assign (Asl.Ast.L_var name, e) ->
    [ Printf.sprintf "%s%s = %s;" pad (sanitize name) (expr_c env e) ]
  | Asl.Ast.Assign (Asl.Ast.L_attr (obj, attr), e) ->
    [
      Printf.sprintf "%s%s->%s = %s;" pad (expr_c env obj) (sanitize attr)
        (expr_c env e);
    ]
  | Asl.Ast.Expr_stmt e -> [ Printf.sprintf "%s%s;" pad (expr_c env e) ]
  | Asl.Ast.If (c, t_branch, e_branch) ->
    let then_lines = List.concat_map (stmt_c env (indent + 2)) t_branch in
    let else_lines = List.concat_map (stmt_c env (indent + 2)) e_branch in
    (Printf.sprintf "%sif (%s) {" pad (expr_c env c) :: then_lines)
    @ (if else_lines = [] then [ pad ^ "}" ]
       else ((pad ^ "} else {") :: else_lines) @ [ pad ^ "}" ])
  | Asl.Ast.While (c, body) ->
    (Printf.sprintf "%swhile (%s) {" pad (expr_c env c)
    :: List.concat_map (stmt_c env (indent + 2)) body)
    @ [ pad ^ "}" ]
  | Asl.Ast.For (name, low, high, body) ->
    (Printf.sprintf "%sfor (int %s = %s; %s <= %s; %s++) {" pad
       (sanitize name) (expr_c env low) (sanitize name) (expr_c env high)
       (sanitize name)
    :: List.concat_map (stmt_c env (indent + 2)) body)
    @ [ pad ^ "}" ]
  | Asl.Ast.Return None -> [ pad ^ "return;" ]
  | Asl.Ast.Return (Some e) ->
    [ Printf.sprintf "%sreturn %s;" pad (expr_c env e) ]
  | Asl.Ast.Send (signal, _args, _target) ->
    [ Printf.sprintf "%ssocuml_emit(%S);" pad signal ]
  | Asl.Ast.Delete e -> [ Printf.sprintf "%sfree(%s);" pad (expr_c env e) ]

(* --- per-class generation -------------------------------------------- *)

let struct_decl m (cl : Classifier.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "struct %s {\n" (sanitize cl.Classifier.cl_name));
  List.iter
    (fun (p : Classifier.property) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%s;\n"
           (let t = c_type_in m p.Classifier.prop_type in
            if String.length t > 0 && t.[String.length t - 1] = '*' then t
            else t ^ " ")
           (sanitize p.Classifier.prop_name)))
    cl.Classifier.cl_attributes;
  Buffer.add_string buf "};\n";
  Buffer.contents buf

let constructor m (cl : Classifier.t) =
  let name = sanitize cl.Classifier.cl_name in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "struct %s *%s_new(void) {\n" name name);
  Buffer.add_string buf
    (Printf.sprintf "  struct %s *self = (struct %s *)calloc(1, sizeof(struct %s));\n"
       name name name);
  List.iter
    (fun (p : Classifier.property) ->
      Buffer.add_string buf
        (Printf.sprintf "  self->%s = %s;\n"
           (sanitize p.Classifier.prop_name)
           (default_value p.Classifier.prop_type p.Classifier.prop_default)))
    cl.Classifier.cl_attributes;
  Buffer.add_string buf "  return self;\n}\n";
  let _ = m in
  Buffer.contents buf

let operation_fn m info (cl : Classifier.t) (op : Classifier.operation) =
  let class_name = cl.Classifier.cl_name in
  let result = Classifier.result_type op in
  let value_params =
    List.filter
      (fun (p : Classifier.parameter) ->
        p.Classifier.param_direction <> Classifier.Return)
      op.Classifier.op_params
  in
  let signature =
    Printf.sprintf "%s %s(struct %s *self%s)"
      (let t = c_type_in m result in
       if t = "void " then "void" else String.trim t)
      (function_name ~class_name ~op:op.Classifier.op_name)
      (sanitize class_name)
      (String.concat ""
         (List.map
            (fun (p : Classifier.parameter) ->
              Printf.sprintf ", %s %s"
                (String.trim (c_type_in m p.Classifier.param_type))
                (sanitize p.Classifier.param_name))
            value_params))
  in
  let body_lines =
    match op.Classifier.op_body with
    | None -> [ "  /* no body modeled */" ]
    | Some src -> (
      match Asl.Parser.parse_program src with
      | exception exn -> (
        match Asl.Parser.error_message exn with
        | Some msg -> [ Printf.sprintf "  /* body not translated: %s */" msg ]
        | None -> raise exn)
      | prog -> (
        let env =
          { info; self_class = Some class_name; var_classes = [] }
        in
        match List.concat_map (stmt_c env 2) prog with
        | lines -> lines
        | exception Untranslatable msg ->
          [ Printf.sprintf "  /* body not translated: %s */" msg ]))
  in
  String.concat "\n" ((signature ^ " {") :: body_lines) ^ "\n}\n"

let of_model m =
  let info = class_info_of_model m in
  let classes =
    List.filter
      (fun c ->
        match c.Classifier.cl_kind with
        | Classifier.Class | Classifier.Signal -> true
        | Classifier.Interface | Classifier.Data_type
        | Classifier.Primitive_type | Classifier.Enumeration _
        | Classifier.Actor_kind ->
          false)
      (Model.classifiers m)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "/* generated by socuml cgen */\n";
  Buffer.add_string buf "#include <stdio.h>\n#include <stdlib.h>\n\n";
  Buffer.add_string buf "extern void socuml_emit(const char *signal);\n\n";
  (* forward declarations *)
  List.iter
    (fun cl ->
      Buffer.add_string buf
        (Printf.sprintf "struct %s;\n" (sanitize cl.Classifier.cl_name)))
    classes;
  Buffer.add_char buf '\n';
  List.iter
    (fun cl ->
      Buffer.add_string buf (struct_decl m cl);
      Buffer.add_char buf '\n')
    classes;
  (* function prototypes *)
  List.iter
    (fun cl ->
      let name = sanitize cl.Classifier.cl_name in
      Buffer.add_string buf
        (Printf.sprintf "struct %s *%s_new(void);\n" name name);
      List.iter
        (fun (op : Classifier.operation) ->
          let result = String.trim (c_type_in m (Classifier.result_type op)) in
          let result = if result = "" then "void" else result in
          let value_params =
            List.filter
              (fun (p : Classifier.parameter) ->
                p.Classifier.param_direction <> Classifier.Return)
              op.Classifier.op_params
          in
          Buffer.add_string buf
            (Printf.sprintf "%s %s(struct %s *self%s);\n" result
               (function_name ~class_name:cl.Classifier.cl_name
                  ~op:op.Classifier.op_name)
               name
               (String.concat ""
                  (List.map
                     (fun (p : Classifier.parameter) ->
                       Printf.sprintf ", %s %s"
                         (String.trim (c_type_in m p.Classifier.param_type))
                         (sanitize p.Classifier.param_name))
                     value_params))))
        cl.Classifier.cl_operations)
    classes;
  Buffer.add_char buf '\n';
  List.iter
    (fun cl ->
      Buffer.add_string buf (constructor m cl);
      Buffer.add_char buf '\n';
      List.iter
        (fun op ->
          Buffer.add_string buf (operation_fn m info cl op);
          Buffer.add_char buf '\n')
        cl.Classifier.cl_operations)
    classes;
  Buffer.contents buf
