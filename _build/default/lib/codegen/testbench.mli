(** Testbench generation.

    Produces self-contained VHDL testbenches for modules compiled by
    {!Fsm_compile}: clock/reset generation plus one single-cycle strobe
    per event in the given scenario — the HDL twin of dispatching the
    same events to the {!Statechart.Engine}. *)

val vhdl_for_fsm :
  ?clock_period_ns:int -> Hdl.Module_.t -> events:string list -> string
(** [vhdl_for_fsm fsm ~events] — the module must follow the
    {!Fsm_compile} port convention ([clk], [rst], [ev_*] inputs).
    Events not matching an [ev_*] port are skipped with a comment
    (never silently dropped).  Deterministic. *)
