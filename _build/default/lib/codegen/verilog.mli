(** Verilog-2001 code generation from the HDL IR.  Deterministic. *)

val of_module : Hdl.Module_.t -> string
val of_design : Hdl.Module_.design -> string
