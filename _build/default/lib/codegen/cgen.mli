(** C code generation for the software side of a model (xUML-style
    "complete code generation", §3).

    Classes become structs plus functions: [Class_new] constructors with
    attribute defaults and one function per operation with its ASL body
    translated statement-by-statement.  Signals sent with [send] call an
    extern hook [socuml_emit(const char *signal)]; [print] maps to
    [printf].

    Supported value types: Integer/Boolean → [int], Real → [double],
    String → [const char *], class references → struct pointers. *)

val c_type : Uml.Dtype.t -> string

val of_model : Uml.Model.t -> string
(** One self-contained translation unit for every class in the model.
    Operations whose bodies fail to parse are emitted as stubs with an
    explanatory comment (never silently dropped).  Deterministic. *)

val function_name : class_name:string -> op:string -> string
