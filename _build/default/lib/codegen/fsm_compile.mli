(** Statechart-to-RTL compiler: the "code generation for hardware
    descriptions" whose feasibility the paper says "still needs to be
    demonstrated".

    A flattened state machine ({!Statechart.Flatten.t}) becomes a
    synthesizable FSM module:

    - ports: [clk], [rst] plus one single-cycle strobe input [ev_<name>]
      per event;
    - a [state] register of an enum type over the flat state names;
    - one output register per variable assigned by any ASL effect;
    - one synchronous process: [case state] with an if-else chain per
      source state in priority order.

    Compilable ASL subset (anything else is a clean [Error]):
    guards are boolean expressions over integers, literals and assigned
    variables; effects are sequences of [x := expr;] assignments.
    Eventless (completion) transitions are taken one per clock cycle.

    The combination [Flatten.flatten |> compile |> Dsim] versus
    {!Statechart.Engine} is experiment E2's equivalence check. *)

val state_name : string -> string
(** Enum literal for a flat state name. *)

val event_input : string -> string
(** Port name for an event ([ev_<name>]). *)

val compile :
  ?var_width:int -> Statechart.Flatten.t -> (Hdl.Module_.t, string) result
(** [var_width] (default 8) is the width of effect-variable output
    registers. *)
