(** VHDL code generation from the HDL IR.

    Emits one entity/architecture pair per module and a complete file
    per design.  Deterministic: identical designs produce byte-identical
    text. *)

val of_module : Hdl.Module_.t -> string
val of_design : Hdl.Module_.design -> string
(** All modules (dependencies first), each as entity + rtl
    architecture. *)
