open Hdl

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let state_name s = sanitize s
let event_input e = "ev_" ^ sanitize e

exception Not_compilable of string

let fail fmt = Printf.ksprintf (fun m -> raise (Not_compilable m)) fmt

(* --- ASL subset compilation ------------------------------------------ *)

let rec compile_expr vars (e : Asl.Ast.expr) : Expr.t =
  match e with
  | Asl.Ast.Int_lit i ->
    if i < 0 then fail "negative literals not synthesizable";
    Expr.of_int i
  | Asl.Ast.Bool_lit b -> Expr.of_bool b
  | Asl.Ast.Var name ->
    if List.mem name vars then Expr.Ref (sanitize name)
    else fail "guard/effect references unknown variable %s" name
  | Asl.Ast.Unop (Asl.Ast.Not, e1) -> Expr.Unop (Expr.Not, compile_expr vars e1)
  | Asl.Ast.Unop (Asl.Ast.Neg, _) -> fail "negative values not synthesizable"
  | Asl.Ast.Binop (op, e1, e2) ->
    let c1 = compile_expr vars e1 in
    let c2 = compile_expr vars e2 in
    let hop =
      match op with
      | Asl.Ast.Add -> Expr.Add
      | Asl.Ast.Sub -> Expr.Sub
      | Asl.Ast.Mul -> Expr.Mul
      | Asl.Ast.Eq -> Expr.Eq
      | Asl.Ast.Ne -> Expr.Neq
      | Asl.Ast.Lt -> Expr.Lt
      | Asl.Ast.Le -> Expr.Le
      | Asl.Ast.Gt -> Expr.Gt
      | Asl.Ast.Ge -> Expr.Ge
      | Asl.Ast.And -> Expr.And
      | Asl.Ast.Or -> Expr.Or
      | Asl.Ast.Div | Asl.Ast.Mod -> fail "division not synthesizable here"
      | Asl.Ast.Concat -> fail "string concatenation not synthesizable"
    in
    Expr.Binop (hop, c1, c2)
  | Asl.Ast.Real_lit _ | Asl.Ast.String_lit _ | Asl.Ast.Null_lit
  | Asl.Ast.Self | Asl.Ast.Attr _ | Asl.Ast.Call _ | Asl.Ast.New _ ->
    fail "expression not in the synthesizable ASL subset"

let compile_effect vars src : Stmt.t list =
  let prog =
    match Asl.Parser.parse_program src with
    | p -> p
    | exception exn -> (
      match Asl.Parser.error_message exn with
      | Some m -> fail "effect does not parse: %s" m
      | None -> raise exn)
  in
  List.map
    (fun (s : Asl.Ast.stmt) ->
      match s with
      | Asl.Ast.Skip -> Stmt.Null
      | Asl.Ast.Assign (Asl.Ast.L_var name, e) ->
        Stmt.Assign (sanitize name, compile_expr vars e)
      | Asl.Ast.Var_decl _ | Asl.Ast.Assign _ | Asl.Ast.Expr_stmt _
      | Asl.Ast.If _ | Asl.Ast.While _ | Asl.Ast.For _ | Asl.Ast.Return _
      | Asl.Ast.Send _ | Asl.Ast.Delete _ ->
        fail "effect statement not in the synthesizable ASL subset")
    prog

let compile_guard vars src : Expr.t =
  match Asl.Parser.parse_expression src with
  | e -> compile_expr vars e
  | exception exn -> (
    match Asl.Parser.error_message exn with
    | Some m -> fail "guard does not parse: %s" m
    | None -> raise exn)

(* Variables assigned in any effect = output registers. *)
let effect_variables (flat : Statechart.Flatten.t) =
  let vars = ref [] in
  let add name = if not (List.mem name !vars) then vars := name :: !vars in
  List.iter
    (fun (tr : Statechart.Flatten.flat_transition) ->
      List.iter
        (fun src ->
          match Asl.Parser.parse_program src with
          | prog ->
            List.iter
              (fun (s : Asl.Ast.stmt) ->
                match s with
                | Asl.Ast.Assign (Asl.Ast.L_var name, _) -> add name
                | _other -> ())
              prog
          | exception _exn -> ())
        tr.Statechart.Flatten.ft_effects)
    flat.Statechart.Flatten.fm_transitions;
  List.rev !vars

let compile ?(var_width = 8) (flat : Statechart.Flatten.t) =
  match
    let open Statechart.Flatten in
    let states = List.map state_name flat.fm_states in
    if states = [] then fail "machine has no states";
    let state_ty = Htype.Enum states in
    let events = events_of flat in
    let vars = effect_variables flat in
    let ports =
      [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]
      @ List.map (fun e -> Module_.input (event_input e) Htype.Bit) events
      @ List.map
          (fun v -> Module_.output (sanitize v) (Htype.Unsigned var_width))
          vars
    in
    let signals = [ Module_.signal "state" state_ty ] in
    (* per source state: if-else chain over its transitions *)
    let transition_stmt (tr : flat_transition) rest =
      let cond_event =
        match tr.ft_event with
        | Some e -> Some (Expr.Binop (Expr.Eq, Expr.Ref (event_input e), Expr.one))
        | None -> None
      in
      let cond_guards =
        List.map (fun g -> compile_guard vars g) tr.ft_guards
      in
      let conds =
        (match cond_event with
         | Some c -> [ c ]
         | None -> [])
        @ cond_guards
      in
      let cond =
        match conds with
        | [] -> Expr.one
        | first :: more ->
          List.fold_left (fun acc c -> Expr.Binop (Expr.And, acc, c)) first more
      in
      let effects = List.concat_map (compile_effect vars) tr.ft_effects in
      let body =
        effects @ [ Stmt.Assign ("state", Expr.Enum_lit (state_name tr.ft_target)) ]
      in
      match cond with
      | Expr.Const (1, Htype.Bit) -> body (* unconditional *)
      | _conditional -> [ Stmt.If (cond, body, rest) ]
    in
    let state_case source =
      let my_transitions =
        List.filter (fun tr -> tr.ft_source = source) flat.fm_transitions
      in
      (* already priority-sorted by Flatten *)
      let rec chain = function
        | [] -> []
        | [ tr ] -> transition_stmt tr []
        | tr :: rest -> transition_stmt tr (chain rest)
      in
      (Stmt.Ch_enum (state_name source), chain my_transitions)
    in
    let case =
      Stmt.Case (Expr.Ref "state", List.map state_case flat.fm_states, None)
    in
    let reset_body =
      Stmt.Assign ("state", Expr.Enum_lit (state_name flat.fm_initial))
      :: List.map
           (fun v -> Stmt.Assign (sanitize v, Expr.Const (0, Htype.Unsigned var_width)))
           vars
    in
    let process =
      Module_.seq_process ~reset:("rst", reset_body) ~name:"p_fsm"
        ~clock:"clk" [ case ]
    in
    Module_.make ~ports ~signals ~processes:[ process ]
      (sanitize flat.fm_name)
  with
  | m -> Ok m
  | exception Not_compilable msg -> Error msg
