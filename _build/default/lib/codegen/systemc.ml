open Hdl

let sanitize name =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
      then c
      else '_')
    name

let cpp_type ty =
  match ty with
  | Htype.Bit -> "bool"
  | Htype.Unsigned w when w <= 1 -> "bool"
  | Htype.Unsigned w -> Printf.sprintf "sc_uint<%d>" w
  | Htype.Enum _ -> Printf.sprintf "sc_uint<%d>" (Htype.width ty)

let binop_string = function
  | Expr.And -> "&"
  | Expr.Or -> "|"
  | Expr.Xor -> "^"
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Eq -> "=="
  | Expr.Neq -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="
  | Expr.Shl -> "<<"
  | Expr.Shr -> ">>"

(* ports are read with .read(); internal signals are plain members *)
let rec expr_string m (e : Expr.t) =
  match e with
  | Expr.Const (v, _ty) -> string_of_int v
  | Expr.Enum_lit lit -> "S_" ^ sanitize lit
  | Expr.Ref name -> (
    match Module_.find_port m name with
    | Some _ -> Printf.sprintf "%s.read()" (sanitize name)
    | None -> sanitize name)
  | Expr.Unop (Expr.Not, e1) -> Printf.sprintf "(~%s)" (expr_string m e1)
  | Expr.Unop (Expr.Reduce_or, e1) ->
    Printf.sprintf "(%s != 0)" (expr_string m e1)
  | Expr.Unop (Expr.Reduce_and, e1) ->
    Printf.sprintf "(%s.and_reduce())" (expr_string m e1)
  | Expr.Binop (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)" (expr_string m e1) (binop_string op)
      (expr_string m e2)
  | Expr.Mux (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_string m c) (expr_string m a)
      (expr_string m b)
  | Expr.Slice (e1, hi, lo) ->
    if hi = lo then Printf.sprintf "%s[%d]" (expr_string m e1) lo
    else Printf.sprintf "%s.range(%d, %d)" (expr_string m e1) hi lo
  | Expr.Concat (e1, e2) ->
    Printf.sprintf "(%s, %s)" (expr_string m e1) (expr_string m e2)
  | Expr.Resize (e1, _w) -> expr_string m e1

let rec stmt_lines m indent (s : Stmt.t) =
  let pad = String.make indent ' ' in
  match s with
  | Stmt.Null -> [ pad ^ ";" ]
  | Stmt.Assign (target, e) -> (
    let rhs = expr_string m e in
    match Module_.find_port m target with
    | Some _ ->
      [ Printf.sprintf "%s%s.write(%s);" pad (sanitize target) rhs ]
    | None -> [ Printf.sprintf "%s%s = %s;" pad (sanitize target) rhs ])
  | Stmt.If (c, t_branch, e_branch) ->
    let then_lines = List.concat_map (stmt_lines m (indent + 2)) t_branch in
    let else_lines = List.concat_map (stmt_lines m (indent + 2)) e_branch in
    (Printf.sprintf "%sif (%s) {" pad (expr_string m c) :: then_lines)
    @ (if else_lines = [] then [ pad ^ "}" ]
       else ((pad ^ "} else {") :: else_lines) @ [ pad ^ "}" ])
  | Stmt.Case (sel, branches, default) ->
    let branch_lines =
      List.concat_map
        (fun (choice, body) ->
          let label =
            match choice with
            | Stmt.Ch_int i -> string_of_int i
            | Stmt.Ch_enum lit -> "S_" ^ sanitize lit
          in
          (Printf.sprintf "%s  case %s: {" pad label
          :: List.concat_map (stmt_lines m (indent + 4)) body)
          @ [ pad ^ "  } break;" ])
        branches
    in
    let default_lines =
      match default with
      | Some body ->
        ((pad ^ "  default: {")
        :: List.concat_map (stmt_lines m (indent + 4)) body)
        @ [ pad ^ "  } break;" ]
      | None -> [ pad ^ "  default: break;" ]
    in
    ((Printf.sprintf "%sswitch ((int)(%s)) {" pad (expr_string m sel))
     :: branch_lines)
    @ default_lines
    @ [ pad ^ "}" ]

let enum_constants m =
  let tys =
    List.map (fun p -> p.Module_.port_type) m.Module_.mod_ports
    @ List.map (fun s -> s.Module_.sig_type) m.Module_.mod_signals
  in
  let lits =
    List.concat_map
      (fun ty ->
        match ty with
        | Htype.Enum lits -> List.mapi (fun i l -> (l, i)) lits
        | Htype.Bit | Htype.Unsigned _ -> [])
      tys
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (l, _) ->
      if Hashtbl.mem seen l then false
      else begin
        Hashtbl.add seen l ();
        true
      end)
    lits

let of_module m =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let name = sanitize m.Module_.mod_name in
  line "SC_MODULE(%s) {" name;
  List.iter
    (fun (p : Module_.port) ->
      let template =
        match p.Module_.port_dir with
        | Module_.Input -> "sc_in"
        | Module_.Output -> "sc_out"
      in
      line "  %s<%s> %s;" template (cpp_type p.Module_.port_type)
        (sanitize p.Module_.port_name))
    m.Module_.mod_ports;
  List.iter
    (fun (l, i) -> line "  static const int S_%s = %d;" (sanitize l) i)
    (enum_constants m);
  List.iter
    (fun (s : Module_.signal) ->
      line "  %s %s;" (cpp_type s.Module_.sig_type)
        (sanitize s.Module_.sig_name))
    m.Module_.mod_signals;
  List.iter
    (fun (inst : Module_.instance) ->
      line "  %s %s;" (sanitize inst.Module_.inst_module)
        (sanitize inst.Module_.inst_name))
    m.Module_.mod_instances;
  line "";
  (* process methods *)
  List.iter
    (fun p ->
      match p with
      | Module_.Comb cp ->
        line "  void %s() {" (sanitize cp.Module_.cp_name);
        List.iter
          (fun s -> List.iter (line "%s") (stmt_lines m 4 s))
          cp.Module_.cp_body;
        line "  }"
      | Module_.Seq sp ->
        line "  void %s() {" (sanitize sp.Module_.sp_name);
        (match sp.Module_.sp_reset with
         | Some (rst, reset_body) ->
           line "    if (%s.read()) {" (sanitize rst);
           List.iter
             (fun s -> List.iter (line "%s") (stmt_lines m 6 s))
             reset_body;
           line "    } else {";
           List.iter
             (fun s -> List.iter (line "%s") (stmt_lines m 6 s))
             sp.Module_.sp_body;
           line "    }"
         | None ->
           List.iter
             (fun s -> List.iter (line "%s") (stmt_lines m 4 s))
             sp.Module_.sp_body);
        line "  }")
    m.Module_.mod_processes;
  line "";
  (* constructor with sensitivity *)
  line "  SC_CTOR(%s)%s {" name
    (match m.Module_.mod_instances with
     | [] -> ""
     | instances ->
       " : "
       ^ String.concat ", "
           (List.map
              (fun (i : Module_.instance) ->
                Printf.sprintf "%s(\"%s\")" (sanitize i.Module_.inst_name)
                  (sanitize i.Module_.inst_name))
              instances));
  List.iter
    (fun (inst : Module_.instance) ->
      List.iter
        (fun (formal, actual) ->
          line "    %s.%s(%s);" (sanitize inst.Module_.inst_name)
            (sanitize formal) (sanitize actual))
        inst.Module_.inst_conns)
    m.Module_.mod_instances;
  List.iter
    (fun p ->
      match p with
      | Module_.Comb cp ->
        line "    SC_METHOD(%s);" (sanitize cp.Module_.cp_name);
        let inputs =
          List.filter
            (fun n -> Module_.find_port m n <> None)
            (Stmt.read cp.Module_.cp_body)
        in
        if inputs <> [] then
          line "    sensitive << %s;"
            (String.concat " << " (List.map sanitize inputs))
      | Module_.Seq sp ->
        line "    SC_METHOD(%s);" (sanitize sp.Module_.sp_name);
        line "    sensitive << %s.pos();" (sanitize sp.Module_.sp_clock))
    m.Module_.mod_processes;
  line "  }";
  line "};";
  Buffer.contents buf

let of_design d =
  let emitted = Hashtbl.create 8 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "#include <systemc.h>\n\n";
  let rec emit name =
    if not (Hashtbl.mem emitted name) then begin
      Hashtbl.add emitted name ();
      match Module_.find_module d name with
      | None -> ()
      | Some m ->
        List.iter
          (fun (i : Module_.instance) -> emit i.Module_.inst_module)
          m.Module_.mod_instances;
        Buffer.add_string buf (of_module m);
        Buffer.add_char buf '\n'
    end
  in
  List.iter
    (fun (m : Module_.t) -> emit m.Module_.mod_name)
    d.Module_.des_modules;
  Buffer.contents buf
