(** Structural invariants from the incidence matrix.

    P-invariants (place weightings conserved by every firing) and
    T-invariants (firing-count vectors that reproduce a marking) are
    computed as rational nullspace bases of the incidence matrix,
    rescaled to integer vectors. *)

val incidence : Net.t -> int array array
(** [C.(i).(j)] = net token change of place [i] (in [Net.t] place order)
    when transition [j] (in transition order) fires. *)

val p_invariants : Net.t -> (string * int) list list
(** Basis of P-invariants; each is a list of (place id, weight) with at
    least one non-zero weight.  Weights are integers with gcd 1, sign
    normalized so the first non-zero weight is positive. *)

val t_invariants : Net.t -> (string * int) list list
(** Basis of T-invariants over transition ids. *)

val check_p_invariant : Net.t -> (string * int) list -> bool
(** Verify [x^T C = 0] directly. *)

val invariant_value : (string * int) list -> Marking.t -> int
(** Weighted token sum of a marking under a P-invariant: constant along
    any occurrence sequence. *)
