module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let normalize m = M.filter (fun _ n -> n <> 0) m

let of_list l =
  normalize
    (List.fold_left
       (fun m (p, n) ->
         let current =
           match M.find_opt p m with
           | Some c -> c
           | None -> 0
         in
         M.add p (current + n) m)
       M.empty l)

let to_list m = M.bindings (normalize m)

let tokens m p =
  match M.find_opt p m with
  | Some n -> n
  | None -> 0

let add m p n =
  let v = tokens m p + n in
  if v = 0 then M.remove p m else M.add p v m

let total m = M.fold (fun _ n acc -> acc + n) m 0
let equal m1 m2 = M.equal Int.equal (normalize m1) (normalize m2)
let compare m1 m2 = M.compare Int.compare (normalize m1) (normalize m2)

let enabled net m tn =
  Net.find_transition net tn <> None
  && List.for_all (fun (p, w) -> tokens m p >= w) (Net.pre net tn)

let enabled_transitions net m =
  List.filter (fun tn -> enabled net m tn.Net.tn_id) net.Net.transitions

let fire net m tn =
  if not (enabled net m tn) then None
  else
    let m = List.fold_left (fun m (p, w) -> add m p (-w)) m (Net.pre net tn) in
    let m = List.fold_left (fun m (p, w) -> add m p w) m (Net.post net tn) in
    Some m

let fire_sequence net m seq =
  let step acc tn =
    match acc with
    | None -> None
    | Some m -> fire net m tn
  in
  List.fold_left step (Some m) seq

let pp fmt m =
  let items = to_list m in
  Format.fprintf fmt "{";
  List.iteri
    (fun i (p, n) ->
      if i > 0 then Format.fprintf fmt ", ";
      if n = 1 then Format.fprintf fmt "%s" p
      else Format.fprintf fmt "%s:%d" p n)
    items;
  Format.fprintf fmt "}"

let show m = Format.asprintf "%a" pp m
