(** Small exact rationals over native ints, for invariant computation.

    Sufficient for the incidence matrices of model-sized nets; no
    arbitrary precision (values stay tiny after normalization). *)

type t = private {
  num : int;
  den : int;  (** always positive; gcd(num, den) = 1 *)
}
[@@deriving eq, show]

val make : int -> int -> t
(** @raise Division_by_zero when the denominator is zero. *)

val of_int : int -> t
val zero : t
val one : t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero *)

val neg : t -> t
val is_zero : t -> bool
val sign : t -> int
val to_string : t -> string
val compare : t -> t -> int
