let incidence net =
  let places = Array.of_list net.Net.places in
  let transitions = Array.of_list net.Net.transitions in
  let index_of_place =
    let tbl = Hashtbl.create 16 in
    Array.iteri (fun i p -> Hashtbl.replace tbl p.Net.pl_id i) places;
    tbl
  in
  let c =
    Array.make_matrix (Array.length places) (Array.length transitions) 0
  in
  Array.iteri
    (fun j tn ->
      List.iter
        (fun (p, w) ->
          let i = Hashtbl.find index_of_place p in
          c.(i).(j) <- c.(i).(j) - w)
        (Net.pre net tn.Net.tn_id);
      List.iter
        (fun (p, w) ->
          let i = Hashtbl.find index_of_place p in
          c.(i).(j) <- c.(i).(j) + w)
        (Net.post net tn.Net.tn_id))
    transitions;
  c

(* Nullspace basis of an integer matrix (rows x cols) over Q, returned
   as integer vectors of length [cols].  Standard Gaussian elimination
   to reduced row echelon form; free columns generate basis vectors. *)
let nullspace rows cols (a : int array array) =
  let m = Array.init rows (fun i -> Array.map Ratio.of_int a.(i)) in
  let pivot_col_of_row = Array.make rows (-1) in
  let row = ref 0 in
  for col = 0 to cols - 1 do
    if !row < rows then begin
      (* find pivot *)
      let pivot = ref (-1) in
      for i = !row to rows - 1 do
        if !pivot = -1 && not (Ratio.is_zero m.(i).(col)) then pivot := i
      done;
      if !pivot >= 0 then begin
        let p = !pivot in
        let tmp = m.(p) in
        m.(p) <- m.(!row);
        m.(!row) <- tmp;
        let pv = m.(!row).(col) in
        for j = 0 to cols - 1 do
          m.(!row).(j) <- Ratio.div m.(!row).(j) pv
        done;
        for i = 0 to rows - 1 do
          if i <> !row && not (Ratio.is_zero m.(i).(col)) then begin
            let f = m.(i).(col) in
            for j = 0 to cols - 1 do
              m.(i).(j) <- Ratio.sub m.(i).(j) (Ratio.mul f m.(!row).(j))
            done
          end
        done;
        pivot_col_of_row.(!row) <- col;
        incr row
      end
    end
  done;
  let rank = !row in
  let is_pivot_col = Array.make cols false in
  for i = 0 to rank - 1 do
    is_pivot_col.(pivot_col_of_row.(i)) <- true
  done;
  let basis = ref [] in
  for free = cols - 1 downto 0 do
    if not is_pivot_col.(free) then begin
      let v = Array.make cols Ratio.zero in
      v.(free) <- Ratio.one;
      for i = 0 to rank - 1 do
        let pc = pivot_col_of_row.(i) in
        v.(pc) <- Ratio.neg m.(i).(free)
      done;
      basis := v :: !basis
    end
  done;
  (* scale each vector to coprime integers, first non-zero positive *)
  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
  let to_ints v =
    let lcm_den =
      Array.fold_left
        (fun acc (r : Ratio.t) ->
          let d = r.Ratio.den in
          acc / gcd acc d * d)
        1 v
    in
    let ints =
      Array.map (fun (r : Ratio.t) -> r.Ratio.num * (lcm_den / r.Ratio.den)) v
    in
    let g = Array.fold_left (fun acc n -> gcd acc n) 0 ints in
    let ints = if g > 1 then Array.map (fun n -> n / g) ints else ints in
    let first_sign =
      let rec find i =
        if i >= Array.length ints then 1
        else if ints.(i) <> 0 then compare ints.(i) 0
        else find (i + 1)
      in
      find 0
    in
    if first_sign < 0 then Array.map (fun n -> -n) ints else ints
  in
  List.map to_ints !basis

let named_vectors names vectors =
  List.map
    (fun v ->
      List.filteri (fun _i (_, w) -> w <> 0)
        (List.mapi (fun i name -> (name, v.(i))) names))
    vectors

let transpose rows cols a =
  let t = Array.make_matrix cols rows 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      t.(j).(i) <- a.(i).(j)
    done
  done;
  t

let p_invariants net =
  let c = incidence net in
  let rows = List.length net.Net.places in
  let cols = List.length net.Net.transitions in
  if rows = 0 then []
  else
    (* x^T C = 0  <=>  C^T x = 0 *)
    let ct = transpose rows cols c in
    let basis = nullspace cols rows ct in
    let names = List.map (fun p -> p.Net.pl_id) net.Net.places in
    List.filter (fun v -> v <> []) (named_vectors names basis)

let t_invariants net =
  let c = incidence net in
  let rows = List.length net.Net.places in
  let cols = List.length net.Net.transitions in
  if cols = 0 then []
  else
    let basis = nullspace rows cols c in
    let names = List.map (fun tn -> tn.Net.tn_id) net.Net.transitions in
    List.filter (fun v -> v <> []) (named_vectors names basis)

let check_p_invariant net inv =
  let weight p =
    match List.assoc_opt p inv with
    | Some w -> w
    | None -> 0
  in
  let change_for tn =
    let minus =
      List.fold_left
        (fun acc (p, w) -> acc - (w * weight p))
        0 (Net.pre net tn.Net.tn_id)
    in
    List.fold_left
      (fun acc (p, w) -> acc + (w * weight p))
      minus (Net.post net tn.Net.tn_id)
  in
  List.for_all (fun tn -> change_for tn = 0) net.Net.transitions

let invariant_value inv m =
  List.fold_left (fun acc (p, w) -> acc + (w * Marking.tokens m p)) 0 inv
