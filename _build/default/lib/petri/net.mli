(** Place/transition nets.

    The substrate for the paper's observation that UML 2.0 activity
    token semantics are "semantically close to high-level Petri Nets":
    the [activity] library translates activities onto these nets and
    checks trace equivalence. *)

type place = {
  pl_id : string;
  pl_name : string;
}
[@@deriving eq, ord, show]

type transition = {
  tn_id : string;
  tn_name : string;
}
[@@deriving eq, ord, show]

(** Arcs connect places to transitions ([P_to_t]) or transitions to
    places ([T_to_p]) with a positive weight. *)
type arc =
  | P_to_t of string * string * int
  | T_to_p of string * string * int
[@@deriving eq, ord, show]

type t = {
  places : place list;
  transitions : transition list;
  arcs : arc list;
}
[@@deriving eq, show]

val make : place list -> transition list -> arc list -> t
(** @raise Invalid_argument if an arc references an unknown node, has a
    non-positive weight, or node identifiers collide. *)

val place : ?name:string -> string -> place
val transition : ?name:string -> string -> transition

val pre : t -> string -> (string * int) list
(** [pre net tn] = input places of transition [tn] with weights. *)

val post : t -> string -> (string * int) list
(** Output places of a transition with weights. *)

val place_pre : t -> string -> (string * int) list
(** Input transitions of a place. *)

val place_post : t -> string -> (string * int) list

val find_transition : t -> string -> transition option
val place_count : t -> int
val transition_count : t -> int
