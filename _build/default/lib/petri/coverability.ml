type count =
  | Fin of int
  | Omega

type omega_marking = (string * count) list

type result = {
  nodes : int;
  unbounded_places : string list;
  truncated : bool;
}

module SM = Map.Make (String)

(* internal representation: map with absent = 0 *)

let om_of_marking m =
  List.fold_left
    (fun acc (p, n) -> SM.add p (Fin n) acc)
    SM.empty (Marking.to_list m)

let get om p =
  match SM.find_opt p om with
  | Some c -> c
  | None -> Fin 0

let enabled net om tn =
  Net.find_transition net tn <> None
  && List.for_all
       (fun (p, w) ->
         match get om p with
         | Omega -> true
         | Fin n -> n >= w)
       (Net.pre net tn)

let fire net om tn =
  let consume om (p, w) =
    match get om p with
    | Omega -> om
    | Fin n -> SM.add p (Fin (n - w)) om
  in
  let produce om (p, w) =
    match get om p with
    | Omega -> om
    | Fin n -> SM.add p (Fin (n + w)) om
  in
  let om = List.fold_left consume om (Net.pre net tn) in
  List.fold_left produce om (Net.post net tn)

(* partial order: om1 <= om2 *)
let leq om1 om2 places =
  List.for_all
    (fun (p : Net.place) ->
      match get om1 p.Net.pl_id, get om2 p.Net.pl_id with
      | _, Omega -> true
      | Omega, Fin _ -> false
      | Fin a, Fin b -> a <= b)
    places

let equal_om om1 om2 places =
  leq om1 om2 places && leq om2 om1 places

(* acceleration: any ancestor strictly below the new marking pushes the
   strictly larger places to omega *)
let accelerate ancestors om places =
  List.fold_left
    (fun om ancestor ->
      if leq ancestor om places && not (equal_om ancestor om places) then
        List.fold_left
          (fun om (p : Net.place) ->
            let id = p.Net.pl_id in
            match get ancestor id, get om id with
            | Fin a, Fin b when b > a -> SM.add id Omega om
            | (Fin _ | Omega), (Fin _ | Omega) -> om)
          om places
      else om)
    om ancestors

let analyse ?(limit = 10_000) net m0 =
  let places = net.Net.places in
  let seen = ref [] in
  let omega_places = Hashtbl.create 8 in
  let truncated = ref false in
  let node_count = ref 0 in
  let note_omegas om =
    SM.iter
      (fun p c ->
        match c with
        | Omega -> Hashtbl.replace omega_places p ()
        | Fin _ -> ())
      om
  in
  let rec explore ancestors om =
    if !node_count >= limit then truncated := true
    else if List.exists (fun s -> equal_om s om places) !seen then ()
    else begin
      incr node_count;
      seen := om :: !seen;
      note_omegas om;
      List.iter
        (fun (tn : Net.transition) ->
          if enabled net om tn.Net.tn_id then begin
            let next = fire net om tn.Net.tn_id in
            let next = accelerate (om :: ancestors) next places in
            explore (om :: ancestors) next
          end)
        net.Net.transitions
    end
  in
  explore [] (om_of_marking m0);
  let unbounded =
    List.sort String.compare
      (Hashtbl.fold (fun p () acc -> p :: acc) omega_places [])
  in
  { nodes = !node_count; unbounded_places = unbounded; truncated = !truncated }

let is_bounded ?limit net m0 =
  let r = analyse ?limit net m0 in
  if r.unbounded_places <> [] then Some false
  else if r.truncated then None
  else Some true

let covers (om : omega_marking) m =
  let covers_entry p n =
    match List.assoc_opt p om with
    | Some Omega -> true
    | Some (Fin k) -> k >= n
    | None -> n = 0
  in
  List.for_all (fun (p, n) -> covers_entry p n) (Marking.to_list m)
