type place = {
  pl_id : string;
  pl_name : string;
}
[@@deriving eq, ord, show]

type transition = {
  tn_id : string;
  tn_name : string;
}
[@@deriving eq, ord, show]

type arc =
  | P_to_t of string * string * int
  | T_to_p of string * string * int
[@@deriving eq, ord, show]

type t = {
  places : place list;
  transitions : transition list;
  arcs : arc list;
}
[@@deriving eq, show]

let place ?name pl_id =
  let pl_name =
    match name with
    | Some n -> n
    | None -> pl_id
  in
  { pl_id; pl_name }

let transition ?name tn_id =
  let tn_name =
    match name with
    | Some n -> n
    | None -> tn_id
  in
  { tn_id; tn_name }

let make places transitions arcs =
  let module S = Set.Make (String) in
  let add_unique what s id =
    if S.mem id s then
      invalid_arg (Printf.sprintf "Net.make: duplicate %s %s" what id)
    else S.add id s
  in
  let place_ids =
    List.fold_left
      (fun s p -> add_unique "place" s p.pl_id)
      S.empty places
  in
  let transition_ids =
    List.fold_left
      (fun s tn -> add_unique "transition" s tn.tn_id)
      S.empty transitions
  in
  let check_arc = function
    | P_to_t (p, tn, w) | T_to_p (tn, p, w) ->
      if w <= 0 then invalid_arg "Net.make: arc weight must be positive";
      if not (S.mem p place_ids) then
        invalid_arg (Printf.sprintf "Net.make: unknown place %s" p);
      if not (S.mem tn transition_ids) then
        invalid_arg (Printf.sprintf "Net.make: unknown transition %s" tn)
  in
  List.iter check_arc arcs;
  { places; transitions; arcs }

let pre net tn =
  List.filter_map
    (function
      | P_to_t (p, tn', w) when tn' = tn -> Some (p, w)
      | P_to_t _ | T_to_p _ -> None)
    net.arcs

let post net tn =
  List.filter_map
    (function
      | T_to_p (tn', p, w) when tn' = tn -> Some (p, w)
      | T_to_p _ | P_to_t _ -> None)
    net.arcs

let place_pre net p =
  List.filter_map
    (function
      | T_to_p (tn, p', w) when p' = p -> Some (tn, w)
      | T_to_p _ | P_to_t _ -> None)
    net.arcs

let place_post net p =
  List.filter_map
    (function
      | P_to_t (p', tn, w) when p' = p -> Some (tn, w)
      | P_to_t _ | T_to_p _ -> None)
    net.arcs

let find_transition net id =
  List.find_opt (fun tn -> tn.tn_id = id) net.transitions

let place_count net = List.length net.places
let transition_count net = List.length net.transitions
