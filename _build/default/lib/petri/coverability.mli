(** Coverability analysis (Karp–Miller).

    Decides boundedness where plain reachability ({!Analysis.bound}) can
    only give up: the coverability tree accelerates strictly growing
    paths to ω, so unbounded places are identified exactly (up to the
    node limit safeguard). *)

type count =
  | Fin of int
  | Omega

type omega_marking = (string * count) list
(** Non-zero entries, sorted by place id. *)

type result = {
  nodes : int;  (** distinct ω-markings constructed *)
  unbounded_places : string list;  (** places that reach ω, sorted *)
  truncated : bool;  (** hit the node limit; verdicts below are partial *)
}

val analyse : ?limit:int -> Net.t -> Marking.t -> result
(** Build the coverability set, up to [limit] nodes (default 10_000). *)

val is_bounded : ?limit:int -> Net.t -> Marking.t -> bool option
(** [Some true] when the full coverability set is finite and ω-free,
    [Some false] when some place reaches ω, [None] when truncated
    without finding ω. *)

val covers : omega_marking -> Marking.t -> bool
(** Does an ω-marking cover a concrete marking? *)
