lib/petri/analysis.pp.mli: Marking Net
