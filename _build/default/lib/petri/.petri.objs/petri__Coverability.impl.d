lib/petri/coverability.pp.ml: Hashtbl List Map Marking Net String
