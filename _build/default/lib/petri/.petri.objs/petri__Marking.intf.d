lib/petri/marking.pp.mli: Format Map Net
