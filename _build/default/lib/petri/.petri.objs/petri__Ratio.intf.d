lib/petri/ratio.pp.mli: Ppx_deriving_runtime
