lib/petri/analysis.pp.ml: List Marking Net Queue Set String
