lib/petri/net.pp.ml: List Ppx_deriving_runtime Printf Set String
