lib/petri/invariant.pp.ml: Array Hashtbl List Marking Net Ratio
