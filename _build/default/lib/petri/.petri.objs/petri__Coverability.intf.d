lib/petri/coverability.pp.mli: Marking Net
