lib/petri/invariant.pp.mli: Marking Net
