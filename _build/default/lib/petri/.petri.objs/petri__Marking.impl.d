lib/petri/marking.pp.ml: Format Int List Map Net String
