lib/petri/ratio.pp.ml: Ppx_deriving_runtime Printf
