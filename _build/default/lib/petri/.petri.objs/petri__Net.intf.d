lib/petri/net.pp.mli: Ppx_deriving_runtime
