(** Markings: multisets of tokens over places, and the firing rule. *)

module M : Map.S with type key = string

type t = int M.t
(** Absent keys mean zero tokens. *)

val empty : t
val of_list : (string * int) list -> t
val to_list : t -> (string * int) list
(** Non-zero entries sorted by place id. *)

val tokens : t -> string -> int
val add : t -> string -> int -> t
val total : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val enabled : Net.t -> t -> string -> bool
(** Is the given transition enabled? *)

val enabled_transitions : Net.t -> t -> Net.transition list
(** In the net's transition order (deterministic). *)

val fire : Net.t -> t -> string -> t option
(** [fire net m tn] = successor marking, [None] if not enabled. *)

val fire_sequence : Net.t -> t -> string list -> t option
(** Fire a sequence of transitions; [None] as soon as one is disabled. *)

val pp : Format.formatter -> t -> unit
val show : t -> string
