(** XML parser.

    Handwritten recursive-descent parser for the XML subset produced by
    {!Doc.to_string} and common XMI exporters: prolog, comments, CDATA,
    DOCTYPE (skipped), elements, attributes (single or double quoted),
    character and entity references. *)

exception Error of {
  line : int;
  column : int;
  message : string;
}

val parse_string : ?keep_whitespace:bool -> string -> Doc.t
(** Parse a complete document and return the root element.
    Whitespace-only text nodes between elements are dropped unless
    [keep_whitespace] is set (default [false]).
    @raise Error on malformed input. *)

val error_message : exn -> string option
(** Render an [Error]; [None] for other exceptions. *)
