type attribute = string * string

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : attribute list;
  children : t list;
}

let element ?(attrs = []) tag children = Element { tag; attrs; children }
let text s = Text s

let tag_of = function
  | Element e -> Some e.tag
  | Text _ -> None

let attr e name = List.assoc_opt name e.attrs

let attr_exn e name =
  match attr e name with
  | Some v -> v
  | None -> raise Not_found

let child_elements e =
  List.filter_map
    (function
      | Element c -> Some c
      | Text _ -> None)
    e.children

let find_child e tag = List.find_opt (fun c -> c.tag = tag) (child_elements e)
let find_children e tag = List.filter (fun c -> c.tag = tag) (child_elements e)

let text_content e =
  let buf = Buffer.create 16 in
  let add = function
    | Text s -> Buffer.add_string buf s
    | Element _ -> ()
  in
  List.iter add e.children;
  Buffer.contents buf

let escape s =
  let buf = Buffer.create (String.length s) in
  let add = function
    | '&' -> Buffer.add_string buf "&amp;"
    | '<' -> Buffer.add_string buf "&lt;"
    | '>' -> Buffer.add_string buf "&gt;"
    | '"' -> Buffer.add_string buf "&quot;"
    | '\'' -> Buffer.add_string buf "&apos;"
    | c -> Buffer.add_char buf c
  in
  String.iter add s;
  Buffer.contents buf

let add_attrs buf attrs =
  let add (k, v) =
    Buffer.add_char buf ' ';
    Buffer.add_string buf k;
    Buffer.add_string buf "=\"";
    Buffer.add_string buf (escape v);
    Buffer.add_char buf '"'
  in
  List.iter add attrs

let rec add_node buf ~indent ~level node =
  let pad () =
    if indent then begin
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end
  in
  match node with
  | Text s ->
    (* no padding: keep text adjacent so content round-trips *)
    Buffer.add_string buf (escape s)
  | Element e ->
    pad ();
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    add_attrs buf e.attrs;
    if e.children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      let has_text =
        List.exists
          (function
            | Text _ -> true
            | Element _ -> false)
          e.children
      in
      (* mixed content is serialized inline to preserve text exactly *)
      let child_indent = indent && not has_text in
      List.iter
        (fun c -> add_node buf ~indent:child_indent ~level:(level + 1) c)
        e.children;
      if child_indent then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * level) ' ')
      end;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'
    end

let to_buffer ?(indent = true) buf node = add_node buf ~indent ~level:0 node

let to_string ?(indent = true) node =
  let buf = Buffer.create 1024 in
  to_buffer ~indent buf node;
  Buffer.contents buf

let sort_attrs attrs =
  List.sort (fun (a, _) (b, _) -> String.compare a b) attrs

let rec equal n1 n2 =
  match n1, n2 with
  | Text s1, Text s2 -> s1 = s2
  | Element e1, Element e2 ->
    e1.tag = e2.tag
    && sort_attrs e1.attrs = sort_attrs e2.attrs
    && List.equal equal e1.children e2.children
  | Text _, Element _ | Element _, Text _ -> false
