(** XML document trees.

    A minimal XML data model sufficient for XMI: elements with attributes
    and ordered children, plus text nodes.  Namespaces are carried
    syntactically in tag/attribute names ([xmi:id] style). *)

type attribute = string * string

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : attribute list;
  children : t list;
}

val element : ?attrs:attribute list -> string -> t list -> t
val text : string -> t

val tag_of : t -> string option
(** The tag of an element node, [None] for text. *)

val attr : element -> string -> string option
val attr_exn : element -> string -> string
(** @raise Not_found when absent. *)

val child_elements : element -> element list
val find_child : element -> string -> element option
(** First child element with the given tag. *)

val find_children : element -> string -> element list
val text_content : element -> string
(** Concatenation of all directly contained text nodes. *)

val escape : string -> string
(** Escape ampersand, angle brackets and quotes for attribute/text
    contexts. *)

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default [true]) pretty-prints with two-space
    indentation.  Text nodes are always emitted verbatim (escaped), so a
    parse of the output yields the same tree modulo ignorable
    whitespace. *)

val to_buffer : ?indent:bool -> Buffer.t -> t -> unit

val equal : t -> t -> bool
(** Structural equality ignoring attribute order. *)
