lib/sxml/parse.mli: Doc
