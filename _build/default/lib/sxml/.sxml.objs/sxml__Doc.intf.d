lib/sxml/doc.mli: Buffer
