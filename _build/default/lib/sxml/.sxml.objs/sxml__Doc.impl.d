lib/sxml/doc.ml: Buffer List String
