lib/sxml/parse.ml: Buffer Char Doc List Printf String
