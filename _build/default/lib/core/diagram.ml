type kind =
  | Class_diagram
  | Object_diagram
  | Package_diagram
  | Composite_structure_diagram
  | Component_diagram
  | Deployment_diagram
  | Use_case_diagram
  | Activity_diagram
  | State_machine_diagram
  | Sequence_diagram
  | Communication_diagram
  | Interaction_overview_diagram
  | Timing_diagram
[@@deriving eq, ord, show]

type aspect =
  | Structural
  | Behavioral
  | Physical
[@@deriving eq, ord, show]

type t = {
  dg_id : Ident.t;
  dg_name : string;
  dg_kind : kind;
  dg_elements : Ident.t list;
}
[@@deriving eq, ord, show]

let all_kinds =
  [
    Class_diagram;
    Object_diagram;
    Package_diagram;
    Composite_structure_diagram;
    Component_diagram;
    Deployment_diagram;
    Use_case_diagram;
    Activity_diagram;
    State_machine_diagram;
    Sequence_diagram;
    Communication_diagram;
    Interaction_overview_diagram;
    Timing_diagram;
  ]

let kind_name = function
  | Class_diagram -> "Class Diagram"
  | Object_diagram -> "Object Diagram"
  | Package_diagram -> "Package Diagram"
  | Composite_structure_diagram -> "Composite Structure Diagram"
  | Component_diagram -> "Component Diagram"
  | Deployment_diagram -> "Deployment Diagram"
  | Use_case_diagram -> "Use Case Diagram"
  | Activity_diagram -> "Activity Diagram"
  | State_machine_diagram -> "State Machine Diagram"
  | Sequence_diagram -> "Sequence Diagram"
  | Communication_diagram -> "Communication Diagram"
  | Interaction_overview_diagram -> "Interaction Overview Diagram"
  | Timing_diagram -> "Timing Diagram"

let aspect_of = function
  | Class_diagram | Object_diagram | Package_diagram
  | Composite_structure_diagram | Component_diagram ->
    Structural
  | Deployment_diagram -> Physical
  | Use_case_diagram | Activity_diagram | State_machine_diagram
  | Sequence_diagram | Communication_diagram | Interaction_overview_diagram
  | Timing_diagram ->
    Behavioral

let make ?id ?(elements = []) kind name =
  let dg_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"dg" ()
  in
  { dg_id; dg_name = name; dg_kind = kind; dg_elements = elements }
