type message_sort =
  | Synch_call
  | Asynch_call
  | Asynch_signal
  | Reply
  | Create_message
  | Delete_message
[@@deriving eq, ord, show]

type interaction_operator =
  | Alt
  | Opt
  | Loop of int * int option
  | Par
  | Strict
  | Seq
  | Break
  | Critical
  | Neg
  | Assert
  | Ignore of string list
  | Consider of string list
[@@deriving eq, ord, show]

type lifeline = {
  ll_id : Ident.t;
  ll_name : string;
  ll_represents : Ident.t option;
}
[@@deriving eq, ord, show]

type message = {
  msg_id : Ident.t;
  msg_name : string;
  msg_sort : message_sort;
  msg_from : Ident.t;
  msg_to : Ident.t;
  msg_arguments : Vspec.t list;
}
[@@deriving eq, ord, show]

type element =
  | Message of message
  | Fragment of fragment

and fragment = {
  fr_id : Ident.t;
  fr_operator : interaction_operator;
  fr_operands : operand list;
}

and operand = {
  opnd_id : Ident.t;
  opnd_guard : string option;
  opnd_body : element list;
}
[@@deriving eq, ord, show]

type t = {
  in_id : Ident.t;
  in_name : string;
  in_lifelines : lifeline list;
  in_body : element list;
}
[@@deriving eq, ord, show]

let fresh_or prefix = function
  | Some i -> i
  | None -> Ident.fresh ~prefix ()

let lifeline ?id ?represents name =
  { ll_id = fresh_or "ll" id; ll_name = name; ll_represents = represents }

let message ?id ?(sort = Asynch_signal) ?(arguments = []) ~from_ ~to_ name =
  {
    msg_id = fresh_or "ms" id;
    msg_name = name;
    msg_sort = sort;
    msg_from = from_;
    msg_to = to_;
    msg_arguments = arguments;
  }

let fragment ?id operator operands =
  { fr_id = fresh_or "fr" id; fr_operator = operator; fr_operands = operands }

let operand ?id ?guard body =
  { opnd_id = fresh_or "od" id; opnd_guard = guard; opnd_body = body }

let make ?id name lifelines body =
  {
    in_id = fresh_or "in" id;
    in_name = name;
    in_lifelines = lifelines;
    in_body = body;
  }

let rec collect_messages acc elems =
  List.fold_left collect_element acc elems

and collect_element acc = function
  | Message m -> m :: acc
  | Fragment f ->
    let collect_operand acc o = collect_messages acc o.opnd_body in
    List.fold_left collect_operand acc f.fr_operands

let all_messages t = List.rev (collect_messages [] t.in_body)
let message_count t = List.length (all_messages t)

let communication_pairs t =
  let name_of id =
    match List.find_opt (fun l -> Ident.equal l.ll_id id) t.in_lifelines with
    | Some l -> l.ll_name
    | None -> Ident.to_string id
  in
  let add acc m =
    let key = (name_of m.msg_from, name_of m.msg_to) in
    let rec bump = function
      | [] -> [ (fst key, snd key, 1) ]
      | (f, to_, n) :: rest when (f, to_) = key -> (f, to_, n + 1) :: rest
      | entry :: rest -> entry :: bump rest
    in
    bump acc
  in
  List.fold_left add [] (all_messages t)

(* Trace enumeration.  A trace is a message list; trace sets are lists of
   traces, truncated to [max] elements at each combination step. *)

let take n l =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ :: _ when n = 0 -> List.rev acc
    | x :: tl -> loop (x :: acc) (n - 1) tl
  in
  loop [] n l

let cross max tss1 tss2 =
  let pairs =
    List.concat_map (fun t1 -> List.map (fun t2 -> t1 @ t2) tss2) tss1
  in
  take max pairs

(* All interleavings of two traces, truncated. *)
let rec interleave2 max t1 t2 =
  match t1, t2 with
  | [], t | t, [] -> [ t ]
  | x :: xs, y :: ys ->
    let left = List.map (fun t -> x :: t) (interleave2 max xs t2) in
    let right = List.map (fun t -> y :: t) (interleave2 max t1 ys) in
    take max (left @ right)

let rec traces_of_body max elems =
  List.fold_left
    (fun acc e -> cross max acc (traces_of_element max e))
    [ [] ] elems

and traces_of_element max = function
  | Message m -> [ [ m ] ]
  | Fragment f -> traces_of_fragment max f

and traces_of_fragment max f =
  let operand_traces o = traces_of_body max o.opnd_body in
  match f.fr_operator with
  | Alt -> take max (List.concat_map operand_traces f.fr_operands)
  | Opt | Break ->
    take max ([] :: List.concat_map operand_traces f.fr_operands)
  | Strict | Seq | Critical | Assert | Ignore _ | Consider _ ->
    List.fold_left
      (fun acc o -> cross max acc (operand_traces o))
      [ [] ] f.fr_operands
  | Neg -> [ [] ]
  | Par ->
    let operand_sets = List.map operand_traces f.fr_operands in
    let combine tss1 tss2 =
      let interleaved =
        List.concat_map
          (fun t1 -> List.concat_map (fun t2 -> interleave2 max t1 t2) tss2)
          tss1
      in
      take max interleaved
    in
    (match operand_sets with
     | [] -> [ [] ]
     | first :: rest -> List.fold_left combine first rest)
  | Loop (min_iter, max_iter) ->
    let body =
      List.fold_left
        (fun acc o -> cross max acc (operand_traces o))
        [ [] ] f.fr_operands
    in
    let upper =
      match max_iter with
      | Some u -> u
      | None -> min_iter + 2 (* unbounded loops sampled a little past min *)
    in
    let rec repeat acc k current =
      let acc = if k >= min_iter then take max (acc @ current) else acc in
      if k >= upper then acc
      else repeat acc (k + 1) (cross max current body)
    in
    repeat [] 0 [ [] ]

let traces ?(max_traces = 1000) t = traces_of_body max_traces t.in_body
