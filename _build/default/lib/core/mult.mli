(** Multiplicities ([lower .. upper]) of properties and parameters. *)

type bound =
  | Bounded of int
  | Unbounded  (** the UML "*" upper bound *)
[@@deriving eq, ord, show]

type t = {
  lower : int;
  upper : bound;
}
[@@deriving eq, ord, show]

val make : int -> bound -> t
(** [make lower upper] builds a multiplicity.
    @raise Invalid_argument if [lower < 0], or [upper = Bounded n] with
    [n < lower]. *)

val one : t
(** [1..1] — the default multiplicity. *)

val optional : t
(** [0..1]. *)

val many : t
(** [0..*]. *)

val at_least_one : t
(** [1..*]. *)

val is_valid : t -> bool
(** Well-formedness: [0 <= lower] and [lower <= upper]. *)

val admits : t -> int -> bool
(** [admits m n]: can a slot with multiplicity [m] hold [n] values? *)

val to_string : t -> string
(** E.g. ["1"], ["0..1"], ["0..*"], ["2..7"]. *)
