(** Well-formedness rules (WFR).

    A static checker over whole models, approximating the OMG
    superstructure constraints for the subset this kernel implements:
    reference resolution, namespace uniqueness, generalization
    compatibility and acyclicity, state machine topology, activity
    topology, interaction consistency, use-case include cycles, profile
    application typing, and diagram content resolution. *)

type severity =
  | Error
  | Warning

val equal_severity : severity -> severity -> bool
val compare_severity : severity -> severity -> int
val pp_severity : Format.formatter -> severity -> unit
val show_severity : severity -> string

type diagnostic = {
  diag_severity : severity;
  diag_rule : string;  (** stable rule identifier, e.g. ["SM-02"] *)
  diag_element : Ident.t option;  (** offending element, when known *)
  diag_message : string;
}
[@@deriving eq, show]

val check : Model.t -> diagnostic list
(** All diagnostics for the model, in deterministic order. *)

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

val is_valid : Model.t -> bool
(** No [Error]-severity diagnostics. *)

val to_string : diagnostic -> string
