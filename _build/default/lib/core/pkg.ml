type t = {
  pkg_id : Ident.t;
  pkg_name : string;
  pkg_owned : Ident.t list;
  pkg_subpackages : Ident.t list;
  pkg_imports : Ident.t list;
}
[@@deriving eq, ord, show]

let make ?id ?(owned = []) ?(subpackages = []) ?(imports = []) name =
  let pkg_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"pk" ()
  in
  {
    pkg_id;
    pkg_name = name;
    pkg_owned = owned;
    pkg_subpackages = subpackages;
    pkg_imports = imports;
  }

let add_owned p id = { p with pkg_owned = p.pkg_owned @ [ id ] }

let add_subpackage p id =
  { p with pkg_subpackages = p.pkg_subpackages @ [ id ] }

let add_import p id = { p with pkg_imports = p.pkg_imports @ [ id ] }

let qualified_name ~parents p =
  String.concat "::" (parents @ [ p.pkg_name ])
