type node_kind =
  | Node
  | Device
  | Execution_environment
[@@deriving eq, ord, show]

type node = {
  dn_id : Ident.t;
  dn_name : string;
  dn_kind : node_kind;
  dn_nested : Ident.t list;
}
[@@deriving eq, ord, show]

type artifact = {
  art_id : Ident.t;
  art_name : string;
  art_manifests : Ident.t list;
}
[@@deriving eq, ord, show]

type deployment = {
  dep_id : Ident.t;
  dep_artifact : Ident.t;
  dep_target : Ident.t;
}
[@@deriving eq, ord, show]

type communication_path = {
  cpath_id : Ident.t;
  cpath_ends : Ident.t * Ident.t;
}
[@@deriving eq, ord, show]

let fresh_or prefix = function
  | Some i -> i
  | None -> Ident.fresh ~prefix ()

let node ?id ?(kind = Node) ?(nested = []) name =
  { dn_id = fresh_or "nd" id; dn_name = name; dn_kind = kind;
    dn_nested = nested }

let artifact ?id ?(manifests = []) name =
  { art_id = fresh_or "ar" id; art_name = name; art_manifests = manifests }

let deploy ?id ~artifact ~target () =
  { dep_id = fresh_or "dp" id; dep_artifact = artifact; dep_target = target }

let communication_path ?id n1 n2 =
  { cpath_id = fresh_or "cm" id; cpath_ends = (n1, n2) }
