(** The 13 UML 2.0 diagram kinds.

    "UML 2.0 ... covers 13 diagram types to describe various structural,
    behavioral and physical aspects of a system."  A diagram here is a
    named view listing the element identifiers it shows. *)

type kind =
  | Class_diagram
  | Object_diagram
  | Package_diagram
  | Composite_structure_diagram
  | Component_diagram
  | Deployment_diagram
  | Use_case_diagram
  | Activity_diagram
  | State_machine_diagram
  | Sequence_diagram
  | Communication_diagram
  | Interaction_overview_diagram
  | Timing_diagram
[@@deriving eq, ord, show]

type aspect =
  | Structural
  | Behavioral
  | Physical
[@@deriving eq, ord, show]

type t = {
  dg_id : Ident.t;
  dg_name : string;
  dg_kind : kind;
  dg_elements : Ident.t list;  (** elements shown on the diagram *)
}
[@@deriving eq, ord, show]

val all_kinds : kind list
(** The 13 kinds, in specification order. *)

val kind_name : kind -> string
val aspect_of : kind -> aspect
val make : ?id:Ident.t -> ?elements:Ident.t list -> kind -> string -> t
