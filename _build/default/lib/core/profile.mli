(** Profiles: stereotypes with tagged values.

    "It must be tailored to be effectively applied to a certain domain
    ... using a UML profile that defines a relevant domain-specific UML
    subset with semantic extensions" — this module is the profile
    mechanism itself; the SoC and RT tailorings live in the [profiles]
    library. *)

type metaclass =
  | M_class
  | M_interface
  | M_component
  | M_port
  | M_property
  | M_operation
  | M_package
  | M_state_machine
  | M_state
  | M_transition
  | M_activity
  | M_action
  | M_node
  | M_artifact
  | M_connector
  | M_any  (** extension of every metaclass *)
[@@deriving eq, ord, show]

type tag_definition = {
  tag_name : string;
  tag_type : Dtype.t;
  tag_default : Vspec.t option;
}
[@@deriving eq, ord, show]

type stereotype = {
  ster_id : Ident.t;
  ster_name : string;
  ster_extends : metaclass list;  (** extended metaclasses *)
  ster_tags : tag_definition list;
}
[@@deriving eq, ord, show]

type t = {
  prof_id : Ident.t;
  prof_name : string;
  prof_stereotypes : stereotype list;
}
[@@deriving eq, ord, show]

(** A stereotype application attaches a stereotype (by id) to a model
    element (by id), with values for the stereotype's tags. *)
type application = {
  app_element : Ident.t;
  app_stereotype : Ident.t;
  app_values : (string * Vspec.t) list;
}
[@@deriving eq, ord, show]

val tag : ?default:Vspec.t -> string -> Dtype.t -> tag_definition

val stereotype : ?id:Ident.t -> ?extends:metaclass list ->
  ?tags:tag_definition list -> string -> stereotype

val make : ?id:Ident.t -> string -> stereotype list -> t

val apply : ?values:(string * Vspec.t) list -> stereotype:Ident.t ->
  element:Ident.t -> unit -> application

val find_stereotype : t -> string -> stereotype option

val tag_value : stereotype -> application -> string -> Vspec.t option
(** Value of a tag on an application, falling back to the tag's declared
    default. *)

val metaclass_name : metaclass -> string
