type bound =
  | Bounded of int
  | Unbounded
[@@deriving eq, ord, show]

type t = {
  lower : int;
  upper : bound;
}
[@@deriving eq, ord, show]

let is_valid m =
  m.lower >= 0
  &&
  match m.upper with
  | Bounded n -> n >= m.lower
  | Unbounded -> true

let make lower upper =
  let m = { lower; upper } in
  if not (is_valid m) then invalid_arg "Mult.make: lower/upper out of order";
  m

let one = { lower = 1; upper = Bounded 1 }
let optional = { lower = 0; upper = Bounded 1 }
let many = { lower = 0; upper = Unbounded }
let at_least_one = { lower = 1; upper = Unbounded }

let admits m n =
  n >= m.lower
  &&
  match m.upper with
  | Bounded u -> n <= u
  | Unbounded -> true

let to_string m =
  match m.upper with
  | Bounded u when u = m.lower -> string_of_int m.lower
  | Bounded u -> Printf.sprintf "%d..%d" m.lower u
  | Unbounded -> Printf.sprintf "%d..*" m.lower
