(** Interactions: Sequence-Diagram structure with UML 2.0 combined
    fragments (the MSC-comparable extension the paper highlights).

    An interaction owns lifelines and an ordered body of elements; an
    element is either a message or a combined fragment whose operands
    recursively contain bodies.  This tree captures weak sequencing the
    same way graphical nesting does. *)

type message_sort =
  | Synch_call
  | Asynch_call
  | Asynch_signal
  | Reply
  | Create_message
  | Delete_message
[@@deriving eq, ord, show]

type interaction_operator =
  | Alt
  | Opt
  | Loop of int * int option  (** min iterations, optional max *)
  | Par
  | Strict
  | Seq  (** weak sequencing *)
  | Break
  | Critical
  | Neg
  | Assert
  | Ignore of string list
  | Consider of string list
[@@deriving eq, ord, show]

type lifeline = {
  ll_id : Ident.t;
  ll_name : string;
  ll_represents : Ident.t option;  (** classifier or part represented *)
}
[@@deriving eq, ord, show]

type message = {
  msg_id : Ident.t;
  msg_name : string;
  msg_sort : message_sort;
  msg_from : Ident.t;  (** sending lifeline *)
  msg_to : Ident.t;  (** receiving lifeline *)
  msg_arguments : Vspec.t list;
}
[@@deriving eq, ord, show]

type element =
  | Message of message
  | Fragment of fragment

and fragment = {
  fr_id : Ident.t;
  fr_operator : interaction_operator;
  fr_operands : operand list;
}

and operand = {
  opnd_id : Ident.t;
  opnd_guard : string option;  (** ASL boolean expression *)
  opnd_body : element list;
}
[@@deriving eq, ord, show]

type t = {
  in_id : Ident.t;
  in_name : string;
  in_lifelines : lifeline list;
  in_body : element list;
}
[@@deriving eq, ord, show]

val lifeline : ?id:Ident.t -> ?represents:Ident.t -> string -> lifeline

val message : ?id:Ident.t -> ?sort:message_sort -> ?arguments:Vspec.t list ->
  from_:Ident.t -> to_:Ident.t -> string -> message

val fragment : ?id:Ident.t -> interaction_operator -> operand list -> fragment
val operand : ?id:Ident.t -> ?guard:string -> element list -> operand
val make : ?id:Ident.t -> string -> lifeline list -> element list -> t

val all_messages : t -> message list
(** Every message in document order, descending into fragments. *)

val message_count : t -> int

val communication_pairs : t -> (string * string * int) list
(** The Communication-Diagram view of the interaction: (sender lifeline
    name, receiver lifeline name, message count) per connected pair,
    first-occurrence order.  Counts every message occurrence, inside
    fragments too. *)

val traces : ?max_traces:int -> t -> message list list
(** Enumerate the possible message orderings (traces) of the interaction
    under strict sequencing of bodies: [Alt] contributes one trace set
    per operand, [Opt] contributes the empty trace too, [Par]
    interleaves, [Loop (min, max)] repeats.  Guards are ignored (they
    need an environment).  The result is truncated to [max_traces]
    (default 1000) to bound combinatorial explosion. *)
