(** Value specifications.

    UML value specifications cover literals and opaque expressions.
    Opaque expressions hold concrete syntax (here: ASL source text) that
    is only given meaning by an execution engine, mirroring UML's
    [OpaqueExpression]. *)

type t =
  | Int_literal of int
  | Real_literal of float
  | Bool_literal of bool
  | String_literal of string
  | Enum_literal of string  (** literal name of an enumeration *)
  | Null_literal
  | Opaque_expression of string  (** ASL concrete syntax *)
[@@deriving eq, ord, show]

val to_string : t -> string
(** Human-readable rendering used by diagnostics and code generators. *)

val of_int : int -> t
val of_bool : bool -> t
val of_string_value : string -> t
