type node =
  | Action of action
  | Call_behavior of call_behavior
  | Send_signal of event_action
  | Accept_event of event_action
  | Object_node of object_node
  | Initial_node of node_head
  | Activity_final of node_head
  | Flow_final of node_head
  | Fork_node of node_head
  | Join_node of node_head
  | Decision_node of node_head
  | Merge_node of node_head

and node_head = {
  nd_id : Ident.t;
  nd_name : string;
}

and action = {
  act_head : node_head;
  act_body : string option;
}

and call_behavior = {
  cb_head : node_head;
  cb_behavior : Ident.t;
}

and event_action = {
  ev_head : node_head;
  ev_event : string;
}

and object_node = {
  on_head : node_head;
  on_type : Dtype.t;
  on_upper_bound : int option;
}
[@@deriving eq, ord, show]

type edge_kind =
  | Control_flow
  | Object_flow
[@@deriving eq, ord, show]

type edge = {
  ed_id : Ident.t;
  ed_source : Ident.t;
  ed_target : Ident.t;
  ed_guard : string option;
  ed_weight : int;
  ed_kind : edge_kind;
}
[@@deriving eq, ord, show]

type t = {
  ac_id : Ident.t;
  ac_name : string;
  ac_nodes : node list;
  ac_edges : edge list;
  ac_context : Ident.t option;
}
[@@deriving eq, ord, show]

let node_head = function
  | Action a -> a.act_head
  | Call_behavior c -> c.cb_head
  | Send_signal e | Accept_event e -> e.ev_head
  | Object_node o -> o.on_head
  | Initial_node h
  | Activity_final h
  | Flow_final h
  | Fork_node h
  | Join_node h
  | Decision_node h
  | Merge_node h ->
    h

let node_id n = (node_head n).nd_id
let node_name n = (node_head n).nd_name

let head ?id name =
  let nd_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"an" ()
  in
  { nd_id; nd_name = name }

let action ?id ?body name = Action { act_head = head ?id name; act_body = body }

let call_behavior ?id ~behavior name =
  Call_behavior { cb_head = head ?id name; cb_behavior = behavior }

let send_signal ?id ~event name =
  Send_signal { ev_head = head ?id name; ev_event = event }

let accept_event ?id ~event name =
  Accept_event { ev_head = head ?id name; ev_event = event }

let object_node ?id ?upper_bound name ty =
  Object_node
    { on_head = head ?id name; on_type = ty; on_upper_bound = upper_bound }

let initial ?id () = Initial_node (head ?id "initial")
let activity_final ?id () = Activity_final (head ?id "final")
let flow_final ?id () = Flow_final (head ?id "flow_final")
let fork ?id name = Fork_node (head ?id name)
let join ?id name = Join_node (head ?id name)
let decision ?id name = Decision_node (head ?id name)
let merge ?id name = Merge_node (head ?id name)

let edge ?id ?guard ?(weight = 1) ?(kind = Control_flow) ~source ~target () =
  let ed_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"ae" ()
  in
  {
    ed_id;
    ed_source = source;
    ed_target = target;
    ed_guard = guard;
    ed_weight = weight;
    ed_kind = kind;
  }

let make ?id ?context name nodes edges =
  let ac_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"ac" ()
  in
  { ac_id; ac_name = name; ac_nodes = nodes; ac_edges = edges;
    ac_context = context }

let find_node t id =
  List.find_opt (fun n -> Ident.equal (node_id n) id) t.ac_nodes

let incoming t id =
  List.filter (fun e -> Ident.equal e.ed_target id) t.ac_edges

let outgoing t id =
  List.filter (fun e -> Ident.equal e.ed_source id) t.ac_edges
