type metaclass =
  | M_class
  | M_interface
  | M_component
  | M_port
  | M_property
  | M_operation
  | M_package
  | M_state_machine
  | M_state
  | M_transition
  | M_activity
  | M_action
  | M_node
  | M_artifact
  | M_connector
  | M_any
[@@deriving eq, ord, show]

type tag_definition = {
  tag_name : string;
  tag_type : Dtype.t;
  tag_default : Vspec.t option;
}
[@@deriving eq, ord, show]

type stereotype = {
  ster_id : Ident.t;
  ster_name : string;
  ster_extends : metaclass list;
  ster_tags : tag_definition list;
}
[@@deriving eq, ord, show]

type t = {
  prof_id : Ident.t;
  prof_name : string;
  prof_stereotypes : stereotype list;
}
[@@deriving eq, ord, show]

type application = {
  app_element : Ident.t;
  app_stereotype : Ident.t;
  app_values : (string * Vspec.t) list;
}
[@@deriving eq, ord, show]

let tag ?default name ty =
  { tag_name = name; tag_type = ty; tag_default = default }

let stereotype ?id ?(extends = [ M_any ]) ?(tags = []) name =
  let ster_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"ste" ()
  in
  { ster_id; ster_name = name; ster_extends = extends; ster_tags = tags }

let make ?id name stereotypes =
  let prof_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"prf" ()
  in
  { prof_id; prof_name = name; prof_stereotypes = stereotypes }

let apply ?(values = []) ~stereotype ~element () =
  { app_element = element; app_stereotype = stereotype; app_values = values }

let find_stereotype p name =
  List.find_opt (fun s -> s.ster_name = name) p.prof_stereotypes

let tag_value ster app name =
  match List.assoc_opt name app.app_values with
  | Some v -> Some v
  | None -> (
    match List.find_opt (fun t -> t.tag_name = name) ster.ster_tags with
    | Some t -> t.tag_default
    | None -> None)

let metaclass_name = function
  | M_class -> "Class"
  | M_interface -> "Interface"
  | M_component -> "Component"
  | M_port -> "Port"
  | M_property -> "Property"
  | M_operation -> "Operation"
  | M_package -> "Package"
  | M_state_machine -> "StateMachine"
  | M_state -> "State"
  | M_transition -> "Transition"
  | M_activity -> "Activity"
  | M_action -> "Action"
  | M_node -> "Node"
  | M_artifact -> "Artifact"
  | M_connector -> "Connector"
  | M_any -> "Element"
