type t =
  | Boolean
  | Integer
  | Real
  | Unlimited_natural
  | String_type
  | Ref of Ident.t
  | Void
[@@deriving eq, ord, show]

let to_string = function
  | Boolean -> "Boolean"
  | Integer -> "Integer"
  | Real -> "Real"
  | Unlimited_natural -> "UnlimitedNatural"
  | String_type -> "String"
  | Ref id -> Ident.to_string id
  | Void -> "void"

let is_primitive = function
  | Boolean | Integer | Real | Unlimited_natural | String_type -> true
  | Ref _ | Void -> false
