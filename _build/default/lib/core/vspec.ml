type t =
  | Int_literal of int
  | Real_literal of float
  | Bool_literal of bool
  | String_literal of string
  | Enum_literal of string
  | Null_literal
  | Opaque_expression of string
[@@deriving eq, ord, show]

let to_string = function
  | Int_literal i -> string_of_int i
  | Real_literal r -> string_of_float r
  | Bool_literal b -> string_of_bool b
  | String_literal s -> Printf.sprintf "%S" s
  | Enum_literal s -> s
  | Null_literal -> "null"
  | Opaque_expression e -> e

let of_int i = Int_literal i
let of_bool b = Bool_literal b
let of_string_value s = String_literal s
