(** Use cases and actors (Use Case Diagrams).

    The paper notes that behavioral specification "at the highest level
    often starts by the identification of the use cases ... in terms of
    involved actors". *)

type t = {
  uc_id : Ident.t;
  uc_name : string;
  uc_subject : Ident.t option;  (** the classifier the use case applies to *)
  uc_actors : Ident.t list;  (** associated actors *)
  uc_includes : Ident.t list;  (** included use cases *)
  uc_extends : extend list;
}

and extend = {
  ext_extended : Ident.t;  (** the use case being extended *)
  ext_condition : string option;  (** ASL boolean condition *)
}
[@@deriving eq, ord, show]

val make :
  ?id:Ident.t ->
  ?subject:Ident.t ->
  ?actors:Ident.t list ->
  ?includes:Ident.t list ->
  ?extends:extend list ->
  string ->
  t

val extend : ?condition:string -> Ident.t -> extend

val include_closure : all:t list -> t -> Ident.Set.t
(** Transitive closure of the include relation starting at the given use
    case (excluding itself unless cyclic); used by well-formedness checks
    to detect include cycles. *)
