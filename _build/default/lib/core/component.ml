type port = {
  port_id : Ident.t;
  port_name : string;
  port_provided : Ident.t list;
  port_required : Ident.t list;
  port_is_behavior : bool;
}
[@@deriving eq, ord, show]

type part = {
  part_id : Ident.t;
  part_name : string;
  part_type : Ident.t;
  part_mult : Mult.t;
}
[@@deriving eq, ord, show]

type connector_end = {
  cend_part : Ident.t option;
  cend_port : Ident.t;
}
[@@deriving eq, ord, show]

type connector_kind =
  | Assembly
  | Delegation
[@@deriving eq, ord, show]

type connector = {
  conn_id : Ident.t;
  conn_name : string;
  conn_kind : connector_kind;
  conn_ends : connector_end list;
}
[@@deriving eq, ord, show]

type t = {
  cmp_id : Ident.t;
  cmp_name : string;
  cmp_ports : port list;
  cmp_parts : part list;
  cmp_connectors : connector list;
  cmp_realizations : Ident.t list;
  cmp_behaviors : Ident.t list;
}
[@@deriving eq, ord, show]

let fresh_or prefix = function
  | Some i -> i
  | None -> Ident.fresh ~prefix ()

let port ?id ?(provided = []) ?(required = []) ?(is_behavior = false) name =
  {
    port_id = fresh_or "po" id;
    port_name = name;
    port_provided = provided;
    port_required = required;
    port_is_behavior = is_behavior;
  }

let part ?id ?(mult = Mult.one) name ty =
  { part_id = fresh_or "pt" id; part_name = name; part_type = ty;
    part_mult = mult }

let assembly ?id ?(name = "") ~from_ ~to_ () =
  let (p1, po1), (p2, po2) = from_, to_ in
  {
    conn_id = fresh_or "cn" id;
    conn_name = name;
    conn_kind = Assembly;
    conn_ends =
      [ { cend_part = p1; cend_port = po1 };
        { cend_part = p2; cend_port = po2 } ];
  }

let delegation ?id ?(name = "") ~outer ~inner () =
  let pi, poi = inner in
  {
    conn_id = fresh_or "cn" id;
    conn_name = name;
    conn_kind = Delegation;
    conn_ends =
      [ { cend_part = None; cend_port = outer };
        { cend_part = pi; cend_port = poi } ];
  }

let make ?id ?(ports = []) ?(parts = []) ?(connectors = [])
    ?(realizations = []) ?(behaviors = []) name =
  {
    cmp_id = fresh_or "cp" id;
    cmp_name = name;
    cmp_ports = ports;
    cmp_parts = parts;
    cmp_connectors = connectors;
    cmp_realizations = realizations;
    cmp_behaviors = behaviors;
  }

let find_port c name = List.find_opt (fun p -> p.port_name = name) c.cmp_ports
let find_part c name = List.find_opt (fun p -> p.part_name = name) c.cmp_parts

let dedup ids =
  let add (seen, acc) id =
    if Ident.Set.mem id seen then (seen, acc)
    else (Ident.Set.add id seen, id :: acc)
  in
  let _, acc = List.fold_left add (Ident.Set.empty, []) ids in
  List.rev acc

let provided_interfaces c =
  dedup (List.concat_map (fun p -> p.port_provided) c.cmp_ports)

let required_interfaces c =
  dedup (List.concat_map (fun p -> p.port_required) c.cmp_ports)
