type pseudostate_kind =
  | Initial
  | Deep_history
  | Shallow_history
  | Join
  | Fork
  | Junction
  | Choice
  | Entry_point
  | Exit_point
  | Terminate
[@@deriving eq, ord, show]

type trigger =
  | Signal_trigger of string
  | Time_trigger of int
  | Any_trigger
  | Completion
[@@deriving eq, ord, show]

type transition_kind =
  | External
  | Internal
  | Local
[@@deriving eq, ord, show]

type vertex =
  | State of state
  | Pseudo of pseudostate
  | Final of final_state

and state = {
  st_id : Ident.t;
  st_name : string;
  st_regions : region list;
  st_entry : string option;
  st_exit : string option;
  st_do : string option;
  st_deferred : trigger list;
}

and pseudostate = {
  ps_id : Ident.t;
  ps_name : string;
  ps_kind : pseudostate_kind;
}

and final_state = {
  fs_id : Ident.t;
  fs_name : string;
}

and region = {
  rg_id : Ident.t;
  rg_name : string;
  rg_vertices : vertex list;
  rg_transitions : transition list;
}

and transition = {
  tr_id : Ident.t;
  tr_source : Ident.t;
  tr_target : Ident.t;
  tr_triggers : trigger list;
  tr_guard : string option;
  tr_effect : string option;
  tr_kind : transition_kind;
}
[@@deriving eq, ord, show]

type t = {
  sm_id : Ident.t;
  sm_name : string;
  sm_regions : region list;
  sm_context : Ident.t option;
}
[@@deriving eq, ord, show]

let vertex_id = function
  | State s -> s.st_id
  | Pseudo p -> p.ps_id
  | Final f -> f.fs_id

let vertex_name = function
  | State s -> s.st_name
  | Pseudo p -> p.ps_name
  | Final f -> f.fs_name

let fresh_or prefix = function
  | Some i -> i
  | None -> Ident.fresh ~prefix ()

let simple_state ?id ?entry ?exit_ ?do_ ?(deferred = []) name =
  {
    st_id = fresh_or "st" id;
    st_name = name;
    st_regions = [];
    st_entry = entry;
    st_exit = exit_;
    st_do = do_;
    st_deferred = deferred;
  }

let composite_state ?id ?entry ?exit_ ?do_ ?(deferred = []) name regions =
  {
    st_id = fresh_or "st" id;
    st_name = name;
    st_regions = regions;
    st_entry = entry;
    st_exit = exit_;
    st_do = do_;
    st_deferred = deferred;
  }

let pseudostate ?id ?(name = "") kind =
  { ps_id = fresh_or "ps" id; ps_name = name; ps_kind = kind }

let final ?id ?(name = "final") () =
  { fs_id = fresh_or "fs" id; fs_name = name }

let transition ?id ?(triggers = []) ?guard ?effect ?(kind = External) ~source
    ~target () =
  {
    tr_id = fresh_or "tr" id;
    tr_source = source;
    tr_target = target;
    tr_triggers = triggers;
    tr_guard = guard;
    tr_effect = effect;
    tr_kind = kind;
  }

let region ?id ?(name = "") vertices transitions =
  {
    rg_id = fresh_or "rg" id;
    rg_name = name;
    rg_vertices = vertices;
    rg_transitions = transitions;
  }

let make ?id ?context name regions =
  {
    sm_id = fresh_or "sm" id;
    sm_name = name;
    sm_regions = regions;
    sm_context = context;
  }

(* Preorder traversals over the region tree.  Accumulators are built in
   reverse and flipped once, keeping everything tail-recursive for deep
   machines. *)

let rec fold_region_vertices acc r =
  List.fold_left fold_vertex acc r.rg_vertices

and fold_vertex acc v =
  let acc = v :: acc in
  match v with
  | State s -> List.fold_left fold_region_vertices acc s.st_regions
  | Pseudo _ | Final _ -> acc

let all_vertices sm =
  List.rev (List.fold_left fold_region_vertices [] sm.sm_regions)

let rec fold_region_transitions acc r =
  let acc = List.rev_append r.rg_transitions acc in
  let fold_v acc v =
    match v with
    | State s -> List.fold_left fold_region_transitions acc s.st_regions
    | Pseudo _ | Final _ -> acc
  in
  List.fold_left fold_v acc r.rg_vertices

let all_transitions sm =
  List.rev (List.fold_left fold_region_transitions [] sm.sm_regions)

let rec fold_regions acc r =
  let acc = r :: acc in
  let fold_v acc v =
    match v with
    | State s -> List.fold_left fold_regions acc s.st_regions
    | Pseudo _ | Final _ -> acc
  in
  List.fold_left fold_v acc r.rg_vertices

let all_regions sm = List.rev (List.fold_left fold_regions [] sm.sm_regions)

let find_vertex sm id =
  List.find_opt (fun v -> Ident.equal (vertex_id v) id) (all_vertices sm)

let is_composite s = s.st_regions <> []
let is_orthogonal s = List.length s.st_regions >= 2
