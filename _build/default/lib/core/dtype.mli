(** Type references.

    A type reference either designates one of the UML primitive types or
    points (by identifier) to a classifier owned by the model
    (class, data type, enumeration, interface, signal). *)

type t =
  | Boolean
  | Integer
  | Real
  | Unlimited_natural
  | String_type
  | Ref of Ident.t  (** reference to a model classifier *)
  | Void  (** absence of a type (e.g. operation without result) *)
[@@deriving eq, ord, show]

val to_string : t -> string
(** Primitive type name, or the raw identifier for [Ref]. *)

val is_primitive : t -> bool
