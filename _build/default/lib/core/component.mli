(** Components and composite structure (Component Diagrams).

    Components expose provided/required interfaces through ports and are
    assembled from parts wired by connectors — the structural model the
    paper equates with IP cores ("software components and IP cores"). *)

type port = {
  port_id : Ident.t;
  port_name : string;
  port_provided : Ident.t list;  (** provided interfaces *)
  port_required : Ident.t list;  (** required interfaces *)
  port_is_behavior : bool;  (** behavior port: wired to the owner itself *)
}
[@@deriving eq, ord, show]

type part = {
  part_id : Ident.t;
  part_name : string;
  part_type : Ident.t;  (** component or class typing this part *)
  part_mult : Mult.t;
}
[@@deriving eq, ord, show]

type connector_end = {
  cend_part : Ident.t option;  (** [None]: the containing component itself *)
  cend_port : Ident.t;
}
[@@deriving eq, ord, show]

type connector_kind =
  | Assembly
  | Delegation
[@@deriving eq, ord, show]

type connector = {
  conn_id : Ident.t;
  conn_name : string;
  conn_kind : connector_kind;
  conn_ends : connector_end list;  (** exactly two ends *)
}
[@@deriving eq, ord, show]

type t = {
  cmp_id : Ident.t;
  cmp_name : string;
  cmp_ports : port list;
  cmp_parts : part list;
  cmp_connectors : connector list;
  cmp_realizations : Ident.t list;  (** realizing classifiers *)
  cmp_behaviors : Ident.t list;  (** owned state machines / activities *)
}
[@@deriving eq, ord, show]

val port : ?id:Ident.t -> ?provided:Ident.t list -> ?required:Ident.t list ->
  ?is_behavior:bool -> string -> port

val part : ?id:Ident.t -> ?mult:Mult.t -> string -> Ident.t -> part

val assembly : ?id:Ident.t -> ?name:string ->
  from_:Ident.t option * Ident.t -> to_:Ident.t option * Ident.t -> unit ->
  connector
(** Assembly connector between [(part, port)] pairs. *)

val delegation : ?id:Ident.t -> ?name:string ->
  outer:Ident.t -> inner:Ident.t option * Ident.t -> unit -> connector
(** Delegation from an outer (component-level) port to an inner part
    port. *)

val make : ?id:Ident.t -> ?ports:port list -> ?parts:part list ->
  ?connectors:connector list -> ?realizations:Ident.t list ->
  ?behaviors:Ident.t list -> string -> t

val find_port : t -> string -> port option
val find_part : t -> string -> part option

val provided_interfaces : t -> Ident.t list
(** Union of interfaces provided by all ports (duplicates removed,
    first-seen order). *)

val required_interfaces : t -> Ident.t list
