type t = {
  uc_id : Ident.t;
  uc_name : string;
  uc_subject : Ident.t option;
  uc_actors : Ident.t list;
  uc_includes : Ident.t list;
  uc_extends : extend list;
}

and extend = {
  ext_extended : Ident.t;
  ext_condition : string option;
}
[@@deriving eq, ord, show]

let make ?id ?subject ?(actors = []) ?(includes = []) ?(extends = []) name =
  let uc_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"uc" ()
  in
  {
    uc_id;
    uc_name = name;
    uc_subject = subject;
    uc_actors = actors;
    uc_includes = includes;
    uc_extends = extends;
  }

let extend ?condition extended = { ext_extended = extended; ext_condition = condition }

let include_closure ~all uc =
  let find id = List.find_opt (fun u -> Ident.equal u.uc_id id) all in
  let rec visit seen id =
    if Ident.Set.mem id seen then seen
    else
      let seen = Ident.Set.add id seen in
      match find id with
      | None -> seen
      | Some u -> List.fold_left visit seen u.uc_includes
  in
  List.fold_left visit Ident.Set.empty uc.uc_includes
