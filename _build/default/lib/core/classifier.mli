(** Classifiers: classes, interfaces, data types, enumerations, signals.

    This module covers the structural backbone surveyed by the paper's
    Class Diagram discussion: classes with attributes and operations,
    interfaces, generalization hierarchies, and binary (or n-ary)
    associations. *)

type visibility =
  | Public
  | Private
  | Protected
  | Package_visibility
[@@deriving eq, ord, show]

type direction =
  | In
  | Out
  | Inout
  | Return
[@@deriving eq, ord, show]

type aggregation =
  | No_aggregation
  | Shared
  | Composite
[@@deriving eq, ord, show]

type property = {
  prop_id : Ident.t;
  prop_name : string;
  prop_type : Dtype.t;
  prop_mult : Mult.t;
  prop_default : Vspec.t option;
  prop_visibility : visibility;
  prop_is_static : bool;
  prop_is_read_only : bool;
  prop_aggregation : aggregation;
}
[@@deriving eq, ord, show]

type parameter = {
  param_id : Ident.t;
  param_name : string;
  param_type : Dtype.t;
  param_direction : direction;
  param_default : Vspec.t option;
}
[@@deriving eq, ord, show]

type operation = {
  op_id : Ident.t;
  op_name : string;
  op_params : parameter list;
  op_visibility : visibility;
  op_is_query : bool;
  op_is_abstract : bool;
  op_body : string option;  (** ASL source of the method body *)
}
[@@deriving eq, ord, show]

type reception = {
  recv_id : Ident.t;
  recv_signal : Ident.t;  (** the received signal classifier *)
}
[@@deriving eq, ord, show]

type kind =
  | Class
  | Interface
  | Data_type
  | Primitive_type
  | Enumeration of string list  (** ordered literal names *)
  | Signal
  | Actor_kind  (** actors are classifiers in UML *)
[@@deriving eq, ord, show]

type t = {
  cl_id : Ident.t;
  cl_name : string;
  cl_kind : kind;
  cl_is_abstract : bool;
  cl_is_active : bool;  (** active classes own a classifier behavior *)
  cl_attributes : property list;
  cl_operations : operation list;
  cl_receptions : reception list;
  cl_generals : Ident.t list;  (** generalization targets *)
  cl_realized : Ident.t list;  (** realized interfaces *)
  cl_behaviors : Ident.t list;  (** owned state machines / activities *)
}
[@@deriving eq, ord, show]

type association_end = {
  end_property : property;
  end_navigable : bool;
}
[@@deriving eq, ord, show]

type association = {
  assoc_id : Ident.t;
  assoc_name : string;
  assoc_ends : association_end list;  (** two or more ends *)
}
[@@deriving eq, ord, show]

val make :
  ?id:Ident.t ->
  ?kind:kind ->
  ?is_abstract:bool ->
  ?is_active:bool ->
  ?attributes:property list ->
  ?operations:operation list ->
  ?receptions:reception list ->
  ?generals:Ident.t list ->
  ?realized:Ident.t list ->
  ?behaviors:Ident.t list ->
  string ->
  t
(** [make name] builds a concrete class named [name]; optional arguments
    override each field. *)

val property :
  ?id:Ident.t ->
  ?mult:Mult.t ->
  ?default:Vspec.t ->
  ?visibility:visibility ->
  ?is_static:bool ->
  ?is_read_only:bool ->
  ?aggregation:aggregation ->
  string ->
  Dtype.t ->
  property
(** [property name ty] builds an attribute. *)

val parameter :
  ?id:Ident.t ->
  ?direction:direction ->
  ?default:Vspec.t ->
  string ->
  Dtype.t ->
  parameter

val operation :
  ?id:Ident.t ->
  ?params:parameter list ->
  ?visibility:visibility ->
  ?is_query:bool ->
  ?is_abstract:bool ->
  ?body:string ->
  string ->
  operation

val binary_association :
  ?id:Ident.t ->
  ?name:string ->
  source:Ident.t * Mult.t * bool ->
  target:Ident.t * Mult.t * bool ->
  unit ->
  association
(** [binary_association ~source:(cl, mult, navigable) ~target:... ()]
    builds a binary association between two classifiers; the end property
    types are [Dtype.Ref] to the given classifier identifiers. *)

val result_type : operation -> Dtype.t
(** Type of the [Return] parameter, or [Dtype.Void] if none. *)

val find_operation : t -> string -> operation option
val find_attribute : t -> string -> property option
