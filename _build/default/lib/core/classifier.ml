type visibility =
  | Public
  | Private
  | Protected
  | Package_visibility
[@@deriving eq, ord, show]

type direction =
  | In
  | Out
  | Inout
  | Return
[@@deriving eq, ord, show]

type aggregation =
  | No_aggregation
  | Shared
  | Composite
[@@deriving eq, ord, show]

type property = {
  prop_id : Ident.t;
  prop_name : string;
  prop_type : Dtype.t;
  prop_mult : Mult.t;
  prop_default : Vspec.t option;
  prop_visibility : visibility;
  prop_is_static : bool;
  prop_is_read_only : bool;
  prop_aggregation : aggregation;
}
[@@deriving eq, ord, show]

type parameter = {
  param_id : Ident.t;
  param_name : string;
  param_type : Dtype.t;
  param_direction : direction;
  param_default : Vspec.t option;
}
[@@deriving eq, ord, show]

type operation = {
  op_id : Ident.t;
  op_name : string;
  op_params : parameter list;
  op_visibility : visibility;
  op_is_query : bool;
  op_is_abstract : bool;
  op_body : string option;
}
[@@deriving eq, ord, show]

type reception = {
  recv_id : Ident.t;
  recv_signal : Ident.t;
}
[@@deriving eq, ord, show]

type kind =
  | Class
  | Interface
  | Data_type
  | Primitive_type
  | Enumeration of string list
  | Signal
  | Actor_kind
[@@deriving eq, ord, show]

type t = {
  cl_id : Ident.t;
  cl_name : string;
  cl_kind : kind;
  cl_is_abstract : bool;
  cl_is_active : bool;
  cl_attributes : property list;
  cl_operations : operation list;
  cl_receptions : reception list;
  cl_generals : Ident.t list;
  cl_realized : Ident.t list;
  cl_behaviors : Ident.t list;
}
[@@deriving eq, ord, show]

type association_end = {
  end_property : property;
  end_navigable : bool;
}
[@@deriving eq, ord, show]

type association = {
  assoc_id : Ident.t;
  assoc_name : string;
  assoc_ends : association_end list;
}
[@@deriving eq, ord, show]

let make ?id ?(kind = Class) ?(is_abstract = false) ?(is_active = false)
    ?(attributes = []) ?(operations = []) ?(receptions = []) ?(generals = [])
    ?(realized = []) ?(behaviors = []) name =
  let cl_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"cl" ()
  in
  {
    cl_id;
    cl_name = name;
    cl_kind = kind;
    cl_is_abstract = is_abstract;
    cl_is_active = is_active;
    cl_attributes = attributes;
    cl_operations = operations;
    cl_receptions = receptions;
    cl_generals = generals;
    cl_realized = realized;
    cl_behaviors = behaviors;
  }

let property ?id ?(mult = Mult.one) ?default ?(visibility = Public)
    ?(is_static = false) ?(is_read_only = false)
    ?(aggregation = No_aggregation) name ty =
  let prop_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"pr" ()
  in
  {
    prop_id;
    prop_name = name;
    prop_type = ty;
    prop_mult = mult;
    prop_default = default;
    prop_visibility = visibility;
    prop_is_static = is_static;
    prop_is_read_only = is_read_only;
    prop_aggregation = aggregation;
  }

let parameter ?id ?(direction = In) ?default name ty =
  let param_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"pa" ()
  in
  {
    param_id;
    param_name = name;
    param_type = ty;
    param_direction = direction;
    param_default = default;
  }

let operation ?id ?(params = []) ?(visibility = Public) ?(is_query = false)
    ?(is_abstract = false) ?body name =
  let op_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"op" ()
  in
  {
    op_id;
    op_name = name;
    op_params = params;
    op_visibility = visibility;
    op_is_query = is_query;
    op_is_abstract = is_abstract;
    op_body = body;
  }

let binary_association ?id ?(name = "") ~source ~target () =
  let assoc_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"as" ()
  in
  let make_end (cl, mult, navigable) label =
    let p = property ~mult label (Dtype.Ref cl) in
    { end_property = p; end_navigable = navigable }
  in
  {
    assoc_id;
    assoc_name = name;
    assoc_ends = [ make_end source "source"; make_end target "target" ];
  }

let result_type op =
  let is_return p = p.param_direction = Return in
  match List.find_opt is_return op.op_params with
  | Some p -> p.param_type
  | None -> Dtype.Void

let find_operation cl name =
  List.find_opt (fun op -> op.op_name = name) cl.cl_operations

let find_attribute cl name =
  List.find_opt (fun p -> p.prop_name = name) cl.cl_attributes
