(** Packages: namespaces composing model elements (Package Diagrams).

    A package owns elements by identifier and may nest sub-packages and
    import other packages, as surveyed in the paper's Package Diagram
    paragraph. *)

type t = {
  pkg_id : Ident.t;
  pkg_name : string;
  pkg_owned : Ident.t list;  (** identifiers of owned model elements *)
  pkg_subpackages : Ident.t list;
  pkg_imports : Ident.t list;  (** imported packages *)
}
[@@deriving eq, ord, show]

val make :
  ?id:Ident.t ->
  ?owned:Ident.t list ->
  ?subpackages:Ident.t list ->
  ?imports:Ident.t list ->
  string ->
  t

val add_owned : t -> Ident.t -> t
val add_subpackage : t -> Ident.t -> t
val add_import : t -> Ident.t -> t

val qualified_name : parents:string list -> t -> string
(** ["A::B::C"]-style qualified name given ancestor package names. *)
