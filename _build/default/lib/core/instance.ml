type slot = {
  slot_feature : string;
  slot_values : Vspec.t list;
}
[@@deriving eq, ord, show]

type t = {
  inst_id : Ident.t;
  inst_name : string;
  inst_classifier : Ident.t option;
  inst_slots : slot list;
}
[@@deriving eq, ord, show]

type link = {
  link_id : Ident.t;
  link_association : Ident.t option;
  link_ends : Ident.t * Ident.t;
}
[@@deriving eq, ord, show]

let make ?id ?classifier ?(slots = []) name =
  let inst_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"is" ()
  in
  { inst_id; inst_name = name; inst_classifier = classifier;
    inst_slots = slots }

let slot feature values = { slot_feature = feature; slot_values = values }

let link ?id ?association e1 e2 =
  let link_id =
    match id with
    | Some i -> i
    | None -> Ident.fresh ~prefix:"lk" ()
  in
  { link_id; link_association = association; link_ends = (e1, e2) }

let slot_value inst feature =
  match List.find_opt (fun s -> s.slot_feature = feature) inst.inst_slots with
  | Some { slot_values = v :: _; _ } -> Some v
  | Some { slot_values = []; _ } | None -> None

let conforms_to inst cl =
  let slot_ok s =
    match Classifier.find_attribute cl s.slot_feature with
    | None -> false
    | Some attr -> Mult.admits attr.Classifier.prop_mult (List.length s.slot_values)
  in
  List.for_all slot_ok inst.inst_slots
