(** Deployments: nodes, artifacts and their mapping (Deployment
    Diagrams), describing the "physical deployment of a system". *)

type node_kind =
  | Node
  | Device
  | Execution_environment
[@@deriving eq, ord, show]

type node = {
  dn_id : Ident.t;
  dn_name : string;
  dn_kind : node_kind;
  dn_nested : Ident.t list;  (** nested nodes *)
}
[@@deriving eq, ord, show]

type artifact = {
  art_id : Ident.t;
  art_name : string;
  art_manifests : Ident.t list;  (** model elements this artifact embodies *)
}
[@@deriving eq, ord, show]

type deployment = {
  dep_id : Ident.t;
  dep_artifact : Ident.t;
  dep_target : Ident.t;  (** deployment target node *)
}
[@@deriving eq, ord, show]

type communication_path = {
  cpath_id : Ident.t;
  cpath_ends : Ident.t * Ident.t;  (** connected nodes *)
}
[@@deriving eq, ord, show]

val node : ?id:Ident.t -> ?kind:node_kind -> ?nested:Ident.t list -> string ->
  node

val artifact : ?id:Ident.t -> ?manifests:Ident.t list -> string -> artifact
val deploy : ?id:Ident.t -> artifact:Ident.t -> target:Ident.t -> unit ->
  deployment

val communication_path : ?id:Ident.t -> Ident.t -> Ident.t ->
  communication_path
