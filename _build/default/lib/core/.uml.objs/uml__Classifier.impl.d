lib/core/classifier.pp.ml: Dtype Ident List Mult Ppx_deriving_runtime Vspec
