lib/core/diagram.pp.mli: Ident Ppx_deriving_runtime
