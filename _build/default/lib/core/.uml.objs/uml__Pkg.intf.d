lib/core/pkg.pp.mli: Ident Ppx_deriving_runtime
