lib/core/vspec.pp.mli: Ppx_deriving_runtime
