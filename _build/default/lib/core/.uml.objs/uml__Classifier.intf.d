lib/core/classifier.pp.mli: Dtype Ident Mult Ppx_deriving_runtime Vspec
