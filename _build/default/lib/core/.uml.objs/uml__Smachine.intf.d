lib/core/smachine.pp.mli: Ident Ppx_deriving_runtime
