lib/core/wfr.pp.ml: Activityg Classifier Component Deployment Diagram Dtype Format Hashtbl Ident Instance Interaction List Model Mult Pkg Ppx_deriving_runtime Printf Profile Smachine Stdlib Usecase
