lib/core/activityg.pp.mli: Dtype Ident Ppx_deriving_runtime
