lib/core/instance.pp.mli: Classifier Ident Ppx_deriving_runtime Vspec
