lib/core/ident.pp.ml: Map Ppx_deriving_runtime Printf Set String
