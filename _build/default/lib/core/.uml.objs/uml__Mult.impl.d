lib/core/mult.pp.ml: Ppx_deriving_runtime Printf
