lib/core/interaction.pp.ml: Ident List Ppx_deriving_runtime Vspec
