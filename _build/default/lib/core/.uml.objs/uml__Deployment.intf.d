lib/core/deployment.pp.mli: Ident Ppx_deriving_runtime
