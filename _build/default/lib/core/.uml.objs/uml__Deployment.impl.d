lib/core/deployment.pp.ml: Ident List Ppx_deriving_runtime
