lib/core/profile.pp.ml: Dtype Ident List Ppx_deriving_runtime Vspec
