lib/core/dtype.pp.ml: Ident Ppx_deriving_runtime
