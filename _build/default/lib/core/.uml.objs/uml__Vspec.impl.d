lib/core/vspec.pp.ml: Ppx_deriving_runtime Printf
