lib/core/smachine.pp.ml: Ident List Ppx_deriving_runtime
