lib/core/ident.pp.mli: Map Ppx_deriving_runtime Set
