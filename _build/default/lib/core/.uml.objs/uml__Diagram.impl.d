lib/core/diagram.pp.ml: Ident List Ppx_deriving_runtime
