lib/core/usecase.pp.ml: Ident List Ppx_deriving_runtime
