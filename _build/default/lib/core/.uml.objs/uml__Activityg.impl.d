lib/core/activityg.pp.ml: Dtype Ident List Ppx_deriving_runtime
