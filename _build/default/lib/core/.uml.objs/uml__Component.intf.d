lib/core/component.pp.mli: Ident Mult Ppx_deriving_runtime
