lib/core/instance.pp.ml: Classifier Ident List Mult Ppx_deriving_runtime Vspec
