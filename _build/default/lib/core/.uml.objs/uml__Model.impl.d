lib/core/model.pp.ml: Activityg Classifier Component Deployment Diagram Format Hashtbl Ident Instance Interaction List Pkg Ppx_deriving_runtime Printf Profile Smachine Usecase
