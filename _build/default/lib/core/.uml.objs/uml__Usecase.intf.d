lib/core/usecase.pp.mli: Ident Ppx_deriving_runtime
