lib/core/profile.pp.mli: Dtype Ident Ppx_deriving_runtime Vspec
