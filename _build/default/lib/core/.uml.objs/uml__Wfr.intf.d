lib/core/wfr.pp.mli: Format Ident Model Ppx_deriving_runtime
