lib/core/dtype.pp.mli: Ident Ppx_deriving_runtime
