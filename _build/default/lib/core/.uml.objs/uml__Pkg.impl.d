lib/core/pkg.pp.ml: Ident List Ppx_deriving_runtime String
