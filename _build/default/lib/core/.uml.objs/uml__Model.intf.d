lib/core/model.pp.mli: Activityg Classifier Component Deployment Diagram Format Hashtbl Ident Instance Interaction Pkg Ppx_deriving_runtime Profile Smachine Usecase
