lib/core/mult.pp.mli: Ppx_deriving_runtime
