lib/core/component.pp.ml: Ident List Mult Ppx_deriving_runtime
