lib/core/interaction.pp.mli: Ident Ppx_deriving_runtime Vspec
