type t = string [@@deriving eq, ord, show]

let counter = ref 0

let fresh ?(prefix = "e") () =
  incr counter;
  Printf.sprintf "%s%06d" prefix !counter

let reset_counter () = counter := 0
let of_string s = s
let to_string t = t

module Set = Set.Make (String)
module Map = Map.Make (String)
