(** Activities with UML 2.0 token-flow structure.

    The paper highlights that UML 2.0 gives Activity Diagrams token
    semantics "close to high-level Petri Nets".  This module defines the
    static graph: executable nodes, object nodes, control nodes, and
    control/object flow edges with guards and weights.  The token
    execution engine and the translation to Petri nets live in the
    [activity] library. *)

type node =
  | Action of action  (** opaque action with an ASL body *)
  | Call_behavior of call_behavior  (** invokes another activity *)
  | Send_signal of event_action
  | Accept_event of event_action
  | Object_node of object_node
  | Initial_node of node_head
  | Activity_final of node_head
  | Flow_final of node_head
  | Fork_node of node_head
  | Join_node of node_head
  | Decision_node of node_head
  | Merge_node of node_head

and node_head = {
  nd_id : Ident.t;
  nd_name : string;
}

and action = {
  act_head : node_head;
  act_body : string option;  (** ASL source *)
}

and call_behavior = {
  cb_head : node_head;
  cb_behavior : Ident.t;  (** the called activity *)
}

and event_action = {
  ev_head : node_head;
  ev_event : string;  (** signal name *)
}

and object_node = {
  on_head : node_head;
  on_type : Dtype.t;
  on_upper_bound : int option;  (** buffer capacity, [None] = unbounded *)
}
[@@deriving eq, ord, show]

type edge_kind =
  | Control_flow
  | Object_flow
[@@deriving eq, ord, show]

type edge = {
  ed_id : Ident.t;
  ed_source : Ident.t;
  ed_target : Ident.t;
  ed_guard : string option;  (** ASL boolean expression *)
  ed_weight : int;  (** tokens consumed per traversal; default 1 *)
  ed_kind : edge_kind;
}
[@@deriving eq, ord, show]

type t = {
  ac_id : Ident.t;
  ac_name : string;
  ac_nodes : node list;
  ac_edges : edge list;
  ac_context : Ident.t option;
}
[@@deriving eq, ord, show]

val node_id : node -> Ident.t
val node_name : node -> string

val action : ?id:Ident.t -> ?body:string -> string -> node
val call_behavior : ?id:Ident.t -> behavior:Ident.t -> string -> node
val send_signal : ?id:Ident.t -> event:string -> string -> node
val accept_event : ?id:Ident.t -> event:string -> string -> node
val object_node : ?id:Ident.t -> ?upper_bound:int -> string -> Dtype.t -> node
val initial : ?id:Ident.t -> unit -> node
val activity_final : ?id:Ident.t -> unit -> node
val flow_final : ?id:Ident.t -> unit -> node
val fork : ?id:Ident.t -> string -> node
val join : ?id:Ident.t -> string -> node
val decision : ?id:Ident.t -> string -> node
val merge : ?id:Ident.t -> string -> node

val edge : ?id:Ident.t -> ?guard:string -> ?weight:int -> ?kind:edge_kind ->
  source:Ident.t -> target:Ident.t -> unit -> edge

val make : ?id:Ident.t -> ?context:Ident.t -> string -> node list ->
  edge list -> t

val find_node : t -> Ident.t -> node option
val incoming : t -> Ident.t -> edge list
val outgoing : t -> Ident.t -> edge list
