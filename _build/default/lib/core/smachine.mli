(** State machines (the UML StateChart variant).

    Structure follows the UML 2.0 superstructure: a state machine owns
    regions; regions own vertices (states, pseudostates, final states)
    and transitions.  Composite states own regions recursively, and a
    state with two or more regions is orthogonal.  Entry/exit/do
    behaviors, guards and effects are opaque ASL text (see {!Vspec} for
    the rationale); execution semantics live in the [statechart]
    library. *)

type pseudostate_kind =
  | Initial
  | Deep_history
  | Shallow_history
  | Join
  | Fork
  | Junction
  | Choice
  | Entry_point
  | Exit_point
  | Terminate
[@@deriving eq, ord, show]

type trigger =
  | Signal_trigger of string  (** named signal or call event *)
  | Time_trigger of int  (** "after n ticks" relative time event *)
  | Any_trigger  (** the AnyReceiveEvent *)
  | Completion  (** completion event of the source state *)
[@@deriving eq, ord, show]

type transition_kind =
  | External
  | Internal
  | Local
[@@deriving eq, ord, show]

type vertex =
  | State of state
  | Pseudo of pseudostate
  | Final of final_state

and state = {
  st_id : Ident.t;
  st_name : string;
  st_regions : region list;  (** non-empty for composite states *)
  st_entry : string option;  (** ASL entry behavior *)
  st_exit : string option;
  st_do : string option;
  st_deferred : trigger list;
}

and pseudostate = {
  ps_id : Ident.t;
  ps_name : string;
  ps_kind : pseudostate_kind;
}

and final_state = {
  fs_id : Ident.t;
  fs_name : string;
}

and region = {
  rg_id : Ident.t;
  rg_name : string;
  rg_vertices : vertex list;
  rg_transitions : transition list;
}

and transition = {
  tr_id : Ident.t;
  tr_source : Ident.t;
  tr_target : Ident.t;
  tr_triggers : trigger list;
  tr_guard : string option;  (** ASL boolean expression *)
  tr_effect : string option;  (** ASL action text *)
  tr_kind : transition_kind;
}
[@@deriving eq, ord, show]

type t = {
  sm_id : Ident.t;
  sm_name : string;
  sm_regions : region list;
  sm_context : Ident.t option;  (** owning classifier, if any *)
}
[@@deriving eq, ord, show]

val vertex_id : vertex -> Ident.t
val vertex_name : vertex -> string

val simple_state : ?id:Ident.t -> ?entry:string -> ?exit_:string ->
  ?do_:string -> ?deferred:trigger list -> string -> state
(** A leaf state (no regions). *)

val composite_state : ?id:Ident.t -> ?entry:string -> ?exit_:string ->
  ?do_:string -> ?deferred:trigger list -> string -> region list -> state

val pseudostate : ?id:Ident.t -> ?name:string -> pseudostate_kind -> pseudostate
val final : ?id:Ident.t -> ?name:string -> unit -> final_state

val transition : ?id:Ident.t -> ?triggers:trigger list -> ?guard:string ->
  ?effect:string -> ?kind:transition_kind -> source:Ident.t ->
  target:Ident.t -> unit -> transition

val region : ?id:Ident.t -> ?name:string -> vertex list -> transition list ->
  region

val make : ?id:Ident.t -> ?context:Ident.t -> string -> region list -> t

val all_vertices : t -> vertex list
(** Every vertex of the machine, recursively (preorder). *)

val all_transitions : t -> transition list
(** Every transition owned by any region, recursively. *)

val all_regions : t -> region list
(** Every region, recursively (preorder: outer before inner). *)

val find_vertex : t -> Ident.t -> vertex option
val is_orthogonal : state -> bool
val is_composite : state -> bool
