type severity =
  | Error
  | Warning

(* Handwritten: ppx_deriving's [open! Ppx_deriving_runtime] would shadow
   the [Error] constructor with [result]'s. *)
let equal_severity (a : severity) (b : severity) = a = b
let compare_severity (a : severity) (b : severity) = Stdlib.compare a b

let pp_severity fmt s =
  Format.pp_print_string fmt
    (match s with
     | Error -> "Error"
     | Warning -> "Warning")

let show_severity s = Format.asprintf "%a" pp_severity s
let _ = compare_severity
let _ = show_severity

type diagnostic = {
  diag_severity : severity;
  diag_rule : string;
  diag_element : Ident.t option;
  diag_message : string;
}
[@@deriving eq, show]

let diag severity rule element message =
  { diag_severity = severity; diag_rule = rule; diag_element = element;
    diag_message = message }

let error rule element fmt =
  Printf.ksprintf (diag Error rule element) fmt

let warning rule element fmt =
  Printf.ksprintf (diag Warning rule element) fmt

(* ------------------------------------------------------------------ *)
(* Reference resolution                                                *)

let check_type_ref m owner rule acc = function
  | Dtype.Ref id when not (Model.mem m id) ->
    error rule (Some owner) "unresolved type reference %s" id :: acc
  | Dtype.Ref _ | Dtype.Boolean | Dtype.Integer | Dtype.Real
  | Dtype.Unlimited_natural | Dtype.String_type | Dtype.Void ->
    acc

let check_elem_ref m owner rule what acc id =
  if Model.mem m id then acc
  else error rule (Some owner) "unresolved %s reference %s" what id :: acc

let check_classifier_refs m (c : Classifier.t) acc =
  let id = c.Classifier.cl_id in
  let acc =
    List.fold_left
      (fun acc (p : Classifier.property) ->
        check_type_ref m id "CL-01" acc p.Classifier.prop_type)
      acc c.Classifier.cl_attributes
  in
  let acc =
    List.fold_left
      (fun acc (op : Classifier.operation) ->
        List.fold_left
          (fun acc (pa : Classifier.parameter) ->
            check_type_ref m id "CL-02" acc pa.Classifier.param_type)
          acc op.Classifier.op_params)
      acc c.Classifier.cl_operations
  in
  let acc =
    List.fold_left (check_elem_ref m id "CL-03" "generalization") acc
      c.Classifier.cl_generals
  in
  let acc =
    List.fold_left (check_elem_ref m id "CL-04" "interface realization") acc
      c.Classifier.cl_realized
  in
  List.fold_left (check_elem_ref m id "CL-05" "owned behavior") acc
    c.Classifier.cl_behaviors

(* ------------------------------------------------------------------ *)
(* Multiplicities                                                      *)

let check_classifier_mults (c : Classifier.t) acc =
  let check acc (p : Classifier.property) =
    if Mult.is_valid p.Classifier.prop_mult then acc
    else
      error "CL-06" (Some c.Classifier.cl_id)
        "attribute %s has invalid multiplicity %s" p.Classifier.prop_name
        (Mult.to_string p.Classifier.prop_mult)
      :: acc
  in
  List.fold_left check acc c.Classifier.cl_attributes

(* ------------------------------------------------------------------ *)
(* Namespaces                                                          *)

let duplicates names =
  let tbl = Hashtbl.create 16 in
  let mark dups n =
    if n = "" then dups
    else if Hashtbl.mem tbl n then if List.mem n dups then dups else n :: dups
    else begin
      Hashtbl.add tbl n ();
      dups
    end
  in
  List.rev (List.fold_left mark [] names)

let check_classifier_namespace (c : Classifier.t) acc =
  let attr_names =
    List.map (fun (p : Classifier.property) -> p.Classifier.prop_name)
      c.Classifier.cl_attributes
  in
  let acc =
    List.fold_left
      (fun acc n ->
        error "NS-01" (Some c.Classifier.cl_id)
          "duplicate attribute name %s in classifier %s" n
          c.Classifier.cl_name
        :: acc)
      acc (duplicates attr_names)
  in
  let op_names =
    List.map (fun (o : Classifier.operation) -> o.Classifier.op_name)
      c.Classifier.cl_operations
  in
  List.fold_left
    (fun acc n ->
      warning "NS-02" (Some c.Classifier.cl_id)
        "overloaded operation name %s in classifier %s" n c.Classifier.cl_name
      :: acc)
    acc (duplicates op_names)

let check_model_namespace m acc =
  let names =
    List.map
      (fun e -> Model.element_kind e ^ ":" ^ Model.element_name e)
      (Model.elements m)
  in
  List.fold_left
    (fun acc n ->
      warning "NS-03" None "duplicate top-level element %s" n :: acc)
    acc (duplicates names)

(* ------------------------------------------------------------------ *)
(* Generalization                                                      *)

let check_generalization m (c : Classifier.t) acc =
  let id = c.Classifier.cl_id in
  let ancestors = Model.all_ancestors m id in
  let acc =
    if Ident.Set.mem id ancestors then
      error "GE-01" (Some id) "generalization cycle through %s"
        c.Classifier.cl_name
      :: acc
    else acc
  in
  let compatible acc parent_id =
    match Model.find_classifier m parent_id with
    | None -> acc (* unresolved: reported by CL-03 *)
    | Some parent ->
      let same_family =
        match c.Classifier.cl_kind, parent.Classifier.cl_kind with
        | Classifier.Interface, Classifier.Interface -> true
        | Classifier.Interface, _other -> false
        | _other, Classifier.Interface -> false
        | _class_like, _class_like2 -> true
      in
      if same_family then acc
      else
        error "GE-02" (Some id)
          "classifier %s cannot specialize %s (incompatible kinds)"
          c.Classifier.cl_name parent.Classifier.cl_name
        :: acc
  in
  List.fold_left compatible acc c.Classifier.cl_generals

(* ------------------------------------------------------------------ *)
(* State machines                                                      *)

let check_state_machine (sm : Smachine.t) acc =
  let open Smachine in
  let vertices = all_vertices sm in
  let transitions = all_transitions sm in
  let vertex_ids =
    Ident.Set.of_list (List.map vertex_id vertices)
  in
  let incoming v =
    List.filter (fun t -> Ident.equal t.tr_target v) transitions
  in
  let outgoing v =
    List.filter (fun t -> Ident.equal t.tr_source v) transitions
  in
  (* SM-01: transition endpoints are vertices of the machine *)
  let acc =
    List.fold_left
      (fun acc t ->
        let acc =
          if Ident.Set.mem t.tr_source vertex_ids then acc
          else
            error "SM-01" (Some t.tr_id) "transition source %s not a vertex"
              t.tr_source
            :: acc
        in
        if Ident.Set.mem t.tr_target vertex_ids then acc
        else
          error "SM-01" (Some t.tr_id) "transition target %s not a vertex"
            t.tr_target
          :: acc)
      acc transitions
  in
  (* SM-02: at most one initial pseudostate per region *)
  let acc =
    List.fold_left
      (fun acc r ->
        let initials =
          List.filter
            (fun v ->
              match v with
              | Pseudo p -> p.ps_kind = Initial
              | State _ | Final _ -> false)
            r.rg_vertices
        in
        if List.length initials <= 1 then acc
        else
          error "SM-02" (Some r.rg_id)
            "region %s has %d initial pseudostates" r.rg_name
            (List.length initials)
          :: acc)
      acc (all_regions sm)
  in
  (* Per-pseudostate topology *)
  let check_vertex acc v =
    match v with
    | State _ -> acc
    | Final f ->
      if outgoing f.fs_id = [] then acc
      else
        error "SM-03" (Some f.fs_id) "final state %s has outgoing transitions"
          f.fs_name
        :: acc
    | Pseudo p -> (
      let n_in = List.length (incoming p.ps_id) in
      let n_out = List.length (outgoing p.ps_id) in
      match p.ps_kind with
      | Initial ->
        let acc =
          if n_out = 1 then acc
          else
            error "SM-04" (Some p.ps_id)
              "initial pseudostate must have exactly one outgoing \
               transition (has %d)"
              n_out
            :: acc
        in
        let bad_trigger =
          List.exists
            (fun t -> t.tr_triggers <> [] || t.tr_guard <> None)
            (outgoing p.ps_id)
        in
        if bad_trigger then
          error "SM-05" (Some p.ps_id)
            "initial transition may not have triggers or guards"
          :: acc
        else acc
      | Fork ->
        if n_in = 1 && n_out >= 2 then acc
        else
          error "SM-06" (Some p.ps_id)
            "fork must have one incoming and at least two outgoing \
             transitions (%d/%d)"
            n_in n_out
          :: acc
      | Join ->
        if n_in >= 2 && n_out = 1 then acc
        else
          error "SM-07" (Some p.ps_id)
            "join must have at least two incoming and one outgoing \
             transition (%d/%d)"
            n_in n_out
          :: acc
      | Junction | Choice ->
        if n_out >= 1 then acc
        else
          error "SM-08" (Some p.ps_id)
            "junction/choice must have at least one outgoing transition"
          :: acc
      | Terminate ->
        if n_out = 0 then acc
        else
          error "SM-09" (Some p.ps_id)
            "terminate pseudostate may not have outgoing transitions"
          :: acc
      | Deep_history | Shallow_history ->
        if n_out <= 1 then acc
        else
          error "SM-10" (Some p.ps_id)
            "history pseudostate has more than one default transition"
          :: acc
      | Entry_point | Exit_point -> acc)
  in
  List.fold_left check_vertex acc vertices

(* ------------------------------------------------------------------ *)
(* Activities                                                          *)

let check_activity (a : Activityg.t) acc =
  let open Activityg in
  let node_ids = Ident.Set.of_list (List.map node_id a.ac_nodes) in
  let acc =
    List.fold_left
      (fun acc e ->
        let acc =
          if Ident.Set.mem e.ed_source node_ids then acc
          else
            error "AC-01" (Some e.ed_id) "edge source %s not a node"
              e.ed_source
            :: acc
        in
        let acc =
          if Ident.Set.mem e.ed_target node_ids then acc
          else
            error "AC-01" (Some e.ed_id) "edge target %s not a node"
              e.ed_target
            :: acc
        in
        if e.ed_weight >= 1 then acc
        else
          error "AC-02" (Some e.ed_id) "edge weight must be positive (%d)"
            e.ed_weight
          :: acc)
      acc a.ac_edges
  in
  let check_node acc n =
    let id = node_id n in
    let n_in = List.length (incoming a id) in
    let n_out = List.length (outgoing a id) in
    match n with
    | Initial_node _ ->
      if n_in = 0 then acc
      else
        error "AC-03" (Some id) "initial node has incoming edges" :: acc
    | Activity_final _ | Flow_final _ ->
      if n_out = 0 then acc
      else error "AC-04" (Some id) "final node has outgoing edges" :: acc
    | Fork_node _ ->
      if n_in = 1 && n_out >= 1 then acc
      else
        error "AC-05" (Some id)
          "fork must have one incoming and at least one outgoing edge \
           (%d/%d)"
          n_in n_out
        :: acc
    | Join_node _ ->
      if n_in >= 1 && n_out = 1 then acc
      else
        error "AC-06" (Some id)
          "join must have at least one incoming and one outgoing edge \
           (%d/%d)"
          n_in n_out
        :: acc
    | Decision_node _ ->
      if n_in >= 1 && n_out >= 1 then acc
      else
        error "AC-07" (Some id)
          "decision must have incoming and outgoing edges (%d/%d)" n_in n_out
        :: acc
    | Merge_node _ ->
      if n_in >= 1 && n_out = 1 then acc
      else
        error "AC-08" (Some id)
          "merge must have at least one incoming and exactly one outgoing \
           edge (%d/%d)"
          n_in n_out
        :: acc
    | Object_node o -> (
      match o.on_upper_bound with
      | Some b when b < 1 ->
        error "AC-09" (Some id) "object node upper bound must be positive"
        :: acc
      | Some _ | None -> acc)
    | Action _ | Call_behavior _ | Send_signal _ | Accept_event _ -> acc
  in
  let acc = List.fold_left check_node acc a.ac_nodes in
  (* AC-10: nodes unreachable from any initial node never see a token *)
  let initials =
    List.filter_map
      (fun n ->
        match n with
        | Initial_node h -> Some h.nd_id
        | _other -> None)
      a.ac_nodes
  in
  if initials = [] then acc
  else begin
    let reached = Hashtbl.create 16 in
    let rec visit id =
      if not (Hashtbl.mem reached id) then begin
        Hashtbl.add reached id ();
        List.iter (fun e -> visit e.ed_target) (outgoing a id)
      end
    in
    List.iter visit initials;
    List.fold_left
      (fun acc n ->
        let id = node_id n in
        if Hashtbl.mem reached id then acc
        else
          warning "AC-10" (Some id) "node %s is unreachable from any initial node"
            (node_name n)
          :: acc)
      acc a.ac_nodes
  end

(* ------------------------------------------------------------------ *)
(* Interactions                                                        *)

let check_interaction (i : Interaction.t) acc =
  let open Interaction in
  let lifeline_ids =
    Ident.Set.of_list (List.map (fun l -> l.ll_id) i.in_lifelines)
  in
  let check_message acc (msg : message) =
    let acc =
      if Ident.Set.mem msg.msg_from lifeline_ids then acc
      else
        error "IN-01" (Some msg.msg_id) "message %s sent from unknown lifeline"
          msg.msg_name
        :: acc
    in
    if Ident.Set.mem msg.msg_to lifeline_ids then acc
    else
      error "IN-01" (Some msg.msg_id) "message %s sent to unknown lifeline"
        msg.msg_name
      :: acc
  in
  let rec check_elements acc elems = List.fold_left check_element acc elems
  and check_element acc = function
    | Message msg -> check_message acc msg
    | Fragment f ->
      let acc =
        match f.fr_operator with
        | Loop (min_iter, max_iter) ->
          let bad =
            min_iter < 0
            ||
            match max_iter with
            | Some u -> u < min_iter
            | None -> false
          in
          if bad then
            error "IN-02" (Some f.fr_id) "loop bounds out of order" :: acc
          else acc
        | Alt ->
          if f.fr_operands = [] then
            error "IN-03" (Some f.fr_id) "alt fragment without operands"
            :: acc
          else acc
        | Opt | Par | Strict | Seq | Break | Critical | Neg | Assert
        | Ignore _ | Consider _ ->
          acc
      in
      List.fold_left
        (fun acc o -> check_elements acc o.opnd_body)
        acc f.fr_operands
  in
  check_elements acc i.in_body

(* ------------------------------------------------------------------ *)
(* Use cases                                                           *)

let check_use_case m (uc : Usecase.t) acc =
  let id = uc.Usecase.uc_id in
  let acc =
    List.fold_left (check_elem_ref m id "UC-01" "include") acc
      uc.Usecase.uc_includes
  in
  let acc =
    List.fold_left
      (fun acc (e : Usecase.extend) ->
        check_elem_ref m id "UC-02" "extend" acc e.Usecase.ext_extended)
      acc uc.Usecase.uc_extends
  in
  let closure = Usecase.include_closure ~all:(Model.use_cases m) uc in
  if Ident.Set.mem id closure then
    error "UC-03" (Some id) "use case %s includes itself transitively"
      uc.Usecase.uc_name
    :: acc
  else acc

(* ------------------------------------------------------------------ *)
(* Components                                                          *)

let check_component m (c : Component.t) acc =
  let open Component in
  let id = c.cmp_id in
  let acc =
    List.fold_left
      (fun acc (p : port) ->
        let acc =
          List.fold_left (check_elem_ref m id "CO-01" "provided interface")
            acc p.port_provided
        in
        List.fold_left (check_elem_ref m id "CO-02" "required interface") acc
          p.port_required)
      acc c.cmp_ports
  in
  let acc =
    List.fold_left
      (fun acc (p : part) ->
        check_elem_ref m id "CO-03" "part type" acc p.part_type)
      acc c.cmp_parts
  in
  (* Connector ends must resolve: part (if any) is a part of this
     component, and the port belongs to the part's type (assembly) or to
     this component (delegation outer end). *)
  let part_by_id pid =
    List.find_opt (fun p -> Ident.equal p.part_id pid) c.cmp_parts
  in
  let own_port_ids = Ident.Set.of_list (List.map (fun p -> p.port_id) c.cmp_ports) in
  let port_of_type ty_id port_id =
    match Model.find_component m ty_id with
    | Some inner ->
      List.exists (fun p -> Ident.equal p.port_id port_id) inner.cmp_ports
    | None -> (
      (* a part may be typed by a plain class: accept any port then *)
      match Model.find_classifier m ty_id with
      | Some _cl -> true
      | None -> false)
  in
  let check_end acc (conn : connector) (e : connector_end) =
    match e.cend_part with
    | None ->
      if Ident.Set.mem e.cend_port own_port_ids then acc
      else
        error "CO-04" (Some conn.conn_id)
          "connector end references port %s not owned by component %s"
          e.cend_port c.cmp_name
        :: acc
    | Some pid -> (
      match part_by_id pid with
      | None ->
        error "CO-05" (Some conn.conn_id)
          "connector end references unknown part %s" pid
        :: acc
      | Some p ->
        if port_of_type p.part_type e.cend_port then acc
        else
          error "CO-06" (Some conn.conn_id)
            "connector end references port %s not offered by part %s"
            e.cend_port p.part_name
          :: acc)
  in
  let acc =
    List.fold_left
      (fun acc conn ->
        let acc =
          if List.length conn.conn_ends = 2 then acc
          else
            error "CO-07" (Some conn.conn_id)
              "connector must have exactly two ends"
            :: acc
        in
        List.fold_left (fun acc e -> check_end acc conn e) acc conn.conn_ends)
      acc c.cmp_connectors
  in
  List.fold_left (check_elem_ref m id "CO-08" "realization") acc
    c.cmp_realizations

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)

let check_instance m (i : Instance.t) acc =
  match i.Instance.inst_classifier with
  | None -> acc
  | Some cid -> (
    match Model.find_classifier m cid with
    | None ->
      error "OB-01" (Some i.Instance.inst_id)
        "instance %s typed by unresolved classifier %s" i.Instance.inst_name
        cid
      :: acc
    | Some cl ->
      if Instance.conforms_to i cl then acc
      else
        error "OB-02" (Some i.Instance.inst_id)
          "instance %s does not conform to classifier %s"
          i.Instance.inst_name cl.Classifier.cl_name
        :: acc)

(* ------------------------------------------------------------------ *)
(* Profile applications                                                *)

let metaclass_of_element = function
  | Model.E_classifier c -> (
    match c.Classifier.cl_kind with
    | Classifier.Interface -> Profile.M_interface
    | Classifier.Class | Classifier.Data_type | Classifier.Primitive_type
    | Classifier.Enumeration _ | Classifier.Signal | Classifier.Actor_kind ->
      Profile.M_class)
  | Model.E_component _ -> Profile.M_component
  | Model.E_package _ -> Profile.M_package
  | Model.E_state_machine _ -> Profile.M_state_machine
  | Model.E_activity _ -> Profile.M_activity
  | Model.E_deployment_node _ -> Profile.M_node
  | Model.E_artifact _ -> Profile.M_artifact
  | Model.E_association _ | Model.E_interaction _ | Model.E_use_case _
  | Model.E_instance _ | Model.E_link _ | Model.E_deployment _
  | Model.E_communication_path _ | Model.E_profile _ ->
    Profile.M_any

let check_application m features acc (app : Profile.application) =
  let stereotypes =
    List.concat_map
      (fun p -> List.map (fun s -> (p, s)) p.Profile.prof_stereotypes)
      (Model.profiles m)
  in
  let found =
    List.find_opt
      (fun (_, s) -> Ident.equal s.Profile.ster_id app.Profile.app_stereotype)
      stereotypes
  in
  match found with
  | None ->
    error "PR-01" (Some app.Profile.app_element)
      "application references unknown stereotype %s"
      app.Profile.app_stereotype
    :: acc
  | Some (_, ster) -> (
    let acc =
      (* declared tags only *)
      List.fold_left
        (fun acc (tag_name, _) ->
          let declared =
            List.exists
              (fun t -> t.Profile.tag_name = tag_name)
              ster.Profile.ster_tags
          in
          if declared then acc
          else
            error "PR-02" (Some app.Profile.app_element)
              "value for undeclared tag %s on stereotype %s" tag_name
              ster.Profile.ster_name
            :: acc)
        acc app.Profile.app_values
    in
    let target_metaclass =
      match Model.find m app.Profile.app_element with
      | Some e -> Some (metaclass_of_element e)
      | None -> Hashtbl.find_opt features app.Profile.app_element
    in
    match target_metaclass with
    | None ->
      error "PR-03" None "stereotype %s applied to unresolved element %s"
        ster.Profile.ster_name app.Profile.app_element
      :: acc
    | Some mc ->
      let ok =
        List.exists
          (fun ext -> Profile.equal_metaclass ext Profile.M_any
                      || Profile.equal_metaclass ext mc)
          ster.Profile.ster_extends
      in
      if ok then acc
      else
        error "PR-04" (Some app.Profile.app_element)
          "stereotype %s does not extend metaclass %s"
          ster.Profile.ster_name
          (Profile.metaclass_name mc)
        :: acc)

(* ------------------------------------------------------------------ *)
(* Diagrams                                                            *)

let check_diagram m acc (d : Diagram.t) =
  List.fold_left
    (fun acc id ->
      if Model.mem m id then acc
      else
        error "DG-01" (Some d.Diagram.dg_id)
          "diagram %s shows unresolved element %s" d.Diagram.dg_name id
        :: acc)
    acc d.Diagram.dg_elements

(* ------------------------------------------------------------------ *)

let check m =
  let acc = [] in
  let acc = check_model_namespace m acc in
  let per_element acc e =
    match e with
    | Model.E_classifier c ->
      let acc = check_classifier_refs m c acc in
      let acc = check_classifier_mults c acc in
      let acc = check_classifier_namespace c acc in
      check_generalization m c acc
    | Model.E_state_machine sm -> check_state_machine sm acc
    | Model.E_activity a -> check_activity a acc
    | Model.E_interaction i -> check_interaction i acc
    | Model.E_use_case uc -> check_use_case m uc acc
    | Model.E_component c -> check_component m c acc
    | Model.E_instance i -> check_instance m i acc
    | Model.E_package p ->
      let id = p.Pkg.pkg_id in
      let acc =
        List.fold_left (check_elem_ref m id "PK-01" "owned element") acc
          p.Pkg.pkg_owned
      in
      let acc =
        List.fold_left (check_elem_ref m id "PK-02" "subpackage") acc
          p.Pkg.pkg_subpackages
      in
      List.fold_left (check_elem_ref m id "PK-03" "import") acc
        p.Pkg.pkg_imports
    | Model.E_deployment d ->
      let id = d.Deployment.dep_id in
      let acc =
        check_elem_ref m id "DE-01" "artifact" acc d.Deployment.dep_artifact
      in
      check_elem_ref m id "DE-02" "deployment target" acc
        d.Deployment.dep_target
    | Model.E_association a ->
      if List.length a.Classifier.assoc_ends >= 2 then acc
      else
        error "AS-01" (Some a.Classifier.assoc_id)
          "association must have at least two ends"
        :: acc
    | Model.E_link l ->
      let e1, e2 = l.Instance.link_ends in
      let acc = check_elem_ref m l.Instance.link_id "LK-01" "link end" acc e1 in
      let acc = check_elem_ref m l.Instance.link_id "LK-01" "link end" acc e2 in
      (match l.Instance.link_association with
       | Some a -> check_elem_ref m l.Instance.link_id "LK-02" "association" acc a
       | None -> acc)
    | Model.E_deployment_node _ | Model.E_artifact _
    | Model.E_communication_path _ | Model.E_profile _ ->
      acc
  in
  let acc = Model.fold per_element acc m in
  let features = Model.feature_index m in
  let acc =
    List.fold_left (check_application m features) acc (Model.applications m)
  in
  let acc = List.fold_left (check_diagram m) acc (Model.diagrams m) in
  List.rev acc

let errors ds = List.filter (fun d -> d.diag_severity = Error) ds
let warnings ds = List.filter (fun d -> d.diag_severity = Warning) ds
let is_valid m = errors (check m) = []

let to_string d =
  let sev =
    match d.diag_severity with
    | Error -> "error"
    | Warning -> "warning"
  in
  let where =
    match d.diag_element with
    | Some id -> Printf.sprintf " [%s]" (Ident.to_string id)
    | None -> ""
  in
  Printf.sprintf "%s(%s)%s: %s" sev d.diag_rule where d.diag_message
