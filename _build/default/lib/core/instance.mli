(** Instance specifications (Object Diagrams) and links.

    "Instances of a Class Diagram are called an Object Diagram and
    describe how individual class instances (objects) are related." *)

type slot = {
  slot_feature : string;  (** attribute name *)
  slot_values : Vspec.t list;
}
[@@deriving eq, ord, show]

type t = {
  inst_id : Ident.t;
  inst_name : string;
  inst_classifier : Ident.t option;  (** typing classifier *)
  inst_slots : slot list;
}
[@@deriving eq, ord, show]

type link = {
  link_id : Ident.t;
  link_association : Ident.t option;
  link_ends : Ident.t * Ident.t;  (** connected instances *)
}
[@@deriving eq, ord, show]

val make : ?id:Ident.t -> ?classifier:Ident.t -> ?slots:slot list -> string ->
  t

val slot : string -> Vspec.t list -> slot
val link : ?id:Ident.t -> ?association:Ident.t -> Ident.t -> Ident.t -> link
val slot_value : t -> string -> Vspec.t option

val conforms_to : t -> Classifier.t -> bool
(** Structural conformance: every slot names an attribute of the
    classifier and the value count respects the attribute multiplicity. *)
