open Hdl

let clk_rst = [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]

let dma ?(width = 8) () =
  let states = [ "D_IDLE"; "D_COPY"; "D_DONE" ] in
  let state_ty = Htype.Enum states in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "start" Htype.Bit;
            Module_.input "len" (Htype.Unsigned 4);
            Module_.input "src_data" (Htype.Unsigned width);
            Module_.output "src_addr" (Htype.Unsigned 4);
            Module_.output "dst_addr" (Htype.Unsigned 4);
            Module_.output "dst_data" (Htype.Unsigned width);
            Module_.output "dst_we" Htype.Bit;
            Module_.output "busy" Htype.Bit;
            Module_.output "done_" Htype.Bit;
          ])
      ~signals:
        [
          Module_.signal ~init:0 "state" state_ty;
          Module_.signal ~init:0 "idx" (Htype.Unsigned 4);
          Module_.signal ~init:0 "count" (Htype.Unsigned 4);
        ]
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                [
                  Stmt.Assign ("state", Expr.Enum_lit "D_IDLE");
                  Stmt.Assign ("idx", Expr.of_int ~width:4 0);
                  Stmt.Assign ("count", Expr.of_int ~width:4 0);
                ] )
            ~name:"p_dma" ~clock:"clk"
            [
              Stmt.Case
                ( Expr.Ref "state",
                  [
                    ( Stmt.Ch_enum "D_IDLE",
                      [
                        Stmt.If
                          ( Expr.(Ref "start" ==: one),
                            [
                              Stmt.Assign ("idx", Expr.of_int ~width:4 0);
                              Stmt.Assign ("count", Expr.Ref "len");
                              Stmt.Assign ("state", Expr.Enum_lit "D_COPY");
                            ],
                            [] );
                      ] );
                    ( Stmt.Ch_enum "D_COPY",
                      [
                        Stmt.Assign ("idx", Expr.(Ref "idx" +: of_int 1));
                        Stmt.If
                          ( Expr.(Binop
                                    ( Expr.Ge,
                                      Ref "idx" +: of_int 1,
                                      Ref "count" )),
                            [ Stmt.Assign ("state", Expr.Enum_lit "D_DONE") ],
                            [] );
                      ] );
                    ( Stmt.Ch_enum "D_DONE",
                      [ Stmt.Assign ("state", Expr.Enum_lit "D_IDLE") ] );
                  ],
                  None );
            ];
          Module_.comb_process ~name:"p_out"
            [
              Stmt.Assign ("src_addr", Expr.Ref "idx");
              Stmt.Assign ("dst_addr", Expr.Ref "idx");
              Stmt.Assign ("dst_data", Expr.Ref "src_data");
              Stmt.Assign
                ( "dst_we",
                  Expr.Mux
                    ( Expr.(Ref "state" ==: Enum_lit "D_COPY"),
                      Expr.one, Expr.zero ) );
              Stmt.Assign
                ( "busy",
                  Expr.Mux
                    ( Expr.(Ref "state" ==: Enum_lit "D_COPY"),
                      Expr.one, Expr.zero ) );
              Stmt.Assign
                ( "done_",
                  Expr.Mux
                    ( Expr.(Ref "state" ==: Enum_lit "D_DONE"),
                      Expr.one, Expr.zero ) );
            ];
        ]
      "dma"
  in
  {
    Core.ip_name = "dma";
    ip_component =
      (let ports =
         List.map
           (fun (p : Module_.port) -> Uml.Component.port p.Module_.port_name)
           m.Module_.mod_ports
       in
       Uml.Component.make ~ports "dma");
    ip_module = m;
    ip_area = 80 * width;
  }

let irq_ctrl () =
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "irq_in" (Htype.Unsigned 4);
            Module_.input "mask_we" Htype.Bit;
            Module_.input "mask_in" (Htype.Unsigned 4);
            Module_.output "irq_out" Htype.Bit;
            Module_.output "irq_id" (Htype.Unsigned 2);
          ])
      ~signals:
        [
          Module_.signal ~init:0xF "mask" (Htype.Unsigned 4);
          Module_.signal ~init:0 "pending" (Htype.Unsigned 4);
        ]
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                [
                  Stmt.Assign ("mask", Expr.of_int ~width:4 0xF);
                  Stmt.Assign ("pending", Expr.of_int ~width:4 0);
                ] )
            ~name:"p_regs" ~clock:"clk"
            [
              Stmt.If
                ( Expr.(Ref "mask_we" ==: one),
                  [ Stmt.Assign ("mask", Expr.Ref "mask_in") ],
                  [] );
              Stmt.Assign
                ( "pending",
                  Expr.Binop (Expr.And, Expr.Ref "irq_in", Expr.Ref "mask") );
            ];
          Module_.comb_process ~name:"p_out"
            [
              Stmt.Assign
                ("irq_out", Expr.Unop (Expr.Reduce_or, Expr.Ref "pending"));
              (* priority encoder: lowest line wins *)
              Stmt.If
                ( Expr.(Slice (Ref "pending", 0, 0) ==: one),
                  [ Stmt.Assign ("irq_id", Expr.of_int ~width:2 0) ],
                  [
                    Stmt.If
                      ( Expr.(Slice (Ref "pending", 1, 1) ==: one),
                        [ Stmt.Assign ("irq_id", Expr.of_int ~width:2 1) ],
                        [
                          Stmt.If
                            ( Expr.(Slice (Ref "pending", 2, 2) ==: one),
                              [
                                Stmt.Assign
                                  ("irq_id", Expr.of_int ~width:2 2);
                              ],
                              [
                                Stmt.Assign
                                  ("irq_id", Expr.of_int ~width:2 3);
                              ] );
                        ] );
                  ] );
            ];
        ]
      "irq_ctrl"
  in
  {
    Core.ip_name = "irq_ctrl";
    ip_component =
      (let ports =
         List.map
           (fun (p : Module_.port) -> Uml.Component.port p.Module_.port_name)
           m.Module_.mod_ports
       in
       Uml.Component.make ~ports "irq_ctrl");
    ip_module = m;
    ip_area = 120;
  }

let watchdog ?(width = 8) () =
  let maxv = (1 lsl width) - 1 in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "kick" Htype.Bit;
            Module_.output "bite" Htype.Bit;
          ])
      ~signals:
        [
          Module_.signal ~init:0 "wd_cnt" (Htype.Unsigned width);
          Module_.signal ~init:0 "bitten" Htype.Bit;
        ]
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                [
                  Stmt.Assign ("wd_cnt", Expr.of_int ~width 0);
                  Stmt.Assign ("bitten", Expr.zero);
                ] )
            ~name:"p_wd" ~clock:"clk"
            [
              Stmt.If
                ( Expr.(Ref "kick" ==: one),
                  [ Stmt.Assign ("wd_cnt", Expr.of_int ~width 0) ],
                  [
                    Stmt.If
                      ( Expr.(Ref "wd_cnt" ==: of_int ~width maxv),
                        [ Stmt.Assign ("bitten", Expr.one) ],
                        [
                          Stmt.Assign
                            ("wd_cnt", Expr.(Ref "wd_cnt" +: of_int 1));
                        ] );
                  ] );
            ];
          Module_.comb_process ~name:"p_out"
            [ Stmt.Assign ("bite", Expr.Ref "bitten") ];
        ]
      "watchdog"
  in
  {
    Core.ip_name = "watchdog";
    ip_component =
      (let ports =
         List.map
           (fun (p : Module_.port) -> Uml.Component.port p.Module_.port_name)
           m.Module_.mod_ports
       in
       Uml.Component.make ~ports "watchdog");
    ip_module = m;
    ip_area = 30 * width;
  }
