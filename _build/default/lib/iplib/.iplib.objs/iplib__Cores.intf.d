lib/iplib/cores.mli: Core
