lib/iplib/soc.ml: Core Hashtbl Hdl Htype List Module_ Profiles Uml
