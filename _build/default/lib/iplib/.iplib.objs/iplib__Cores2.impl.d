lib/iplib/cores2.ml: Core Expr Hdl Htype List Module_ Stmt Uml
