lib/iplib/core.ml: Hdl List Profiles Uml
