lib/iplib/cores2.mli: Core
