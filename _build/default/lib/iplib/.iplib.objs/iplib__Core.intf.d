lib/iplib/core.mli: Hdl Uml
