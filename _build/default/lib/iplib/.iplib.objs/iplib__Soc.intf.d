lib/iplib/soc.mli: Core Hdl Uml
