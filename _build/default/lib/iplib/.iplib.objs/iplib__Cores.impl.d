lib/iplib/cores.ml: Core Cores2 Expr Hdl Htype List Module_ Printf Stmt Uml
