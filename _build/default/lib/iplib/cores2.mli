(** Second batch of IP cores: DMA engine and interrupt controller. *)

val dma : ?width:int -> unit -> Core.t
(** Mem-to-mem DMA: programmed with [len] (up to 15 beats), kicked with
    [start]; reads [src_data] at [src_addr], drives
    [dst_addr]/[dst_data]/[dst_we] one beat per cycle; [busy] while
    copying, [done_] pulses on completion. *)

val irq_ctrl : unit -> Core.t
(** Four-line level-sensitive interrupt controller with a mask
    register: [irq_in(4)], masked by [mask] (written via
    [mask_we]/[mask_in]); [irq_out] is the OR of unmasked pending
    lines, [irq_id] the lowest pending line number. *)

val watchdog : ?width:int -> unit -> Core.t
(** Watchdog timer: counts up every cycle; a [kick] resets the count;
    [bite] asserts (and stays) once the counter saturates. *)
