(** The core catalogue: FIFO, timer, GPIO, UART (tx/rx), round-robin
    arbiter, register file, address-decoding bus.

    Every constructor returns a fresh {!Core.t} (fresh identifiers) so
    multiple instances can coexist in one model.  All RTL bodies pass
    {!Hdl.Check.check_module} and simulate in [dsim]. *)

val timer : ?width:int -> unit -> Core.t
(** Free-running counter with [enable]; [tick] pulses on wrap. *)

val gpio : ?width:int -> unit -> Core.t
(** Write-enabled output register. *)

val fifo4 : ?width:int -> unit -> Core.t
(** Depth-4 shift-register FIFO with [empty]/[full]/simultaneous
    read+write semantics. *)

val uart_tx : unit -> Core.t
(** 8N1 transmitter, one cycle per bit: [start]/[data] in, [txd]/[busy]
    out. *)

val uart_rx : unit -> Core.t
(** Matching receiver: [rxd] in, [data]/[valid] out. *)

val arbiter2 : unit -> Core.t
(** Two-requester round-robin arbiter. *)

val regfile4 : ?width:int -> unit -> Core.t
(** Four-entry register file: [we]/[addr]/[wdata] write port, [rdata]
    combinational read. *)

val bus2 : ?width:int -> unit -> Core.t
(** One master, two memory-mapped slaves split at address 0x80:
    combinational write steering and read-back mux. *)

val catalogue : unit -> Core.t list
(** One fresh instance of every core, including the {!Cores2} batch. *)
