open Hdl

(* Component views mirror the RTL ports; hardware data ports carry no
   UML interface (they are «hwPort»-style pins). *)
let component_of_module name (m : Module_.t) =
  let ports =
    List.map
      (fun (p : Module_.port) -> Uml.Component.port p.Module_.port_name)
      m.Module_.mod_ports
  in
  Uml.Component.make ~ports name

let make_core ?(area = 100) name m =
  {
    Core.ip_name = name;
    ip_component = component_of_module name m;
    ip_module = m;
    ip_area = area;
  }

let clk_rst = [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ]

(* --- timer ------------------------------------------------------------ *)

let timer ?(width = 8) () =
  let maxv = (1 lsl width) - 1 in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "enable" Htype.Bit;
            Module_.output "tick" Htype.Bit;
            Module_.output "count" (Htype.Unsigned width);
          ])
      ~signals:[ Module_.signal ~init:0 "cnt" (Htype.Unsigned width) ]
      ~processes:
        [
          Module_.seq_process
            ~reset:("rst", [ Stmt.Assign ("cnt", Expr.of_int ~width 0) ])
            ~name:"p_count" ~clock:"clk"
            [
              Stmt.If
                ( Expr.(Ref "enable" ==: one),
                  [ Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1)) ],
                  [] );
            ];
          Module_.comb_process ~name:"p_out"
            [
              Stmt.Assign ("count", Expr.Ref "cnt");
              Stmt.Assign
                ("tick", Expr.(Ref "cnt" ==: of_int ~width maxv));
            ];
        ]
      "timer"
  in
  make_core ~area:(40 * width) "timer" m

(* --- gpio ------------------------------------------------------------- *)

let gpio ?(width = 8) () =
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "we" Htype.Bit;
            Module_.input "din" (Htype.Unsigned width);
            Module_.output "dout" (Htype.Unsigned width);
          ])
      ~signals:[ Module_.signal ~init:0 "r" (Htype.Unsigned width) ]
      ~processes:
        [
          Module_.seq_process
            ~reset:("rst", [ Stmt.Assign ("r", Expr.of_int ~width 0) ])
            ~name:"p_reg" ~clock:"clk"
            [
              Stmt.If
                ( Expr.(Ref "we" ==: one),
                  [ Stmt.Assign ("r", Expr.Ref "din") ],
                  [] );
            ];
          Module_.comb_process ~name:"p_out"
            [ Stmt.Assign ("dout", Expr.Ref "r") ];
        ]
      "gpio"
  in
  make_core ~area:(12 * width) "gpio" m

(* --- fifo (depth 4, shift register) ------------------------------------ *)

let fifo4 ?(width = 8) () =
  let slot i = Printf.sprintf "s%d" i in
  let shift_down =
    [
      Stmt.Assign (slot 0, Expr.Ref (slot 1));
      Stmt.Assign (slot 1, Expr.Ref (slot 2));
      Stmt.Assign (slot 2, Expr.Ref (slot 3));
    ]
  in
  let write_at idx value =
    Stmt.Case
      ( Expr.Ref "cnt",
        List.map
          (fun i -> (Stmt.Ch_int i, [ Stmt.Assign (slot (i + idx), value) ]))
          [ 0; 1; 2; 3 ],
        Some [] )
  in
  (* write_at uses cnt as index; with idx = -1 for simultaneous rd+wr the
     incoming word lands at cnt-1 after the shift *)
  let wr = Expr.(Ref "wr" ==: one) in
  let rd = Expr.(Ref "rd" ==: one) in
  let can_read = Expr.(Binop (Expr.Gt, Ref "cnt", of_int 0)) in
  let can_write = Expr.(Binop (Expr.Lt, Ref "cnt", of_int 4)) in
  let body =
    [
      Stmt.If
        ( Expr.(wr &&: rd &&: can_read),
          shift_down
          @ [
              (* after shifting, the new word goes to position cnt-1 *)
              Stmt.Case
                ( Expr.Ref "cnt",
                  [
                    (Stmt.Ch_int 1, [ Stmt.Assign (slot 0, Expr.Ref "din") ]);
                    (Stmt.Ch_int 2, [ Stmt.Assign (slot 1, Expr.Ref "din") ]);
                    (Stmt.Ch_int 3, [ Stmt.Assign (slot 2, Expr.Ref "din") ]);
                    (Stmt.Ch_int 4, [ Stmt.Assign (slot 3, Expr.Ref "din") ]);
                  ],
                  Some [] );
            ],
          [
            Stmt.If
              ( Expr.(wr &&: can_write),
                [
                  write_at 0 (Expr.Ref "din");
                  Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1));
                ],
                [
                  Stmt.If
                    ( Expr.(rd &&: can_read),
                      shift_down
                      @ [ Stmt.Assign ("cnt", Expr.(Ref "cnt" -: of_int 1)) ],
                      [] );
                ] );
          ] );
    ]
  in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "wr" Htype.Bit;
            Module_.input "din" (Htype.Unsigned width);
            Module_.input "rd" Htype.Bit;
            Module_.output "dout" (Htype.Unsigned width);
            Module_.output "empty" Htype.Bit;
            Module_.output "full" Htype.Bit;
          ])
      ~signals:
        (Module_.signal ~init:0 "cnt" (Htype.Unsigned 3)
        :: List.map
             (fun i -> Module_.signal ~init:0 (slot i) (Htype.Unsigned width))
             [ 0; 1; 2; 3 ])
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                Stmt.Assign ("cnt", Expr.of_int ~width:3 0)
                :: List.map
                     (fun i -> Stmt.Assign (slot i, Expr.of_int ~width 0))
                     [ 0; 1; 2; 3 ] )
            ~name:"p_fifo" ~clock:"clk" body;
          Module_.comb_process ~name:"p_out"
            [
              Stmt.Assign ("dout", Expr.Ref (slot 0));
              Stmt.Assign ("empty", Expr.(Ref "cnt" ==: of_int ~width:3 0));
              Stmt.Assign ("full", Expr.(Ref "cnt" ==: of_int ~width:3 4));
            ];
        ]
      "fifo4"
  in
  make_core ~area:(60 * width) "fifo4" m

(* --- uart tx ----------------------------------------------------------- *)

let uart_states = [ "IDLE"; "START"; "DATA"; "STOP" ]

let uart_tx () =
  let state_ty = Htype.Enum uart_states in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "start" Htype.Bit;
            Module_.input "data" (Htype.Unsigned 8);
            Module_.output "txd" Htype.Bit;
            Module_.output "busy" Htype.Bit;
          ])
      ~signals:
        [
          Module_.signal ~init:0 "state" state_ty;
          Module_.signal ~init:0 "shift" (Htype.Unsigned 8);
          Module_.signal ~init:0 "bitcnt" (Htype.Unsigned 4);
        ]
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                [
                  Stmt.Assign ("state", Expr.Enum_lit "IDLE");
                  Stmt.Assign ("shift", Expr.of_int ~width:8 0);
                  Stmt.Assign ("bitcnt", Expr.of_int ~width:4 0);
                ] )
            ~name:"p_tx" ~clock:"clk"
            [
              Stmt.Case
                ( Expr.Ref "state",
                  [
                    ( Stmt.Ch_enum "IDLE",
                      [
                        Stmt.If
                          ( Expr.(Ref "start" ==: one),
                            [
                              Stmt.Assign ("shift", Expr.Ref "data");
                              Stmt.Assign ("bitcnt", Expr.of_int ~width:4 0);
                              Stmt.Assign ("state", Expr.Enum_lit "START");
                            ],
                            [] );
                      ] );
                    ( Stmt.Ch_enum "START",
                      [ Stmt.Assign ("state", Expr.Enum_lit "DATA") ] );
                    ( Stmt.Ch_enum "DATA",
                      [
                        Stmt.Assign
                          ("shift", Expr.Binop (Expr.Shr, Expr.Ref "shift", Expr.of_int 1));
                        Stmt.Assign ("bitcnt", Expr.(Ref "bitcnt" +: of_int 1));
                        Stmt.If
                          ( Expr.(Ref "bitcnt" ==: of_int ~width:4 7),
                            [ Stmt.Assign ("state", Expr.Enum_lit "STOP") ],
                            [] );
                      ] );
                    ( Stmt.Ch_enum "STOP",
                      [ Stmt.Assign ("state", Expr.Enum_lit "IDLE") ] );
                  ],
                  None );
            ];
          Module_.comb_process ~name:"p_txd"
            [
              Stmt.Case
                ( Expr.Ref "state",
                  [
                    (Stmt.Ch_enum "IDLE", [ Stmt.Assign ("txd", Expr.one) ]);
                    (Stmt.Ch_enum "START", [ Stmt.Assign ("txd", Expr.zero) ]);
                    ( Stmt.Ch_enum "DATA",
                      [ Stmt.Assign ("txd", Expr.Slice (Expr.Ref "shift", 0, 0)) ] );
                    (Stmt.Ch_enum "STOP", [ Stmt.Assign ("txd", Expr.one) ]);
                  ],
                  Some [ Stmt.Assign ("txd", Expr.one) ] );
              Stmt.Assign
                ( "busy",
                  Expr.Unop
                    (Expr.Not, Expr.(Ref "state" ==: Enum_lit "IDLE")) );
            ];
        ]
      "uart_tx"
  in
  make_core ~area:350 "uart_tx" m

(* --- uart rx ----------------------------------------------------------- *)

let uart_rx () =
  let state_ty = Htype.Enum uart_states in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "rxd" Htype.Bit;
            Module_.output "data" (Htype.Unsigned 8);
            Module_.output "valid" Htype.Bit;
          ])
      ~signals:
        [
          Module_.signal ~init:0 "state" state_ty;
          Module_.signal ~init:0 "shift" (Htype.Unsigned 8);
          Module_.signal ~init:0 "bitcnt" (Htype.Unsigned 4);
          Module_.signal ~init:0 "valid_r" Htype.Bit;
        ]
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                [
                  Stmt.Assign ("state", Expr.Enum_lit "IDLE");
                  Stmt.Assign ("shift", Expr.of_int ~width:8 0);
                  Stmt.Assign ("bitcnt", Expr.of_int ~width:4 0);
                  Stmt.Assign ("valid_r", Expr.zero);
                ] )
            ~name:"p_rx" ~clock:"clk"
            [
              Stmt.Assign ("valid_r", Expr.zero);
              Stmt.Case
                ( Expr.Ref "state",
                  [
                    ( Stmt.Ch_enum "IDLE",
                      [
                        Stmt.If
                          ( Expr.(Ref "rxd" ==: zero),
                            [
                              Stmt.Assign ("bitcnt", Expr.of_int ~width:4 0);
                              Stmt.Assign ("state", Expr.Enum_lit "DATA");
                            ],
                            [] );
                      ] );
                    ( Stmt.Ch_enum "START",
                      [ Stmt.Assign ("state", Expr.Enum_lit "DATA") ] );
                    ( Stmt.Ch_enum "DATA",
                      [
                        (* LSB first: incoming bit lands in bit 7, rest
                           shift right *)
                        Stmt.Assign
                          ( "shift",
                            Expr.Binop
                              ( Expr.Or,
                                Expr.Binop
                                  (Expr.Shl, Expr.Resize (Expr.Ref "rxd", 8),
                                   Expr.of_int 7),
                                Expr.Binop
                                  (Expr.Shr, Expr.Ref "shift", Expr.of_int 1)
                              ) );
                        Stmt.Assign ("bitcnt", Expr.(Ref "bitcnt" +: of_int 1));
                        Stmt.If
                          ( Expr.(Ref "bitcnt" ==: of_int ~width:4 7),
                            [ Stmt.Assign ("state", Expr.Enum_lit "STOP") ],
                            [] );
                      ] );
                    ( Stmt.Ch_enum "STOP",
                      [
                        Stmt.Assign ("valid_r", Expr.one);
                        Stmt.Assign ("state", Expr.Enum_lit "IDLE");
                      ] );
                  ],
                  None );
            ];
          Module_.comb_process ~name:"p_out"
            [
              Stmt.Assign ("data", Expr.Ref "shift");
              Stmt.Assign ("valid", Expr.Ref "valid_r");
            ];
        ]
      "uart_rx"
  in
  make_core ~area:320 "uart_rx" m

(* --- round-robin arbiter ------------------------------------------------ *)

let arbiter2 () =
  let req0 = Expr.(Ref "req0" ==: one) in
  let req1 = Expr.(Ref "req1" ==: one) in
  let last1 = Expr.(Ref "last" ==: one) in
  let gnt0_cond =
    Expr.(req0 &&: (Unop (Expr.Not, req1) ||: last1))
  in
  let gnt1_cond =
    Expr.(req1 &&: (Unop (Expr.Not, req0) ||: Unop (Expr.Not, last1)))
  in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "req0" Htype.Bit;
            Module_.input "req1" Htype.Bit;
            Module_.output "gnt0" Htype.Bit;
            Module_.output "gnt1" Htype.Bit;
          ])
      ~signals:[ Module_.signal ~init:1 "last" Htype.Bit ]
      ~processes:
        [
          Module_.comb_process ~name:"p_grant"
            [
              Stmt.Assign ("gnt0", Expr.Mux (gnt0_cond, Expr.one, Expr.zero));
              Stmt.Assign ("gnt1", Expr.Mux (gnt1_cond, Expr.one, Expr.zero));
            ];
          Module_.seq_process
            ~reset:("rst", [ Stmt.Assign ("last", Expr.one) ])
            ~name:"p_last" ~clock:"clk"
            [
              Stmt.If
                ( Expr.(Ref "gnt0" ==: one),
                  [ Stmt.Assign ("last", Expr.zero) ],
                  [
                    Stmt.If
                      ( Expr.(Ref "gnt1" ==: one),
                        [ Stmt.Assign ("last", Expr.one) ],
                        [] );
                  ] );
            ];
        ]
      "arbiter2"
  in
  make_core ~area:80 "arbiter2" m

(* --- register file ------------------------------------------------------ *)

let regfile4 ?(width = 8) () =
  let reg i = Printf.sprintf "r%d" i in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "we" Htype.Bit;
            Module_.input "addr" (Htype.Unsigned 2);
            Module_.input "wdata" (Htype.Unsigned width);
            Module_.output "rdata" (Htype.Unsigned width);
          ])
      ~signals:
        (List.map
           (fun i -> Module_.signal ~init:0 (reg i) (Htype.Unsigned width))
           [ 0; 1; 2; 3 ])
      ~processes:
        [
          Module_.seq_process
            ~reset:
              ( "rst",
                List.map
                  (fun i -> Stmt.Assign (reg i, Expr.of_int ~width 0))
                  [ 0; 1; 2; 3 ] )
            ~name:"p_write" ~clock:"clk"
            [
              Stmt.If
                ( Expr.(Ref "we" ==: one),
                  [
                    Stmt.Case
                      ( Expr.Ref "addr",
                        List.map
                          (fun i ->
                            (Stmt.Ch_int i,
                             [ Stmt.Assign (reg i, Expr.Ref "wdata") ]))
                          [ 0; 1; 2; 3 ],
                        None );
                  ],
                  [] );
            ];
          Module_.comb_process ~name:"p_read"
            [
              Stmt.Case
                ( Expr.Ref "addr",
                  List.map
                    (fun i ->
                      (Stmt.Ch_int i, [ Stmt.Assign ("rdata", Expr.Ref (reg i)) ]))
                    [ 0; 1; 2; 3 ],
                  Some [ Stmt.Assign ("rdata", Expr.of_int ~width 0) ] );
            ];
        ]
      "regfile4"
  in
  make_core ~area:(4 * 10 * width) "regfile4" m

(* --- bus ---------------------------------------------------------------- *)

let bus2 ?(width = 8) () =
  let sel0 = Expr.Binop (Expr.Lt, Expr.Ref "m_addr", Expr.of_int ~width:8 0x80) in
  let m =
    Module_.make
      ~ports:
        (clk_rst
        @ [
            Module_.input "m_addr" (Htype.Unsigned 8);
            Module_.input "m_wdata" (Htype.Unsigned width);
            Module_.input "m_we" Htype.Bit;
            Module_.input "s0_rdata" (Htype.Unsigned width);
            Module_.input "s1_rdata" (Htype.Unsigned width);
            Module_.output "m_rdata" (Htype.Unsigned width);
            Module_.output "s0_we" Htype.Bit;
            Module_.output "s0_wdata" (Htype.Unsigned width);
            Module_.output "s1_we" Htype.Bit;
            Module_.output "s1_wdata" (Htype.Unsigned width);
          ])
      ~processes:
        [
          Module_.comb_process ~name:"p_decode"
            [
              Stmt.Assign ("s0_wdata", Expr.Ref "m_wdata");
              Stmt.Assign ("s1_wdata", Expr.Ref "m_wdata");
              Stmt.Assign
                ( "s0_we",
                  Expr.Mux
                    (Expr.(Binop (Expr.And, Ref "m_we", sel0)), Expr.one,
                     Expr.zero) );
              Stmt.Assign
                ( "s1_we",
                  Expr.Mux
                    ( Expr.(
                        Binop (Expr.And, Ref "m_we", Unop (Expr.Not, sel0))),
                      Expr.one, Expr.zero ) );
              Stmt.Assign
                ( "m_rdata",
                  Expr.Mux (sel0, Expr.Ref "s0_rdata", Expr.Ref "s1_rdata") );
            ];
        ]
      "bus2"
  in
  make_core ~area:(20 * width) "bus2" m

let catalogue () =
  [
    timer ();
    gpio ();
    fifo4 ();
    uart_tx ();
    uart_rx ();
    arbiter2 ();
    regfile4 ();
    bus2 ();
    Cores2.dma ();
    Cores2.irq_ctrl ();
    Cores2.watchdog ();
  ]
