(** SoC assembly from IP cores.

    Builds the two synchronized views of a SoC: the RTL design (a top
    module instantiating every core with a shared clock/reset, all other
    core ports exposed at the top with instance-prefixed names) and the
    UML composite component (one part per instance). *)

val design : name:string -> (string * Core.t) list -> Hdl.Module_.design
(** [(instance_name, core)] pairs.  Core port [p] of instance [u]
    becomes top-level port [u_p]; [clk]/[rst] are shared. *)

val component :
  Uml.Model.t -> profile:Uml.Profile.t -> name:string ->
  (string * Core.t) list -> Uml.Component.t
(** Registers every core in the model (see {!Core.register}), then adds
    and returns the enclosing «hwModule» component with one part per
    instance and shared clock/reset ports. *)

val total_area : (string * Core.t) list -> int
