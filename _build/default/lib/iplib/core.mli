(** IP cores: paired UML component models and RTL implementations.

    Each core carries the two views the paper wants interchangeable: a
    UML component (ports, interfaces, stereotypes) for model-level
    integration and an {!Hdl.Module_.t} body for synthesis/simulation —
    "seamless integration of existing IP" (§4). *)

type t = {
  ip_name : string;
  ip_component : Uml.Component.t;
  ip_module : Hdl.Module_.t;
  ip_area : int;  (** gate estimate for the «hwModule» area tag *)
}

val register :
  Uml.Model.t -> profile:Uml.Profile.t -> t -> unit
(** Add the component to the model and apply «ip» and «hwModule»
    stereotypes (with the area tag) plus «clock»/«reset» on the [clk] /
    [rst] ports.  The profile must be the SoC profile. *)

val port_names : t -> string list
(** RTL port names, declaration order. *)
