type t = {
  ip_name : string;
  ip_component : Uml.Component.t;
  ip_module : Hdl.Module_.t;
  ip_area : int;
}

let register m ~profile core =
  Uml.Model.add m (Uml.Model.E_component core.ip_component);
  let cid = core.ip_component.Uml.Component.cmp_id in
  Profiles.Soc_profile.apply m ~profile ~stereotype:"ip" cid;
  Profiles.Soc_profile.apply m ~profile ~stereotype:"hwModule"
    ~values:[ ("area", Uml.Vspec.Int_literal core.ip_area) ]
    cid;
  List.iter
    (fun (p : Uml.Component.port) ->
      if p.Uml.Component.port_name = "clk" then
        Profiles.Soc_profile.apply m ~profile ~stereotype:"clock"
          p.Uml.Component.port_id
      else if p.Uml.Component.port_name = "rst" then
        Profiles.Soc_profile.apply m ~profile ~stereotype:"reset"
          p.Uml.Component.port_id)
    core.ip_component.Uml.Component.cmp_ports

let port_names core =
  List.map
    (fun (p : Hdl.Module_.port) -> p.Hdl.Module_.port_name)
    core.ip_module.Hdl.Module_.mod_ports
