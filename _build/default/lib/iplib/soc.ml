open Hdl

let design ~name instances =
  let modules =
    (* dedup per module name: two FIFO instances share one module *)
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (_inst, core) ->
        let mname = core.Core.ip_module.Module_.mod_name in
        if Hashtbl.mem seen mname then None
        else begin
          Hashtbl.add seen mname ();
          Some core.Core.ip_module
        end)
      instances
  in
  let top_ports = ref [ Module_.input "clk" Htype.Bit; Module_.input "rst" Htype.Bit ] in
  let top_instances =
    List.map
      (fun (inst, core) ->
        let conns =
          List.map
            (fun (p : Module_.port) ->
              match p.Module_.port_name with
              | "clk" -> ("clk", "clk")
              | "rst" -> ("rst", "rst")
              | other ->
                let top_name = inst ^ "_" ^ other in
                let port =
                  match p.Module_.port_dir with
                  | Module_.Input -> Module_.input top_name p.Module_.port_type
                  | Module_.Output ->
                    Module_.output top_name p.Module_.port_type
                in
                top_ports := !top_ports @ [ port ];
                (other, top_name))
            core.Core.ip_module.Module_.mod_ports
        in
        {
          Module_.inst_name = "u_" ^ inst;
          inst_module = core.Core.ip_module.Module_.mod_name;
          inst_conns = conns;
        })
      instances
  in
  let top =
    Module_.make ~ports:!top_ports ~instances:top_instances name
  in
  Module_.design ~top:name (top :: modules)

let component m ~profile ~name instances =
  List.iter (fun (_inst, core) -> Core.register m ~profile core) instances;
  let parts =
    List.map
      (fun (inst, core) ->
        Uml.Component.part inst core.Core.ip_component.Uml.Component.cmp_id)
      instances
  in
  let ports = [ Uml.Component.port "clk"; Uml.Component.port "rst" ] in
  let comp = Uml.Component.make ~ports ~parts name in
  Uml.Model.add m (Uml.Model.E_component comp);
  let total =
    List.fold_left (fun acc (_i, c) -> acc + c.Core.ip_area) 0 instances
  in
  Profiles.Soc_profile.apply m ~profile ~stereotype:"hwModule"
    ~values:[ ("area", Uml.Vspec.Int_literal total) ]
    comp.Uml.Component.cmp_id;
  (match Uml.Component.find_port comp "clk" with
   | Some p ->
     Profiles.Soc_profile.apply m ~profile ~stereotype:"clock"
       p.Uml.Component.port_id
   | None -> ());
  (match Uml.Component.find_port comp "rst" with
   | Some p ->
     Profiles.Soc_profile.apply m ~profile ~stereotype:"reset"
       p.Uml.Component.port_id
   | None -> ());
  comp

let total_area instances =
  List.fold_left (fun acc (_i, c) -> acc + c.Core.ip_area) 0 instances
