(* Tests for the xUML system runtime: whole models made executable. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* A producer/consumer model: the producer's machine sends [item]
   signals to its [peer]; the consumer counts them and acks. *)
let build_system () =
  let m = Model.create "pc" in
  (* Consumer: active class counting items *)
  let consumer =
    Classifier.make ~is_active:true
      ~attributes:
        [
          Classifier.property ~default:(Vspec.of_int 0) "received"
            Dtype.Integer;
        ]
      "Consumer"
  in
  let waiting = Smachine.simple_state "Waiting" in
  let c_init = Smachine.pseudostate Smachine.Initial in
  let c_region =
    Smachine.region
      [ Smachine.Pseudo c_init; Smachine.State waiting ]
      [
        Smachine.transition ~source:c_init.Smachine.ps_id
          ~target:waiting.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "item" ]
          ~effect:"self.received := self.received + e1;"
          ~kind:Smachine.Internal ~source:waiting.Smachine.st_id
          ~target:waiting.Smachine.st_id ();
      ]
  in
  let c_machine =
    Smachine.make ~context:consumer.Classifier.cl_id "ConsumerSM"
      [ c_region ]
  in
  let consumer =
    { consumer with Classifier.cl_behaviors = [ c_machine.Smachine.sm_id ] }
  in
  Model.add m (Model.E_classifier consumer);
  Model.add m (Model.E_state_machine c_machine);
  (* Producer: sends three items then stops *)
  let producer =
    Classifier.make ~is_active:true
      ~attributes:
        [
          Classifier.property ~default:(Vspec.of_int 0) "sent" Dtype.Integer;
          Classifier.property "peer"
            (Dtype.Ref consumer.Classifier.cl_id);
        ]
      "Producer"
  in
  let idle = Smachine.simple_state "Idle" in
  let sending = Smachine.simple_state "Sending" in
  let done_ = Smachine.simple_state "Done" in
  let p_init = Smachine.pseudostate Smachine.Initial in
  let p_region =
    Smachine.region
      [
        Smachine.Pseudo p_init; Smachine.State idle; Smachine.State sending;
        Smachine.State done_;
      ]
      [
        Smachine.transition ~source:p_init.Smachine.ps_id
          ~target:idle.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "kick" ]
          ~source:idle.Smachine.st_id ~target:sending.Smachine.st_id ();
        (* completion loop: send one item per RTC step while sent < 3 *)
        Smachine.transition ~guard:"self.sent < 3"
          ~effect:
            "self.sent := self.sent + 1; send item(self.sent) to self.peer;"
          ~source:sending.Smachine.st_id ~target:sending.Smachine.st_id ();
        Smachine.transition ~guard:"self.sent >= 3"
          ~source:sending.Smachine.st_id ~target:done_.Smachine.st_id ();
      ]
  in
  let p_machine =
    Smachine.make ~context:producer.Classifier.cl_id "ProducerSM"
      [ p_region ]
  in
  let producer =
    { producer with Classifier.cl_behaviors = [ p_machine.Smachine.sm_id ] }
  in
  Model.add m (Model.E_classifier producer);
  Model.add m (Model.E_state_machine p_machine);
  m

let system_tests =
  [
    tc "instantiate applies attribute defaults" (fun () ->
        let sys = Xuml.System.create (build_system ()) in
        let c = Xuml.System.instantiate sys "Consumer" in
        check Alcotest.bool "received=0" true
          (Asl.Store.get_attr (Xuml.System.store sys) c "received"
          = Some (Asl.Value.V_int 0)));
    tc "unknown class is an error" (fun () ->
        let sys = Xuml.System.create (build_system ()) in
        match Xuml.System.instantiate sys "Ghost" with
        | _r -> Alcotest.fail "expected Xuml_error"
        | exception Xuml.System.Xuml_error _ -> ());
    tc "active objects get running machines" (fun () ->
        let sys = Xuml.System.create (build_system ()) in
        let c = Xuml.System.instantiate sys "Consumer" in
        match Xuml.System.engine_of sys c with
        | Some engine ->
          check Alcotest.string "Waiting" "Waiting"
            (Statechart.Engine.signature engine)
        | None -> Alcotest.fail "engine expected");
    tc "producer drives consumer through signals" (fun () ->
        let sys = Xuml.System.create (build_system ()) in
        let c = Xuml.System.instantiate sys "Consumer" in
        let p = Xuml.System.instantiate sys "Producer" in
        Asl.Store.set_attr (Xuml.System.store sys) p "peer"
          (Asl.Value.V_obj c)
        |> ignore;
        Xuml.System.send sys ~to_:p "kick";
        let events = Xuml.System.run sys in
        check Alcotest.bool "worked" true (events > 0);
        (* producer sent 1+2+3 = 6 *)
        check Alcotest.bool "received=6" true
          (Asl.Store.get_attr (Xuml.System.store sys) c "received"
          = Some (Asl.Value.V_int 6));
        (* machines ended in the expected states *)
        let config = Xuml.System.configuration sys in
        check Alcotest.bool "producer done" true
          (List.mem ("Producer#2", "Done") config);
        check Alcotest.bool "consumer waiting" true
          (List.mem ("Consumer#1", "Waiting") config));
    tc "objects are listed in creation order" (fun () ->
        let sys = Xuml.System.create (build_system ()) in
        let _c = Xuml.System.instantiate sys "Consumer" in
        let _p = Xuml.System.instantiate sys "Producer" in
        check
          (Alcotest.list Alcotest.string)
          "names" [ "Consumer#1"; "Producer#2" ]
          (List.map fst (Xuml.System.objects sys));
        check Alcotest.bool "lookup" true
          (Xuml.System.object_of_name sys "Consumer#1" <> None));
    tc "modeled operations are callable" (fun () ->
        let m = Model.create "ops" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~attributes:
                  [ Classifier.property ~default:(Vspec.of_int 5) "x"
                      Dtype.Integer ]
                ~operations:
                  [
                    Classifier.operation
                      ~params:[ Classifier.parameter "d" Dtype.Integer ]
                      ~body:"self.x := self.x + d; return self.x;" "bump";
                  ]
                "K"));
        let sys = Xuml.System.create m in
        let k = Xuml.System.instantiate sys "K" in
        let v = Xuml.System.call sys ~self_:k "bump" [ Asl.Value.V_int 3 ] in
        check Alcotest.bool "8" true (v = Asl.Value.V_int 8));
    tc "operations are inherited through generalization" (fun () ->
        let m = Model.create "inherit" in
        let base =
          Classifier.make
            ~operations:
              [ Classifier.operation ~body:"return 42;" "answer" ]
            "Base"
        in
        Model.add m (Model.E_classifier base);
        Model.add m
          (Model.E_classifier
             (Classifier.make ~generals:[ base.Classifier.cl_id ] "Derived"));
        let sys = Xuml.System.create m in
        let d = Xuml.System.instantiate sys "Derived" in
        check Alcotest.bool "42" true
          (Xuml.System.call sys ~self_:d "answer" [] = Asl.Value.V_int 42));
    tc "attributes are inherited" (fun () ->
        let m = Model.create "inherit2" in
        let base =
          Classifier.make
            ~attributes:
              [ Classifier.property ~default:(Vspec.of_int 7) "b"
                  Dtype.Integer ]
            "Base"
        in
        Model.add m (Model.E_classifier base);
        Model.add m
          (Model.E_classifier
             (Classifier.make ~generals:[ base.Classifier.cl_id ] "Derived"));
        let sys = Xuml.System.create m in
        let d = Xuml.System.instantiate sys "Derived" in
        check Alcotest.bool "b=7" true
          (Asl.Store.get_attr (Xuml.System.store sys) d "b"
          = Some (Asl.Value.V_int 7)));
    tc "broken operation bodies fail at create" (fun () ->
        let m = Model.create "broken" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:[ Classifier.operation ~body:"if if" "bad" ]
                "K"));
        match Xuml.System.create m with
        | _sys -> Alcotest.fail "expected Xuml_error"
        | exception Xuml.System.Xuml_error _ -> ());
    tc "livelocked systems are detected" (fun () ->
        (* two machines ping-ponging forever *)
        let m = Model.create "livelock" in
        let mk_class name =
          Classifier.make ~is_active:true
            ~attributes:[ Classifier.property "peer" (Dtype.Ref (Ident.fresh ())) ]
            name
        in
        let a = mk_class "A" in
        let s = Smachine.simple_state "S" in
        let init = Smachine.pseudostate Smachine.Initial in
        let region =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State s ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:s.Smachine.st_id ();
              Smachine.transition
                ~triggers:[ Smachine.Signal_trigger "ping" ]
                ~effect:"send ping() to self.peer;"
                ~source:s.Smachine.st_id ~target:s.Smachine.st_id ();
            ]
        in
        let sm = Smachine.make ~context:a.Classifier.cl_id "PingSM" [ region ] in
        let a = { a with Classifier.cl_behaviors = [ sm.Smachine.sm_id ] } in
        Model.add m (Model.E_classifier a);
        Model.add m (Model.E_state_machine sm);
        let sys = Xuml.System.create m in
        let o1 = Xuml.System.instantiate sys "A" in
        let o2 = Xuml.System.instantiate sys "A" in
        ignore
          (Asl.Store.set_attr (Xuml.System.store sys) o1 "peer"
             (Asl.Value.V_obj o2));
        ignore
          (Asl.Store.set_attr (Xuml.System.store sys) o2 "peer"
             (Asl.Value.V_obj o1));
        Xuml.System.send sys ~to_:o1 "ping";
        match Xuml.System.run ~max_rounds:50 sys with
        | _n -> Alcotest.fail "expected Xuml_error (livelock)"
        | exception Xuml.System.Xuml_error _ -> ());
    tc "print output is shared and ordered" (fun () ->
        let m = Model.create "out" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:
                  [ Classifier.operation ~body:"print(\"hello\");" "hi" ]
                "K"));
        let sys = Xuml.System.create m in
        let k = Xuml.System.instantiate sys "K" in
        let _v = Xuml.System.call sys ~self_:k "hi" [] in
        check (Alcotest.list Alcotest.string) "out" [ "hello" ]
          (Xuml.System.output sys));
  ]

(* --- MSC conformance ---------------------------------------------------- *)

(* interaction: prod sends item, item, item to cons *)
let expected_interaction ?(names = [ "item"; "item"; "item" ]) () =
  let prod = Interaction.lifeline "prod" in
  let cons = Interaction.lifeline "cons" in
  let body =
    List.map
      (fun name ->
        Interaction.Message
          (Interaction.message ~from_:prod.Interaction.ll_id
             ~to_:cons.Interaction.ll_id name))
      names
  in
  Interaction.make "spec" [ prod; cons ] body

let run_producer_consumer () =
  let sys = Xuml.System.create (build_system ()) in
  let c = Xuml.System.instantiate sys "Consumer" in
  let p = Xuml.System.instantiate sys "Producer" in
  ignore
    (Asl.Store.set_attr (Xuml.System.store sys) p "peer" (Asl.Value.V_obj c));
  Xuml.System.send sys ~to_:p "kick";
  let _events = Xuml.System.run sys in
  sys

let msc_tests =
  [
    tc "message trace records routed signals" (fun () ->
        let sys = run_producer_consumer () in
        let items =
          List.filter
            (fun (_f, _t, n) -> n = "item")
            (Xuml.System.message_trace sys)
        in
        check Alcotest.int "three items" 3 (List.length items);
        List.iter
          (fun (f, t, _n) ->
            check (Alcotest.option Alcotest.string) "from" (Some "Producer#2") f;
            check (Alcotest.option Alcotest.string) "to" (Some "Consumer#1") t)
          items);
    tc "run conforms to the specified scenario" (fun () ->
        let sys = run_producer_consumer () in
        let v =
          Xuml.Msc.check
            ~bindings:[ ("prod", "Producer#2"); ("cons", "Consumer#1") ]
            sys (expected_interaction ())
        in
        check Alcotest.bool "matched" true v.Xuml.Msc.matched);
    tc "wrong message count is rejected" (fun () ->
        let sys = run_producer_consumer () in
        let v =
          Xuml.Msc.check
            ~bindings:[ ("prod", "Producer#2"); ("cons", "Consumer#1") ]
            sys (expected_interaction ~names:[ "item"; "item" ] ())
        in
        check Alcotest.bool "rejected" false v.Xuml.Msc.matched;
        check Alcotest.bool "reason" true (v.Xuml.Msc.reason <> None));
    tc "wrong message name is rejected" (fun () ->
        let sys = run_producer_consumer () in
        let v =
          Xuml.Msc.check
            ~bindings:[ ("prod", "Producer#2"); ("cons", "Consumer#1") ]
            sys (expected_interaction ~names:[ "item"; "item"; "bogus" ] ())
        in
        check Alcotest.bool "rejected" false v.Xuml.Msc.matched);
    tc "partial accepts prefixes" (fun () ->
        let sys = run_producer_consumer () in
        let v =
          Xuml.Msc.check ~partial:true
            ~bindings:[ ("prod", "Producer#2"); ("cons", "Consumer#1") ]
            sys
            (expected_interaction
               ~names:[ "item"; "item"; "item"; "item"; "item" ]
               ())
        in
        check Alcotest.bool "prefix ok" true v.Xuml.Msc.matched);
    tc "loop fragments admit the repetition" (fun () ->
        let sys = run_producer_consumer () in
        let prod = Interaction.lifeline "prod" in
        let cons = Interaction.lifeline "cons" in
        let item =
          Interaction.Message
            (Interaction.message ~from_:prod.Interaction.ll_id
               ~to_:cons.Interaction.ll_id "item")
        in
        let spec =
          Interaction.make "loop-spec" [ prod; cons ]
            [
              Interaction.Fragment
                (Interaction.fragment
                   (Interaction.Loop (1, Some 5))
                   [ Interaction.operand [ item ] ]);
            ]
        in
        let v =
          Xuml.Msc.check
            ~bindings:[ ("prod", "Producer#2"); ("cons", "Consumer#1") ]
            sys spec
        in
        check Alcotest.bool "loop admits 3 items" true v.Xuml.Msc.matched);
    tc "unrelated traffic is ignored" (fun () ->
        (* bind only cons; prod side unbound: nothing observable *)
        let sys = run_producer_consumer () in
        let cons = Interaction.lifeline "cons" in
        let spec = Interaction.make "empty-spec" [ cons ] [] in
        let v =
          Xuml.Msc.check ~bindings:[ ("cons", "Consumer#1") ] sys spec
        in
        check Alcotest.bool "trivially matches" true v.Xuml.Msc.matched);
    tc "stimuli extracts a lifeline's received events" (fun () ->
        let spec = expected_interaction () in
        check
          (Alcotest.list Alcotest.string)
          "cons events" [ "item"; "item"; "item" ]
          (Xuml.Msc.stimuli ~lifeline:"cons" spec);
        check (Alcotest.list Alcotest.string) "prod events" []
          (Xuml.Msc.stimuli ~lifeline:"prod" spec));
    tc "observed communication counts pairs" (fun () ->
        let sys = run_producer_consumer () in
        let pairs = Xuml.Msc.observed_communication sys in
        check Alcotest.bool "producer->consumer x3" true
          (List.mem ("Producer#2", "Consumer#1", 3) pairs));
    tc "clear_message_trace resets observation" (fun () ->
        let sys = run_producer_consumer () in
        Xuml.System.clear_message_trace sys;
        check Alcotest.int "empty" 0
          (List.length (Xuml.System.message_trace sys)));
  ]

(* --- Object-Diagram snapshots --------------------------------------------- *)

let snapshot_tests =
  [
    tc "snapshot captures live objects with slot values" (fun () ->
        let sys = run_producer_consumer () in
        let snap = Xuml.Snapshot.to_model sys in
        check Alcotest.int "two instances" 2
          (List.length (Model.instances snap));
        (match
           List.find_opt
             (fun (i : Instance.t) -> i.Instance.inst_name = "Consumer#1")
             (Model.instances snap)
         with
         | Some inst ->
           check Alcotest.bool "received=6" true
             (Instance.slot_value inst "received" = Some (Vspec.of_int 6))
         | None -> Alcotest.fail "consumer instance missing"));
    tc "object-valued attributes become links" (fun () ->
        let sys = run_producer_consumer () in
        let snap = Xuml.Snapshot.to_model sys in
        let links =
          List.filter_map
            (fun e ->
              match e with
              | Model.E_link l -> Some l
              | _other -> None)
            (Model.elements snap)
        in
        check Alcotest.int "one link (peer)" 1 (List.length links));
    tc "snapshot carries an object diagram" (fun () ->
        let sys = run_producer_consumer () in
        let snap = Xuml.Snapshot.to_model sys in
        match Model.diagrams snap with
        | [ d ] ->
          check Alcotest.bool "kind" true
            (d.Diagram.dg_kind = Diagram.Object_diagram);
          check Alcotest.bool "shows elements" true
            (d.Diagram.dg_elements <> [])
        | _other -> Alcotest.fail "one diagram expected");
    tc "snapshot is well-formed and conformant" (fun () ->
        let sys = run_producer_consumer () in
        check Alcotest.bool "conforms" true (Xuml.Snapshot.snapshot_conforms sys);
        let snap = Xuml.Snapshot.to_model sys in
        check Alcotest.bool "wfr" true (Wfr.errors (Wfr.check snap) = []));
    tc "snapshot round-trips through XMI" (fun () ->
        let sys = run_producer_consumer () in
        let snap = Xuml.Snapshot.to_model sys in
        let snap' = Xmi.Read.model_of_string (Xmi.Write.to_string snap) in
        check Alcotest.bool "lossless" true (Model.equal snap snap'));
    tc "deleted objects are omitted" (fun () ->
        let m = Model.create "del" in
        Model.add m (Model.E_classifier (Classifier.make "K"));
        let sys = Xuml.System.create m in
        let k1 = Xuml.System.instantiate sys "K" in
        let _k2 = Xuml.System.instantiate sys "K" in
        ignore (Asl.Store.delete (Xuml.System.store sys) k1);
        let snap = Xuml.Snapshot.to_model sys in
        check Alcotest.int "one left" 1 (List.length (Model.instances snap)));
  ]

(* --- invariants ------------------------------------------------------------ *)

let invariant_model () =
  let m = Model.create "inv" in
  let base =
    Classifier.make
      ~operations:
        [
          Classifier.operation ~is_query:true ~body:"return self.x >= 0;"
            "inv_non_negative";
        ]
      ~attributes:[ Classifier.property ~default:(Vspec.of_int 1) "x" Dtype.Integer ]
      "Base"
  in
  Model.add m (Model.E_classifier base);
  Model.add m
    (Model.E_classifier
       (Classifier.make ~generals:[ base.Classifier.cl_id ]
          ~operations:
            [
              Classifier.operation ~is_query:true
                ~body:"return self.x < 100;" "inv_bounded";
            ]
          "Derived"));
  m

let invariant_tests =
  [
    tc "invariant names include inherited ones" (fun () ->
        let m = invariant_model () in
        check
          (Alcotest.list Alcotest.string)
          "both" [ "inv_bounded"; "inv_non_negative" ]
          (List.sort compare (Xuml.Invariants.invariant_names m "Derived")));
    tc "holding invariants report nothing" (fun () ->
        let sys = Xuml.System.create (invariant_model ()) in
        let _d = Xuml.System.instantiate sys "Derived" in
        check Alcotest.int "no violations" 0
          (List.length (Xuml.Invariants.check sys)));
    tc "violated invariants are reported with the object" (fun () ->
        let sys = Xuml.System.create (invariant_model ()) in
        let d = Xuml.System.instantiate sys "Derived" in
        ignore
          (Asl.Store.set_attr (Xuml.System.store sys) d "x"
             (Asl.Value.V_int (-5)));
        match Xuml.Invariants.check sys with
        | [ v ] ->
          check Alcotest.string "object" "Derived#1" v.Xuml.Invariants.viol_object;
          check Alcotest.string "invariant" "inv_non_negative"
            v.Xuml.Invariants.viol_invariant
        | other ->
          Alcotest.fail
            (Printf.sprintf "one violation expected, got %d"
               (List.length other)));
    tc "both invariants can fail at once" (fun () ->
        let sys = Xuml.System.create (invariant_model ()) in
        let d = Xuml.System.instantiate sys "Derived" in
        ignore
          (Asl.Store.set_attr (Xuml.System.store sys) d "x"
             (Asl.Value.V_int 500));
        (* x=500 violates inv_bounded only *)
        check Alcotest.int "one" 1
          (List.length (Xuml.Invariants.check_object sys d)));
    tc "non-boolean invariants are themselves violations" (fun () ->
        let m = Model.create "bad" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:
                  [ Classifier.operation ~body:"return 42;" "inv_oops" ]
                "K"));
        let sys = Xuml.System.create m in
        let _k = Xuml.System.instantiate sys "K" in
        match Xuml.Invariants.check sys with
        | [ v ] ->
          check Alcotest.bool "reason mentions Boolean" true
            (String.length v.Xuml.Invariants.viol_reason > 0)
        | _other -> Alcotest.fail "one violation expected");
  ]

let () =
  Alcotest.run "xuml"
    [
      ("system", system_tests); ("msc", msc_tests);
      ("snapshot", snapshot_tests); ("invariants", invariant_tests);
    ]
