(* XMI round-trip tests: a hand-built model covering every element kind
   plus property tests over generated models. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* Build a model exercising every metamodel corner. *)
let kitchen_sink () =
  let m = Model.create "sink" in
  (* classifiers of every kind *)
  let itf =
    Classifier.make ~kind:Classifier.Interface
      ~operations:
        [
          Classifier.operation
            ~params:
              [
                Classifier.parameter "x" Dtype.Integer;
                Classifier.parameter ~direction:Classifier.Return "r"
                  Dtype.Boolean;
              ]
            "check";
        ]
      "IChecker"
  in
  Model.add m (Model.E_classifier itf);
  let enum =
    Classifier.make ~kind:(Classifier.Enumeration [ "Red"; "Green" ]) "Color"
  in
  Model.add m (Model.E_classifier enum);
  let sig_cl = Classifier.make ~kind:Classifier.Signal "Ping" in
  Model.add m (Model.E_classifier sig_cl);
  let actor = Classifier.make ~kind:Classifier.Actor_kind "User" in
  Model.add m (Model.E_classifier actor);
  let base = Classifier.make ~is_abstract:true "Base" in
  Model.add m (Model.E_classifier base);
  let cls =
    Classifier.make ~is_active:true
      ~attributes:
        [
          Classifier.property ~mult:Mult.optional
            ~default:(Vspec.of_int 3) ~visibility:Classifier.Private
            ~is_static:true ~is_read_only:true
            ~aggregation:Classifier.Composite "count" Dtype.Integer;
          Classifier.property "color" (Dtype.Ref enum.Classifier.cl_id);
          Classifier.property "label" Dtype.String_type;
        ]
      ~operations:
        [
          Classifier.operation ~visibility:Classifier.Protected ~is_query:true
            ~body:"return 1;" "peek";
        ]
      ~receptions:
        [ { Classifier.recv_id = Ident.fresh ();
            recv_signal = sig_cl.Classifier.cl_id } ]
      ~generals:[ base.Classifier.cl_id ]
      ~realized:[ itf.Classifier.cl_id ]
      "Widget"
  in
  Model.add m (Model.E_classifier cls);
  Model.add m
    (Model.E_association
       (Classifier.binary_association ~name:"owns"
          ~source:(cls.Classifier.cl_id, Mult.one, true)
          ~target:(base.Classifier.cl_id, Mult.many, false)
          ()));
  Model.add m
    (Model.E_package
       (Pkg.make
          ~owned:[ cls.Classifier.cl_id ]
          ~imports:[] "pkg"));
  (* state machine with all pseudostate kinds *)
  let mk_ps kind = Smachine.pseudostate kind in
  let s1 =
    Smachine.simple_state ~entry:"e();" ~exit_:"x();" ~do_:"d();"
      ~deferred:[ Smachine.Signal_trigger "later" ]
      "S1"
  in
  let s2 = Smachine.simple_state "S2" in
  let inner_region =
    Smachine.region ~name:"inner"
      [ Smachine.State s2; Smachine.Pseudo (mk_ps Smachine.Shallow_history) ]
      []
  in
  let comp = Smachine.composite_state "Comp" [ inner_region ] in
  let init = mk_ps Smachine.Initial in
  let fin = Smachine.final () in
  let all_pseudos =
    List.map mk_ps
      [
        Smachine.Deep_history; Smachine.Join; Smachine.Fork;
        Smachine.Junction; Smachine.Choice; Smachine.Entry_point;
        Smachine.Exit_point; Smachine.Terminate;
      ]
  in
  let region =
    Smachine.region ~name:"top"
      (Smachine.Pseudo init :: Smachine.State s1 :: Smachine.State comp
      :: Smachine.Final fin
      :: List.map (fun p -> Smachine.Pseudo p) all_pseudos)
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:s1.Smachine.st_id ();
        Smachine.transition
          ~triggers:
            [
              Smachine.Signal_trigger "go"; Smachine.Time_trigger 5;
              Smachine.Any_trigger; Smachine.Completion;
            ]
          ~guard:"x > 0" ~effect:"x := x - 1;" ~kind:Smachine.Local
          ~source:s1.Smachine.st_id ~target:comp.Smachine.st_id ();
      ]
  in
  Model.add m
    (Model.E_state_machine
       (Smachine.make ~context:cls.Classifier.cl_id "machine" [ region ]));
  (* activity with every node kind *)
  let nodes =
    [
      Activityg.initial ();
      Activityg.action ~body:"x := 1;" "act";
      Activityg.call_behavior ~behavior:(Ident.of_string "beh") "call";
      Activityg.send_signal ~event:"ping" "send";
      Activityg.accept_event ~event:"pong" "recv";
      Activityg.object_node ~upper_bound:4 "buf" Dtype.Integer;
      Activityg.fork "f";
      Activityg.join "j";
      Activityg.decision "d";
      Activityg.merge "mg";
      Activityg.flow_final ();
      Activityg.activity_final ();
    ]
  in
  let n0 = List.nth nodes 0 in
  let n1 = List.nth nodes 1 in
  let edges =
    [
      Activityg.edge ~guard:"ok" ~weight:2 ~kind:Activityg.Object_flow
        ~source:(Activityg.node_id n0) ~target:(Activityg.node_id n1) ();
    ]
  in
  Model.add m (Model.E_activity (Activityg.make "flow" nodes edges));
  (* interaction with fragments *)
  let l1 = Interaction.lifeline ~represents:cls.Classifier.cl_id "a" in
  let l2 = Interaction.lifeline "b" in
  let msg name sort =
    Interaction.Message
      (Interaction.message ~sort
         ~arguments:[ Vspec.of_int 1; Vspec.of_string_value "s" ]
         ~from_:l1.Interaction.ll_id ~to_:l2.Interaction.ll_id name)
  in
  let body =
    [
      msg "m1" Interaction.Synch_call;
      Interaction.Fragment
        (Interaction.fragment
           (Interaction.Loop (1, Some 3))
           [
             Interaction.operand ~guard:"x > 0"
               [ msg "m2" Interaction.Reply ];
           ]);
      Interaction.Fragment
        (Interaction.fragment
           (Interaction.Consider [ "m1"; "m2" ])
           [ Interaction.operand [] ]);
    ]
  in
  Model.add m (Model.E_interaction (Interaction.make "seq" [ l1; l2 ] body));
  (* use case *)
  let uc_base = Usecase.make "Login" in
  Model.add m (Model.E_use_case uc_base);
  Model.add m
    (Model.E_use_case
       (Usecase.make
          ~subject:cls.Classifier.cl_id
          ~actors:[ actor.Classifier.cl_id ]
          ~includes:[ uc_base.Usecase.uc_id ]
          ~extends:[ Usecase.extend ~condition:"vip" uc_base.Usecase.uc_id ]
          "Order"));
  (* component with ports, parts, connectors *)
  let inner_port = Component.port ~provided:[ itf.Classifier.cl_id ] "pi" in
  let inner_comp = Component.make ~ports:[ inner_port ] "Inner" in
  Model.add m (Model.E_component inner_comp);
  let outer_port =
    Component.port ~required:[ itf.Classifier.cl_id ] ~is_behavior:true "po"
  in
  let part = Component.part "u0" inner_comp.Component.cmp_id in
  let conn =
    Component.delegation ~name:"d0" ~outer:outer_port.Component.port_id
      ~inner:(Some part.Component.part_id, inner_port.Component.port_id)
      ()
  in
  Model.add m
    (Model.E_component
       (Component.make ~ports:[ outer_port ] ~parts:[ part ]
          ~connectors:[ conn ] "Outer"));
  (* instances and links *)
  let i1 =
    Instance.make ~classifier:cls.Classifier.cl_id
      ~slots:[ Instance.slot "count" [ Vspec.of_int 2 ] ]
      "w1"
  in
  Model.add m (Model.E_instance i1);
  let i2 = Instance.make "w2" in
  Model.add m (Model.E_instance i2);
  Model.add m
    (Model.E_link (Instance.link i1.Instance.inst_id i2.Instance.inst_id));
  (* deployment *)
  let node =
    Deployment.node ~kind:Deployment.Device ~nested:[] "board"
  in
  Model.add m (Model.E_deployment_node node);
  let art =
    Deployment.artifact ~manifests:[ cls.Classifier.cl_id ] "fw.bin"
  in
  Model.add m (Model.E_artifact art);
  Model.add m
    (Model.E_deployment
       (Deployment.deploy ~artifact:art.Deployment.art_id
          ~target:node.Deployment.dn_id ()));
  let node2 = Deployment.node "host" in
  Model.add m (Model.E_deployment_node node2);
  Model.add m
    (Model.E_communication_path
       (Deployment.communication_path node.Deployment.dn_id
          node2.Deployment.dn_id));
  (* profile + application *)
  let ster =
    Profile.stereotype ~extends:[ Profile.M_class ]
      ~tags:[ Profile.tag ~default:(Vspec.of_int 1) "area" Dtype.Integer ]
      "hw"
  in
  Model.add m (Model.E_profile (Profile.make "soc" [ ster ]));
  Model.add_application m
    (Profile.apply
       ~values:[ ("area", Vspec.of_int 42) ]
       ~stereotype:ster.Profile.ster_id ~element:cls.Classifier.cl_id ());
  (* diagrams *)
  Model.add_diagram m
    (Diagram.make ~elements:[ cls.Classifier.cl_id ] Diagram.Class_diagram
       "classes");
  Model.add_diagram m
    (Diagram.make Diagram.Timing_diagram "timing");
  m

let roundtrip m =
  Xmi.Read.model_of_string (Xmi.Write.to_string m)

let basic_tests =
  [
    tc "kitchen-sink model round-trips" (fun () ->
        let m = kitchen_sink () in
        let m' = roundtrip m in
        check Alcotest.bool "equal" true (Model.equal m m'));
    tc "round-trip preserves element order" (fun () ->
        let m = kitchen_sink () in
        let m' = roundtrip m in
        check
          (Alcotest.list Alcotest.string)
          "ids"
          (List.map (fun e -> Model.element_id e) (Model.elements m))
          (List.map (fun e -> Model.element_id e) (Model.elements m')));
    tc "export is deterministic" (fun () ->
        let m = kitchen_sink () in
        check Alcotest.string "same" (Xmi.Write.to_string m)
          (Xmi.Write.to_string m));
    tc "write-read-write is idempotent" (fun () ->
        let m = kitchen_sink () in
        let s1 = Xmi.Write.to_string m in
        let s2 = Xmi.Write.to_string (Xmi.Read.model_of_string s1) in
        check Alcotest.string "same text" s1 s2);
    tc "empty model round-trips" (fun () ->
        let m = Model.create "empty" in
        check Alcotest.bool "equal" true (Model.equal m (roundtrip m)));
    tc "special characters in names survive" (fun () ->
        let m = Model.create "m" in
        Model.add m (Model.E_classifier (Classifier.make "A<B> & \"C\"'s"));
        check Alcotest.bool "equal" true (Model.equal m (roundtrip m)));
    tc "opaque bodies with newlines survive" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:
                  [
                    Classifier.operation
                      ~body:"x := 1;\nif x > 0 then\n  x := 2;\nend;" "f";
                  ]
                "A"));
        check Alcotest.bool "equal" true (Model.equal m (roundtrip m)));
    tc "import rejects non-XMI documents" (fun () ->
        match Xmi.Read.model_of_string "<foo/>" with
        | _m -> Alcotest.fail "expected Import_error"
        | exception Xmi.Read.Import_error _ -> ());
    tc "import rejects missing model" (fun () ->
        match Xmi.Read.model_of_string "<xmi:XMI/>" with
        | _m -> Alcotest.fail "expected Import_error"
        | exception Xmi.Read.Import_error _ -> ());
    tc "import rejects unknown element types" (fun () ->
        let text =
          "<xmi:XMI><uml:Model name=\"m\">\n\
           <packagedElement xmi:type=\"uml:Alien\" xmi:id=\"e1\" name=\"x\"/>\n\
           </uml:Model></xmi:XMI>"
        in
        match Xmi.Read.model_of_string text with
        | _m -> Alcotest.fail "expected Import_error"
        | exception Xmi.Read.Import_error _ -> ());
  ]

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated structural models round-trip"
         ~count:20
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = Workload.Gen_model.structural ~seed ~classes:15 in
           Model.equal m (roundtrip m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated machines round-trip" ~count:20
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = Model.create "m" in
           Model.add m
             (Model.E_state_machine
                (Workload.Gen_statechart.hierarchical ~seed ~depth:3
                   ~breadth:2 ~events:3));
           Model.equal m (roundtrip m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"write-read-write is idempotent on generated models" ~count:15
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = Workload.Gen_model.structural ~seed ~classes:10 in
           let s1 = Xmi.Write.to_string m in
           let s2 = Xmi.Write.to_string (Xmi.Read.model_of_string s1) in
           s1 = s2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated activities round-trip" ~count:20
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let m = Model.create "m" in
           Model.add m
             (Model.E_activity
                (Workload.Gen_activity.with_decisions ~seed ~size:15
                   ~max_width:3));
           Model.equal m (roundtrip m)));
  ]

let () =
  Alcotest.run "xmi"
    [ ("roundtrip", basic_tests); ("properties", property_tests) ]
