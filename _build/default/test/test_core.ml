(* Unit and property tests for the UML metamodel kernel (lib/core),
   excluding the well-formedness checker (see test_wfr.ml). *)

open Uml

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* --- Ident ------------------------------------------------------------ *)

let ident_tests =
  [
    tc "fresh is unique" (fun () ->
        let a = Ident.fresh () in
        let b = Ident.fresh () in
        check Alcotest.bool "differ" false (Ident.equal a b));
    tc "prefix is used" (fun () ->
        let a = Ident.fresh ~prefix:"zz" () in
        check Alcotest.bool "prefix" true
          (String.length (Ident.to_string a) > 2
          && String.sub (Ident.to_string a) 0 2 = "zz"));
    tc "of_string round-trips" (fun () ->
        check Alcotest.string "same" "abc" (Ident.to_string (Ident.of_string "abc")));
  ]

(* --- Mult ------------------------------------------------------------- *)

let mult_tests =
  [
    tc "one" (fun () ->
        check Alcotest.string "1" "1" (Mult.to_string Mult.one));
    tc "optional" (fun () ->
        check Alcotest.string "0..1" "0..1" (Mult.to_string Mult.optional));
    tc "many" (fun () ->
        check Alcotest.string "0..*" "0..*" (Mult.to_string Mult.many));
    tc "range to_string" (fun () ->
        check Alcotest.string "2..7" "2..7"
          (Mult.to_string (Mult.make 2 (Mult.Bounded 7))));
    tc "make rejects inverted bounds" (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument
          "Mult.make: lower/upper out of order") (fun () ->
            ignore (Mult.make 3 (Mult.Bounded 2))));
    tc "make rejects negative lower" (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument
          "Mult.make: lower/upper out of order") (fun () ->
            ignore (Mult.make (-1) Mult.Unbounded)));
    tc "admits inside bounds" (fun () ->
        let m = Mult.make 1 (Mult.Bounded 3) in
        check Alcotest.bool "0" false (Mult.admits m 0);
        check Alcotest.bool "1" true (Mult.admits m 1);
        check Alcotest.bool "3" true (Mult.admits m 3);
        check Alcotest.bool "4" false (Mult.admits m 4));
    tc "unbounded admits large" (fun () ->
        check Alcotest.bool "ok" true (Mult.admits Mult.many 1_000_000));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"admits agrees with bounds" ~count:200
         QCheck.(tup3 (int_range 0 10) (int_range 0 20) (int_range 0 25))
         (fun (lo, extra, n) ->
           let m = Mult.make lo (Mult.Bounded (lo + extra)) in
           Mult.admits m n = (n >= lo && n <= lo + extra)));
  ]

(* --- Vspec / Dtype ------------------------------------------------------ *)

let value_tests =
  [
    tc "int literal" (fun () ->
        check Alcotest.string "42" "42" (Vspec.to_string (Vspec.of_int 42)));
    tc "bool literal" (fun () ->
        check Alcotest.string "true" "true"
          (Vspec.to_string (Vspec.of_bool true)));
    tc "string literal quoted" (fun () ->
        check Alcotest.string "quoted" "\"hi\""
          (Vspec.to_string (Vspec.of_string_value "hi")));
    tc "null" (fun () ->
        check Alcotest.string "null" "null" (Vspec.to_string Vspec.Null_literal));
    tc "opaque passes through" (fun () ->
        check Alcotest.string "expr" "x + 1"
          (Vspec.to_string (Vspec.Opaque_expression "x + 1")));
    tc "primitive names" (fun () ->
        check Alcotest.string "Integer" "Integer" (Dtype.to_string Dtype.Integer);
        check Alcotest.string "Boolean" "Boolean" (Dtype.to_string Dtype.Boolean);
        check Alcotest.string "UnlimitedNatural" "UnlimitedNatural"
          (Dtype.to_string Dtype.Unlimited_natural));
    tc "is_primitive" (fun () ->
        check Alcotest.bool "int" true (Dtype.is_primitive Dtype.Integer);
        check Alcotest.bool "ref" false
          (Dtype.is_primitive (Dtype.Ref (Ident.of_string "x"))));
  ]

(* --- Classifier --------------------------------------------------------- *)

let classifier_tests =
  [
    tc "make defaults to concrete class" (fun () ->
        let c = Classifier.make "A" in
        check Alcotest.bool "kind" true (c.Classifier.cl_kind = Classifier.Class);
        check Alcotest.bool "abstract" false c.Classifier.cl_is_abstract);
    tc "find_attribute" (fun () ->
        let c =
          Classifier.make
            ~attributes:[ Classifier.property "x" Dtype.Integer ]
            "A"
        in
        check Alcotest.bool "found" true
          (Classifier.find_attribute c "x" <> None);
        check Alcotest.bool "missing" true
          (Classifier.find_attribute c "y" = None));
    tc "find_operation" (fun () ->
        let c =
          Classifier.make ~operations:[ Classifier.operation "go" ] "A"
        in
        check Alcotest.bool "found" true (Classifier.find_operation c "go" <> None));
    tc "result_type defaults to void" (fun () ->
        check Alcotest.bool "void" true
          (Classifier.result_type (Classifier.operation "f") = Dtype.Void));
    tc "result_type uses return parameter" (fun () ->
        let op =
          Classifier.operation
            ~params:
              [ Classifier.parameter ~direction:Classifier.Return "r"
                  Dtype.Integer ]
            "f"
        in
        check Alcotest.bool "int" true
          (Classifier.result_type op = Dtype.Integer));
    tc "binary association has two ends" (fun () ->
        let a = Classifier.make "A" in
        let b = Classifier.make "B" in
        let assoc =
          Classifier.binary_association
            ~source:(a.Classifier.cl_id, Mult.one, true)
            ~target:(b.Classifier.cl_id, Mult.many, false)
            ()
        in
        check Alcotest.int "ends" 2 (List.length assoc.Classifier.assoc_ends));
  ]

(* --- Pkg ---------------------------------------------------------------- *)

let pkg_tests =
  [
    tc "add_owned appends" (fun () ->
        let p = Pkg.make "p" in
        let p = Pkg.add_owned p (Ident.of_string "a") in
        let p = Pkg.add_owned p (Ident.of_string "b") in
        check (Alcotest.list Alcotest.string) "order" [ "a"; "b" ]
          p.Pkg.pkg_owned);
    tc "qualified name" (fun () ->
        let p = Pkg.make "Inner" in
        check Alcotest.string "qname" "Top::Mid::Inner"
          (Pkg.qualified_name ~parents:[ "Top"; "Mid" ] p));
  ]

(* --- Smachine ------------------------------------------------------------ *)

let nested_machine () =
  let a1 = Smachine.simple_state "A1" in
  let a2 = Smachine.simple_state "A2" in
  let init_inner = Smachine.pseudostate Smachine.Initial in
  let inner =
    Smachine.region
      [ Smachine.Pseudo init_inner; Smachine.State a1; Smachine.State a2 ]
      [
        Smachine.transition ~source:init_inner.Smachine.ps_id
          ~target:a1.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "n" ]
          ~source:a1.Smachine.st_id ~target:a2.Smachine.st_id ();
      ]
  in
  let comp = Smachine.composite_state "C" [ inner ] in
  let idle = Smachine.simple_state "Idle" in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State comp; Smachine.State idle ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:comp.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "p" ]
          ~source:comp.Smachine.st_id ~target:idle.Smachine.st_id ();
      ]
  in
  Smachine.make "m" [ top ]

let smachine_tests =
  [
    tc "all_vertices is recursive" (fun () ->
        (* top: init, C, Idle; inner: init, A1, A2 *)
        check Alcotest.int "count" 6
          (List.length (Smachine.all_vertices (nested_machine ()))));
    tc "all_transitions is recursive" (fun () ->
        check Alcotest.int "count" 4
          (List.length (Smachine.all_transitions (nested_machine ()))));
    tc "all_regions outer first" (fun () ->
        let rs = Smachine.all_regions (nested_machine ()) in
        check Alcotest.int "count" 2 (List.length rs));
    tc "find_vertex by name" (fun () ->
        let sm = nested_machine () in
        let a2 =
          List.find
            (fun v -> Smachine.vertex_name v = "A2")
            (Smachine.all_vertices sm)
        in
        check Alcotest.bool "found" true
          (Smachine.find_vertex sm (Smachine.vertex_id a2) <> None));
    tc "composite and orthogonal" (fun () ->
        let r1 = Smachine.region [] [] in
        let r2 = Smachine.region [] [] in
        let c1 = Smachine.composite_state "c1" [ r1 ] in
        let c2 = Smachine.composite_state "c2" [ r1; r2 ] in
        let s = Smachine.simple_state "s" in
        check Alcotest.bool "c1 composite" true (Smachine.is_composite c1);
        check Alcotest.bool "c1 not orthogonal" false (Smachine.is_orthogonal c1);
        check Alcotest.bool "c2 orthogonal" true (Smachine.is_orthogonal c2);
        check Alcotest.bool "s leaf" false (Smachine.is_composite s));
  ]

(* --- Activityg ------------------------------------------------------------ *)

let activity_tests =
  [
    tc "incoming and outgoing" (fun () ->
        let a = Activityg.action "a" in
        let b = Activityg.action "b" in
        let e =
          Activityg.edge ~source:(Activityg.node_id a)
            ~target:(Activityg.node_id b) ()
        in
        let act = Activityg.make "act" [ a; b ] [ e ] in
        check Alcotest.int "out a" 1
          (List.length (Activityg.outgoing act (Activityg.node_id a)));
        check Alcotest.int "in b" 1
          (List.length (Activityg.incoming act (Activityg.node_id b)));
        check Alcotest.int "in a" 0
          (List.length (Activityg.incoming act (Activityg.node_id a))));
    tc "find_node" (fun () ->
        let a = Activityg.action "a" in
        let act = Activityg.make "act" [ a ] [] in
        check Alcotest.bool "found" true
          (Activityg.find_node act (Activityg.node_id a) <> None));
    tc "default edge weight is one" (fun () ->
        let a = Activityg.action "a" in
        let e =
          Activityg.edge ~source:(Activityg.node_id a)
            ~target:(Activityg.node_id a) ()
        in
        check Alcotest.int "w" 1 e.Activityg.ed_weight);
  ]

(* --- Interaction ------------------------------------------------------------ *)

let interaction_tests =
  let ll1 = Interaction.lifeline "a" in
  let ll2 = Interaction.lifeline "b" in
  let msg name =
    Interaction.message ~from_:ll1.Interaction.ll_id
      ~to_:ll2.Interaction.ll_id name
  in
  [
    tc "all_messages descends into fragments" (fun () ->
        let frag =
          Interaction.fragment Interaction.Alt
            [
              Interaction.operand [ Interaction.Message (msg "m2") ];
              Interaction.operand [ Interaction.Message (msg "m3") ];
            ]
        in
        let i =
          Interaction.make "i" [ ll1; ll2 ]
            [ Interaction.Message (msg "m1"); Interaction.Fragment frag ]
        in
        check Alcotest.int "count" 3 (Interaction.message_count i));
    tc "alt yields one trace per operand" (fun () ->
        let frag =
          Interaction.fragment Interaction.Alt
            [
              Interaction.operand [ Interaction.Message (msg "x") ];
              Interaction.operand [ Interaction.Message (msg "y") ];
            ]
        in
        let i = Interaction.make "i" [ ll1; ll2 ] [ Interaction.Fragment frag ] in
        check Alcotest.int "traces" 2 (List.length (Interaction.traces i)));
    tc "opt adds the empty trace" (fun () ->
        let frag =
          Interaction.fragment Interaction.Opt
            [ Interaction.operand [ Interaction.Message (msg "x") ] ]
        in
        let i = Interaction.make "i" [ ll1; ll2 ] [ Interaction.Fragment frag ] in
        check Alcotest.int "traces" 2 (List.length (Interaction.traces i)));
    tc "par interleaves" (fun () ->
        let frag =
          Interaction.fragment Interaction.Par
            [
              Interaction.operand [ Interaction.Message (msg "x") ];
              Interaction.operand [ Interaction.Message (msg "y") ];
            ]
        in
        let i = Interaction.make "i" [ ll1; ll2 ] [ Interaction.Fragment frag ] in
        check Alcotest.int "traces" 2 (List.length (Interaction.traces i)));
    tc "loop repeats between bounds" (fun () ->
        let frag =
          Interaction.fragment
            (Interaction.Loop (1, Some 3))
            [ Interaction.operand [ Interaction.Message (msg "x") ] ]
        in
        let i = Interaction.make "i" [ ll1; ll2 ] [ Interaction.Fragment frag ] in
        let traces = Interaction.traces i in
        let lengths = List.sort compare (List.map List.length traces) in
        check (Alcotest.list Alcotest.int) "lengths" [ 1; 2; 3 ] lengths);
    tc "strict sequences messages" (fun () ->
        let i =
          Interaction.make "i" [ ll1; ll2 ]
            [ Interaction.Message (msg "m1"); Interaction.Message (msg "m2") ]
        in
        match Interaction.traces i with
        | [ [ m1; m2 ] ] ->
          check Alcotest.string "order" "m1" m1.Interaction.msg_name;
          check Alcotest.string "order" "m2" m2.Interaction.msg_name
        | _other -> Alcotest.fail "expected a single two-message trace");
    tc "trace enumeration honors max_traces" (fun () ->
        (* 6 nested alt(2) fragments = 64 traces; cap at 10 *)
        let operand_pair () =
          Interaction.fragment Interaction.Alt
            [
              Interaction.operand [ Interaction.Message (msg "x") ];
              Interaction.operand [ Interaction.Message (msg "y") ];
            ]
        in
        let body =
          List.init 6 (fun _ -> Interaction.Fragment (operand_pair ()))
        in
        let i = Interaction.make "i" [ ll1; ll2 ] body in
        check Alcotest.bool "capped" true
          (List.length (Interaction.traces ~max_traces:10 i) <= 10);
        check Alcotest.int "uncapped is 64" 64
          (List.length (Interaction.traces i)));
    tc "communication pairs count per direction" (fun () ->
        let back =
          Interaction.message ~from_:ll2.Interaction.ll_id
            ~to_:ll1.Interaction.ll_id "ack"
        in
        let i =
          Interaction.make "i" [ ll1; ll2 ]
            [
              Interaction.Message (msg "m1");
              Interaction.Message (msg "m2");
              Interaction.Message back;
            ]
        in
        check
          (Alcotest.list (Alcotest.triple Alcotest.string Alcotest.string Alcotest.int))
          "pairs"
          [ ("a", "b", 2); ("b", "a", 1) ]
          (Interaction.communication_pairs i));
    tc "neg contributes no behavior" (fun () ->
        let frag =
          Interaction.fragment Interaction.Neg
            [ Interaction.operand [ Interaction.Message (msg "x") ] ]
        in
        let i = Interaction.make "i" [ ll1; ll2 ] [ Interaction.Fragment frag ] in
        check Alcotest.bool "empty trace" true
          (Interaction.traces i = [ [] ]));
  ]

(* --- Usecase ------------------------------------------------------------ *)

let usecase_tests =
  [
    tc "include closure is transitive" (fun () ->
        let c = Usecase.make "c" in
        let b = Usecase.make ~includes:[ c.Usecase.uc_id ] "b" in
        let a = Usecase.make ~includes:[ b.Usecase.uc_id ] "a" in
        let closure = Usecase.include_closure ~all:[ a; b; c ] a in
        check Alcotest.bool "b" true (Ident.Set.mem b.Usecase.uc_id closure);
        check Alcotest.bool "c" true (Ident.Set.mem c.Usecase.uc_id closure);
        check Alcotest.bool "self" false (Ident.Set.mem a.Usecase.uc_id closure));
  ]

(* --- Component ------------------------------------------------------------ *)

let component_tests =
  [
    tc "provided_interfaces dedups" (fun () ->
        let i1 = Ident.of_string "i1" in
        let p1 = Component.port ~provided:[ i1 ] "p1" in
        let p2 = Component.port ~provided:[ i1 ] "p2" in
        let c = Component.make ~ports:[ p1; p2 ] "C" in
        check Alcotest.int "one" 1
          (List.length (Component.provided_interfaces c)));
    tc "find_port and find_part" (fun () ->
        let p = Component.port "io" in
        let part = Component.part "u0" (Ident.of_string "t") in
        let c = Component.make ~ports:[ p ] ~parts:[ part ] "C" in
        check Alcotest.bool "port" true (Component.find_port c "io" <> None);
        check Alcotest.bool "part" true (Component.find_part c "u0" <> None));
    tc "delegation has outer end without part" (fun () ->
        let conn =
          Component.delegation ~outer:(Ident.of_string "po")
            ~inner:(Some (Ident.of_string "pt"), Ident.of_string "pi")
            ()
        in
        match conn.Component.conn_ends with
        | [ e1; e2 ] ->
          check Alcotest.bool "outer" true (e1.Component.cend_part = None);
          check Alcotest.bool "inner" true (e2.Component.cend_part <> None)
        | _other -> Alcotest.fail "two ends expected");
  ]

(* --- Instance ------------------------------------------------------------ *)

let instance_tests =
  [
    tc "conforms_to accepts matching slots" (fun () ->
        let cl =
          Classifier.make
            ~attributes:[ Classifier.property "x" Dtype.Integer ]
            "A"
        in
        let i =
          Instance.make ~classifier:cl.Classifier.cl_id
            ~slots:[ Instance.slot "x" [ Vspec.of_int 1 ] ]
            "a"
        in
        check Alcotest.bool "ok" true (Instance.conforms_to i cl));
    tc "conforms_to rejects unknown feature" (fun () ->
        let cl = Classifier.make "A" in
        let i = Instance.make ~slots:[ Instance.slot "zz" [] ] "a" in
        check Alcotest.bool "no" false (Instance.conforms_to i cl));
    tc "conforms_to respects multiplicity" (fun () ->
        let cl =
          Classifier.make
            ~attributes:
              [ Classifier.property ~mult:Mult.one "x" Dtype.Integer ]
            "A"
        in
        let i =
          Instance.make
            ~slots:[ Instance.slot "x" [ Vspec.of_int 1; Vspec.of_int 2 ] ]
            "a"
        in
        check Alcotest.bool "too many" false (Instance.conforms_to i cl));
    tc "slot_value returns first" (fun () ->
        let i =
          Instance.make ~slots:[ Instance.slot "x" [ Vspec.of_int 7 ] ] "a"
        in
        check Alcotest.bool "7" true
          (Instance.slot_value i "x" = Some (Vspec.of_int 7)));
  ]

(* --- Diagram ------------------------------------------------------------ *)

let diagram_tests =
  [
    tc "there are exactly 13 diagram kinds" (fun () ->
        check Alcotest.int "13" 13 (List.length Diagram.all_kinds));
    tc "kind names are distinct" (fun () ->
        let names = List.map Diagram.kind_name Diagram.all_kinds in
        check Alcotest.int "unique" 13
          (List.length (List.sort_uniq compare names)));
    tc "aspect classification" (fun () ->
        check Alcotest.bool "class structural" true
          (Diagram.aspect_of Diagram.Class_diagram = Diagram.Structural);
        check Alcotest.bool "deployment physical" true
          (Diagram.aspect_of Diagram.Deployment_diagram = Diagram.Physical);
        check Alcotest.bool "sequence behavioral" true
          (Diagram.aspect_of Diagram.Sequence_diagram = Diagram.Behavioral));
  ]

(* --- Profile ------------------------------------------------------------ *)

let profile_tests =
  [
    tc "tag_value falls back to default" (fun () ->
        let s =
          Profile.stereotype
            ~tags:[ Profile.tag ~default:(Vspec.of_int 5) "w" Dtype.Integer ]
            "st"
        in
        let app =
          Profile.apply ~stereotype:s.Profile.ster_id
            ~element:(Ident.of_string "e") ()
        in
        check Alcotest.bool "default" true
          (Profile.tag_value s app "w" = Some (Vspec.of_int 5)));
    tc "tag_value prefers supplied value" (fun () ->
        let s =
          Profile.stereotype
            ~tags:[ Profile.tag ~default:(Vspec.of_int 5) "w" Dtype.Integer ]
            "st"
        in
        let app =
          Profile.apply
            ~values:[ ("w", Vspec.of_int 9) ]
            ~stereotype:s.Profile.ster_id ~element:(Ident.of_string "e") ()
        in
        check Alcotest.bool "value" true
          (Profile.tag_value s app "w" = Some (Vspec.of_int 9)));
    tc "find_stereotype" (fun () ->
        let p = Profile.make "p" [ Profile.stereotype "hw" ] in
        check Alcotest.bool "found" true (Profile.find_stereotype p "hw" <> None);
        check Alcotest.bool "missing" true (Profile.find_stereotype p "sw" = None));
  ]

(* --- Model ------------------------------------------------------------ *)

let model_tests =
  [
    tc "add then find" (fun () ->
        let m = Model.create "m" in
        let c = Classifier.make "A" in
        Model.add m (Model.E_classifier c);
        check Alcotest.bool "found" true (Model.mem m c.Classifier.cl_id);
        check Alcotest.int "size" 1 (Model.size m));
    tc "duplicate identifiers are rejected" (fun () ->
        let m = Model.create "m" in
        let c = Classifier.make "A" in
        Model.add m (Model.E_classifier c);
        match Model.add m (Model.E_classifier c) with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "replace keeps insertion order" (fun () ->
        let m = Model.create "m" in
        let a = Classifier.make "A" in
        let b = Classifier.make "B" in
        Model.add m (Model.E_classifier a);
        Model.add m (Model.E_classifier b);
        Model.replace m (Model.E_classifier { a with Classifier.cl_name = "A2" });
        let names = List.map Model.element_name (Model.elements m) in
        check (Alcotest.list Alcotest.string) "order" [ "A2"; "B" ] names);
    tc "remove" (fun () ->
        let m = Model.create "m" in
        let a = Classifier.make "A" in
        Model.add m (Model.E_classifier a);
        Model.remove m a.Classifier.cl_id;
        check Alcotest.int "empty" 0 (Model.size m));
    tc "classifier_named" (fun () ->
        let m = Model.create "m" in
        Model.add m (Model.E_classifier (Classifier.make "A"));
        check Alcotest.bool "found" true (Model.classifier_named m "A" <> None);
        check Alcotest.bool "missing" true (Model.classifier_named m "B" = None));
    tc "all_ancestors stops on cycles" (fun () ->
        let m = Model.create "m" in
        let ida = Ident.fresh () in
        let idb = Ident.fresh () in
        Model.add m (Model.E_classifier (Classifier.make ~id:ida ~generals:[ idb ] "A"));
        Model.add m (Model.E_classifier (Classifier.make ~id:idb ~generals:[ ida ] "B"));
        let anc = Model.all_ancestors m ida in
        check Alcotest.int "two" 2 (Ident.Set.cardinal anc));
    tc "equal on copy" (fun () ->
        let m = Model.create "m" in
        Model.add m (Model.E_classifier (Classifier.make "A"));
        Model.add_diagram m (Diagram.make Diagram.Class_diagram "d");
        let m' = Model.copy m in
        check Alcotest.bool "equal" true (Model.equal m m'));
    tc "equal detects difference" (fun () ->
        let m = Model.create "m" in
        Model.add m (Model.E_classifier (Classifier.make "A"));
        let m' = Model.copy m in
        Model.add m' (Model.E_classifier (Classifier.make "B"));
        check Alcotest.bool "differ" false (Model.equal m m'));
    tc "has_stereotype" (fun () ->
        let m = Model.create "m" in
        let s = Profile.stereotype "hot" in
        Model.add m (Model.E_profile (Profile.make "p" [ s ]));
        let c = Classifier.make "A" in
        Model.add m (Model.E_classifier c);
        Model.add_application m
          (Profile.apply ~stereotype:s.Profile.ster_id
             ~element:c.Classifier.cl_id ());
        check Alcotest.bool "yes" true
          (Model.has_stereotype m c.Classifier.cl_id "hot");
        check Alcotest.bool "no" false
          (Model.has_stereotype m c.Classifier.cl_id "cold"));
    tc "feature_index covers ports and attributes" (fun () ->
        let m = Model.create "m" in
        let port = Component.port "io" in
        Model.add m (Model.E_component (Component.make ~ports:[ port ] "C"));
        let attr = Classifier.property "x" Dtype.Integer in
        Model.add m
          (Model.E_classifier (Classifier.make ~attributes:[ attr ] "A"));
        let idx = Model.feature_index m in
        check Alcotest.bool "port" true
          (Hashtbl.find_opt idx port.Component.port_id = Some Profile.M_port);
        check Alcotest.bool "attr" true
          (Hashtbl.find_opt idx attr.Classifier.prop_id
          = Some Profile.M_property));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"size equals number of adds" ~count:50
         QCheck.(int_range 0 40)
         (fun n ->
           let m = Model.create "m" in
           for i = 1 to n do
             Model.add m
               (Model.E_classifier (Classifier.make (Printf.sprintf "K%d" i)))
           done;
           Model.size m = n && List.length (Model.elements m) = n));
  ]

let () =
  Alcotest.run "core"
    [
      ("ident", ident_tests);
      ("mult", mult_tests);
      ("values", value_tests);
      ("classifier", classifier_tests);
      ("pkg", pkg_tests);
      ("smachine", smachine_tests);
      ("activityg", activity_tests);
      ("interaction", interaction_tests);
      ("usecase", usecase_tests);
      ("component", component_tests);
      ("instance", instance_tests);
      ("diagram", diagram_tests);
      ("profile", profile_tests);
      ("model", model_tests);
    ]
