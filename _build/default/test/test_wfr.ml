(* Tests for the well-formedness checker: every rule family is triggered
   by a minimal ill-formed model, and clean models stay clean. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let rules_of diags =
  List.sort_uniq compare (List.map (fun d -> d.Wfr.diag_rule) diags)

let has_rule rule m = List.mem rule (rules_of (Wfr.check m))

let clean_model () =
  let m = Model.create "clean" in
  let itf = Classifier.make ~kind:Classifier.Interface "I" in
  Model.add m (Model.E_classifier itf);
  let c =
    Classifier.make
      ~attributes:[ Classifier.property "x" Dtype.Integer ]
      ~operations:[ Classifier.operation "f" ]
      ~realized:[ itf.Classifier.cl_id ]
      "A"
  in
  Model.add m (Model.E_classifier c);
  m

let structural_tests =
  [
    tc "clean model has no diagnostics" (fun () ->
        check Alcotest.int "none" 0 (List.length (Wfr.check (clean_model ()))));
    tc "is_valid on clean model" (fun () ->
        check Alcotest.bool "valid" true (Wfr.is_valid (clean_model ())));
    tc "CL-01 unresolved attribute type" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~attributes:
                  [ Classifier.property "x" (Dtype.Ref (Ident.of_string "nope")) ]
                "A"));
        check Alcotest.bool "CL-01" true (has_rule "CL-01" m));
    tc "CL-03 unresolved generalization" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_classifier
             (Classifier.make ~generals:[ Ident.of_string "nope" ] "A"));
        check Alcotest.bool "CL-03" true (has_rule "CL-03" m));
    tc "NS-01 duplicate attribute names" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~attributes:
                  [
                    Classifier.property "x" Dtype.Integer;
                    Classifier.property "x" Dtype.Boolean;
                  ]
                "A"));
        check Alcotest.bool "NS-01" true (has_rule "NS-01" m));
    tc "NS-03 duplicate top-level names warn" (fun () ->
        let m = Model.create "m" in
        Model.add m (Model.E_classifier (Classifier.make "A"));
        Model.add m (Model.E_classifier (Classifier.make "A"));
        let diags = Wfr.check m in
        check Alcotest.bool "NS-03" true (List.mem "NS-03" (rules_of diags));
        (* warnings only: model still valid *)
        check Alcotest.bool "valid" true (Wfr.errors diags = []));
    tc "GE-01 generalization cycle" (fun () ->
        let m = Model.create "m" in
        let ida = Ident.fresh () in
        let idb = Ident.fresh () in
        Model.add m
          (Model.E_classifier (Classifier.make ~id:ida ~generals:[ idb ] "A"));
        Model.add m
          (Model.E_classifier (Classifier.make ~id:idb ~generals:[ ida ] "B"));
        check Alcotest.bool "GE-01" true (has_rule "GE-01" m));
    tc "GE-02 class cannot specialize interface" (fun () ->
        let m = Model.create "m" in
        let itf = Classifier.make ~kind:Classifier.Interface "I" in
        Model.add m (Model.E_classifier itf);
        Model.add m
          (Model.E_classifier
             (Classifier.make ~generals:[ itf.Classifier.cl_id ] "A"));
        check Alcotest.bool "GE-02" true (has_rule "GE-02" m));
    tc "AS-01 association needs two ends" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_association
             { Classifier.assoc_id = Ident.fresh (); assoc_name = "a";
               assoc_ends = [] });
        check Alcotest.bool "AS-01" true (has_rule "AS-01" m));
    tc "PK-01 unresolved package member" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_package (Pkg.make ~owned:[ Ident.of_string "ghost" ] "p"));
        check Alcotest.bool "PK-01" true (has_rule "PK-01" m));
  ]

let sm_model region =
  let m = Model.create "m" in
  Model.add m (Model.E_state_machine (Smachine.make "sm" [ region ]));
  m

let statemachine_tests =
  [
    tc "SM-01 dangling transition endpoint" (fun () ->
        let s = Smachine.simple_state "S" in
        let r =
          Smachine.region
            [ Smachine.State s ]
            [
              Smachine.transition ~source:s.Smachine.st_id
                ~target:(Ident.of_string "ghost") ();
            ]
        in
        check Alcotest.bool "SM-01" true (has_rule "SM-01" (sm_model r)));
    tc "SM-02 two initial pseudostates" (fun () ->
        let i1 = Smachine.pseudostate Smachine.Initial in
        let i2 = Smachine.pseudostate Smachine.Initial in
        let s = Smachine.simple_state "S" in
        let r =
          Smachine.region
            [ Smachine.Pseudo i1; Smachine.Pseudo i2; Smachine.State s ]
            [
              Smachine.transition ~source:i1.Smachine.ps_id
                ~target:s.Smachine.st_id ();
              Smachine.transition ~source:i2.Smachine.ps_id
                ~target:s.Smachine.st_id ();
            ]
        in
        check Alcotest.bool "SM-02" true (has_rule "SM-02" (sm_model r)));
    tc "SM-03 final state with outgoing" (fun () ->
        let f = Smachine.final () in
        let s = Smachine.simple_state "S" in
        let r =
          Smachine.region
            [ Smachine.Final f; Smachine.State s ]
            [
              Smachine.transition ~source:f.Smachine.fs_id
                ~target:s.Smachine.st_id ();
            ]
        in
        check Alcotest.bool "SM-03" true (has_rule "SM-03" (sm_model r)));
    tc "SM-04 initial without outgoing" (fun () ->
        let i = Smachine.pseudostate Smachine.Initial in
        let r = Smachine.region [ Smachine.Pseudo i ] [] in
        check Alcotest.bool "SM-04" true (has_rule "SM-04" (sm_model r)));
    tc "SM-05 guarded initial transition" (fun () ->
        let i = Smachine.pseudostate Smachine.Initial in
        let s = Smachine.simple_state "S" in
        let r =
          Smachine.region
            [ Smachine.Pseudo i; Smachine.State s ]
            [
              Smachine.transition ~guard:"true" ~source:i.Smachine.ps_id
                ~target:s.Smachine.st_id ();
            ]
        in
        check Alcotest.bool "SM-05" true (has_rule "SM-05" (sm_model r)));
    tc "SM-06 degenerate fork" (fun () ->
        let fk = Smachine.pseudostate Smachine.Fork in
        let s = Smachine.simple_state "S" in
        let r =
          Smachine.region
            [ Smachine.Pseudo fk; Smachine.State s ]
            [
              Smachine.transition ~source:s.Smachine.st_id
                ~target:fk.Smachine.ps_id ();
              Smachine.transition ~source:fk.Smachine.ps_id
                ~target:s.Smachine.st_id ();
            ]
        in
        check Alcotest.bool "SM-06" true (has_rule "SM-06" (sm_model r)));
    tc "SM-09 terminate with outgoing" (fun () ->
        let t = Smachine.pseudostate Smachine.Terminate in
        let s = Smachine.simple_state "S" in
        let r =
          Smachine.region
            [ Smachine.Pseudo t; Smachine.State s ]
            [
              Smachine.transition ~source:t.Smachine.ps_id
                ~target:s.Smachine.st_id ();
            ]
        in
        check Alcotest.bool "SM-09" true (has_rule "SM-09" (sm_model r)));
  ]

let activity_wfr_tests =
  [
    tc "AC-01 dangling edge" (fun () ->
        let a = Activityg.action "a" in
        let e =
          Activityg.edge ~source:(Activityg.node_id a)
            ~target:(Ident.of_string "ghost") ()
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity (Activityg.make "act" [ a ] [ e ]));
        check Alcotest.bool "AC-01" true (has_rule "AC-01" m));
    tc "AC-03 initial with incoming" (fun () ->
        let i = Activityg.initial () in
        let a = Activityg.action "a" in
        let e =
          Activityg.edge ~source:(Activityg.node_id a)
            ~target:(Activityg.node_id i) ()
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity (Activityg.make "act" [ i; a ] [ e ]));
        check Alcotest.bool "AC-03" true (has_rule "AC-03" m));
    tc "AC-04 final with outgoing" (fun () ->
        let f = Activityg.activity_final () in
        let a = Activityg.action "a" in
        let e =
          Activityg.edge ~source:(Activityg.node_id f)
            ~target:(Activityg.node_id a) ()
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity (Activityg.make "act" [ f; a ] [ e ]));
        check Alcotest.bool "AC-04" true (has_rule "AC-04" m));
    tc "AC-10 unreachable nodes warn" (fun () ->
        let i = Activityg.initial () in
        let a = Activityg.action "a" in
        let orphan = Activityg.action "orphan" in
        let e =
          Activityg.edge ~source:(Activityg.node_id i)
            ~target:(Activityg.node_id a) ()
        in
        let m = Model.create "m" in
        Model.add m
          (Model.E_activity (Activityg.make "act" [ i; a; orphan ] [ e ]));
        let diags = Wfr.check m in
        check Alcotest.bool "AC-10" true (List.mem "AC-10" (rules_of diags));
        (* a warning, not an error *)
        check Alcotest.bool "still valid" true (Wfr.errors diags = []));
    tc "AC-02 non-positive weight" (fun () ->
        let a = Activityg.action "a" in
        let b = Activityg.action "b" in
        let e =
          Activityg.edge ~weight:0 ~source:(Activityg.node_id a)
            ~target:(Activityg.node_id b) ()
        in
        let m = Model.create "m" in
        Model.add m (Model.E_activity (Activityg.make "act" [ a; b ] [ e ]));
        check Alcotest.bool "AC-02" true (has_rule "AC-02" m));
  ]

let misc_tests =
  [
    tc "UC-03 include cycle" (fun () ->
        let m = Model.create "m" in
        let ida = Ident.fresh () in
        let idb = Ident.fresh () in
        Model.add m
          (Model.E_use_case (Usecase.make ~id:ida ~includes:[ idb ] "a"));
        Model.add m
          (Model.E_use_case (Usecase.make ~id:idb ~includes:[ ida ] "b"));
        check Alcotest.bool "UC-03" true (has_rule "UC-03" m));
    tc "OB-02 nonconforming instance" (fun () ->
        let m = Model.create "m" in
        let cl = Classifier.make "A" in
        Model.add m (Model.E_classifier cl);
        Model.add m
          (Model.E_instance
             (Instance.make ~classifier:cl.Classifier.cl_id
                ~slots:[ Instance.slot "ghost" [] ]
                "i"));
        check Alcotest.bool "OB-02" true (has_rule "OB-02" m));
    tc "CO-04 connector references foreign port" (fun () ->
        let m = Model.create "m" in
        let conn =
          Component.delegation ~outer:(Ident.of_string "ghost")
            ~inner:(None, Ident.of_string "ghost2") ()
        in
        Model.add m (Model.E_component (Component.make ~connectors:[ conn ] "C"));
        check Alcotest.bool "CO-04" true (has_rule "CO-04" m));
    tc "CO-03 part with unresolved type" (fun () ->
        let m = Model.create "m" in
        let part = Component.part "u0" (Ident.of_string "ghost") in
        Model.add m (Model.E_component (Component.make ~parts:[ part ] "C"));
        check Alcotest.bool "CO-03" true (has_rule "CO-03" m));
    tc "PR-02 undeclared tag value" (fun () ->
        let m = Model.create "m" in
        let s = Profile.stereotype "st" in
        Model.add m (Model.E_profile (Profile.make "p" [ s ]));
        let c = Classifier.make "A" in
        Model.add m (Model.E_classifier c);
        Model.add_application m
          (Profile.apply
             ~values:[ ("ghost", Vspec.of_int 1) ]
             ~stereotype:s.Profile.ster_id ~element:c.Classifier.cl_id ());
        check Alcotest.bool "PR-02" true (has_rule "PR-02" m));
    tc "PR-04 wrong metaclass" (fun () ->
        let m = Model.create "m" in
        let s = Profile.stereotype ~extends:[ Profile.M_component ] "st" in
        Model.add m (Model.E_profile (Profile.make "p" [ s ]));
        let c = Classifier.make "A" in
        Model.add m (Model.E_classifier c);
        Model.add_application m
          (Profile.apply ~stereotype:s.Profile.ster_id
             ~element:c.Classifier.cl_id ());
        check Alcotest.bool "PR-04" true (has_rule "PR-04" m));
    tc "stereotyped port is not PR-03" (fun () ->
        let m = Model.create "m" in
        let s = Profile.stereotype ~extends:[ Profile.M_port ] "pin" in
        Model.add m (Model.E_profile (Profile.make "p" [ s ]));
        let port = Component.port "io" in
        Model.add m (Model.E_component (Component.make ~ports:[ port ] "C"));
        Model.add_application m
          (Profile.apply ~stereotype:s.Profile.ster_id
             ~element:port.Component.port_id ());
        check Alcotest.bool "clean" true (Wfr.is_valid m));
    tc "DG-01 diagram shows unresolved element" (fun () ->
        let m = Model.create "m" in
        Model.add_diagram m
          (Diagram.make ~elements:[ Ident.of_string "ghost" ]
             Diagram.Class_diagram "d");
        check Alcotest.bool "DG-01" true (has_rule "DG-01" m));
    tc "LK-01 link with unresolved ends" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_link
             (Instance.link (Ident.of_string "ghost1")
                (Ident.of_string "ghost2")));
        check Alcotest.bool "LK-01" true (has_rule "LK-01" m));
    tc "links with resolved ends pass" (fun () ->
        let m = Model.create "m" in
        let i1 = Instance.make "a" in
        let i2 = Instance.make "b" in
        Model.add m (Model.E_instance i1);
        Model.add m (Model.E_instance i2);
        Model.add m
          (Model.E_link (Instance.link i1.Instance.inst_id i2.Instance.inst_id));
        check Alcotest.bool "valid" true (Wfr.is_valid m));
    tc "DE-01 deployment with unresolved artifact" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_deployment
             (Deployment.deploy ~artifact:(Ident.of_string "ghost")
                ~target:(Ident.of_string "ghost2") ()));
        check Alcotest.bool "DE-01" true (has_rule "DE-01" m));
    tc "to_string mentions rule and severity" (fun () ->
        let d =
          { Wfr.diag_severity = Wfr.Error; diag_rule = "XX-99";
            diag_element = Some (Ident.of_string "e1");
            diag_message = "boom" }
        in
        let s = Wfr.to_string d in
        check Alcotest.bool "has rule id" true
          (String.length s >= 5
          &&
          let contains hay needle =
            let nl = String.length needle in
            let hl = String.length hay in
            let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          contains s "XX-99" && contains s "boom"));
  ]

(* workload-generated machines/models are always well-formed *)
let generator_properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated flat machines are well-formed"
         ~count:25
         QCheck.(int_range 1 1000)
         (fun seed ->
           let sm = Workload.Gen_statechart.flat ~seed ~states:6 ~events:3 in
           let m = Model.create "m" in
           Model.add m (Model.E_state_machine sm);
           Wfr.is_valid m));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated hierarchical machines are well-formed"
         ~count:25
         QCheck.(int_range 1 1000)
         (fun seed ->
           let sm =
             Workload.Gen_statechart.hierarchical ~seed ~depth:3 ~breadth:2
               ~events:3
           in
           let m = Model.create "m" in
           Model.add m (Model.E_state_machine sm);
           Wfr.is_valid m));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated activities are well-formed" ~count:25
         QCheck.(int_range 1 1000)
         (fun seed ->
           let act =
             Workload.Gen_activity.series_parallel ~seed ~size:12 ~max_width:3
           in
           let m = Model.create "m" in
           Model.add m (Model.E_activity act);
           Wfr.is_valid m));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"generated structural models are well-formed"
         ~count:15
         QCheck.(int_range 1 1000)
         (fun seed ->
           let m = Workload.Gen_model.structural ~seed ~classes:20 in
           Wfr.errors (Wfr.check m) = []));
  ]

let () =
  Alcotest.run "wfr"
    [
      ("structural", structural_tests);
      ("state-machines", statemachine_tests);
      ("activities", activity_wfr_tests);
      ("misc", misc_tests);
      ("generators", generator_properties);
    ]
