(* Tests for the SoC and RT profiles and their specific WFRs. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let soc_model () =
  let m = Model.create "m" in
  let profile = Profiles.Soc_profile.install m in
  (m, profile)

let soc_tests =
  [
    tc "profile declares the documented stereotypes" (fun () ->
        let p = Profiles.Soc_profile.profile () in
        List.iter
          (fun name ->
            check Alcotest.bool name true
              (Profile.find_stereotype p name <> None))
          Profiles.Soc_profile.stereotype_names);
    tc "hwModule without clock port is flagged" (fun () ->
        let m, profile = soc_model () in
        let comp = Component.make "Naked" in
        Model.add m (Model.E_component comp);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"hwModule"
          comp.Component.cmp_id;
        let diags = Profiles.Soc_profile.check m in
        check Alcotest.bool "SOC-01" true
          (List.exists (fun d -> d.Wfr.diag_rule = "SOC-01") diags));
    tc "hwModule with one clock passes" (fun () ->
        let m, profile = soc_model () in
        let clk = Component.port "clk" in
        let comp = Component.make ~ports:[ clk ] "Good" in
        Model.add m (Model.E_component comp);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"hwModule"
          comp.Component.cmp_id;
        Profiles.Soc_profile.apply m ~profile ~stereotype:"clock"
          clk.Component.port_id;
        check Alcotest.int "clean" 0
          (List.length (Profiles.Soc_profile.check m)));
    tc "two reset ports are flagged" (fun () ->
        let m, profile = soc_model () in
        let clk = Component.port "clk" in
        let r1 = Component.port "rst_a" in
        let r2 = Component.port "rst_b" in
        let comp = Component.make ~ports:[ clk; r1; r2 ] "DoubleReset" in
        Model.add m (Model.E_component comp);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"hwModule"
          comp.Component.cmp_id;
        Profiles.Soc_profile.apply m ~profile ~stereotype:"clock"
          clk.Component.port_id;
        Profiles.Soc_profile.apply m ~profile ~stereotype:"reset"
          r1.Component.port_id;
        Profiles.Soc_profile.apply m ~profile ~stereotype:"reset"
          r2.Component.port_id;
        let diags = Profiles.Soc_profile.check m in
        check Alcotest.bool "SOC-02" true
          (List.exists (fun d -> d.Wfr.diag_rule = "SOC-02") diags));
    tc "non-positive hwPort width is flagged" (fun () ->
        let m, profile = soc_model () in
        let port = Component.port "d" in
        let comp = Component.make ~ports:[ port ] "C" in
        Model.add m (Model.E_component comp);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"hwPort"
          ~values:[ ("width", Vspec.of_int 0) ]
          port.Component.port_id;
        let diags = Profiles.Soc_profile.check m in
        check Alcotest.bool "SOC-03" true
          (List.exists (fun d -> d.Wfr.diag_rule = "SOC-03") diags));
    tc "register address collisions are flagged" (fun () ->
        let m, profile = soc_model () in
        let r1 = Classifier.property "ctrl" Dtype.Integer in
        let r2 = Classifier.property "status" Dtype.Integer in
        let cl = Classifier.make ~attributes:[ r1; r2 ] "Block" in
        Model.add m (Model.E_classifier cl);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"register"
          ~values:[ ("address", Vspec.of_int 4) ]
          r1.Classifier.prop_id;
        Profiles.Soc_profile.apply m ~profile ~stereotype:"register"
          ~values:[ ("address", Vspec.of_int 4) ]
          r2.Classifier.prop_id;
        let diags = Profiles.Soc_profile.check m in
        check Alcotest.bool "SOC-04" true
          (List.exists (fun d -> d.Wfr.diag_rule = "SOC-04") diags));
    tc "tag defaults are visible through tag_int" (fun () ->
        let m, profile = soc_model () in
        let comp = Component.make "C" in
        Model.add m (Model.E_component comp);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"bus"
          comp.Component.cmp_id;
        check (Alcotest.option Alcotest.int) "default 32" (Some 32)
          (Profiles.Soc_profile.tag_int m ~element:comp.Component.cmp_id
             ~stereotype:"bus" "dataWidth"));
    tc "hw_modules and sw_tasks filter by stereotype" (fun () ->
        let m, profile = soc_model () in
        let comp = Component.make "C" in
        Model.add m (Model.E_component comp);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"ip"
          comp.Component.cmp_id;
        let cl = Classifier.make "Task" in
        Model.add m (Model.E_classifier cl);
        Profiles.Soc_profile.apply m ~profile ~stereotype:"swTask"
          cl.Classifier.cl_id;
        check Alcotest.int "hw" 1
          (List.length (Profiles.Soc_profile.hw_modules m));
        check Alcotest.int "sw" 1
          (List.length (Profiles.Soc_profile.sw_tasks m)));
    tc "apply rejects unknown stereotype names" (fun () ->
        let m, profile = soc_model () in
        let comp = Component.make "C" in
        Model.add m (Model.E_component comp);
        match
          Profiles.Soc_profile.apply m ~profile ~stereotype:"ghost"
            comp.Component.cmp_id
        with
        | () -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
  ]

let rt_tests =
  [
    tc "capsule must be active" (fun () ->
        let m = Model.create "m" in
        let profile = Profiles.Rt_profile.install m in
        let passive = Classifier.make "P" in
        Model.add m (Model.E_classifier passive);
        Profiles.Rt_profile.apply m ~profile ~stereotype:"capsule"
          passive.Classifier.cl_id;
        let diags = Profiles.Rt_profile.check m in
        check Alcotest.bool "RT-01" true
          (List.exists (fun d -> d.Wfr.diag_rule = "RT-01") diags));
    tc "active capsule passes" (fun () ->
        let m = Model.create "m" in
        let profile = Profiles.Rt_profile.install m in
        let active = Classifier.make ~is_active:true "A" in
        Model.add m (Model.E_classifier active);
        Profiles.Rt_profile.apply m ~profile ~stereotype:"capsule"
          active.Classifier.cl_id;
        check Alcotest.int "clean" 0 (List.length (Profiles.Rt_profile.check m)));
    tc "periodic deadline beyond period is flagged" (fun () ->
        let m = Model.create "m" in
        let profile = Profiles.Rt_profile.install m in
        let op = Classifier.operation "tick" in
        let cl = Classifier.make ~operations:[ op ] "C" in
        Model.add m (Model.E_classifier cl);
        Profiles.Rt_profile.apply m ~profile ~stereotype:"periodic"
          ~values:[ ("period", Vspec.of_int 10); ("deadline", Vspec.of_int 20) ]
          op.Classifier.op_id;
        let diags = Profiles.Rt_profile.check m in
        check Alcotest.bool "RT-03" true
          (List.exists (fun d -> d.Wfr.diag_rule = "RT-03") diags));
    tc "non-positive period is flagged" (fun () ->
        let m = Model.create "m" in
        let profile = Profiles.Rt_profile.install m in
        let op = Classifier.operation "tick" in
        let cl = Classifier.make ~operations:[ op ] "C" in
        Model.add m (Model.E_classifier cl);
        Profiles.Rt_profile.apply m ~profile ~stereotype:"periodic"
          ~values:[ ("period", Vspec.of_int 0) ]
          op.Classifier.op_id;
        let diags = Profiles.Rt_profile.check m in
        check Alcotest.bool "RT-02" true
          (List.exists (fun d -> d.Wfr.diag_rule = "RT-02") diags));
    tc "both profiles coexist in one model" (fun () ->
        let m = Model.create "m" in
        let _soc = Profiles.Soc_profile.install m in
        let _rt = Profiles.Rt_profile.install m in
        check Alcotest.int "two profiles" 2
          (List.length (Model.profiles m));
        check Alcotest.bool "valid" true (Wfr.is_valid m));
  ]

let () =
  Alcotest.run "profiles" [ ("soc", soc_tests); ("rt", rt_tests) ]
