(* Tests for the HW/SW codesign substrate: task graphs, scheduling,
   partitioning. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let t = Hwsw.Taskgraph.task
let e = Hwsw.Taskgraph.edge

(* a diamond: src -> (l, r) -> sink *)
let diamond () =
  Hwsw.Taskgraph.make
    [
      t ~sw_time:10 ~hw_time:2 ~hw_area:100 "src";
      t ~sw_time:20 ~hw_time:3 ~hw_area:200 "l";
      t ~sw_time:30 ~hw_time:4 ~hw_area:300 "r";
      t ~sw_time:10 ~hw_time:2 ~hw_area:100 "sink";
    ]
    [ e "src" "l"; e "src" "r"; e "l" "sink"; e "r" "sink" ]

let graph_tests =
  [
    tc "topological order respects edges" (fun () ->
        let order = Hwsw.Taskgraph.topological_order (diamond ()) in
        let pos x =
          let rec go i = function
            | [] -> -1
            | y :: rest -> if y = x then i else go (i + 1) rest
          in
          go 0 order
        in
        check Alcotest.bool "src first" true (pos "src" < pos "l");
        check Alcotest.bool "sink last" true (pos "sink" > pos "r"));
    tc "cycles are rejected" (fun () ->
        match
          Hwsw.Taskgraph.make
            [
              t ~sw_time:1 ~hw_time:1 ~hw_area:1 "a";
              t ~sw_time:1 ~hw_time:1 ~hw_area:1 "b";
            ]
            [ e "a" "b"; e "b" "a" ]
        with
        | _g -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "duplicate tasks are rejected" (fun () ->
        match
          Hwsw.Taskgraph.make
            [
              t ~sw_time:1 ~hw_time:1 ~hw_area:1 "a";
              t ~sw_time:1 ~hw_time:1 ~hw_area:1 "a";
            ]
            []
        with
        | _g -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "unknown edge endpoints are rejected" (fun () ->
        match
          Hwsw.Taskgraph.make
            [ t ~sw_time:1 ~hw_time:1 ~hw_area:1 "a" ]
            [ e "a" "ghost" ]
        with
        | _g -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "of_activity extracts the pipeline" (fun () ->
        let open Uml in
        let init = Activityg.initial () in
        let a = Activityg.action "a" in
        let fork = Activityg.fork "f" in
        let b = Activityg.action "b" in
        let c = Activityg.action "c" in
        let join = Activityg.join "j" in
        let fin = Activityg.activity_final () in
        let ed s tgt =
          Activityg.edge ~source:(Activityg.node_id s)
            ~target:(Activityg.node_id tgt) ()
        in
        let act =
          Activityg.make "p"
            [ init; a; fork; b; c; join; fin ]
            [
              ed init a; ed a fork; ed fork b; ed fork c; ed b join;
              ed c join; ed join fin;
            ]
        in
        let g = Hwsw.Taskgraph.of_activity act in
        check Alcotest.int "three tasks" 3
          (List.length g.Hwsw.Taskgraph.tasks);
        (* a->b and a->c through the fork *)
        check Alcotest.int "two edges" 2
          (List.length g.Hwsw.Taskgraph.edges));
  ]

let schedule_tests =
  [
    tc "all-SW is the sequential sum" (fun () ->
        let g = diamond () in
        let r = Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g) in
        check Alcotest.int "70" 70 r.Hwsw.Schedule.makespan;
        check Alcotest.int "area 0" 0 r.Hwsw.Schedule.hw_area);
    tc "all-HW exploits parallelism" (fun () ->
        let g = diamond () in
        let r = Hwsw.Schedule.run g (Hwsw.Schedule.all_hw g) in
        (* src 2 + max(l 3, r 4) + sink 2 = 8 *)
        check Alcotest.int "8" 8 r.Hwsw.Schedule.makespan;
        check Alcotest.int "area" 700 r.Hwsw.Schedule.hw_area);
    tc "cross-boundary edges pay communication" (fun () ->
        let g =
          Hwsw.Taskgraph.make
            [
              t ~sw_time:10 ~hw_time:1 ~hw_area:10 "a";
              t ~sw_time:10 ~hw_time:1 ~hw_area:10 "b";
            ]
            [ Hwsw.Taskgraph.edge ~comm:5 "a" "b" ]
        in
        let mixed = [ ("a", Hwsw.Schedule.Hw); ("b", Hwsw.Schedule.Sw) ] in
        let r = Hwsw.Schedule.run g mixed in
        (* a: 1 on hw; comm 5; b starts at 6, finishes 16 *)
        check Alcotest.int "16" 16 r.Hwsw.Schedule.makespan);
    tc "slots are consistent" (fun () ->
        let g = diamond () in
        let r = Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g) in
        List.iter
          (fun (s : Hwsw.Schedule.slot) ->
            check Alcotest.bool "start<=finish" true
              (s.Hwsw.Schedule.slot_start <= s.Hwsw.Schedule.slot_finish))
          r.Hwsw.Schedule.slots;
        check Alcotest.int "four slots" 4 (List.length r.Hwsw.Schedule.slots));
  ]

let partition_tests =
  [
    tc "exhaustive respects the budget" (fun () ->
        let g = diamond () in
        let o = Hwsw.Partition.exhaustive ~budget:300 g in
        check Alcotest.bool "area ok" true (o.Hwsw.Partition.area <= 300));
    tc "zero budget forces all-SW" (fun () ->
        let g = diamond () in
        let o = Hwsw.Partition.exhaustive ~budget:0 g in
        check Alcotest.int "sw makespan" 70 o.Hwsw.Partition.cost;
        check Alcotest.int "area" 0 o.Hwsw.Partition.area);
    tc "infinite budget reaches all-HW quality" (fun () ->
        let g = diamond () in
        let o = Hwsw.Partition.exhaustive ~budget:100_000 g in
        check Alcotest.int "8" 8 o.Hwsw.Partition.cost);
    tc "greedy never beats exhaustive" (fun () ->
        let g = diamond () in
        let opt = Hwsw.Partition.exhaustive ~budget:400 g in
        let grd = Hwsw.Partition.greedy ~budget:400 g in
        check Alcotest.bool "opt <= greedy" true
          (opt.Hwsw.Partition.cost <= grd.Hwsw.Partition.cost));
    tc "improve is at least as good as greedy" (fun () ->
        let g = diamond () in
        let grd = Hwsw.Partition.greedy ~budget:400 g in
        let imp = Hwsw.Partition.improve ~budget:400 g in
        check Alcotest.bool "imp <= greedy" true
          (imp.Hwsw.Partition.cost <= grd.Hwsw.Partition.cost));
    tc "exhaustive guards against explosion" (fun () ->
        let tasks =
          List.init 25 (fun i ->
              t ~sw_time:1 ~hw_time:1 ~hw_area:1 (Printf.sprintf "t%d" i))
        in
        let g = Hwsw.Taskgraph.make tasks [] in
        match Hwsw.Partition.exhaustive ~budget:10 g with
        | _o -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "annealing respects the budget and is reproducible" (fun () ->
        let g = diamond () in
        let a1 = Hwsw.Partition.annealed ~seed:7 ~budget:400 g in
        let a2 = Hwsw.Partition.annealed ~seed:7 ~budget:400 g in
        check Alcotest.bool "feasible" true (a1.Hwsw.Partition.area <= 400);
        check Alcotest.int "deterministic" a1.Hwsw.Partition.cost
          a2.Hwsw.Partition.cost);
    tc "annealing never beats the exhaustive optimum" (fun () ->
        let g = diamond () in
        let opt = Hwsw.Partition.exhaustive ~budget:400 g in
        let sa = Hwsw.Partition.annealed ~seed:3 ~budget:400 g in
        check Alcotest.bool "bounded" true
          (opt.Hwsw.Partition.cost <= sa.Hwsw.Partition.cost));
    tc "annealing improves on all-SW when budget allows" (fun () ->
        let g = diamond () in
        let all_sw =
          (Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g)).Hwsw.Schedule.makespan
        in
        let sa = Hwsw.Partition.annealed ~seed:3 ~budget:100_000 g in
        check Alcotest.bool "better than SW" true
          (sa.Hwsw.Partition.cost < all_sw));
    tc "quality_ratio of the optimum is 1.0" (fun () ->
        let g = diamond () in
        let opt = Hwsw.Partition.exhaustive ~budget:400 g in
        check (Alcotest.float 0.0001) "one" 1.0
          (Hwsw.Partition.quality_ratio ~optimal:opt opt));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"heuristics are feasible and bounded by the optimum" ~count:25
         QCheck.(pair (int_range 1 5000) (int_range 0 800))
         (fun (seed, budget) ->
           let g = Workload.Gen_taskgraph.layered ~seed ~tasks:8 ~layers:3 in
           let opt = Hwsw.Partition.exhaustive ~budget g in
           let grd = Hwsw.Partition.greedy ~budget g in
           let imp = Hwsw.Partition.improve ~budget g in
           grd.Hwsw.Partition.area <= budget
           && imp.Hwsw.Partition.area <= budget
           && opt.Hwsw.Partition.cost <= grd.Hwsw.Partition.cost
           && opt.Hwsw.Partition.cost <= imp.Hwsw.Partition.cost));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"hardware never slows a task down in this cost model"
         ~count:25
         QCheck.(int_range 1 5000)
         (fun seed ->
           let g = Workload.Gen_taskgraph.layered ~seed ~tasks:10 ~layers:4 in
           List.for_all
             (fun (task : Hwsw.Taskgraph.task) ->
               task.Hwsw.Taskgraph.hw_time <= task.Hwsw.Taskgraph.sw_time)
             g.Hwsw.Taskgraph.tasks));
  ]

(* deployment-driven assignment *)
let alloc_tests =
  let open Uml in
  let deployed_model () =
    let m = Model.create "m" in
    let a = Activityg.action "a" in
    let b = Activityg.action "b" in
    let init = Activityg.initial () in
    let fin = Activityg.activity_final () in
    let ed s tgt =
      Activityg.edge ~source:(Activityg.node_id s)
        ~target:(Activityg.node_id tgt) ()
    in
    let act =
      Activityg.make "p" [ init; a; b; fin ]
        [ ed init a; ed a b; ed b fin ]
    in
    Model.add m (Model.E_activity act);
    (* a is deployed onto an FPGA device, b onto a CPU *)
    let fpga = Deployment.node ~kind:Deployment.Device "fpga" in
    let cpu =
      Deployment.node ~kind:Deployment.Execution_environment "cpu"
    in
    Model.add m (Model.E_deployment_node fpga);
    Model.add m (Model.E_deployment_node cpu);
    let art_a =
      Deployment.artifact ~manifests:[ Activityg.node_id a ] "a.bit"
    in
    let art_b =
      Deployment.artifact ~manifests:[ Activityg.node_id b ] "b.elf"
    in
    Model.add m (Model.E_artifact art_a);
    Model.add m (Model.E_artifact art_b);
    Model.add m
      (Model.E_deployment
         (Deployment.deploy ~artifact:art_a.Deployment.art_id
            ~target:fpga.Deployment.dn_id ()));
    Model.add m
      (Model.E_deployment
         (Deployment.deploy ~artifact:art_b.Deployment.art_id
            ~target:cpu.Deployment.dn_id ()));
    (m, act, a, b)
  in
  [
    tc "device deployments become hardware tasks" (fun () ->
        let m, act, a, b = deployed_model () in
        let g = Hwsw.Taskgraph.of_activity act in
        let assignment = Hwsw.Alloc.of_deployment m g in
        check Alcotest.bool "a on HW" true
          (Hwsw.Schedule.side_of assignment
             (Uml.Ident.to_string (Uml.Activityg.node_id a))
          = Hwsw.Schedule.Hw);
        check Alcotest.bool "b on SW" true
          (Hwsw.Schedule.side_of assignment
             (Uml.Ident.to_string (Uml.Activityg.node_id b))
          = Hwsw.Schedule.Sw));
    tc "undeployed tasks default to software" (fun () ->
        let m = Model.create "m" in
        let a = Activityg.action "a" in
        let init = Activityg.initial () in
        let fin = Activityg.activity_final () in
        let ed s tgt =
          Activityg.edge ~source:(Activityg.node_id s)
            ~target:(Activityg.node_id tgt) ()
        in
        let act =
          Activityg.make "p" [ init; a; fin ] [ ed init a; ed a fin ]
        in
        Model.add m (Model.E_activity act);
        let g = Hwsw.Taskgraph.of_activity act in
        let assignment = Hwsw.Alloc.of_deployment m g in
        check Alcotest.bool "SW default" true
          (List.for_all (fun (_id, s) -> s = Hwsw.Schedule.Sw) assignment));
    tc "deployment report names the target nodes" (fun () ->
        let m, act, a, _b = deployed_model () in
        let g = Hwsw.Taskgraph.of_activity act in
        let report = Hwsw.Alloc.deployment_report m g in
        let a_id = Uml.Ident.to_string (Uml.Activityg.node_id a) in
        match List.find_opt (fun (id, _, _) -> id = a_id) report with
        | Some (_, side, node) ->
          check Alcotest.bool "hw" true (side = Hwsw.Schedule.Hw);
          check (Alcotest.option Alcotest.string) "fpga" (Some "fpga") node
        | None -> Alcotest.fail "task a missing from report");
    tc "deployment assignment schedules" (fun () ->
        let m, act, _a, _b = deployed_model () in
        let g = Hwsw.Taskgraph.of_activity act in
        let assignment = Hwsw.Alloc.of_deployment m g in
        let r = Hwsw.Schedule.run g assignment in
        check Alcotest.bool "positive makespan" true
          (r.Hwsw.Schedule.makespan > 0);
        check Alcotest.bool "some hw area" true (r.Hwsw.Schedule.hw_area > 0));
  ]

let contains hay needle =
  let nl = String.length needle in
  let hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let swgen_tests =
  [
    tc "generated runner orders SW tasks and awaits HW inputs" (fun () ->
        let g = diamond () in
        (* l and r in hardware, src/sink in software *)
        let assignment =
          [ ("l", Hwsw.Schedule.Hw); ("r", Hwsw.Schedule.Hw) ]
        in
        let r = Hwsw.Schedule.run g assignment in
        let text = Hwsw.Swgen.c_of_schedule ~name:"diamond" g r in
        check Alcotest.bool "src task" true (contains text "task_src();");
        check Alcotest.bool "sink task" true (contains text "task_sink();");
        check Alcotest.bool "hw starts" true (contains text "hw_start(\"l\");");
        check Alcotest.bool "hw waits" true (contains text "hw_wait(\"l\");");
        (* the sink must wait for both accelerators before running *)
        let pos needle =
          let rec go i =
            if i + String.length needle > String.length text then -1
            else if String.sub text i (String.length needle) = needle then i
            else go (i + 1)
          in
          go 0
        in
        check Alcotest.bool "wait before sink" true
          (pos "hw_wait(\"l\");" < pos "task_sink();"
          && pos "hw_wait(\"r\");" < pos "task_sink();"));
    tc "all-SW schedule needs no HAL calls" (fun () ->
        let g = diamond () in
        let r = Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g) in
        let text = Hwsw.Swgen.c_of_schedule g r in
        check Alcotest.bool "no hw_start" false (contains text "hw_start(\"");
        check Alcotest.bool "all four tasks" true
          (contains text "task_src();" && contains text "task_l();"
          && contains text "task_r();" && contains text "task_sink();"));
    tc "unconsumed hardware results are still awaited" (fun () ->
        let g =
          Hwsw.Taskgraph.make
            [ t ~sw_time:10 ~hw_time:1 ~hw_area:5 "solo" ]
            []
        in
        let r = Hwsw.Schedule.run g [ ("solo", Hwsw.Schedule.Hw) ] in
        let text = Hwsw.Swgen.c_of_schedule g r in
        check Alcotest.bool "awaited at end" true
          (contains text "hw_wait(\"solo\");"));
  ]

let () =
  Alcotest.run "hwsw"
    [
      ("taskgraph", graph_tests);
      ("schedule", schedule_tests);
      ("partition", partition_tests);
      ("alloc", alloc_tests);
      ("swgen", swgen_tests);
    ]
