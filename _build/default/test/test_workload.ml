(* Tests for the workload generators: determinism and structural
   promises (the substitution rule requires replayable synthetic
   workloads). *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let prng_tests =
  [
    tc "same seed, same stream" (fun () ->
        let r1 = Workload.Prng.create 42 in
        let r2 = Workload.Prng.create 42 in
        let s1 = List.init 20 (fun _ -> Workload.Prng.int r1 1000) in
        let s2 = List.init 20 (fun _ -> Workload.Prng.int r2 1000) in
        check (Alcotest.list Alcotest.int) "equal" s1 s2);
    tc "different seeds diverge" (fun () ->
        let r1 = Workload.Prng.create 1 in
        let r2 = Workload.Prng.create 2 in
        let s1 = List.init 20 (fun _ -> Workload.Prng.int r1 1000) in
        let s2 = List.init 20 (fun _ -> Workload.Prng.int r2 1000) in
        check Alcotest.bool "differ" true (s1 <> s2));
    tc "int stays within bounds" (fun () ->
        let r = Workload.Prng.create 7 in
        for _ = 1 to 200 do
          let v = Workload.Prng.int r 13 in
          check Alcotest.bool "bounded" true (v >= 0 && v < 13)
        done);
    tc "range is inclusive" (fun () ->
        let r = Workload.Prng.create 7 in
        let vs = List.init 300 (fun _ -> Workload.Prng.range r 3 5) in
        check Alcotest.bool "min" true (List.mem 3 vs);
        check Alcotest.bool "max" true (List.mem 5 vs);
        check Alcotest.bool "bounded" true
          (List.for_all (fun v -> v >= 3 && v <= 5) vs));
    tc "shuffle is a permutation" (fun () ->
        let r = Workload.Prng.create 9 in
        let l = [ 1; 2; 3; 4; 5; 6 ] in
        check (Alcotest.list Alcotest.int) "same elements" l
          (List.sort compare (Workload.Prng.shuffle r l)));
  ]

let generator_tests =
  [
    tc "flat generator is deterministic" (fun () ->
        Uml.Ident.reset_counter ();
        let a = Workload.Gen_statechart.flat ~seed:5 ~states:4 ~events:2 in
        Uml.Ident.reset_counter ();
        let b = Workload.Gen_statechart.flat ~seed:5 ~states:4 ~events:2 in
        check Alcotest.bool "equal" true (Uml.Smachine.equal a b));
    tc "flat generator honors sizes" (fun () ->
        let sm = Workload.Gen_statechart.flat ~seed:1 ~states:7 ~events:3 in
        let states =
          List.filter
            (fun v ->
              match v with
              | Uml.Smachine.State _ -> true
              | Uml.Smachine.Pseudo _ | Uml.Smachine.Final _ -> false)
            (Uml.Smachine.all_vertices sm)
        in
        check Alcotest.int "states" 7 (List.length states);
        (* one initial + states*events transitions *)
        check Alcotest.int "transitions" 22
          (List.length (Uml.Smachine.all_transitions sm)));
    tc "hierarchical generator nests to depth" (fun () ->
        let sm =
          Workload.Gen_statechart.hierarchical ~seed:3 ~depth:3 ~breadth:2
            ~events:2
        in
        (* composite root at depth 0, leaves at depth 3 *)
        let leaves =
          List.filter
            (fun v ->
              match v with
              | Uml.Smachine.State s -> not (Uml.Smachine.is_composite s)
              | Uml.Smachine.Pseudo _ | Uml.Smachine.Final _ -> false)
            (Uml.Smachine.all_vertices sm)
        in
        check Alcotest.int "8 leaves" 8 (List.length leaves));
    tc "activity generator is deterministic" (fun () ->
        Uml.Ident.reset_counter ();
        let a =
          Workload.Gen_activity.series_parallel ~seed:11 ~size:10 ~max_width:3
        in
        Uml.Ident.reset_counter ();
        let b =
          Workload.Gen_activity.series_parallel ~seed:11 ~size:10 ~max_width:3
        in
        check Alcotest.bool "equal" true (Uml.Activityg.equal a b));
    tc "task graphs are acyclic with sane costs" (fun () ->
        let g = Workload.Gen_taskgraph.layered ~seed:2 ~tasks:12 ~layers:4 in
        check Alcotest.int "tasks" 12 (List.length g.Hwsw.Taskgraph.tasks);
        (* topological_order raises on cycles; make already checks *)
        check Alcotest.int "order covers all" 12
          (List.length (Hwsw.Taskgraph.topological_order g)));
    tc "event_sequence draws from the alphabet" (fun () ->
        let evs = Workload.Gen_statechart.event_sequence ~seed:4 ~length:50 3 in
        let names = Workload.Gen_statechart.event_names 3 in
        check Alcotest.int "length" 50 (List.length evs);
        check Alcotest.bool "alphabet" true
          (List.for_all (fun e -> List.mem e names) evs));
    tc "structural models scale with the class count" (fun () ->
        let small = Workload.Gen_model.structural ~seed:1 ~classes:5 in
        let large = Workload.Gen_model.structural ~seed:1 ~classes:50 in
        check Alcotest.bool "monotone" true
          (Uml.Model.size large > Uml.Model.size small));
  ]

let () =
  Alcotest.run "workload"
    [ ("prng", prng_tests); ("generators", generator_tests) ]
