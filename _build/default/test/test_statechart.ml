(* Tests for the StateChart execution engine and the flattener. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let ev = Statechart.Event.make

(* small helpers *)
let sig_tr ?guard ?effect ?(kind = Smachine.External) event source target =
  Smachine.transition
    ~triggers:[ Smachine.Signal_trigger event ]
    ?guard ?effect ~kind ~source ~target ()

let init_tr source target = Smachine.transition ~source ~target ()

(* --- flat machine behavior ---------------------------------------------- *)

let simple_machine () =
  let a = Smachine.simple_state "A" in
  let b = Smachine.simple_state "B" in
  let init = Smachine.pseudostate Smachine.Initial in
  let r =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        init_tr init.Smachine.ps_id a.Smachine.st_id;
        sig_tr "go" a.Smachine.st_id b.Smachine.st_id;
        sig_tr "back" b.Smachine.st_id a.Smachine.st_id;
      ]
  in
  Smachine.make "simple" [ r ]

let flat_tests =
  [
    tc "start enters the initial state" (fun () ->
        let e = Statechart.Engine.create (simple_machine ()) in
        Statechart.Engine.start e;
        check Alcotest.bool "A" true (Statechart.Engine.is_in e "A"));
    tc "events move the configuration" (fun () ->
        let e = Statechart.Engine.create (simple_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B");
        Statechart.Engine.dispatch e (ev "back");
        check Alcotest.bool "A" true (Statechart.Engine.is_in e "A"));
    tc "unknown events are dropped" (fun () ->
        let e = Statechart.Engine.create (simple_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "zzz");
        check Alcotest.bool "A" true (Statechart.Engine.is_in e "A"));
    tc "trace records steps" (fun () ->
        let e = Statechart.Engine.create (simple_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        let steps = Statechart.Engine.trace e in
        check Alcotest.int "start + go" 2 (List.length steps));
    tc "send enqueues, step drains one" (fun () ->
        let e = Statechart.Engine.create (simple_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.send e (ev "go");
        Statechart.Engine.send e (ev "back");
        check Alcotest.bool "step1" true (Statechart.Engine.step e);
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B");
        check Alcotest.bool "step2" true (Statechart.Engine.step e);
        check Alcotest.bool "A" true (Statechart.Engine.is_in e "A");
        check Alcotest.bool "empty" false (Statechart.Engine.step e));
  ]

(* --- guards and effects --------------------------------------------------- *)

let guarded_machine () =
  (* self.x decides which branch fires *)
  let a = Smachine.simple_state "A" in
  let b = Smachine.simple_state "B" in
  let c = Smachine.simple_state "C" in
  let init = Smachine.pseudostate Smachine.Initial in
  let r =
    Smachine.region
      [
        Smachine.Pseudo init; Smachine.State a; Smachine.State b;
        Smachine.State c;
      ]
      [
        init_tr init.Smachine.ps_id a.Smachine.st_id;
        sig_tr ~guard:"self.x > 0" ~effect:"self.x := self.x - 1;" "go"
          a.Smachine.st_id b.Smachine.st_id;
        sig_tr ~guard:"self.x <= 0" "go" a.Smachine.st_id c.Smachine.st_id;
      ]
  in
  Smachine.make "guarded" [ r ]

let engine_with_self x =
  let store = Asl.Store.create () in
  let self_ref = Asl.Store.alloc store ~class_name:"Ctx"
      ~attrs:[ ("x", Asl.Value.V_int x) ] in
  let interp = Asl.Interp.create store in
  let e =
    Statechart.Engine.create ~interp ~self_:(Asl.Value.V_obj self_ref)
      (guarded_machine ())
  in
  (e, store, self_ref)

let guard_tests =
  [
    tc "guard selects the true branch" (fun () ->
        let e, _store, _r = engine_with_self 1 in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B"));
    tc "guard selects the other branch" (fun () ->
        let e, _store, _r = engine_with_self 0 in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        check Alcotest.bool "C" true (Statechart.Engine.is_in e "C"));
    tc "effects mutate the context object" (fun () ->
        let e, store, self_ref = engine_with_self 5 in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        check Alcotest.bool "decremented" true
          (Asl.Store.get_attr store self_ref "x" = Some (Asl.Value.V_int 4)));
    tc "event arguments visible in guards" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr ~guard:"e1 > 10" "go" a.Smachine.st_id b.Smachine.st_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e
          (Statechart.Event.make ~args:[ Asl.Value.V_int 5 ] "go");
        check Alcotest.bool "still A" true (Statechart.Engine.is_in e "A");
        Statechart.Engine.dispatch e
          (Statechart.Event.make ~args:[ Asl.Value.V_int 15 ] "go");
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B"));
    tc "entry/exit/effect order" (fun () ->
        let a =
          Smachine.simple_state ~entry:"print(\"enterA\");"
            ~exit_:"print(\"exitA\");" "A"
        in
        let b = Smachine.simple_state ~entry:"print(\"enterB\");" "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr ~effect:"print(\"effect\");" "go" a.Smachine.st_id
                b.Smachine.st_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        check
          (Alcotest.list Alcotest.string)
          "order"
          [ "enterA"; "exitA"; "effect"; "enterB" ]
          (Asl.Interp.output (Statechart.Engine.interp e)));
  ]

(* --- hierarchy ------------------------------------------------------------ *)

let hierarchical_machine () =
  let a1 = Smachine.simple_state "A1" in
  let a2 = Smachine.simple_state "A2" in
  let ii = Smachine.pseudostate Smachine.Initial in
  let inner =
    Smachine.region
      [ Smachine.Pseudo ii; Smachine.State a1; Smachine.State a2 ]
      [
        init_tr ii.Smachine.ps_id a1.Smachine.st_id;
        sig_tr "next" a1.Smachine.st_id a2.Smachine.st_id;
        (* inner handler for [shared]: has priority over the outer one *)
        sig_tr "shared" a1.Smachine.st_id a2.Smachine.st_id;
      ]
  in
  let comp = Smachine.composite_state "Comp" [ inner ] in
  let out = Smachine.simple_state "Out" in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State comp; Smachine.State out ]
      [
        init_tr init.Smachine.ps_id comp.Smachine.st_id;
        sig_tr "leave" comp.Smachine.st_id out.Smachine.st_id;
        sig_tr "shared" comp.Smachine.st_id out.Smachine.st_id;
      ]
  in
  Smachine.make "hier" [ top ]

let hierarchy_tests =
  [
    tc "default entry descends" (fun () ->
        let e = Statechart.Engine.create (hierarchical_machine ()) in
        Statechart.Engine.start e;
        check Alcotest.bool "Comp" true (Statechart.Engine.is_in e "Comp");
        check Alcotest.bool "A1" true (Statechart.Engine.is_in e "A1"));
    tc "outer transition exits the whole subtree" (fun () ->
        let e = Statechart.Engine.create (hierarchical_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "leave");
        check Alcotest.bool "Out" true (Statechart.Engine.is_in e "Out");
        check Alcotest.bool "not A1" false (Statechart.Engine.is_in e "A1"));
    tc "inner transition has priority" (fun () ->
        let e = Statechart.Engine.create (hierarchical_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "shared");
        (* inner A1->A2 must win over outer Comp->Out *)
        check Alcotest.bool "A2" true (Statechart.Engine.is_in e "A2");
        check Alcotest.bool "still Comp" true (Statechart.Engine.is_in e "Comp"));
    tc "outer handler used when inner does not match" (fun () ->
        let e = Statechart.Engine.create (hierarchical_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "next");
        (* now in A2, which has no [shared] handler *)
        Statechart.Engine.dispatch e (ev "shared");
        check Alcotest.bool "Out" true (Statechart.Engine.is_in e "Out"));
    tc "signature is hierarchical" (fun () ->
        let e = Statechart.Engine.create (hierarchical_machine ()) in
        Statechart.Engine.start e;
        check Alcotest.string "sig" "Comp.A1" (Statechart.Engine.signature e));
  ]

(* --- orthogonal regions ----------------------------------------------------- *)

let orthogonal_machine () =
  let a1 = Smachine.simple_state "A1" in
  let a2 = Smachine.simple_state "A2" in
  let i1 = Smachine.pseudostate Smachine.Initial in
  let r1 =
    Smachine.region ~name:"r1"
      [ Smachine.Pseudo i1; Smachine.State a1; Smachine.State a2 ]
      [
        init_tr i1.Smachine.ps_id a1.Smachine.st_id;
        sig_tr "tick" a1.Smachine.st_id a2.Smachine.st_id;
      ]
  in
  let b1 = Smachine.simple_state "B1" in
  let b2 = Smachine.simple_state "B2" in
  let i2 = Smachine.pseudostate Smachine.Initial in
  let r2 =
    Smachine.region ~name:"r2"
      [ Smachine.Pseudo i2; Smachine.State b1; Smachine.State b2 ]
      [
        init_tr i2.Smachine.ps_id b1.Smachine.st_id;
        sig_tr "tick" b1.Smachine.st_id b2.Smachine.st_id;
      ]
  in
  let comp = Smachine.composite_state "Ortho" [ r1; r2 ] in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State comp ]
      [ init_tr init.Smachine.ps_id comp.Smachine.st_id ]
  in
  Smachine.make "ortho" [ top ]

let orthogonal_tests =
  [
    tc "both regions enter their defaults" (fun () ->
        let e = Statechart.Engine.create (orthogonal_machine ()) in
        Statechart.Engine.start e;
        check Alcotest.bool "A1" true (Statechart.Engine.is_in e "A1");
        check Alcotest.bool "B1" true (Statechart.Engine.is_in e "B1"));
    tc "one event fires in both regions" (fun () ->
        let e = Statechart.Engine.create (orthogonal_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "tick");
        check Alcotest.bool "A2" true (Statechart.Engine.is_in e "A2");
        check Alcotest.bool "B2" true (Statechart.Engine.is_in e "B2"));
    tc "leaf names include both regions" (fun () ->
        let e = Statechart.Engine.create (orthogonal_machine ()) in
        Statechart.Engine.start e;
        check
          (Alcotest.list Alcotest.string)
          "leaves" [ "A1"; "B1" ]
          (Statechart.Engine.active_leaf_names e));
  ]

(* --- history ------------------------------------------------------------------ *)

let history_machine deep =
  let kind =
    if deep then Smachine.Deep_history else Smachine.Shallow_history
  in
  (* Comp contains Sub (composite) so deep vs shallow differ *)
  let s1 = Smachine.simple_state "S1" in
  let s2 = Smachine.simple_state "S2" in
  let si = Smachine.pseudostate Smachine.Initial in
  let sub_region =
    Smachine.region
      [ Smachine.Pseudo si; Smachine.State s1; Smachine.State s2 ]
      [
        init_tr si.Smachine.ps_id s1.Smachine.st_id;
        sig_tr "deep_next" s1.Smachine.st_id s2.Smachine.st_id;
      ]
  in
  let sub = Smachine.composite_state "Sub" [ sub_region ] in
  let first = Smachine.simple_state "First" in
  let hi = Smachine.pseudostate kind in
  let ci = Smachine.pseudostate Smachine.Initial in
  let comp_region =
    Smachine.region
      [
        Smachine.Pseudo ci; Smachine.Pseudo hi; Smachine.State first;
        Smachine.State sub;
      ]
      [
        init_tr ci.Smachine.ps_id first.Smachine.st_id;
        sig_tr "enter_sub" first.Smachine.st_id sub.Smachine.st_id;
      ]
  in
  let comp = Smachine.composite_state "Comp" [ comp_region ] in
  let away = Smachine.simple_state "Away" in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State comp; Smachine.State away ]
      [
        init_tr init.Smachine.ps_id comp.Smachine.st_id;
        sig_tr "pause" comp.Smachine.st_id away.Smachine.st_id;
        sig_tr "resume" away.Smachine.st_id hi.Smachine.ps_id;
      ]
  in
  Smachine.make "hist" [ top ]

let history_tests =
  [
    tc "shallow history restores direct child, defaults below" (fun () ->
        let e = Statechart.Engine.create (history_machine false) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "enter_sub");
        Statechart.Engine.dispatch e (ev "deep_next");
        check Alcotest.bool "S2" true (Statechart.Engine.is_in e "S2");
        Statechart.Engine.dispatch e (ev "pause");
        Statechart.Engine.dispatch e (ev "resume");
        check Alcotest.bool "Sub restored" true (Statechart.Engine.is_in e "Sub");
        (* shallow: sub-state re-enters via default => S1 *)
        check Alcotest.bool "S1 (default)" true (Statechart.Engine.is_in e "S1"));
    tc "deep history restores the leaf" (fun () ->
        let e = Statechart.Engine.create (history_machine true) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "enter_sub");
        Statechart.Engine.dispatch e (ev "deep_next");
        Statechart.Engine.dispatch e (ev "pause");
        Statechart.Engine.dispatch e (ev "resume");
        check Alcotest.bool "S2 restored" true (Statechart.Engine.is_in e "S2"));
    tc "history without record uses default" (fun () ->
        let e = Statechart.Engine.create (history_machine false) in
        Statechart.Engine.start e;
        (* pause before ever entering Sub *)
        Statechart.Engine.dispatch e (ev "pause");
        Statechart.Engine.dispatch e (ev "resume");
        check Alcotest.bool "First (default)" true
          (Statechart.Engine.is_in e "First"));
  ]

(* --- completion, final, terminate, junctions -------------------------------- *)

let completion_tests =
  [
    tc "completion transition fires immediately" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              (* trigger-less: completion *)
              Smachine.transition ~source:a.Smachine.st_id
                ~target:b.Smachine.st_id ();
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B"));
    tc "composite completes when region reaches final" (fun () ->
        let a = Smachine.simple_state "A" in
        let f = Smachine.final () in
        let ii = Smachine.pseudostate Smachine.Initial in
        let inner =
          Smachine.region
            [ Smachine.Pseudo ii; Smachine.State a; Smachine.Final f ]
            [
              init_tr ii.Smachine.ps_id a.Smachine.st_id;
              sig_tr "finish" a.Smachine.st_id f.Smachine.fs_id;
            ]
        in
        let comp = Smachine.composite_state "Comp" [ inner ] in
        let done_ = Smachine.simple_state "Done" in
        let init = Smachine.pseudostate Smachine.Initial in
        let top =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State comp; Smachine.State done_ ]
            [
              init_tr init.Smachine.ps_id comp.Smachine.st_id;
              Smachine.transition ~source:comp.Smachine.st_id
                ~target:done_.Smachine.st_id ();
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ top ]) in
        Statechart.Engine.start e;
        check Alcotest.bool "in Comp" true (Statechart.Engine.is_in e "Comp");
        Statechart.Engine.dispatch e (ev "finish");
        check Alcotest.bool "Done" true (Statechart.Engine.is_in e "Done"));
    tc "reaching the top final finishes the machine" (fun () ->
        let a = Smachine.simple_state "A" in
        let f = Smachine.final () in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.Final f ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr "end" a.Smachine.st_id f.Smachine.fs_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "end");
        check Alcotest.bool "finished" true
          (Statechart.Engine.status e = Statechart.Engine.Finished));
    tc "terminate halts processing" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let t = Smachine.pseudostate Smachine.Terminate in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.State a; Smachine.State b;
              Smachine.Pseudo t;
            ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr "kill" a.Smachine.st_id t.Smachine.ps_id;
              sig_tr "go" a.Smachine.st_id b.Smachine.st_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "kill");
        check Alcotest.bool "terminated" true
          (Statechart.Engine.status e = Statechart.Engine.Terminated);
        Statechart.Engine.dispatch e (ev "go");
        check Alcotest.bool "stays dead" false (Statechart.Engine.is_in e "B"));
    tc "choice picks the first true branch" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let c = Smachine.simple_state "C" in
        let ch = Smachine.pseudostate Smachine.Choice in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.Pseudo ch; Smachine.State a;
              Smachine.State b; Smachine.State c;
            ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr "pick" a.Smachine.st_id ch.Smachine.ps_id;
              Smachine.transition ~guard:"e1 > 0" ~source:ch.Smachine.ps_id
                ~target:b.Smachine.st_id ();
              Smachine.transition ~source:ch.Smachine.ps_id
                ~target:c.Smachine.st_id ();
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e
          (Statechart.Event.make ~args:[ Asl.Value.V_int 1 ] "pick");
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B");
        let e2 = Statechart.Engine.create (Smachine.make "m2" [ r ]) in
        Statechart.Engine.start e2;
        Statechart.Engine.dispatch e2
          (Statechart.Event.make ~args:[ Asl.Value.V_int 0 ] "pick");
        check Alcotest.bool "C" true (Statechart.Engine.is_in e2 "C"));
  ]

(* --- fork/join ------------------------------------------------------------- *)

let fork_join_machine () =
  let a1 = Smachine.simple_state "A1" in
  let a2 = Smachine.simple_state "A2" in
  let i1 = Smachine.pseudostate Smachine.Initial in
  let r1 =
    Smachine.region
      [ Smachine.Pseudo i1; Smachine.State a1; Smachine.State a2 ]
      [
        init_tr i1.Smachine.ps_id a1.Smachine.st_id;
        sig_tr "adv" a1.Smachine.st_id a2.Smachine.st_id;
      ]
  in
  let b1 = Smachine.simple_state "B1" in
  let b2 = Smachine.simple_state "B2" in
  let i2 = Smachine.pseudostate Smachine.Initial in
  let r2 =
    Smachine.region
      [ Smachine.Pseudo i2; Smachine.State b1; Smachine.State b2 ]
      [
        init_tr i2.Smachine.ps_id b1.Smachine.st_id;
        sig_tr "adv" b1.Smachine.st_id b2.Smachine.st_id;
      ]
  in
  let comp = Smachine.composite_state "P" [ r1; r2 ] in
  let start = Smachine.simple_state "Start" in
  let done_ = Smachine.simple_state "Done" in
  let fork = Smachine.pseudostate Smachine.Fork in
  let join = Smachine.pseudostate Smachine.Join in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [
        Smachine.Pseudo init; Smachine.State start; Smachine.State comp;
        Smachine.State done_; Smachine.Pseudo fork; Smachine.Pseudo join;
      ]
      [
        init_tr init.Smachine.ps_id start.Smachine.st_id;
        sig_tr "split" start.Smachine.st_id fork.Smachine.ps_id;
        (* fork targets the non-default states of both regions *)
        Smachine.transition ~source:fork.Smachine.ps_id
          ~target:a2.Smachine.st_id ();
        Smachine.transition ~source:fork.Smachine.ps_id
          ~target:b2.Smachine.st_id ();
        (* join from both *)
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "merge" ]
          ~source:a2.Smachine.st_id ~target:join.Smachine.ps_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "merge" ]
          ~source:b2.Smachine.st_id ~target:join.Smachine.ps_id ();
        Smachine.transition ~source:join.Smachine.ps_id
          ~target:done_.Smachine.st_id ();
      ]
  in
  Smachine.make "forkjoin" [ top ]

let fork_join_tests =
  [
    tc "fork enters explicit targets in both regions" (fun () ->
        let e = Statechart.Engine.create (fork_join_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "split");
        check Alcotest.bool "A2" true (Statechart.Engine.is_in e "A2");
        check Alcotest.bool "B2" true (Statechart.Engine.is_in e "B2"));
    tc "join fires when all sources are active" (fun () ->
        let e = Statechart.Engine.create (fork_join_machine ()) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "split");
        Statechart.Engine.dispatch e (ev "merge");
        check Alcotest.bool "Done" true (Statechart.Engine.is_in e "Done"));
    tc "join does not fire with a missing source" (fun () ->
        let e = Statechart.Engine.create (fork_join_machine ()) in
        Statechart.Engine.start e;
        (* default entry: A1/B1 — join sources inactive *)
        Statechart.Engine.dispatch e (ev "merge");
        check Alcotest.bool "not Done" false (Statechart.Engine.is_in e "Done"));
  ]

(* --- deferred events and timers ---------------------------------------------- *)

let misc_tests =
  [
    tc "deferred events replay after a state change" (fun () ->
        let a =
          Smachine.simple_state
            ~deferred:[ Smachine.Signal_trigger "late" ]
            "A"
        in
        let b = Smachine.simple_state "B" in
        let c = Smachine.simple_state "C" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.State a; Smachine.State b;
              Smachine.State c;
            ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr "go" a.Smachine.st_id b.Smachine.st_id;
              sig_tr "late" b.Smachine.st_id c.Smachine.st_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        (* 'late' is deferrable in A: held, then consumed in B *)
        Statechart.Engine.dispatch e (ev "late");
        check Alcotest.bool "still A" true (Statechart.Engine.is_in e "A");
        Statechart.Engine.dispatch e (ev "go");
        check Alcotest.bool "C after replay" true (Statechart.Engine.is_in e "C"));
    tc "after-transitions fire on the logical clock" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              Smachine.transition
                ~triggers:[ Smachine.Time_trigger 10 ]
                ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.advance_time e 5;
        check Alcotest.bool "still A" true (Statechart.Engine.is_in e "A");
        Statechart.Engine.advance_time e 5;
        check Alcotest.bool "B at t=10" true (Statechart.Engine.is_in e "B");
        check Alcotest.int "clock" 10 (Statechart.Engine.now e));
    tc "timer canceled when state exited early" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let c = Smachine.simple_state "C" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [
              Smachine.Pseudo init; Smachine.State a; Smachine.State b;
              Smachine.State c;
            ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              Smachine.transition
                ~triggers:[ Smachine.Time_trigger 10 ]
                ~source:a.Smachine.st_id ~target:c.Smachine.st_id ();
              sig_tr "go" a.Smachine.st_id b.Smachine.st_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "go");
        Statechart.Engine.advance_time e 20;
        check Alcotest.bool "B, not C" true
          (Statechart.Engine.is_in e "B"
          && not (Statechart.Engine.is_in e "C")));
    tc "internal transition runs effect without exit" (fun () ->
        let a =
          Smachine.simple_state ~entry:"print(\"enter\");"
            ~exit_:"print(\"exit\");" "A"
        in
        let init = Smachine.pseudostate Smachine.Initial in
        let internal =
          Smachine.transition
            ~triggers:[ Smachine.Signal_trigger "poke" ]
            ~effect:"print(\"poked\");" ~kind:Smachine.Internal
            ~source:a.Smachine.st_id ~target:a.Smachine.st_id ()
        in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a ]
            [ init_tr init.Smachine.ps_id a.Smachine.st_id; internal ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "poke");
        check
          (Alcotest.list Alcotest.string)
          "no exit/reenter" [ "enter"; "poked" ]
          (Asl.Interp.output (Statechart.Engine.interp e)));
    tc "do-activity runs after entry, then the state completes" (fun () ->
        let a =
          Smachine.simple_state ~entry:"print(\"entry\");"
            ~do_:"print(\"doing\");" "A"
        in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              (* completion transition: fires once the do has run *)
              Smachine.transition ~source:a.Smachine.st_id
                ~target:b.Smachine.st_id ();
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B");
        check
          (Alcotest.list Alcotest.string)
          "entry then do" [ "entry"; "doing" ]
          (Asl.Interp.output (Statechart.Engine.interp e)));
    tc "flatten rejects do-activities" (fun () ->
        let a = Smachine.simple_state ~do_:"x := 1;" "A" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a ]
            [ init_tr init.Smachine.ps_id a.Smachine.st_id ]
        in
        match Statechart.Flatten.flatten (Smachine.make "m" [ r ]) with
        | Ok _f -> Alcotest.fail "should not flatten"
        | Error _m -> ());
    tc "external self-transition exits and re-enters" (fun () ->
        let a =
          Smachine.simple_state ~entry:"print(\"enter\");"
            ~exit_:"print(\"exit\");" "A"
        in
        let init = Smachine.pseudostate Smachine.Initial in
        let self_tr =
          sig_tr "poke" a.Smachine.st_id a.Smachine.st_id
        in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a ]
            [ init_tr init.Smachine.ps_id a.Smachine.st_id; self_tr ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "poke");
        check
          (Alcotest.list Alcotest.string)
          "exit+enter" [ "enter"; "exit"; "enter" ]
          (Asl.Interp.output (Statechart.Engine.interp e)));
  ]

(* --- transition kinds and trigger variants ----------------------------------- *)

let kind_machine kind =
  (* composite C (entry/exit traced) containing A1, A2; a [kind]
     transition from C itself to A2 *)
  let a1 = Smachine.simple_state "A1" in
  let a2 = Smachine.simple_state "A2" in
  let ii = Smachine.pseudostate Smachine.Initial in
  let inner =
    Smachine.region
      [ Smachine.Pseudo ii; Smachine.State a1; Smachine.State a2 ]
      [ init_tr ii.Smachine.ps_id a1.Smachine.st_id ]
  in
  let comp =
    Smachine.composite_state ~entry:"print(\"enterC\");"
      ~exit_:"print(\"exitC\");" "C" [ inner ]
  in
  let init = Smachine.pseudostate Smachine.Initial in
  let top =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State comp ]
      [
        init_tr init.Smachine.ps_id comp.Smachine.st_id;
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "dive" ]
          ~kind ~source:comp.Smachine.st_id ~target:a2.Smachine.st_id ();
      ]
  in
  Smachine.make "kinds" [ top ]

let kinds_tests =
  [
    tc "local transition keeps the composite active" (fun () ->
        let e = Statechart.Engine.create (kind_machine Smachine.Local) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "dive");
        check Alcotest.bool "A2" true (Statechart.Engine.is_in e "A2");
        (* local: C must not have been exited/re-entered *)
        check
          (Alcotest.list Alcotest.string)
          "single enter" [ "enterC" ]
          (Asl.Interp.output (Statechart.Engine.interp e)));
    tc "external transition re-enters the composite" (fun () ->
        let e = Statechart.Engine.create (kind_machine Smachine.External) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "dive");
        check Alcotest.bool "A2" true (Statechart.Engine.is_in e "A2");
        check
          (Alcotest.list Alcotest.string)
          "exit and re-enter" [ "enterC"; "exitC"; "enterC" ]
          (Asl.Interp.output (Statechart.Engine.interp e)));
    tc "any-trigger matches every signal" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              Smachine.transition ~triggers:[ Smachine.Any_trigger ]
                ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "whatever");
        check Alcotest.bool "B" true (Statechart.Engine.is_in e "B"));
    tc "entry point routes into the composite" (fun () ->
        let a1 = Smachine.simple_state "A1" in
        let a2 = Smachine.simple_state "A2" in
        let ii = Smachine.pseudostate Smachine.Initial in
        let entry = Smachine.pseudostate Smachine.Entry_point in
        let inner =
          Smachine.region
            [
              Smachine.Pseudo ii; Smachine.Pseudo entry; Smachine.State a1;
              Smachine.State a2;
            ]
            [
              init_tr ii.Smachine.ps_id a1.Smachine.st_id;
              Smachine.transition ~source:entry.Smachine.ps_id
                ~target:a2.Smachine.st_id ();
            ]
        in
        let comp = Smachine.composite_state "C" [ inner ] in
        let out = Smachine.simple_state "Out" in
        let init = Smachine.pseudostate Smachine.Initial in
        let top =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State out; Smachine.State comp ]
            [
              init_tr init.Smachine.ps_id out.Smachine.st_id;
              sig_tr "via_entry" out.Smachine.st_id entry.Smachine.ps_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ top ]) in
        Statechart.Engine.start e;
        Statechart.Engine.dispatch e (ev "via_entry");
        check Alcotest.bool "A2 via entry point" true
          (Statechart.Engine.is_in e "A2"));
    tc "guard failure raises Model_error" (fun () ->
        let a = Smachine.simple_state "A" in
        let b = Smachine.simple_state "B" in
        let init = Smachine.pseudostate Smachine.Initial in
        let r =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
            [
              init_tr init.Smachine.ps_id a.Smachine.st_id;
              sig_tr ~guard:"1 +" "go" a.Smachine.st_id b.Smachine.st_id;
            ]
        in
        let e = Statechart.Engine.create (Smachine.make "m" [ r ]) in
        Statechart.Engine.start e;
        match Statechart.Engine.dispatch e (ev "go") with
        | () -> Alcotest.fail "expected Model_error"
        | exception Statechart.Engine.Model_error _ -> ());
  ]

(* --- flattener --------------------------------------------------------------- *)

let flatten_tests =
  [
    tc "flatten simple machine" (fun () ->
        match Statechart.Flatten.flatten (simple_machine ()) with
        | Ok flat ->
          check Alcotest.int "two states" 2
            (List.length flat.Statechart.Flatten.fm_states);
          check Alcotest.string "initial" "A"
            flat.Statechart.Flatten.fm_initial;
          check
            (Alcotest.list Alcotest.string)
            "events" [ "back"; "go" ]
            (Statechart.Flatten.events_of flat)
        | Error m -> Alcotest.fail m);
    tc "flatten rejects orthogonal machines" (fun () ->
        match Statechart.Flatten.flatten (orthogonal_machine ()) with
        | Ok _f -> Alcotest.fail "should not flatten"
        | Error _m -> ());
    tc "flatten rejects history" (fun () ->
        match Statechart.Flatten.flatten (history_machine false) with
        | Ok _f -> Alcotest.fail "should not flatten"
        | Error _m -> ());
    tc "flat simulation matches engine on the hierarchy" (fun () ->
        let sm = hierarchical_machine () in
        let events = [ "next"; "shared"; "leave" ] in
        let engine = Statechart.Engine.create sm in
        Statechart.Engine.start engine;
        let engine_trace =
          List.map
            (fun name ->
              Statechart.Engine.dispatch engine (ev name);
              Statechart.Engine.signature engine)
            events
        in
        match Statechart.Flatten.flatten sm with
        | Error m -> Alcotest.fail m
        | Ok flat ->
          let flat_trace = Statechart.Flatten.simulate flat events in
          check (Alcotest.list Alcotest.string) "same" engine_trace flat_trace);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"engine runs are deterministic" ~count:20
         QCheck.(pair (int_range 1 5000) (int_range 1 5000))
         (fun (seed, ev_seed) ->
           let run () =
             let sm =
               Workload.Gen_statechart.hierarchical ~seed ~depth:3 ~breadth:2
                 ~events:3
             in
             let engine = Statechart.Engine.create sm in
             Statechart.Engine.start engine;
             List.map
               (fun name ->
                 Statechart.Engine.dispatch engine (ev name);
                 Statechart.Engine.signature engine)
               (Workload.Gen_statechart.event_sequence ~seed:ev_seed
                  ~length:10 3)
           in
           Uml.Ident.reset_counter ();
           let t1 = run () in
           Uml.Ident.reset_counter ();
           let t2 = run () in
           t1 = t2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"flat simulation matches engine on generated machines"
         ~count:30
         QCheck.(pair (int_range 1 5000) (int_range 1 5000))
         (fun (seed, ev_seed) ->
           let sm =
             Workload.Gen_statechart.hierarchical ~seed ~depth:3 ~breadth:2
               ~events:3
           in
           let events =
             Workload.Gen_statechart.event_sequence ~seed:ev_seed ~length:15 3
           in
           let engine = Statechart.Engine.create sm in
           Statechart.Engine.start engine;
           let engine_trace =
             List.map
               (fun name ->
                 Statechart.Engine.dispatch engine (ev name);
                 Statechart.Engine.signature engine)
               events
           in
           match Statechart.Flatten.flatten sm with
           | Error _m -> false
           | Ok flat ->
             engine_trace = Statechart.Flatten.simulate flat events));
  ]

let () =
  Alcotest.run "statechart"
    [
      ("flat", flat_tests);
      ("guards", guard_tests);
      ("hierarchy", hierarchy_tests);
      ("orthogonal", orthogonal_tests);
      ("history", history_tests);
      ("completion", completion_tests);
      ("fork-join", fork_join_tests);
      ("misc", misc_tests);
      ("kinds", kinds_tests);
      ("flatten", flatten_tests);
    ]
