(* Tests for the activity token engine, the Petri translation, and
   their conformance (experiment E3's correctness basis). *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let e source target = Activityg.edge ~source ~target ()
let id = Activityg.node_id

(* init -> a -> b -> final *)
let linear () =
  let init = Activityg.initial () in
  let a = Activityg.action "a" in
  let b = Activityg.action "b" in
  let fin = Activityg.activity_final () in
  Activityg.make "linear"
    [ init; a; b; fin ]
    [ e (id init) (id a); e (id a) (id b); e (id b) (id fin) ]

(* init -> fork -> (a, b) -> join -> final *)
let forked () =
  let init = Activityg.initial () in
  let fork = Activityg.fork "f" in
  let a = Activityg.action "a" in
  let b = Activityg.action "b" in
  let join = Activityg.join "j" in
  let fin = Activityg.activity_final () in
  Activityg.make "forked"
    [ init; fork; a; b; join; fin ]
    [
      e (id init) (id fork); e (id fork) (id a); e (id fork) (id b);
      e (id a) (id join); e (id b) (id join); e (id join) (id fin);
    ]

(* init -> decision -> (a | b) -> merge -> final *)
let branched ?guard_a ?guard_b () =
  let init = Activityg.initial () in
  let dec = Activityg.decision "d" in
  let a = Activityg.action "a" in
  let b = Activityg.action "b" in
  let mrg = Activityg.merge "m" in
  let fin = Activityg.activity_final () in
  Activityg.make "branched"
    [ init; dec; a; b; mrg; fin ]
    [
      e (id init) (id dec);
      Activityg.edge ?guard:guard_a ~source:(id dec) ~target:(id a) ();
      Activityg.edge ?guard:guard_b ~source:(id dec) ~target:(id b) ();
      e (id a) (id mrg); e (id b) (id mrg); e (id mrg) (id fin);
    ]

let engine_tests =
  [
    tc "linear run fires all nodes once" (fun () ->
        let engine = Activity.Exec.create (linear ()) in
        let labels = Activity.Exec.run ~seed:1 engine in
        check Alcotest.int "four firings" 4 (List.length labels);
        check Alcotest.bool "finished" true (Activity.Exec.finished engine));
    tc "finished activity offers no firings" (fun () ->
        let engine = Activity.Exec.create (linear ()) in
        let _labels = Activity.Exec.run engine in
        check Alcotest.int "none" 0
          (List.length (Activity.Exec.enabled_firings engine)));
    tc "fork produces parallel tokens, join collects them" (fun () ->
        let engine = Activity.Exec.create (forked ()) in
        let labels = Activity.Exec.run ~seed:3 engine in
        (* init, fork, a, b, join, final = 6 firings *)
        check Alcotest.int "six" 6 (List.length labels);
        check Alcotest.bool "finished" true (Activity.Exec.finished engine));
    tc "after the fork both actions are enabled" (fun () ->
        let act = forked () in
        let engine = Activity.Exec.create act in
        (* fire init then fork by hand *)
        (match Activity.Exec.enabled_firings engine with
         | [ l ] -> (
           check Alcotest.bool "init ok" true (Activity.Exec.fire engine l = Ok ());
           match Activity.Exec.enabled_firings engine with
           | [ l2 ] -> (
             check Alcotest.bool "fork ok" true
               (Activity.Exec.fire engine l2 = Ok ());
             check Alcotest.int "two enabled" 2
               (List.length (Activity.Exec.enabled_firings engine)))
           | other ->
             Alcotest.fail
               (Printf.sprintf "expected single firing, got %d"
                  (List.length other)))
         | other ->
           Alcotest.fail
             (Printf.sprintf "expected single firing, got %d"
                (List.length other))));
    tc "decision takes exactly one branch" (fun () ->
        let engine = Activity.Exec.create (branched ()) in
        let labels = Activity.Exec.run ~seed:5 engine in
        (* init, decision, one action, merge, final = 5 firings *)
        check Alcotest.int "five" 5 (List.length labels);
        check Alcotest.bool "finished" true (Activity.Exec.finished engine));
    tc "guards prune decision branches" (fun () ->
        let engine =
          Activity.Exec.create (branched ~guard_a:"false" ~guard_b:"true" ())
        in
        let labels = Activity.Exec.run ~seed:2 engine in
        let act = Activity.Exec.activity engine in
        let b_node =
          List.find (fun n -> Activityg.node_name n = "b") act.Activityg.ac_nodes
        in
        let b_label = "t_" ^ Ident.to_string (Activityg.node_id b_node) in
        check Alcotest.bool "b fired" true (List.mem b_label labels));
    tc "all-false guards leave the activity stuck" (fun () ->
        let engine =
          Activity.Exec.create (branched ~guard_a:"false" ~guard_b:"false" ())
        in
        let _labels = Activity.Exec.run ~seed:2 engine in
        check Alcotest.bool "stuck" true (Activity.Exec.stuck engine));
    tc "weighted edge needs enough tokens" (fun () ->
        (* a -> (weight 2) b; single token cannot pass *)
        let init = Activityg.initial () in
        let a = Activityg.action "a" in
        let b = Activityg.action "b" in
        let act =
          Activityg.make "w"
            [ init; a; b ]
            [
              e (id init) (id a);
              Activityg.edge ~weight:2 ~source:(id a) ~target:(id b) ();
            ]
        in
        let engine = Activity.Exec.create act in
        let _labels = Activity.Exec.run engine in
        check Alcotest.bool "stuck before b" true (Activity.Exec.stuck engine));
    tc "send_signal is recorded" (fun () ->
        let init = Activityg.initial () in
        let s = Activityg.send_signal ~event:"irq" "raise" in
        let fin = Activityg.activity_final () in
        let act =
          Activityg.make "sig" [ init; s; fin ]
            [ e (id init) (id s); e (id s) (id fin) ]
        in
        let engine = Activity.Exec.create act in
        let _labels = Activity.Exec.run engine in
        check (Alcotest.list Alcotest.string) "irq" [ "irq" ]
          (Activity.Exec.sent_signals engine));
    tc "action bodies execute in the interpreter" (fun () ->
        let init = Activityg.initial () in
        let a = Activityg.action ~body:"print(\"ran\");" "a" in
        let fin = Activityg.activity_final () in
        let act =
          Activityg.make "body" [ init; a; fin ]
            [ e (id init) (id a); e (id a) (id fin) ]
        in
        let engine = Activity.Exec.create act in
        let _labels = Activity.Exec.run engine in
        check (Alcotest.list Alcotest.string) "output" [ "ran" ]
          (Activity.Exec.output_of engine));
    tc "event gating blocks accept nodes" (fun () ->
        let init = Activityg.initial () in
        let acc = Activityg.accept_event ~event:"go" "wait" in
        let fin = Activityg.activity_final () in
        let act =
          Activityg.make "gate" [ init; acc; fin ]
            [ e (id init) (id acc); e (id acc) (id fin) ]
        in
        let engine = Activity.Exec.create act in
        Activity.Exec.set_event_gating engine true;
        let _labels = Activity.Exec.run engine in
        check Alcotest.bool "blocked" true (Activity.Exec.stuck engine);
        Activity.Exec.offer_event engine "go";
        let _more = Activity.Exec.run engine in
        check Alcotest.bool "finished" true (Activity.Exec.finished engine));
  ]

let translation_tests =
  [
    tc "structure: places for edges plus start/done" (fun () ->
        let act = linear () in
        let net, m0 = Activity.Translate.to_petri act in
        (* 3 edges + 1 start + done *)
        check Alcotest.int "places" 5 (Petri.Net.place_count net);
        check Alcotest.int "transitions" 4 (Petri.Net.transition_count net);
        check Alcotest.int "initial tokens" 1 (Petri.Marking.total m0));
    tc "decision expands to one transition per branch" (fun () ->
        let act = branched () in
        let net, _m0 = Activity.Translate.to_petri act in
        (* init, a, b, final + 2 decision branches + 2 merge branches *)
        check Alcotest.int "transitions" 8 (Petri.Net.transition_count net));
    tc "translated net reaches done" (fun () ->
        let act = linear () in
        let net, m0 = Activity.Translate.to_petri act in
        let r = Petri.Analysis.reachable net m0 in
        let done_reached =
          List.exists
            (fun m -> Petri.Marking.tokens m Activity.Translate.done_place > 0)
            r.Petri.Analysis.markings
        in
        check Alcotest.bool "done" true done_reached);
  ]

let conformance_tests =
  [
    tc "linear run conforms" (fun () ->
        let r = Activity.Conform.run_and_check ~seed:1 (linear ()) in
        check Alcotest.bool "conforms" true r.Activity.Conform.conforms);
    tc "forked run conforms" (fun () ->
        let r = Activity.Conform.run_and_check ~seed:7 (forked ()) in
        check Alcotest.bool "conforms" true r.Activity.Conform.conforms);
    tc "bogus trace is rejected" (fun () ->
        let r = Activity.Conform.check_trace (linear ()) [ "t_nonsense" ] in
        check Alcotest.bool "rejected" false r.Activity.Conform.conforms);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"engine runs are occurrence sequences of the net" ~count:40
         QCheck.(pair (int_range 1 5000) (int_range 1 5000))
         (fun (seed, run_seed) ->
           let act =
             Workload.Gen_activity.series_parallel ~seed ~size:14 ~max_width:3
           in
           let r = Activity.Conform.run_and_check ~seed:run_seed act in
           r.Activity.Conform.conforms));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"decision-bearing activities also conform"
         ~count:40
         QCheck.(pair (int_range 1 5000) (int_range 1 5000))
         (fun (seed, run_seed) ->
           let act =
             Workload.Gen_activity.with_decisions ~seed ~size:14 ~max_width:3
           in
           let r = Activity.Conform.run_and_check ~seed:run_seed act in
           r.Activity.Conform.conforms));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"series-parallel activities always finish" ~count:40
         QCheck.(pair (int_range 1 5000) (int_range 1 5000))
         (fun (seed, run_seed) ->
           let act =
             Workload.Gen_activity.series_parallel ~seed ~size:12 ~max_width:3
           in
           let engine = Activity.Exec.create act in
           let _labels = Activity.Exec.run ~seed:run_seed engine in
           Activity.Exec.finished engine));
  ]

let () =
  Alcotest.run "activity"
    [
      ("engine", engine_tests);
      ("translation", translation_tests);
      ("conformance", conformance_tests);
    ]
