test/test_asl.ml: Alcotest Asl List QCheck QCheck_alcotest
