test/test_hwsw.ml: Activityg Alcotest Deployment Hwsw List Model Printf QCheck QCheck_alcotest String Uml Workload
