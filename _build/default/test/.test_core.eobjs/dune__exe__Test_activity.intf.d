test/test_activity.mli:
