test/test_statechart.ml: Alcotest Asl List QCheck QCheck_alcotest Smachine Statechart Uml Workload
