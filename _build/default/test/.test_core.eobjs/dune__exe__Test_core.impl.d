test/test_core.ml: Activityg Alcotest Classifier Component Diagram Dtype Hashtbl Ident Instance Interaction List Model Mult Pkg Printf Profile QCheck QCheck_alcotest Smachine String Uml Usecase Vspec
