test/test_hwsw.mli:
