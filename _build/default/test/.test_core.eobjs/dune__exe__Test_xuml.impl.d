test/test_xuml.ml: Alcotest Asl Classifier Diagram Dtype Ident Instance Interaction List Model Printf Smachine Statechart String Uml Vspec Wfr Xmi Xuml
