test/test_codegen.ml: Alcotest Classifier Codegen Dsim Dtype Expr Filename Hdl Htype List Model Module_ Printf QCheck QCheck_alcotest Smachine Statechart Stmt String Sys Uml Vspec Workload
