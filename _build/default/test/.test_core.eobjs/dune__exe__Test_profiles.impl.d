test/test_profiles.ml: Alcotest Classifier Component Dtype List Model Profile Profiles Uml Vspec Wfr
