test/test_dsim.ml: Alcotest Dsim Expr Hdl Htype List Module_ Stmt String
