test/test_petri.ml: Activity Alcotest Array List Petri QCheck QCheck_alcotest Workload
