test/test_statechart.mli:
