test/test_activity.ml: Activity Activityg Alcotest Ident List Petri Printf QCheck QCheck_alcotest Uml Workload
