test/test_sxml.mli:
