test/test_wfr.ml: Activityg Alcotest Classifier Component Deployment Diagram Dtype Ident Instance List Model Pkg Profile QCheck QCheck_alcotest Smachine String Uml Usecase Vspec Wfr Workload
