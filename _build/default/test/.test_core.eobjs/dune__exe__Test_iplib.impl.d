test/test_iplib.ml: Alcotest Array Dsim Hdl Iplib List Profiles String Uml
