test/test_mda.mli:
