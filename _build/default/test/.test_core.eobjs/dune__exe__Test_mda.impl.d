test/test_mda.ml: Alcotest Classifier Component Dtype List Mda Model Profiles Smachine Uml
