test/test_sxml.ml: Alcotest Hashtbl List QCheck QCheck_alcotest Sxml
