test/test_xuml.mli:
