test/test_asl.mli:
