test/test_workload.ml: Alcotest Hwsw List Uml Workload
