test/test_hdl.ml: Alcotest Check Elaborate Expr Hdl Htype List Module_ Stmt String
