test/test_wfr.mli:
