test/test_profiles.mli:
