(* Tests for the discrete-event simulator. *)

open Hdl

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let counter_module () =
  Module_.make
    ~ports:
      [
        Module_.input "clk" Htype.Bit;
        Module_.input "rst" Htype.Bit;
        Module_.input "en" Htype.Bit;
        Module_.output "q" (Htype.Unsigned 4);
      ]
    ~signals:[ Module_.signal ~init:0 "cnt" (Htype.Unsigned 4) ]
    ~processes:
      [
        Module_.seq_process
          ~reset:("rst", [ Stmt.Assign ("cnt", Expr.of_int ~width:4 0) ])
          ~name:"p_cnt" ~clock:"clk"
          [
            Stmt.If
              ( Expr.(Ref "en" ==: one),
                [ Stmt.Assign ("cnt", Expr.(Ref "cnt" +: of_int 1)) ],
                [] );
          ];
        Module_.comb_process ~name:"p_out" [ Stmt.Assign ("q", Expr.Ref "cnt") ];
      ]
    "counter"

let sim_tests =
  [
    tc "counter counts when enabled" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        Dsim.Sim.set_input sim "en" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:5;
        check Alcotest.int "q" 5 (Dsim.Sim.get sim "q"));
    tc "counter holds when disabled" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        Dsim.Sim.set_input sim "en" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:3;
        Dsim.Sim.set_input sim "en" 0;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:4;
        check Alcotest.int "q" 3 (Dsim.Sim.get sim "q"));
    tc "synchronous reset wins" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        Dsim.Sim.set_input sim "en" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:3;
        Dsim.Sim.set_input sim "rst" 1;
        Dsim.Sim.clock_edge sim "clk";
        check Alcotest.int "reset" 0 (Dsim.Sim.get sim "q"));
    tc "width wrap-around" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        Dsim.Sim.set_input sim "en" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:17;
        check Alcotest.int "wrapped" 1 (Dsim.Sim.get sim "q"));
    tc "inputs are masked to port width" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        Dsim.Sim.set_input sim "en" 0xFF;
        check Alcotest.int "bit" 1 (Dsim.Sim.get sim "en"));
    tc "unknown signal raises" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        match Dsim.Sim.get sim "ghost" with
        | _v -> Alcotest.fail "expected Simulation_error"
        | exception Dsim.Sim.Simulation_error _ -> ());
    tc "comb chains settle through deltas" (fun () ->
        (* a -> b -> c combinational chain *)
        let m =
          Module_.make
            ~ports:
              [ Module_.input "a" Htype.Bit; Module_.output "c" Htype.Bit ]
            ~signals:[ Module_.signal "b" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p1"
                  [ Stmt.Assign ("b", Expr.Ref "a") ];
                Module_.comb_process ~name:"p2"
                  [ Stmt.Assign ("c", Expr.Ref "b") ];
              ]
            "chain"
        in
        let sim = Dsim.Sim.create m in
        Dsim.Sim.set_input sim "a" 1;
        check Alcotest.int "propagated" 1 (Dsim.Sim.get sim "c"));
    tc "unstable comb loop raises" (fun () ->
        let m =
          Module_.make
            ~signals:[ Module_.signal "x" Htype.Bit ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [ Stmt.Assign ("x", Expr.Unop (Expr.Not, Expr.Ref "x")) ];
              ]
            "osc"
        in
        match Dsim.Sim.create m with
        | _sim -> Alcotest.fail "expected Simulation_error"
        | exception Dsim.Sim.Simulation_error _ -> ());
    tc "enum signals read back as literals" (fun () ->
        let ty = Htype.Enum [ "IDLE"; "BUSY" ] in
        let m =
          Module_.make
            ~ports:[ Module_.input "clk" Htype.Bit ]
            ~signals:[ Module_.signal ~init:0 "st" ty ]
            ~processes:
              [
                Module_.seq_process ~name:"p" ~clock:"clk"
                  [ Stmt.Assign ("st", Expr.Enum_lit "BUSY") ];
              ]
            "fsm"
        in
        let sim = Dsim.Sim.create m in
        check Alcotest.string "idle" "IDLE" (Dsim.Sim.get_enum sim "st");
        Dsim.Sim.clock_edge sim "clk";
        check Alcotest.string "busy" "BUSY" (Dsim.Sim.get_enum sim "st"));
    tc "case and mux evaluate" (fun () ->
        let m =
          Module_.make
            ~ports:
              [
                Module_.input "sel" (Htype.Unsigned 2);
                Module_.output "y" (Htype.Unsigned 4);
              ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [
                    Stmt.Case
                      ( Expr.Ref "sel",
                        [
                          (Stmt.Ch_int 0, [ Stmt.Assign ("y", Expr.of_int ~width:4 3) ]);
                          (Stmt.Ch_int 1, [ Stmt.Assign ("y", Expr.of_int ~width:4 7) ]);
                        ],
                        Some [ Stmt.Assign ("y", Expr.of_int ~width:4 15) ] );
                  ];
              ]
            "muxy"
        in
        let sim = Dsim.Sim.create m in
        check Alcotest.int "sel0" 3 (Dsim.Sim.get sim "y");
        Dsim.Sim.set_input sim "sel" 1;
        check Alcotest.int "sel1" 7 (Dsim.Sim.get sim "y");
        Dsim.Sim.set_input sim "sel" 2;
        check Alcotest.int "default" 15 (Dsim.Sim.get sim "y"));
    tc "slice and concat" (fun () ->
        let m =
          Module_.make
            ~ports:
              [
                Module_.input "w" (Htype.Unsigned 8);
                Module_.output "hi" (Htype.Unsigned 4);
                Module_.output "swapped" (Htype.Unsigned 8);
              ]
            ~processes:
              [
                Module_.comb_process ~name:"p"
                  [
                    Stmt.Assign ("hi", Expr.Slice (Expr.Ref "w", 7, 4));
                    Stmt.Assign
                      ( "swapped",
                        Expr.Concat
                          ( Expr.Slice (Expr.Ref "w", 3, 0),
                            Expr.Slice (Expr.Ref "w", 7, 4) ) );
                  ];
              ]
            "slicer"
        in
        let sim = Dsim.Sim.create m in
        Dsim.Sim.set_input sim "w" 0xA5;
        check Alcotest.int "hi nibble" 0xA (Dsim.Sim.get sim "hi");
        check Alcotest.int "swapped" 0x5A (Dsim.Sim.get sim "swapped"));
    tc "event counters increase" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        let e0 = Dsim.Sim.events sim in
        Dsim.Sim.set_input sim "en" 1;
        Dsim.Sim.run sim ~clock:"clk" ~cycles:10;
        check Alcotest.bool "more events" true (Dsim.Sim.events sim > e0);
        check Alcotest.bool "deltas counted" true (Dsim.Sim.delta_cycles sim > 0));
  ]

let vcd_tests =
  [
    tc "vcd has definitions and changes" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        let vcd = Dsim.Vcd.create sim in
        Dsim.Sim.set_input sim "en" 1;
        for t = 0 to 3 do
          Dsim.Sim.clock_edge sim "clk";
          Dsim.Vcd.sample vcd ~time:t
        done;
        let text = Dsim.Vcd.render vcd in
        let contains needle =
          let nl = String.length needle in
          let hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "header" true (contains "$enddefinitions");
        check Alcotest.bool "var" true (contains "$var wire 4");
        check Alcotest.bool "timestamps" true (contains "#0");
        check Alcotest.bool "vector change" true (contains "b"));
  ]

let timing_tests =
  [
    tc "timing lanes show bit waveforms" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        let tm = Dsim.Timing.create ~signals:[ "en"; "q" ] sim in
        Dsim.Sim.set_input sim "en" 1;
        for _ = 1 to 4 do
          Dsim.Timing.sample tm;
          Dsim.Sim.clock_edge sim "clk"
        done;
        Dsim.Timing.sample tm;
        check Alcotest.int "5 samples" 5 (Dsim.Timing.length tm);
        let text = Dsim.Timing.render tm in
        let lines = String.split_on_char '\n' text in
        (match List.find_opt (fun l -> String.length l > 2 && String.sub l 0 2 = "en") lines with
         | Some lane ->
           check Alcotest.bool "en high" true
             (String.contains lane '#')
         | None -> Alcotest.fail "en lane missing");
        match List.find_opt (fun l -> String.length l > 1 && l.[0] = 'q') lines with
        | Some lane ->
          (* q is a vector: transitions shown as |value *)
          check Alcotest.bool "q values" true (String.contains lane '|')
        | None -> Alcotest.fail "q lane missing");
    tc "unchanged vectors leave blank cells" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        let tm = Dsim.Timing.create ~signals:[ "q" ] sim in
        (* en=0: q never changes -> exactly one |0 cell *)
        for _ = 1 to 3 do
          Dsim.Timing.sample tm;
          Dsim.Sim.clock_edge sim "clk"
        done;
        let text = Dsim.Timing.render tm in
        let pipes =
          String.fold_left (fun n c -> if c = '|' then n + 1 else n) 0 text
        in
        check Alcotest.int "one transition cell" 1 pipes);
    tc "unknown signals are rejected" (fun () ->
        let sim = Dsim.Sim.create (counter_module ()) in
        match Dsim.Timing.create ~signals:[ "ghost" ] sim with
        | _tm -> Alcotest.fail "expected Simulation_error"
        | exception Dsim.Sim.Simulation_error _ -> ());
  ]

let () =
  Alcotest.run "dsim"
    [ ("sim", sim_tests); ("vcd", vcd_tests); ("timing", timing_tests) ]
