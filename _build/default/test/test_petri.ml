(* Tests for the Petri net substrate: firing rule, reachability,
   deadlocks, bounds, invariants. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* p1 -t1-> p2 -t2-> p1   (a live, 1-bounded cycle) *)
let cycle_net () =
  Petri.Net.make
    [ Petri.Net.place "p1"; Petri.Net.place "p2" ]
    [ Petri.Net.transition "t1"; Petri.Net.transition "t2" ]
    [
      Petri.Net.P_to_t ("p1", "t1", 1);
      Petri.Net.T_to_p ("t1", "p2", 1);
      Petri.Net.P_to_t ("p2", "t2", 1);
      Petri.Net.T_to_p ("t2", "p1", 1);
    ]

(* producer/consumer with weight-2 consumption *)
let weighted_net () =
  Petri.Net.make
    [ Petri.Net.place "buf"; Petri.Net.place "done" ]
    [ Petri.Net.transition "produce"; Petri.Net.transition "consume2" ]
    [
      Petri.Net.T_to_p ("produce", "buf", 1);
      Petri.Net.P_to_t ("buf", "consume2", 2);
      Petri.Net.T_to_p ("consume2", "done", 1);
    ]

let structure_tests =
  [
    tc "make rejects unknown places" (fun () ->
        match
          Petri.Net.make [] [ Petri.Net.transition "t" ]
            [ Petri.Net.P_to_t ("ghost", "t", 1) ]
        with
        | _net -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "make rejects non-positive weights" (fun () ->
        match
          Petri.Net.make [ Petri.Net.place "p" ] [ Petri.Net.transition "t" ]
            [ Petri.Net.P_to_t ("p", "t", 0) ]
        with
        | _net -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "make rejects duplicate ids" (fun () ->
        match
          Petri.Net.make
            [ Petri.Net.place "p"; Petri.Net.place "p" ]
            [] []
        with
        | _net -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "pre and post sets" (fun () ->
        let net = cycle_net () in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
          "pre t1" [ ("p1", 1) ] (Petri.Net.pre net "t1");
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
          "post t1" [ ("p2", 1) ] (Petri.Net.post net "t1"));
  ]

let marking_tests =
  [
    tc "of_list merges duplicates" (fun () ->
        let m = Petri.Marking.of_list [ ("p", 1); ("p", 2) ] in
        check Alcotest.int "3" 3 (Petri.Marking.tokens m "p"));
    tc "enabled respects weights" (fun () ->
        let net = weighted_net () in
        let m1 = Petri.Marking.of_list [ ("buf", 1) ] in
        let m2 = Petri.Marking.of_list [ ("buf", 2) ] in
        check Alcotest.bool "one token" false
          (Petri.Marking.enabled net m1 "consume2");
        check Alcotest.bool "two tokens" true
          (Petri.Marking.enabled net m2 "consume2"));
    tc "source transition always enabled" (fun () ->
        let net = weighted_net () in
        check Alcotest.bool "produce" true
          (Petri.Marking.enabled net Petri.Marking.empty "produce"));
    tc "fire moves tokens" (fun () ->
        let net = cycle_net () in
        let m0 = Petri.Marking.of_list [ ("p1", 1) ] in
        match Petri.Marking.fire net m0 "t1" with
        | Some m ->
          check Alcotest.int "p1" 0 (Petri.Marking.tokens m "p1");
          check Alcotest.int "p2" 1 (Petri.Marking.tokens m "p2")
        | None -> Alcotest.fail "t1 should fire");
    tc "fire refuses disabled transition" (fun () ->
        let net = cycle_net () in
        check Alcotest.bool "none" true
          (Petri.Marking.fire net Petri.Marking.empty "t1" = None));
    tc "fire_sequence replays" (fun () ->
        let net = cycle_net () in
        let m0 = Petri.Marking.of_list [ ("p1", 1) ] in
        match Petri.Marking.fire_sequence net m0 [ "t1"; "t2"; "t1" ] with
        | Some m -> check Alcotest.int "p2" 1 (Petri.Marking.tokens m "p2")
        | None -> Alcotest.fail "sequence should fire");
    tc "fire_sequence stops on disabled" (fun () ->
        let net = cycle_net () in
        let m0 = Petri.Marking.of_list [ ("p1", 1) ] in
        check Alcotest.bool "none" true
          (Petri.Marking.fire_sequence net m0 [ "t2" ] = None));
  ]

let analysis_tests =
  [
    tc "cycle has two reachable markings" (fun () ->
        let net = cycle_net () in
        let r =
          Petri.Analysis.reachable net (Petri.Marking.of_list [ ("p1", 1) ])
        in
        check Alcotest.int "two" 2 r.Petri.Analysis.state_count;
        check Alcotest.bool "no deadlock" true (r.Petri.Analysis.deadlocks = []));
    tc "deadlock detected" (fun () ->
        (* p -t-> (nothing): after t the net is dead *)
        let net =
          Petri.Net.make [ Petri.Net.place "p" ] [ Petri.Net.transition "t" ]
            [ Petri.Net.P_to_t ("p", "t", 1) ]
        in
        let r =
          Petri.Analysis.reachable net (Petri.Marking.of_list [ ("p", 1) ])
        in
        check Alcotest.int "one deadlock" 1
          (List.length r.Petri.Analysis.deadlocks);
        check Alcotest.bool "flagged" true
          (Petri.Analysis.is_deadlock_free net
             (Petri.Marking.of_list [ ("p", 1) ])
          = Some false));
    tc "cycle is 1-bounded" (fun () ->
        let net = cycle_net () in
        check Alcotest.bool "bound 1" true
          (Petri.Analysis.bound net (Petri.Marking.of_list [ ("p1", 1) ])
          = Some 1);
        check Alcotest.bool "1-bounded" true
          (Petri.Analysis.is_k_bounded 1 net
             (Petri.Marking.of_list [ ("p1", 1) ])
          = Some true));
    tc "unbounded net hits the limit" (fun () ->
        let net = weighted_net () in
        let r =
          Petri.Analysis.reachable ~limit:50 net Petri.Marking.empty
        in
        check Alcotest.bool "truncated" true r.Petri.Analysis.truncated;
        check Alcotest.bool "bound unknown" true
          (Petri.Analysis.bound ~limit:50 net Petri.Marking.empty = None));
    tc "dead transitions reported" (fun () ->
        let net = cycle_net () in
        let dead = Petri.Analysis.dead_transitions net Petri.Marking.empty in
        check Alcotest.int "both dead (no tokens)" 2 (List.length dead);
        let live =
          Petri.Analysis.dead_transitions net
            (Petri.Marking.of_list [ ("p1", 1) ])
        in
        check Alcotest.int "none dead" 0 (List.length live));
    tc "random occurrence sequence is valid" (fun () ->
        let net = cycle_net () in
        let m0 = Petri.Marking.of_list [ ("p1", 1) ] in
        let seq =
          Petri.Analysis.random_occurrence_sequence ~seed:7 ~max_steps:20 net
            m0
        in
        check Alcotest.int "length" 20 (List.length seq);
        check Alcotest.bool "replayable" true
          (Petri.Marking.fire_sequence net m0 seq <> None));
  ]

let invariant_tests =
  [
    tc "incidence of the cycle" (fun () ->
        let c = Petri.Invariant.incidence (cycle_net ()) in
        check Alcotest.int "p1/t1" (-1) c.(0).(0);
        check Alcotest.int "p1/t2" 1 c.(0).(1);
        check Alcotest.int "p2/t1" 1 c.(1).(0);
        check Alcotest.int "p2/t2" (-1) c.(1).(1));
    tc "cycle has the token-conservation P-invariant" (fun () ->
        let invs = Petri.Invariant.p_invariants (cycle_net ()) in
        check Alcotest.int "one" 1 (List.length invs);
        match invs with
        | [ inv ] ->
          check Alcotest.bool "checks" true
            (Petri.Invariant.check_p_invariant (cycle_net ()) inv);
          check Alcotest.int "p1+p2 value" 1
            (Petri.Invariant.invariant_value inv
               (Petri.Marking.of_list [ ("p1", 1) ]))
        | _other -> Alcotest.fail "one invariant expected");
    tc "cycle has a T-invariant (t1 t2)" (fun () ->
        match Petri.Invariant.t_invariants (cycle_net ()) with
        | [ inv ] ->
          check Alcotest.bool "t1=t2" true
            (List.assoc_opt "t1" inv = List.assoc_opt "t2" inv)
        | _other -> Alcotest.fail "one T-invariant expected");
    tc "weighted net has no P-invariant" (fun () ->
        check Alcotest.int "none" 0
          (List.length (Petri.Invariant.p_invariants (weighted_net ()))));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"P-invariant value is constant along occurrence sequences"
         ~count:50
         QCheck.(int_range 1 10_000)
         (fun seed ->
           let net = cycle_net () in
           let m0 = Petri.Marking.of_list [ ("p1", 1) ] in
           match Petri.Invariant.p_invariants net with
           | [ inv ] ->
             let v0 = Petri.Invariant.invariant_value inv m0 in
             let seq =
               Petri.Analysis.random_occurrence_sequence ~seed ~max_steps:30
                 net m0
             in
             let rec walk m = function
               | [] -> true
               | t :: rest -> (
                 match Petri.Marking.fire net m t with
                 | Some m' ->
                   Petri.Invariant.invariant_value inv m' = v0 && walk m' rest
                 | None -> false)
             in
             walk m0 seq
           | _other -> false));
  ]

let coverability_tests =
  [
    tc "bounded cycle is recognized as bounded" (fun () ->
        let net = cycle_net () in
        check Alcotest.bool "bounded" true
          (Petri.Coverability.is_bounded net
             (Petri.Marking.of_list [ ("p1", 1) ])
          = Some true));
    tc "producer net is recognized as unbounded" (fun () ->
        let net = weighted_net () in
        let r = Petri.Coverability.analyse net Petri.Marking.empty in
        check Alcotest.bool "unbounded" true (r.Petri.Coverability.unbounded_places <> []);
        check Alcotest.bool "buf grows" true
          (List.mem "buf" r.Petri.Coverability.unbounded_places);
        check Alcotest.bool "verdict" true
          (Petri.Coverability.is_bounded net Petri.Marking.empty
          = Some false));
    tc "done place of the producer also diverges" (fun () ->
        let net = weighted_net () in
        let r = Petri.Coverability.analyse net Petri.Marking.empty in
        check Alcotest.bool "done too" true
          (List.mem "done" r.Petri.Coverability.unbounded_places));
    tc "empty net is bounded" (fun () ->
        let net = Petri.Net.make [ Petri.Net.place "p" ] [] [] in
        check Alcotest.bool "bounded" true
          (Petri.Coverability.is_bounded net
             (Petri.Marking.of_list [ ("p", 3) ])
          = Some true));
    tc "covers respects omega" (fun () ->
        let om = [ ("a", Petri.Coverability.Omega); ("b", Petri.Coverability.Fin 2) ] in
        check Alcotest.bool "covered" true
          (Petri.Coverability.covers om
             (Petri.Marking.of_list [ ("a", 99); ("b", 2) ]));
        check Alcotest.bool "not covered" false
          (Petri.Coverability.covers om
             (Petri.Marking.of_list [ ("b", 3) ])));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"coverability agrees with reachability on bounded nets"
         ~count:25
         QCheck.(int_range 1 5000)
         (fun seed ->
           (* activity translations with decisions are 1-bounded; keep
              the workloads small enough that the coverability set fits
              well inside the node limit for every shape *)
           let act =
             Workload.Gen_activity.with_decisions ~seed ~size:8 ~max_width:2
           in
           let net, m0 = Activity.Translate.to_petri act in
           Petri.Coverability.is_bounded ~limit:50_000 net m0 = Some true));
  ]

let () =
  Alcotest.run "petri"
    [
      ("structure", structure_tests);
      ("marking", marking_tests);
      ("analysis", analysis_tests);
      ("invariants", invariant_tests);
      ("coverability", coverability_tests);
    ]
