(* Tests for the MDA engine: platforms, transformation rules, traces,
   and generation. *)

open Uml

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let platform_tests =
  [
    tc "platform lookup by name" (fun () ->
        check Alcotest.bool "found" true
          (Mda.Platform.by_name "asic_vhdl" = Some Mda.Platform.asic_vhdl);
        check Alcotest.bool "missing" true (Mda.Platform.by_name "zzz" = None));
    tc "four platforms predefined" (fun () ->
        check Alcotest.int "count" 4 (List.length Mda.Platform.all));
  ]

let pim_with_real () =
  let m = Model.create "pim" in
  Model.add m
    (Model.E_classifier
       (Classifier.make
          ~attributes:
            [
              Classifier.property "gain" Dtype.Real;
              Classifier.property "count" Dtype.Integer;
            ]
          "Filter"));
  Model.add m (Model.E_classifier (Classifier.make ~is_active:true "Driver"));
  Model.add m
    (Model.E_component (Component.make ~ports:[ Component.port "io" ] "Unit"));
  m

let transform_tests =
  [
    tc "identity model is fully reused" (fun () ->
        let m = Model.create "pim" in
        Model.add m (Model.E_classifier (Classifier.make "Plain"));
        let psm, trace =
          Mda.Mapping.to_psm Mda.Platform.asic_vhdl m
        in
        check Alcotest.bool "reuse 1.0" true
          (Mda.Transform.reuse_fraction trace = 1.0);
        check Alcotest.int "same size" (Model.size m) (Model.size psm));
    tc "hw mapping lowers Real to Integer" (fun () ->
        let psm, trace =
          Mda.Mapping.to_psm Mda.Platform.asic_vhdl (pim_with_real ())
        in
        (match Model.classifier_named psm "Filter" with
         | Some c -> (
           match Classifier.find_attribute c "gain" with
           | Some p ->
             check Alcotest.bool "integer now" true
               (p.Classifier.prop_type = Dtype.Integer)
           | None -> Alcotest.fail "gain missing")
         | None -> Alcotest.fail "Filter missing");
        check Alcotest.bool "changes recorded" true
          (Mda.Transform.changed_count trace >= 2));
    tc "hw mapping adds clock and reset ports" (fun () ->
        let psm, _trace =
          Mda.Mapping.to_psm Mda.Platform.asic_vhdl (pim_with_real ())
        in
        match Model.component_named psm "Unit" with
        | Some c ->
          check Alcotest.bool "clk" true (Component.find_port c "clk" <> None);
          check Alcotest.bool "rst" true (Component.find_port c "rst" <> None);
          check Alcotest.bool "io kept" true
            (Component.find_port c "io" <> None)
        | None -> Alcotest.fail "Unit missing");
    tc "sw mapping passivates active classes" (fun () ->
        let psm, trace =
          Mda.Mapping.to_psm Mda.Platform.sw_c (pim_with_real ())
        in
        (match Model.classifier_named psm "Driver" with
         | Some c ->
           check Alcotest.bool "passive" false c.Classifier.cl_is_active
         | None -> Alcotest.fail "Driver missing");
        check Alcotest.int "one change" 1 (Mda.Transform.changed_count trace));
    tc "psm name mentions platform" (fun () ->
        let psm, _trace =
          Mda.Mapping.to_psm Mda.Platform.fpga_verilog (pim_with_real ())
        in
        check Alcotest.string "name" "pim__fpga_verilog" (Model.name psm));
    tc "applications survive when targets survive" (fun () ->
        let m = pim_with_real () in
        let profile = Profiles.Soc_profile.install m in
        let unit_comp =
          match Model.component_named m "Unit" with
          | Some c -> c
          | None -> Alcotest.fail "Unit missing"
        in
        Profiles.Soc_profile.apply m ~profile ~stereotype:"hwModule"
          unit_comp.Component.cmp_id;
        let psm, _trace = Mda.Mapping.to_psm Mda.Platform.asic_vhdl m in
        check Alcotest.bool "stereotype kept" true
          (Model.has_stereotype psm unit_comp.Component.cmp_id "hwModule"));
    tc "trace links sources to results" (fun () ->
        let _psm, trace =
          Mda.Mapping.to_psm Mda.Platform.asic_vhdl (pim_with_real ())
        in
        List.iter
          (fun (e : Mda.Transform.trace_entry) ->
            check Alcotest.bool "has results" true (e.Mda.Transform.te_results <> []))
          trace;
        check Alcotest.int "entry per element" 3 (List.length trace));
  ]

let machine_model () =
  let m = Model.create "pim" in
  let a = Smachine.simple_state "A" in
  let b = Smachine.simple_state "B" in
  let init = Smachine.pseudostate Smachine.Initial in
  let r =
    Smachine.region
      [ Smachine.Pseudo init; Smachine.State a; Smachine.State b ]
      [
        Smachine.transition ~source:init.Smachine.ps_id
          ~target:a.Smachine.st_id ();
        Smachine.transition
          ~triggers:[ Smachine.Signal_trigger "go" ]
          ~source:a.Smachine.st_id ~target:b.Smachine.st_id ();
      ]
  in
  Model.add m (Model.E_state_machine (Smachine.make "fsm" [ r ]));
  m

let generate_tests =
  [
    tc "hw_design compiles state machines" (fun () ->
        let r = Mda.Generate.hw_design (machine_model ()) in
        check Alcotest.bool "design" true (r.Mda.Generate.design <> None);
        check (Alcotest.list Alcotest.string) "compiled" [ "fsm" ]
          r.Mda.Generate.compiled;
        check Alcotest.int "no skips" 0 (List.length r.Mda.Generate.skipped));
    tc "unflattenable machines are skipped with a reason" (fun () ->
        let m = Model.create "pim" in
        (* orthogonal machine cannot be flattened *)
        let r1 = Smachine.region [] [] in
        let r2 = Smachine.region [] [] in
        let comp = Smachine.composite_state "O" [ r1; r2 ] in
        let init = Smachine.pseudostate Smachine.Initial in
        let top =
          Smachine.region
            [ Smachine.Pseudo init; Smachine.State comp ]
            [
              Smachine.transition ~source:init.Smachine.ps_id
                ~target:comp.Smachine.st_id ();
            ]
        in
        Model.add m (Model.E_state_machine (Smachine.make "ortho" [ top ]));
        let r = Mda.Generate.hw_design m in
        check Alcotest.bool "no design" true (r.Mda.Generate.design = None);
        check Alcotest.int "skipped" 1 (List.length r.Mda.Generate.skipped));
    tc "artifacts per platform language" (fun () ->
        let m = machine_model () in
        let vhdl = Mda.Generate.artifacts Mda.Platform.asic_vhdl m in
        let verilog = Mda.Generate.artifacts Mda.Platform.fpga_verilog m in
        let systemc = Mda.Generate.artifacts Mda.Platform.virtual_systemc m in
        check Alcotest.int "vhdl files" 1 (List.length vhdl);
        check Alcotest.int "verilog files" 1 (List.length verilog);
        check Alcotest.int "systemc files" 1 (List.length systemc);
        List.iter
          (fun (_f, text) ->
            check Alcotest.bool "nonempty" true (Mda.Generate.loc text > 5))
          (vhdl @ verilog @ systemc));
    tc "c artifacts for the software platform" (fun () ->
        let m = Model.create "pim" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~operations:[ Classifier.operation ~body:"return 1;" "f" ]
                "K"));
        match Mda.Generate.artifacts Mda.Platform.sw_c m with
        | [ (file, text) ] ->
          check Alcotest.string "name" "pim.c" file;
          check Alcotest.bool "has struct" true (Mda.Generate.loc text > 5)
        | _other -> Alcotest.fail "one C file expected");
    tc "loc counts non-blank lines" (fun () ->
        check Alcotest.int "three" 3 (Mda.Generate.loc "a\n\nb\n   \nc"));
    tc "model_element_count includes features" (fun () ->
        let m = Model.create "m" in
        Model.add m
          (Model.E_classifier
             (Classifier.make
                ~attributes:[ Classifier.property "x" Dtype.Integer ]
                ~operations:[ Classifier.operation "f" ]
                "K"));
        (* 1 element + 2 features *)
        check Alcotest.int "count" 3 (Mda.Generate.model_element_count m));
  ]

let () =
  Alcotest.run "mda"
    [
      ("platform", platform_tests);
      ("transform", transform_tests);
      ("generate", generate_tests);
    ]
