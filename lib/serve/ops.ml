type sink = {
  s_out : string -> unit;
  s_err : string -> unit;
}

let std_sink = { s_out = print_string; s_err = (fun s -> output_string stderr s) }

let outf sink fmt = Printf.ksprintf sink.s_out fmt
let errl sink msg = sink.s_err (msg ^ "\n")

(* Last-resort guard for every op body: downstream failures on
   adversarial models (simulation, execution, generation) become
   diagnostics, not crashes. *)
let guarded sink f =
  match f () with
  | code -> code
  | exception Xmi.Read.Import_error msg ->
    errl sink msg;
    1
  | exception Dsim.Sim.Simulation_error msg ->
    errl sink msg;
    1
  | exception Statechart.Engine.Model_error msg ->
    errl sink msg;
    1
  | exception Sys_error msg ->
    errl sink msg;
    1
  | exception Invalid_argument msg ->
    errl sink msg;
    1
  | exception Failure msg ->
    errl sink msg;
    1

type format = [ `Text | `Json ]
type loader = string -> (Artifacts.t, string) result

let load_artifacts path =
  match Load.load_model path with
  | Error msg -> Error msg
  | Ok m -> Ok (Artifacts.of_model m)

(* Every model-consuming op funnels through this, so the load path and
   its diagnostics can never drift between subcommands. *)
let with_artifacts sink (load : loader) path f =
  match load path with
  | Error msg ->
    errl sink msg;
    1
  | Ok art -> f art

(* Validate --jobs and run the body with a pool (no worker domains when
   [jobs = 1], so the sequential paths stay exactly as before). *)
let with_jobs sink jobs f =
  if jobs < 1 then begin
    errl sink "--jobs must be at least 1";
    1
  end
  else Exec.Pool.with_pool ~jobs f

let split_selectors values =
  List.concat_map
    (fun v -> List.filter (fun s -> s <> "") (String.split_on_char ',' v))
    values

(* A selector that matches no registered rule is a user error: reject
   it up front (a silently ignored --only/--disable would lint with a
   different rule set than the user asked for). *)
let selection_of ~only ~disable =
  let only = split_selectors only and disable = split_selectors disable in
  let selection =
    Lint.Rules.selection_of_strings
      ?only:(match only with [] -> None | l -> Some l)
      ~disabled:disable ()
  in
  match Lint.Rules.unknown_selectors selection with
  | [] -> Ok selection
  | unknown ->
    Error
      (Printf.sprintf "unknown rule selector%s: %s (see `socuml rules`)"
         (match unknown with [ _ ] -> "" | _ -> "s")
         (String.concat ", " unknown))

let metrics_reg metrics =
  match metrics with
  | Some reg -> reg
  | None -> Telemetry.Metrics.null

let emit_metrics sink metrics =
  match metrics with
  | Some reg -> sink.s_out (Telemetry.Metrics.report reg)
  | None -> ()

(* --- validate ------------------------------------------------------- *)

let validate sink ~format (art : Artifacts.t) =
  let m = art.Artifacts.model in
  let diags = Uml.Wfr.check m in
  let soc = Profiles.Soc_profile.check m in
  let rt = Profiles.Rt_profile.check m in
  let all = diags @ soc @ rt in
  (match format with
   | `Json -> sink.s_out (Lint.Report.to_json ~model:(Uml.Model.name m) all)
   | `Text ->
     List.iter (fun d -> outf sink "%s\n" (Uml.Wfr.to_string d)) all;
     outf sink "%d diagnostics (%d errors, %d warnings) in %s\n"
       (List.length all)
       (List.length (Uml.Wfr.errors all))
       (List.length (Uml.Wfr.warnings all))
       (Uml.Model.name m));
  if Uml.Wfr.errors all = [] then 0 else 1

(* --- lint ----------------------------------------------------------- *)

let lint sink ~format ~only ~disable ~no_hdl ~jobs (load : loader) paths =
  match selection_of ~only ~disable with
  | Error msg ->
    errl sink msg;
    1
  | Ok selection ->
    (* One task per model: load, derive the HDL design (the netlist the
       MDA flow would generate, so lint sees the same design as `gen`),
       check, and render off-line; the rendered reports are printed in
       input order afterwards, so multi-model output never depends on
       the job count. *)
    let lint_one path =
      match load path with
      | Error msg -> Error msg
      | Ok art ->
        let m = art.Artifacts.model in
        let design =
          if no_hdl then None
          else (art.Artifacts.design ()).Mda.Generate.design
        in
        (* Key the per-entry memo by the raw selector inputs: different
           spellings of one selection just miss, which is only a speed
           question, never a correctness one. *)
        let key =
          String.concat "," only ^ ";" ^ String.concat "," disable ^ ";"
          ^ string_of_bool no_hdl
        in
        let diags =
          art.Artifacts.lint_diags ~key (fun () ->
              Lint.Check.check ~selection ?design m)
        in
        let rendered =
          match format with
          | `Json -> Lint.Report.to_json ~model:(Uml.Model.name m) diags
          | `Text -> Lint.Report.to_text ~model:(Uml.Model.name m) diags
        in
        Ok (rendered, Uml.Wfr.errors diags <> [])
    in
    with_jobs sink jobs @@ fun pool ->
    let results = Exec.Pool.map_list pool lint_one paths in
    let code = ref 0 in
    List.iter
      (fun result ->
        match result with
        | Error msg ->
          errl sink msg;
          code := 1
        | Ok (rendered, has_errors) ->
          sink.s_out rendered;
          if has_errors then code := 1)
      results;
    !code

(* --- info ----------------------------------------------------------- *)

let info sink (art : Artifacts.t) =
  let m = art.Artifacts.model in
  outf sink "model %s: %d elements\n" (Uml.Model.name m) (Uml.Model.size m);
  let count label n = if n > 0 then outf sink "  %-16s %d\n" label n in
  count "classifiers" (List.length (Uml.Model.classifiers m));
  count "components" (List.length (Uml.Model.components m));
  count "state machines" (List.length (Uml.Model.state_machines m));
  count "activities" (List.length (Uml.Model.activities m));
  count "interactions" (List.length (Uml.Model.interactions m));
  count "use cases" (List.length (Uml.Model.use_cases m));
  count "packages" (List.length (Uml.Model.packages m));
  count "profiles" (List.length (Uml.Model.profiles m));
  count "applications" (List.length (Uml.Model.applications m));
  count "diagrams" (List.length (Uml.Model.diagrams m));
  0

(* --- gen ------------------------------------------------------------ *)

let gen sink ~lang (art : Artifacts.t) =
  let m = art.Artifacts.model in
  let plat =
    match lang with
    | "vhdl" -> Mda.Platform.asic_vhdl
    | "verilog" -> Mda.Platform.fpga_verilog
    | "systemc" -> Mda.Platform.virtual_systemc
    | _c -> Mda.Platform.sw_c
  in
  let psm, trace = Mda.Mapping.to_psm plat m in
  outf sink "-- PSM %s (reuse %.0f%%)\n" (Uml.Model.name psm)
    (100. *. Mda.Transform.reuse_fraction trace);
  match Mda.Generate.artifacts plat psm with
  | [] ->
    errl sink "no generatable content (no compilable state machines)";
    1
  | artifacts ->
    List.iter
      (fun (file, contents) ->
        outf sink "-- %s (%d lines)\n%s\n" file
          (Mda.Generate.loc contents) contents)
      artifacts;
    0

(* --- simulate --------------------------------------------------------- *)

let split_events events =
  if events = "" then [] else String.split_on_char ',' events

let choose_machine m machine =
  let machines = Uml.Model.state_machines m in
  match machine with
  | Some name ->
    List.find_opt (fun sm -> sm.Uml.Smachine.sm_name = name) machines
  | None -> (
    match machines with
    | sm :: _rest -> Some sm
    | [] -> None)

(* Run the chosen state machine on the event list; when telemetry is
   live, also run every activity of the model so one registry covers
   the statechart, activity and ASL engines. *)
let run_engines_exn ?(echo = false) sink reg m sm names =
  let interp = Asl.Interp.create ~metrics:reg (Asl.Store.create ()) in
  let engine = Statechart.Engine.create ~interp ~metrics:reg sm in
  Statechart.Engine.start engine;
  if echo then outf sink "start: %s\n" (Statechart.Engine.signature engine);
  List.iter
    (fun ev ->
      Statechart.Engine.dispatch engine (Statechart.Event.make ev);
      if echo then
        outf sink "%s: %s\n" ev (Statechart.Engine.signature engine))
    names;
  if Telemetry.Metrics.live reg then
    List.iter
      (fun act ->
        let exec = Activity.Exec.create ~metrics:reg act in
        ignore (Activity.Exec.run ~seed:1 exec))
      (Uml.Model.activities m)

(* Model-level failures (bad ASL in a guard or effect, broken topology)
   are user errors, not crashes: print the diagnostic, exit nonzero. *)
let run_engines ?echo sink reg m sm names =
  match run_engines_exn ?echo sink reg m sm names with
  | () -> true
  | exception Statechart.Engine.Model_error msg ->
    errl sink msg;
    false

(* --rtl path: compile the machine to a synthesizable FSM and run the
   event sequence as single-cycle strobes on the compiled
   discrete-event engine, echoing the state register after each edge
   in the same format as the statechart path.  The lowered netlist
   comes from the artifact memo, so a warm serve request skips
   flatten/FSM-compile/lowering entirely. *)
let run_rtl_exn sink reg ~budget (art : Artifacts.t) sm names =
  match art.Artifacts.rtl sm with
  | Error reason ->
    errl sink reason;
    false
  | Ok nl ->
    let sim = Dsim.Fast.of_netlist ~metrics:reg ~budget nl in
    Dsim.Fast.set_input sim "rst" 1;
    Dsim.Fast.clock_edge sim "clk";
    Dsim.Fast.set_input sim "rst" 0;
    outf sink "start: %s\n" (Dsim.Fast.get_enum sim "state");
    List.iter
      (fun ev ->
        let port = Codegen.Fsm_compile.event_input ev in
        Dsim.Fast.set_input sim port 1;
        Dsim.Fast.clock_edge sim "clk";
        Dsim.Fast.set_input sim port 0;
        outf sink "%s: %s\n" ev (Dsim.Fast.get_enum sim "state"))
      names;
    true

let run_rtl sink reg ~budget art sm names =
  match run_rtl_exn sink reg ~budget art sm names with
  | ok -> ok
  | exception Dsim.Sim.Simulation_error msg ->
    errl sink msg;
    false

let simulate ?(budget = Exec.Budget.unlimited) sink ~machine ~events ~metrics
    ~rtl (art : Artifacts.t) =
  let m = art.Artifacts.model in
  match choose_machine m machine with
  | None ->
    errl sink "no such state machine in the model";
    1
  | Some sm ->
    let reg = metrics_reg metrics in
    let names = split_events events in
    let ok =
      if rtl then run_rtl sink reg ~budget art sm names
      else run_engines ~echo:true sink reg m sm names
    in
    emit_metrics sink metrics;
    if ok then 0 else 1

(* --- trace ------------------------------------------------------------- *)

let trace sink ~machine ~events (art : Artifacts.t) =
  let m = art.Artifacts.model in
  match choose_machine m machine with
  | None ->
    errl sink "no such state machine in the model";
    1
  | Some sm ->
    let reg = Telemetry.Metrics.create () in
    let ok = run_engines sink reg m sm (split_events events) in
    let events = Telemetry.Metrics.events reg in
    List.iter
      (fun ev -> outf sink "%s\n" (Telemetry.Metrics.render_event ev))
      events;
    outf sink "%d events recorded, %d dropped\n" (List.length events)
      (Telemetry.Metrics.events_dropped reg);
    if ok then 0 else 1

(* --- partition --------------------------------------------------------- *)

let partition sink ~budget (art : Artifacts.t) =
  match Uml.Model.activities art.Artifacts.model with
  | [] ->
    errl sink "no activity in the model";
    1
  | act :: _rest ->
    let g = Hwsw.Taskgraph.of_activity act in
    let greedy = Hwsw.Partition.greedy ~budget g in
    let improved = Hwsw.Partition.improve ~budget g in
    let all_sw =
      (Hwsw.Schedule.run g (Hwsw.Schedule.all_sw g)).Hwsw.Schedule.makespan
    in
    outf sink "activity %s: %d tasks, all-SW makespan %d\n"
      act.Uml.Activityg.ac_name
      (List.length g.Hwsw.Taskgraph.tasks)
      all_sw;
    outf sink "greedy:   makespan %d, area %d (%d evals)\n"
      greedy.Hwsw.Partition.cost greedy.Hwsw.Partition.area
      greedy.Hwsw.Partition.evaluations;
    outf sink "improved: makespan %d, area %d (%d evals)\n"
      improved.Hwsw.Partition.cost improved.Hwsw.Partition.area
      improved.Hwsw.Partition.evaluations;
    List.iter
      (fun (task, side) ->
        outf sink "  %-12s %s\n" task
          (match side with
           | Hwsw.Schedule.Hw -> "HW"
           | Hwsw.Schedule.Sw -> "SW"))
      improved.Hwsw.Partition.assignment;
    0

(* --- analyze ------------------------------------------------------------ *)

let analyze ?(budget = Exec.Budget.unlimited) sink ~metrics ~only ~disable
    ~jobs (load : loader) path =
  match selection_of ~only ~disable with
  | Error msg ->
    errl sink msg;
    1
  | Ok selection -> (
    with_artifacts sink load path @@ fun art ->
    let m = art.Artifacts.model in
    match Uml.Model.activities m with
    | [] ->
      errl sink "no activity in the model";
      1
    | activities ->
      with_jobs sink jobs @@ fun pool ->
      let reg = metrics_reg metrics in
      List.iter
        (fun act ->
          outf sink "activity %s:\n" act.Uml.Activityg.ac_name;
          let net, m0, compiled = art.Artifacts.petri act in
          outf sink "  net: %d places, %d transitions\n"
            (Petri.Net.place_count net)
            (Petri.Net.transition_count net);
          (match Petri.Coverability.is_bounded net m0 with
           | Some true -> outf sink "  bounded: yes\n"
           | Some false ->
             let r = Petri.Coverability.analyse net m0 in
             outf sink "  bounded: NO (unbounded places: %s)\n"
               (String.concat ", " r.Petri.Coverability.unbounded_places)
           | None -> outf sink "  bounded: unknown (limit reached)\n");
          let r =
            Petri.Analysis.reachable ~limit:5000 ~metrics:reg ~budget ~pool
              ~compiled net m0
          in
          outf sink "  reachable markings: %d%s, deadlocks: %d\n"
            r.Petri.Analysis.state_count
            (if r.Petri.Analysis.truncated then "+" else "")
            (List.length r.Petri.Analysis.deadlocks);
          let invariants = Petri.Invariant.p_invariants net in
          outf sink "  P-invariants: %d\n" (List.length invariants);
          (* dead-transition verdicts are only meaningful when the
             state space was fully explored *)
          if not r.Petri.Analysis.truncated then begin
            let dead =
              Petri.Analysis.dead_transitions ~limit:5000 ~budget ~pool
                ~compiled net m0
            in
            if dead <> [] then
              outf sink "  dead transitions: %s\n" (String.concat ", " dead)
          end)
        activities;
      let lint = Lint.Check.check_model ~selection ~metrics:reg m in
      if lint <> [] then begin
        outf sink "lint:\n";
        List.iter (fun d -> outf sink "  %s\n" (Uml.Wfr.to_string d)) lint
      end;
      emit_metrics sink metrics;
      0)

(* --- inject ------------------------------------------------------------ *)

(* The signal-trigger alphabet of a machine, sorted and deduplicated —
   the stimulus events a fault campaign perturbs. *)
let machine_event_alphabet (sm : Uml.Smachine.t) =
  let rec region_events (r : Uml.Smachine.region) =
    List.concat_map
      (fun (tr : Uml.Smachine.transition) ->
        List.filter_map
          (fun trg ->
            match trg with
            | Uml.Smachine.Signal_trigger name -> Some name
            | Uml.Smachine.Time_trigger _ | Uml.Smachine.Any_trigger
            | Uml.Smachine.Completion ->
              None)
          tr.Uml.Smachine.tr_triggers)
      r.Uml.Smachine.rg_transitions
    @ List.concat_map
        (fun v ->
          match v with
          | Uml.Smachine.State s ->
            List.concat_map region_events s.Uml.Smachine.st_regions
          | Uml.Smachine.Pseudo _ | Uml.Smachine.Final _ -> [])
        r.Uml.Smachine.rg_vertices
  in
  List.sort_uniq String.compare
    (List.concat_map region_events sm.Uml.Smachine.sm_regions)

(* Fault targets of a flat RTL module: every port and signal except the
   clock and reset, with bit widths for bit-flip positions. *)
let rtl_fault_surface (hmod : Hdl.Module_.t) =
  let keep name = name <> "clk" && name <> "rst" in
  List.filter_map
    (fun (p : Hdl.Module_.port) ->
      if keep p.Hdl.Module_.port_name then
        Some (p.Hdl.Module_.port_name, Hdl.Htype.width p.Hdl.Module_.port_type)
      else None)
    hmod.Hdl.Module_.mod_ports
  @ List.map
      (fun (s : Hdl.Module_.signal) ->
        (s.Hdl.Module_.sig_name, Hdl.Htype.width s.Hdl.Module_.sig_type))
      hmod.Hdl.Module_.mod_signals

let inject ?(budget = Exec.Budget.unlimited) sink ~machine ~seed ~faults
    ~format ~metrics ~jobs (art : Artifacts.t) =
  let m = art.Artifacts.model in
  if faults < 0 then begin
    errl sink "--faults must be non-negative";
    1
  end
  else begin
    with_jobs sink jobs @@ fun pool ->
    let reg = metrics_reg metrics in
    let stimulus_length = 16 in
    (* statechart + RTL domains from the chosen state machine *)
    let sm =
      match choose_machine m machine with
      | Some sm when machine_event_alphabet sm <> [] -> Some sm
      | Some _ | None -> None
    in
    let alphabet =
      match sm with
      | Some sm -> machine_event_alphabet sm
      | None -> []
    in
    let events =
      match alphabet with
      | [] -> []
      | alphabet ->
        let rng = Workload.Prng.create (seed lxor 0x5bd1) in
        List.init stimulus_length (fun _i -> Workload.Prng.pick rng alphabet)
    in
    let sc_spec =
      Option.map
        (fun sm ->
          {
            Fault.Campaign.ss_machine = sm;
            ss_events = events;
            ss_budget = 1000;
          })
        sm
    in
    let rtl_spec =
      Option.bind sm (fun sm ->
          match art.Artifacts.rtl sm with
          | Error _reason -> None
          | Ok nl ->
            let hmod = nl.Dsim.Netlist.nl_module in
            (* one single-cycle strobe per stimulus event: clear the
               previous strobe, raise the current one *)
            let stimulus =
              List.mapi
                (fun i ev ->
                  let clear =
                    if i = 0 then []
                    else
                      [
                        ( Codegen.Fsm_compile.event_input
                            (List.nth events (i - 1)),
                          0 );
                      ]
                  in
                  (i, clear @ [ (Codegen.Fsm_compile.event_input ev, 1) ]))
                events
            in
            Some
              {
                Fault.Campaign.rs_module = hmod;
                rs_clock = "clk";
                rs_reset = Some "rst";
                rs_stimulus = stimulus;
                rs_cycles = stimulus_length;
                rs_settle_budget = 1000;
              })
    in
    (* token domain from the first activity *)
    let act_spec, net_spec =
      match Uml.Model.activities m with
      | [] -> (None, None)
      | act :: _rest ->
        let net, m0, _compiled = art.Artifacts.petri act in
        ( Some
            {
              Fault.Campaign.ac_activity = act;
              ac_choice_seed = seed;
              ac_max_steps = 10_000;
            },
          Some
            {
              Fault.Campaign.np_net = net;
              np_marking = m0;
              np_choice_seed = seed;
              np_max_steps = 10_000;
            } )
    in
    let surface =
      {
        Fault.Plan.su_signals =
          (match rtl_spec with
           | Some spec -> rtl_fault_surface spec.Fault.Campaign.rs_module
           | None -> []);
        su_cycles = stimulus_length;
        su_events = alphabet;
        su_length = stimulus_length;
        su_places =
          (match net_spec with
           | Some spec ->
             List.map
               (fun (p : Petri.Net.place) -> p.Petri.Net.pl_id)
               spec.Fault.Campaign.np_net.Petri.Net.places
           | None -> []);
        su_steps = 32;
      }
    in
    let plan = Fault.Plan.generate ~seed ~count:faults surface in
    let report =
      Fault.Campaign.run ~metrics:reg ~budget ~pool ?rtl:rtl_spec
        ?statechart:sc_spec ?activity:act_spec ?net:net_spec
        ~label:(Uml.Model.name m) plan
    in
    (match format with
     | `Text -> sink.s_out (Fault.Campaign.to_text report)
     | `Json -> sink.s_out (Fault.Campaign.to_json report));
    emit_metrics sink metrics;
    0
  end

(* --- pack ------------------------------------------------------------- *)

let pack sink ~out ~path (art : Artifacts.t) =
  let m = art.Artifacts.model in
  let out =
    match out with
    | Some out -> out
    | None -> Filename.remove_extension path ^ ".sumb"
  in
  let data = Snap.Write.to_string m in
  let oc = open_out_bin out in
  (match output_string oc data with
   | () -> close_out oc
   | exception e ->
     close_out_noerr oc;
     raise e);
  outf sink "wrote %s (%d bytes, %d elements)\n" out (String.length data)
    (Uml.Model.size m);
  0
