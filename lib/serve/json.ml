type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- parser ----------------------------------------------------------- *)

type cursor = {
  src : string;
  mutable pos : int;
}

let fail cur fmt =
  Printf.ksprintf
    (fun m -> raise (Parse_error (Printf.sprintf "%s at byte %d" m cur.pos)))
    fmt

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec loop () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur "expected '%c', found '%c'" c c'
  | None -> fail cur "expected '%c', found end of input" c

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur "invalid literal"

let hex_digit cur c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _c -> fail cur "invalid hex digit in \\u escape"

let parse_u16 cur =
  if cur.pos + 4 > String.length cur.src then
    fail cur "truncated \\u escape";
  let v =
    (hex_digit cur cur.src.[cur.pos] lsl 12)
    lor (hex_digit cur cur.src.[cur.pos + 1] lsl 8)
    lor (hex_digit cur cur.src.[cur.pos + 2] lsl 4)
    lor hex_digit cur cur.src.[cur.pos + 3]
  in
  cur.pos <- cur.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
      advance cur;
      Buffer.contents buf
    | Some '\\' ->
      advance cur;
      (match peek cur with
       | None -> fail cur "unterminated escape"
       | Some c ->
         advance cur;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let hi = parse_u16 cur in
            if hi >= 0xD800 && hi <= 0xDBFF then begin
              (* surrogate pair: the low half must follow *)
              if
                cur.pos + 2 <= String.length cur.src
                && cur.src.[cur.pos] = '\\'
                && cur.src.[cur.pos + 1] = 'u'
              then begin
                cur.pos <- cur.pos + 2;
                let lo = parse_u16 cur in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail cur "invalid low surrogate";
                add_utf8 buf
                  (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else fail cur "unpaired surrogate"
            end
            else if hi >= 0xDC00 && hi <= 0xDFFF then
              fail cur "unpaired surrogate"
            else add_utf8 buf hi
          | _c -> fail cur "invalid escape '\\%c'" c));
      loop ()
    | Some c when Char.code c < 0x20 ->
      fail cur "raw control character in string"
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number cur =
  let start = cur.pos in
  let consume pred =
    let rec loop () =
      match peek cur with
      | Some c when pred c ->
        advance cur;
        loop ()
      | Some _ | None -> ()
    in
    loop ()
  in
  if peek cur = Some '-' then advance cur;
  consume (fun c -> c >= '0' && c <= '9');
  let is_float = ref false in
  if peek cur = Some '.' then begin
    is_float := true;
    advance cur;
    consume (fun c -> c >= '0' && c <= '9')
  end;
  (match peek cur with
   | Some ('e' | 'E') ->
     is_float := true;
     advance cur;
     (match peek cur with
      | Some ('+' | '-') -> advance cur
      | Some _ | None -> ());
     consume (fun c -> c >= '0' && c <= '9')
   | Some _ | None -> ());
  let text = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "invalid number %S" text
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
      (* integer overflowing native int: keep the value as a float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail cur "invalid number %S" text)

let rec parse_value cur depth =
  if depth > 128 then fail cur "nesting too deep";
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        items := parse_value cur (depth + 1) :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          loop ()
        | Some ']' -> advance cur
        | Some c -> fail cur "expected ',' or ']', found '%c'" c
        | None -> fail cur "unterminated array"
      in
      loop ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let members = ref [] in
      let rec loop () =
        skip_ws cur;
        let key = parse_string cur in
        if List.mem_assoc key !members then
          fail cur "duplicate key %S" key;
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur (depth + 1) in
        members := (key, v) :: !members;
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          loop ()
        | Some '}' -> advance cur
        | Some c -> fail cur "expected ',' or '}', found '%c'" c
        | None -> fail cur "unterminated object"
      in
      loop ();
      Obj (List.rev !members)
    end
  | Some c -> fail cur "unexpected character '%c'" c

let parse s =
  let cur = { src = s; pos = 0 } in
  match
    let v = parse_value cur 0 in
    skip_ws cur;
    (match peek cur with
     | Some _ -> fail cur "trailing bytes after value"
     | None -> ());
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- printer ---------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape_into buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        render buf item)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        render buf item)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  render buf v;
  Buffer.contents buf

(* --- accessors -------------------------------------------------------- *)

let member key v =
  match v with
  | Obj members -> List.assoc_opt key members
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int v =
  match v with
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 1e15 ->
    Some (int_of_float f)
  | Null | Bool _ | Float _ | Str _ | List _ | Obj _ -> None

let to_str v =
  match v with
  | Str s -> Some s
  | Null | Bool _ | Int _ | Float _ | List _ | Obj _ -> None

let to_bool v =
  match v with
  | Bool b -> Some b
  | Null | Int _ | Float _ | Str _ | List _ | Obj _ -> None

let str_list v =
  match v with
  | Str s -> Some [ s ]
  | List items ->
    List.fold_right
      (fun item acc ->
        match (to_str item, acc) with
        | Some s, Some rest -> Some (s :: rest)
        | Some _, None | None, _ -> None)
      items (Some [])
  | Null | Bool _ | Int _ | Float _ | Obj _ -> None
