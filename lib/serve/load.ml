let read_file_bytes path =
  let ic = open_in_bin path in
  match really_input_string ic (in_channel_length ic) with
  | data ->
    close_in ic;
    data
  | exception e ->
    close_in_noerr ic;
    raise e

let read_bytes path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else if Sys.is_directory path then
    Error (Printf.sprintf "%s: is a directory, not a model file" path)
  else
    match read_file_bytes path with
    | data -> Ok data
    | exception Sys_error msg -> Error msg
    | exception exn ->
      Error (Printf.sprintf "cannot read %s: %s" path (Printexc.to_string exn))

let model_of_bytes ~path data =
  match
    if Snap.Read.is_snapshot data then Snap.Read.model_of_string data
    else Xmi.Read.model_of_string data
  with
  | m -> Ok m
  | exception Xmi.Read.Import_error msg ->
    Error (Printf.sprintf "cannot import %s: %s" path msg)
  | exception Snap.Read.Import_error msg ->
    Error (Printf.sprintf "cannot import %s: %s" path msg)
  | exception Sys_error msg -> Error msg
  | exception exn ->
    Error (Printf.sprintf "cannot import %s: %s" path (Printexc.to_string exn))

let load_model path =
  match read_bytes path with
  | Error msg -> Error msg
  | Ok data -> model_of_bytes ~path data
