(** Minimal JSON values for the [socuml serve] wire protocol.

    The toolchain ships no JSON library, so this is a small hand-rolled
    one: a value type, a strict recursive-descent parser and a compact
    deterministic printer.  It covers exactly what the newline-delimited
    request/response protocol needs — no streaming, no number-precision
    heroics (integers are native [int]s, everything else is [float]).

    The printer is the protocol's determinism anchor: object members
    print in construction order, strings escape control characters, and
    the output never contains a raw newline — one response is always
    one line. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in order; keys unique *)

val parse : string -> (t, string) result
(** Parse one complete JSON document.  Trailing non-whitespace, control
    characters inside strings, unpaired surrogates in [\u] escapes,
    duplicate object keys and unterminated constructs are all errors;
    the message is one line and names the byte offset. *)

val to_string : t -> string
(** Compact rendering: no whitespace, members in list order, full
    string escaping (["\n"] becomes [\n], so the result is always a
    single line).  Floats that are whole numbers print without an
    exponent; NaN/infinity render as [null] (JSON has no spelling for
    them). *)

(** {1 Accessors} — shaped for request decoding. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] for absent keys and non-objects. *)

val to_int : t -> int option
(** [Int n], plus [Float f] when [f] is integral. *)

val to_str : t -> string option
val to_bool : t -> bool option

val str_list : t -> string list option
(** A [List] of strings, or a single [Str] treated as a one-element
    list. *)
