type state =
  | Hit
  | Snap
  | Miss

let state_name s =
  match s with
  | Hit -> "hit"
  | Snap -> "snap"
  | Miss -> "miss"

type entry = {
  e_artifacts : Artifacts.t;
  e_charge : int;
  mutable e_stamp : int;
}

type stats = {
  cs_entries : int;
  cs_bytes : int;
  cs_max_entries : int;
  cs_max_bytes : int;
  cs_hits : int;
  cs_misses : int;
  cs_snap_refills : int;
  cs_evictions : int;
  cs_persisted : int;
  cs_quarantined : int;
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_entries : int;
  max_bytes : int;
  persist_dir : string option;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable snap_refills : int;
  mutable evictions : int;
  mutable persisted : int;
  mutable quarantined : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create ?(max_entries = 64) ?(max_bytes = 256 * 1024 * 1024) ?persist_dir
    () =
  if max_entries < 1 then invalid_arg "Serve.Cache.create: max_entries < 1";
  if max_bytes < 1 then invalid_arg "Serve.Cache.create: max_bytes < 1";
  (match persist_dir with
   | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
   | Some _ | None -> ());
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    max_entries;
    max_bytes;
    persist_dir;
    bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    snap_refills = 0;
    evictions = 0;
    persisted = 0;
    quarantined = 0;
  }

let next_stamp t =
  t.tick <- t.tick + 1;
  t.tick

(* Evict least-recently-used entries until both bounds hold, but never
   the entry inserted by the current lookup — one oversized model must
   still be servable from cache. *)
let enforce_bounds t ~keep =
  let over () =
    Hashtbl.length t.table > t.max_entries || t.bytes > t.max_bytes
  in
  let rec loop () =
    if over () && Hashtbl.length t.table > 1 then begin
      let victim = ref None in
      Hashtbl.iter
        (fun key e ->
          if key <> keep then
            match !victim with
            | Some (_, stamp) when stamp <= e.e_stamp -> ()
            | Some _ | None -> victim := Some (key, e.e_stamp))
        t.table;
      match !victim with
      | Some (key, _stamp) ->
        (match Hashtbl.find_opt t.table key with
         | Some e -> t.bytes <- t.bytes - e.e_charge
         | None -> ());
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1;
        loop ()
      | None -> () (* only the protected entry remains *)
    end
  in
  loop ()

let snap_path dir key = Filename.concat dir (key ^ ".sumb")

(* A persisted snapshot is an optimization, never a correctness input:
   any failure to read or decode it falls back to the source bytes.
   The rotten file itself is quarantined — renamed to [<key>.corrupt]
   and counted — so it is never re-read on every subsequent miss and
   disk rot shows up in [stats] instead of hiding as a silent slow
   path.  Runs under the cache lock (callers hold it). *)
let quarantine t path =
  match Sys.rename path (path ^ ".corrupt") with
  | () -> t.quarantined <- t.quarantined + 1
  | exception Sys_error _ -> ()

let try_refill t key =
  match t.persist_dir with
  | None -> None
  | Some dir -> (
    let path = snap_path dir key in
    if not (Sys.file_exists path) then None
    else
      match Load.read_file_bytes path with
      | exception _ ->
        quarantine t path;
        None
      | data -> (
        match Snap.Read.model_of_string data with
        | m -> Some m
        | exception _ ->
          quarantine t path;
          None))

(* Write-through persistence, atomic against concurrent readers: write
   to a dotfile sibling and rename into place.  Failures (full disk,
   read-only dir) are swallowed — the cache must never turn a healthy
   request into an error. *)
let persist t key model =
  match t.persist_dir with
  | None -> ()
  | Some dir ->
    let path = snap_path dir key in
    if not (Sys.file_exists path) then begin
      match
        let tmp = Filename.concat dir ("." ^ key ^ ".tmp") in
        let oc = open_out_bin tmp in
        (match output_string oc (Snap.Write.to_string model) with
         | () -> close_out oc
         | exception e ->
           close_out_noerr oc;
           raise e);
        Sys.rename tmp path
      with
      | () -> t.persisted <- t.persisted + 1
      | exception _ -> ()
    end

let load t path =
  match Load.read_bytes path with
  | Error msg -> Error msg
  | Ok data ->
    let key = Digest.to_hex (Digest.string data) in
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
          e.e_stamp <- next_stamp t;
          t.hits <- t.hits + 1;
          Ok (e.e_artifacts, key, Hit)
        | None ->
          t.misses <- t.misses + 1;
          let refilled = try_refill t key in
          let state, model_result =
            match refilled with
            | Some m ->
              t.snap_refills <- t.snap_refills + 1;
              (Snap, Ok m)
            | None -> (Miss, Load.model_of_bytes ~path data)
          in
          (match model_result with
           | Error msg -> Error msg
           | Ok model ->
             let art = Artifacts.of_model model in
             let e =
               {
                 e_artifacts = art;
                 e_charge = String.length data;
                 e_stamp = next_stamp t;
               }
             in
             Hashtbl.add t.table key e;
             t.bytes <- t.bytes + e.e_charge;
             enforce_bounds t ~keep:key;
             (* parsed from XMI: persist the packed form so the next
                process (or the next post-eviction miss) refills via
                the fast loader *)
             if state = Miss && not (Snap.Read.is_snapshot data) then
               persist t key model;
             Ok (art, key, state)))

let stats t =
  locked t (fun () ->
      {
        cs_entries = Hashtbl.length t.table;
        cs_bytes = t.bytes;
        cs_max_entries = t.max_entries;
        cs_max_bytes = t.max_bytes;
        cs_hits = t.hits;
        cs_misses = t.misses;
        cs_snap_refills = t.snap_refills;
        cs_evictions = t.evictions;
        cs_persisted = t.persisted;
        cs_quarantined = t.quarantined;
      })

(* Degradation valve: drop every entry (the persisted snapshots stay —
   they refill misses cheaply once pressure clears).  Dropped entries
   count as evictions so the stats ledger stays monotonic. *)
let clear t =
  locked t (fun () ->
      let n = Hashtbl.length t.table in
      Hashtbl.reset t.table;
      t.bytes <- 0;
      t.evictions <- t.evictions + n)
