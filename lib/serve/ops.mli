(** The model-consuming subcommand bodies, shared verbatim by the
    one-shot CLI ([bin/socuml.ml]) and the serve daemon.

    Every op writes through a {!sink} instead of the process streams
    and returns the exit code, so the daemon can capture a request's
    stdout/stderr into its JSON response while the CLI keeps printing —
    one implementation, provably identical bytes (the serve-vs-CLI
    differential suite in [test/test_serve.ml] depends on this).

    Inputs arrive as {!Artifacts.t} (a model plus memoized derived
    artifacts): the CLI builds a fresh one per invocation, the daemon
    serves them from its content-hash cache.  Ops only read models and
    artifacts; the only filesystem writer is {!pack}. *)

(** Where an op's two output streams go. *)
type sink = {
  s_out : string -> unit;
  s_err : string -> unit;
}

val std_sink : sink
(** [stdout]/[stderr] — the one-shot CLI's sink. *)

val errl : sink -> string -> unit
(** One diagnostic line (appends the newline), as [prerr_endline]. *)

val guarded : sink -> (unit -> int) -> int
(** Last-resort guard for every op body: downstream failures on
    adversarial models (simulation, execution, generation) become
    one-line diagnostics on the sink's error stream and exit code 1,
    never crashes. *)

type format = [ `Text | `Json ]

type loader = string -> (Artifacts.t, string) result
(** How ops obtain a model: the CLI loads from disk, the daemon from
    its cache.  The error string is the one-line diagnostic. *)

val load_artifacts : string -> (Artifacts.t, string) result
(** The CLI's loader: {!Load.load_model} wrapped in fresh artifacts. *)

val with_artifacts : sink -> loader -> string -> (Artifacts.t -> int) -> int
(** Run the body on the loaded model, or report the load diagnostic
    and return 1 — the shared funnel keeping load errors identical
    across subcommands. *)

val with_jobs : sink -> int -> (Exec.Pool.t -> int) -> int
(** Validate [--jobs] and run the body with a pool (no worker domains
    when [jobs = 1]). *)

val selection_of :
  only:string list ->
  disable:string list ->
  (Lint.Rules.selection, string) result
(** Split comma-separated selector lists, build the rule selection, and
    reject unknown selectors with the standard diagnostic. *)

(** {1 Ops}

    [metrics] is the per-run registry: [None] means telemetry off;
    [Some reg] collects into [reg] and appends the rendered report to
    the output stream (the CLI passes a fresh registry, the daemon a
    fork of its own; see DESIGN.md §serve). *)

val validate : sink -> format:format -> Artifacts.t -> int

val lint :
  sink ->
  format:format ->
  only:string list ->
  disable:string list ->
  no_hdl:bool ->
  jobs:int ->
  loader ->
  string list ->
  int

val info : sink -> Artifacts.t -> int

val gen : sink -> lang:string -> Artifacts.t -> int

val simulate :
  ?budget:Exec.Budget.t ->
  sink ->
  machine:string option ->
  events:string ->
  metrics:Telemetry.Metrics.t option ->
  rtl:bool ->
  Artifacts.t ->
  int
(** [budget] (default {!Exec.Budget.unlimited}) cancels the [--rtl]
    path cooperatively — checkpointed per settle pass;
    {!Exec.Budget.Expired} propagates (it is deliberately outside
    {!guarded}'s net so the daemon can answer a typed timeout). *)

val trace :
  sink -> machine:string option -> events:string -> Artifacts.t -> int

val partition : sink -> budget:int -> Artifacts.t -> int

val analyze :
  ?budget:Exec.Budget.t ->
  sink ->
  metrics:Telemetry.Metrics.t option ->
  only:string list ->
  disable:string list ->
  jobs:int ->
  loader ->
  string ->
  int
(** Takes the loader (not pre-loaded artifacts) because unknown rule
    selectors must be rejected before the model is loaded, exactly as
    the CLI orders its diagnostics.  [budget] is checkpointed per
    explored marking in the Petri explorations. *)

val inject :
  ?budget:Exec.Budget.t ->
  sink ->
  machine:string option ->
  seed:int ->
  faults:int ->
  format:format ->
  metrics:Telemetry.Metrics.t option ->
  jobs:int ->
  Artifacts.t ->
  int
(** [budget] is checkpointed per fault and per cycle/event/step inside
    the campaign runs. *)

val pack : sink -> out:string option -> path:string -> Artifacts.t -> int
(** [path] is the input path the default output name derives from. *)
