(** Content-hash-keyed LRU cache of loaded models and their derived
    artifacts — the heart of [socuml serve].

    A lookup reads the file's bytes (cheap), hashes them, and returns
    the resident {!Artifacts.t} on a hit — the parse and every memoized
    lowering are skipped.  Keys are content digests, not paths: the
    same model bytes at two paths share one entry, and editing a file
    changes its key (stale entries age out by LRU, they are never
    served).

    Capacity is bounded twice: a maximum entry count and a byte budget,
    where an entry is charged its source-file size (the observable,
    reproducible proxy for the retained graph).  Inserting past either
    bound evicts least-recently-used entries; the newest entry is never
    evicted, so a single oversized model still caches.

    With a persist directory, every entry parsed from XMI is also
    written as [<key>.sumb]; a later process (or a later miss after
    eviction) finds the snapshot by key and refills via the fast binary
    loader instead of re-parsing XMI — the daemon restarts warm.
    Corrupt or unreadable persisted snapshots never poison a lookup:
    the source file stays authoritative, and the rotten file is
    quarantined — renamed to [<key>.sumb.corrupt] and counted in
    {!stats} — so it is inspected at most once, not re-read on every
    miss.

    All operations are domain-safe behind one lock. *)

type t

(** How a lookup was satisfied. *)
type state =
  | Hit  (** resident in memory *)
  | Snap  (** miss, refilled from a persisted [<key>.sumb] snapshot *)
  | Miss  (** miss, parsed from the source bytes *)

val state_name : state -> string
(** ["hit"], ["snap"], ["miss"] — the protocol's wire spelling. *)

type stats = {
  cs_entries : int;
  cs_bytes : int;  (** sum of resident entry charges *)
  cs_max_entries : int;
  cs_max_bytes : int;
  cs_hits : int;
  cs_misses : int;  (** includes snapshot refills *)
  cs_snap_refills : int;
  cs_evictions : int;
  cs_persisted : int;  (** snapshots written to the persist dir *)
  cs_quarantined : int;
      (** corrupt persisted snapshots renamed to [.corrupt] *)
}

val create : ?max_entries:int -> ?max_bytes:int -> ?persist_dir:string ->
  unit -> t
(** [max_entries] defaults to 64, [max_bytes] to 256 MiB.  When
    [persist_dir] is given it is created if missing.
    @raise Invalid_argument when a bound is below 1. *)

val load : t -> string -> (Artifacts.t * string * state, string) result
(** [load t path] returns the artifacts, the content key (hex digest of
    the file bytes) and how the lookup was satisfied.  [Error] carries
    the standard one-line {!Load} diagnostic. *)

val stats : t -> stats

val clear : t -> unit
(** Drop every resident entry (counted as evictions), keeping lifetime
    counters and any persisted snapshots — the graceful-degradation
    valve: after a resource crash the daemon sheds its retained graphs
    and refills on demand, warm from the persist dir when present. *)
