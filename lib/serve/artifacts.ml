type t = {
  model : Uml.Model.t;
  design : unit -> Mda.Generate.hw_result;
  rtl : Uml.Smachine.t -> (Dsim.Netlist.t, string) result;
  petri : Uml.Activityg.t -> Petri.Net.t * Petri.Marking.t * Petri.Compiled.t;
  lint_diags :
    key:string -> (unit -> Uml.Wfr.diagnostic list) -> Uml.Wfr.diagnostic list;
}

(* One lock per entry, held across derivation: concurrent lint workers
   asking for the same artifact serialize instead of deriving twice.
   Derivations never call back into the accessors, so the lock cannot
   be re-entered. *)
let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let compile_rtl sm =
  match Statechart.Flatten.flatten sm with
  | Error reason -> Error reason
  | Ok flat -> (
    match Codegen.Fsm_compile.compile flat with
    | Error reason -> Error reason
    | Ok hmod -> Ok (Dsim.Netlist.compile hmod))

let of_model model =
  let lock = Mutex.create () in
  let design_memo = ref None in
  let rtl_memo : (string, Dsim.Netlist.t) Hashtbl.t = Hashtbl.create 4 in
  let petri_memo :
      (Uml.Activityg.t
      * (Petri.Net.t * Petri.Marking.t * Petri.Compiled.t))
      list
      ref =
    ref []
  in
  let design () =
    locked lock (fun () ->
        match !design_memo with
        | Some d -> d
        | None ->
          let d = Mda.Generate.hw_design model in
          design_memo := Some d;
          d)
  in
  let rtl (sm : Uml.Smachine.t) =
    locked lock (fun () ->
        match Hashtbl.find_opt rtl_memo sm.Uml.Smachine.sm_name with
        | Some nl -> Ok nl
        | None -> (
          match compile_rtl sm with
          | Error _reason as e -> e
          | Ok nl ->
            Hashtbl.add rtl_memo sm.Uml.Smachine.sm_name nl;
            Ok nl))
  in
  let petri (act : Uml.Activityg.t) =
    locked lock (fun () ->
        match List.find_opt (fun (a, _) -> a == act) !petri_memo with
        | Some (_, r) -> r
        | None ->
          let net, m0 = Activity.Translate.to_petri act in
          let r = (net, m0, Petri.Compiled.of_net net) in
          petri_memo := (act, r) :: !petri_memo;
          r)
  in
  let lint_memo : (string, Uml.Wfr.diagnostic list) Hashtbl.t =
    Hashtbl.create 2
  in
  let lint_diags ~key check =
    locked lock (fun () ->
        match Hashtbl.find_opt lint_memo key with
        | Some diags -> diags
        | None ->
          let diags = check () in
          Hashtbl.add lint_memo key diags;
          diags)
  in
  { model; design; rtl; petri; lint_diags }
