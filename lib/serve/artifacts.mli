(** A loaded model plus its memoized expensive derivations.

    This is the unit the serve cache holds: the first request that
    needs a derived artifact pays for it, every later request on the
    same cache entry gets the memo.  The accessors are domain-safe (a
    sharded lint request may touch one entry from several workers) and
    every memoized value is a pure function of the model, so memoization
    can never change output bytes — the property the serve-vs-CLI
    differential tests pin down.

    The third expensive artifact class, compiled ASL behaviors, needs no
    per-entry storage: [Asl.Compiled]'s process-global memo tables are
    warmed by the first engine construction and shared by every request
    (bounded LRU, see {!Asl.Compiled.set_memo_cap}). *)

type t = private {
  model : Uml.Model.t;
  design : unit -> Mda.Generate.hw_result;
      (** The generated HDL design ([Mda.Generate.hw_design]), as lint
          sees it; computed once. *)
  rtl : Uml.Smachine.t -> (Dsim.Netlist.t, string) result;
      (** Flatten the machine, compile it to an FSM module and lower
          that to a compiled netlist; successes memoize per machine
          name.  [Error] carries the flatten/FSM-compile reason;
          lowering failures raise [Dsim.Sim.Simulation_error] exactly
          like the uncached path (and are not memoized). *)
  petri : Uml.Activityg.t -> Petri.Net.t * Petri.Marking.t * Petri.Compiled.t;
      (** The activity's Petri translation plus its compiled form;
          memoized per activity (physical equality — activities come
          from [model]). *)
  lint_diags :
    key:string -> (unit -> Uml.Wfr.diagnostic list) -> Uml.Wfr.diagnostic list;
      (** Memoized lint diagnostics, keyed by the caller's rule-selection
          fingerprint.  The thunk must be a pure function of [model] and
          [key] (it is skipped on a memo hit, so side effects — e.g. a
          live metrics registry — must NOT flow through here; [analyze]
          keeps the uncached path for exactly that reason), and must not
          call this value's other accessors (the entry lock is held). *)
}

val of_model : Uml.Model.t -> t
(** Wrap a model with empty memos.  Cheap: nothing is derived until an
    accessor runs. *)
