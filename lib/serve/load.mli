(** Model loading shared by the one-shot CLI and the serve daemon.

    Hostile inputs (unreadable path, truncated or corrupt XMI or
    snapshot, a directory passed as a file) must produce a one-line
    diagnostic — never an exception trace — and the wording must be
    identical on every path that loads a model, so the CLI subcommands
    and the daemon's cache cannot drift apart.  The format is
    auto-detected by magic bytes: every entry point accepts [.sumb]
    snapshots and [.xmi] models interchangeably. *)

val read_file_bytes : string -> string
(** Whole-file read; raises like [open_in_bin]/[really_input_string]. *)

val read_bytes : string -> (string, string) result
(** The raw file contents, or the standard one-line diagnostic for a
    missing path, a directory, or an unreadable file. *)

val model_of_bytes : path:string -> string -> (Uml.Model.t, string) result
(** Decode model bytes (snapshot or XMI, sniffed by magic).  [path]
    only labels the diagnostic. *)

val load_model : string -> (Uml.Model.t, string) result
(** [read_bytes] then [model_of_bytes]. *)
