(** The [socuml serve] request loop.

    A daemon reads newline-delimited JSON requests — one object per
    line — and writes exactly one JSON response line per request, in
    order.  Model-consuming requests mirror the CLI subcommands and
    their flags; the response embeds the op's captured stdout/stderr,
    byte-identical to the one-shot CLI, plus per-model cache outcomes
    from the daemon's content-hash {!Cache}.

    Request shape (fields beyond these are rejected):

    {v
    {"op":"lint","models":["a.xmi","b.xmi"],"id":7,
     "format":"json","only":["SOC-01"],"disable":[],"no_hdl":false,
     "jobs":4,"metrics":true}
    v}

    - ["op"] (required): [validate], [lint], [info], [gen], [simulate],
      [trace], [partition], [analyze], [inject], [pack], [stats],
      [health], [quit].
    - ["id"] (optional int or string): echoed verbatim in the response.
    - Model ops take ["model"] (and [lint] alternatively ["models"]);
      the remaining fields are the CLI flags of the same name —
      ["format"], ["only"], ["disable"], ["no_hdl"], ["jobs"],
      ["machine"], ["events"], ["rtl"], ["lang"], ["budget"], ["seed"],
      ["faults"], ["out"] — with the CLI defaults.
    - ["metrics"]: [true] forks the daemon registry for this request
      and appends the fork's report to the output, then merges the fork
      back — so each response carries that request's counters only and
      identical requests report identical metrics (DESIGN.md §serve).
    - [simulate], [analyze] and [inject] additionally take ["fuel"]
      (non-negative checkpoint count, deterministic) or
      ["deadline_ms"] (positive wall-clock budget) — mutually
      exclusive; either overrides the server-wide [deadline_ms].

    Executed ops answer
    [{"id"?,"op","ok","exit","cache":[{"path","key","state"}...],
    "output","error"}] where [ok] is [exit = 0] and [state] is
    ["hit"], ["snap"] or ["miss"].  Malformed lines — unparseable or
    oversized JSON, a non-object, an unknown op, a missing or
    ill-typed field — answer [{"id"?,"ok":false,"error":"..."}]; the
    daemon keeps serving after every error.  [stats] reports the
    request ledger and cache/ASL-memo counters; [health] answers the
    cheap supervisor probe; [quit] acknowledges, answers any already
    -consumed pending lines with [shutting_down], and stops the loop.

    {2 Error codes}

    Failure classes beyond a nonzero op exit carry a ["code"] field
    (table in DESIGN.md §5):

    - ["timeout"] — the request's budget expired at an engine
      checkpoint; partial output is kept, caches stay consistent.
    - ["overloaded"] — the pending queue was full; the line was
      refused without being parsed.
    - ["shutting_down"] — the line was consumed but the daemon stopped
      (signal or [quit]) before running it.
    - ["resource_exhausted"] — the op crashed the memory wall twice
      (caches were evicted and the op retried once in between).

    The request ledger always reconciles:
    [requests = protocol_errors + completed + timeouts +
    resource_exhausted + sheds + drained] — the chaos suite
    ([test/test_serve_chaos.ml]) holds the daemon to it. *)

type t

val create :
  ?max_entries:int ->
  ?max_bytes:int ->
  ?persist_dir:string ->
  ?deadline_ms:int ->
  ?max_queue:int ->
  unit ->
  t
(** A daemon with a fresh {!Cache} (same defaults) and a live metrics
    registry.  [deadline_ms] (default: none) is the server-wide
    wall-clock budget applied to [simulate]/[analyze]/[inject]
    requests that don't carry their own; [max_queue] (default 64)
    bounds the pending-line queue — lines past it are shed with an
    [overloaded] answer.
    @raise Invalid_argument when [deadline_ms <= 0] or
    [max_queue < 1]. *)

val protocol_version : int
(** Wire-protocol version reported by the [health] op. *)

val max_line_bytes : int
(** Request-line size cap (1 MiB); longer lines answer a protocol
    error without being parsed, and the transports never buffer more
    than this (plus one read chunk) per line. *)

val request_stop : t -> unit
(** Ask the serve loops to stop: in-flight work finishes, every
    already-consumed pending line is answered with [shutting_down],
    and the loops return.  Async-signal-safe (a single atomic store) —
    this is what the CLI's SIGTERM/SIGINT handlers call. *)

val stop_requested : t -> bool
(** Whether {!request_stop} has been called. *)

val with_degradation : t -> (unit -> 'a) -> ('a, string) result
(** Run a thunk under the daemon's crash/degradation policy: on
    [Out_of_memory] or [Stack_overflow], evict the artifact cache and
    the ASL memo, compact the heap, and retry once; a second crash
    returns [Error] with a one-line diagnostic.  Any other exception —
    including {!Exec.Budget.Expired} — passes through.  Exposed for
    the resilience tests; [handle_line] applies it to every op. *)

val handle_line : t -> string -> string option * bool
(** Process one request line.  Returns the response line (without the
    trailing newline; [None] for blank lines, which are skipped) and
    whether the daemon should keep serving ([false] after [quit]). *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serve requests from the channel until EOF, [quit] or
    {!request_stop}, flushing after every response line.  Reads the
    channel's file descriptor directly (chunked, with the byte
    high-water mark) — don't interleave other reads on [ic]. *)

val serve_socket : t -> string -> unit
(** Listen on a Unix-domain socket at the given path, serving one
    connection at a time; a [quit] request or {!request_stop} shuts
    the daemon down and removes the socket file.  A pre-existing path
    is claimed only if it is a socket no live daemon answers on
    (probe-then-unlink); otherwise raises [Failure] with a one-line
    diagnostic. *)
