(** The [socuml serve] request loop.

    A daemon reads newline-delimited JSON requests — one object per
    line — and writes exactly one JSON response line per request, in
    order.  Model-consuming requests mirror the CLI subcommands and
    their flags; the response embeds the op's captured stdout/stderr,
    byte-identical to the one-shot CLI, plus per-model cache outcomes
    from the daemon's content-hash {!Cache}.

    Request shape (fields beyond these are rejected):

    {v
    {"op":"lint","models":["a.xmi","b.xmi"],"id":7,
     "format":"json","only":["SOC-01"],"disable":[],"no_hdl":false,
     "jobs":4,"metrics":true}
    v}

    - ["op"] (required): [validate], [lint], [info], [gen], [simulate],
      [trace], [partition], [analyze], [inject], [pack], [stats],
      [quit].
    - ["id"] (optional int or string): echoed verbatim in the response.
    - Model ops take ["model"] (and [lint] alternatively ["models"]);
      the remaining fields are the CLI flags of the same name —
      ["format"], ["only"], ["disable"], ["no_hdl"], ["jobs"],
      ["machine"], ["events"], ["rtl"], ["lang"], ["budget"], ["seed"],
      ["faults"], ["out"] — with the CLI defaults.
    - ["metrics"]: [true] forks the daemon registry for this request
      and appends the fork's report to the output, then merges the fork
      back — so each response carries that request's counters only and
      identical requests report identical metrics (DESIGN.md §serve).

    Executed ops answer
    [{"id"?,"op","ok","exit","cache":[{"path","key","state"}...],
    "output","error"}] where [ok] is [exit = 0] and [state] is
    ["hit"], ["snap"] or ["miss"].  Malformed lines — unparseable or
    oversized JSON, a non-object, an unknown op, a missing or
    ill-typed field — answer [{"id"?,"ok":false,"error":"..."}]; the
    daemon keeps serving after every error.  [stats] reports request
    and cache/ASL-memo counters; [quit] acknowledges and stops the
    loop. *)

type t

val create :
  ?max_entries:int -> ?max_bytes:int -> ?persist_dir:string -> unit -> t
(** A daemon with a fresh {!Cache} (same defaults) and a live metrics
    registry. *)

val max_line_bytes : int
(** Request-line size cap (1 MiB); longer lines answer a protocol
    error without being parsed. *)

val handle_line : t -> string -> string option * bool
(** Process one request line.  Returns the response line (without the
    trailing newline; [None] for blank lines, which are skipped) and
    whether the daemon should keep serving ([false] after [quit]). *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serve requests from the channel until EOF or [quit], flushing
    after every response line. *)

val serve_socket : t -> string -> unit
(** Listen on a Unix-domain socket at the given path (unlinking any
    stale socket first), serving one connection at a time; a [quit]
    request shuts the daemon down and removes the socket. *)
