type t = {
  cache : Cache.t;
  registry : Telemetry.Metrics.t;
  mutable requests : int;
  mutable protocol_errors : int;
}

let create ?max_entries ?max_bytes ?persist_dir () =
  {
    cache = Cache.create ?max_entries ?max_bytes ?persist_dir ();
    registry = Telemetry.Metrics.create ();
    requests = 0;
    protocol_errors = 0;
  }

let max_line_bytes = 1024 * 1024

(* --- request decoding ------------------------------------------------- *)

let ( let* ) = Result.bind

(* A typo'd field would otherwise be silently ignored and the request
   would run with a default the user never asked for — reject it. *)
let check_fields ~op ~allowed members =
  let rec loop ms =
    match ms with
    | [] -> Ok ()
    | (key, _) :: rest ->
      if List.mem key allowed then loop rest
      else Error (Printf.sprintf "unknown field %S for op %S" key op)
  in
  loop members

let req_str obj key =
  match Json.member key obj with
  | None -> Error (Printf.sprintf "missing %S field" key)
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S must be a string" key))

let opt_str obj key =
  match Json.member key obj with
  | None -> Ok None
  | Some v -> (
    match Json.to_str v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S must be a string" key))

let str_field obj key ~default =
  let* v = opt_str obj key in
  Ok (Option.value v ~default)

let int_field obj key ~default =
  match Json.member key obj with
  | None -> Ok default
  | Some v -> (
    match Json.to_int v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S must be an integer" key))

let bool_field obj key ~default =
  match Json.member key obj with
  | None -> Ok default
  | Some v -> (
    match Json.to_bool v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S must be a boolean" key))

let list_field obj key =
  match Json.member key obj with
  | None -> Ok []
  | Some v -> (
    match Json.str_list v with
    | Some l -> Ok l
    | None -> Error (Printf.sprintf "field %S must be a list of strings" key))

let format_field obj =
  let* s = str_field obj "format" ~default:"text" in
  match s with
  | "text" -> Ok `Text
  | "json" -> Ok `Json
  | other ->
    Error
      (Printf.sprintf "field \"format\" must be \"text\" or \"json\" (got %S)"
         other)

let lang_field obj =
  let* lang = req_str obj "lang" in
  match lang with
  | "vhdl" | "verilog" | "systemc" | "c" -> Ok lang
  | other ->
    Error
      (Printf.sprintf
         "field \"lang\" must be one of vhdl, verilog, systemc, c (got %S)"
         other)

(* [lint] takes either ["models"] (a list) or ["model"]; every other
   model op takes ["model"]. *)
let models_field obj =
  let* single = opt_str obj "model" in
  let* many =
    match Json.member "models" obj with
    | None -> Ok None
    | Some v -> (
      match Json.str_list v with
      | Some l -> Ok (Some l)
      | None -> Error "field \"models\" must be a list of strings")
  in
  match (single, many) with
  | Some _, Some _ -> Error "give either \"model\" or \"models\", not both"
  | Some m, None -> Ok [ m ]
  | None, Some [] -> Error "field \"models\" must not be empty"
  | None, Some l -> Ok l
  | None, None -> Error "missing \"model\" field"

let id_of obj =
  match Json.member "id" obj with
  | None -> Ok None
  | Some (Json.Int _ as v) -> Ok (Some v)
  | Some (Json.Str _ as v) -> Ok (Some v)
  | Some (Json.Null | Json.Bool _ | Json.Float _ | Json.List _ | Json.Obj _)
    ->
    Error "field \"id\" must be a string or integer"

(* --- op execution ----------------------------------------------------- *)

type outcome = {
  oc_op : string;
  oc_exit : int;
  oc_cache : (string * string * Cache.state) list;
  oc_output : string;
  oc_error : string;
}

type action =
  | Ran of outcome
  | Stats
  | Quit

(* Run one op body with buffer sinks.  Model paths are pre-resolved
   through the cache sequentially, in request order, before the body
   runs — so the reported cache states (and the hit/miss counters) are
   deterministic even when the body fans the models out over a pool.
   The body then loads from the per-request snapshot, never the live
   cache. *)
let run_op t ~op ~paths ~metrics body =
  let out = Buffer.create 1024 and err = Buffer.create 256 in
  let sink =
    { Ops.s_out = Buffer.add_string out; Ops.s_err = Buffer.add_string err }
  in
  let resolved = List.map (fun p -> (p, Cache.load t.cache p)) paths in
  let cache_info =
    List.filter_map
      (fun (path, r) ->
        match r with
        | Ok (_art, key, state) -> Some (path, key, state)
        | Error _msg -> None)
      resolved
  in
  let loader path =
    match List.assoc_opt path resolved with
    | Some (Ok (art, _key, _state)) -> Ok art
    | Some (Error msg) -> Error msg
    | None -> (
      match Cache.load t.cache path with
      | Ok (art, _key, _state) -> Ok art
      | Error msg -> Error msg)
  in
  let run reg = Ops.guarded sink (fun () -> body sink loader reg) in
  let code =
    if metrics then begin
      (* satellite: per-request isolation — the response reports this
         request's counters only; the fork merges back so daemon-level
         totals still accumulate *)
      let child = Telemetry.Metrics.fork t.registry in
      let code = run (Some child) in
      Telemetry.Metrics.merge_into ~into:t.registry child;
      code
    end
    else run None
  in
  {
    oc_op = op;
    oc_exit = code;
    oc_cache = cache_info;
    oc_output = Buffer.contents out;
    oc_error = Buffer.contents err;
  }

let dispatch t obj members ~op =
  let common = [ "op"; "id" ] in
  match op with
  | "validate" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "format" ]) members
    in
    let* model = req_str obj "model" in
    let* format = format_field obj in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false
            (fun sink loader _reg ->
              Ops.with_artifacts sink loader model (Ops.validate sink ~format))))
  | "lint" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common
          @ [ "model"; "models"; "format"; "only"; "disable"; "no_hdl";
              "jobs" ])
        members
    in
    let* models = models_field obj in
    let* format = format_field obj in
    let* only = list_field obj "only" in
    let* disable = list_field obj "disable" in
    let* no_hdl = bool_field obj "no_hdl" ~default:false in
    let* jobs = int_field obj "jobs" ~default:1 in
    (* mirror the CLI's ordering: unknown selectors are rejected before
       any model is loaded, so don't pre-resolve (and fill the cache)
       when the op will refuse to run *)
    let paths =
      match Ops.selection_of ~only ~disable with
      | Ok _selection -> models
      | Error _msg -> []
    in
    Ok
      (Ran
         (run_op t ~op ~paths ~metrics:false (fun sink loader _reg ->
              Ops.lint sink ~format ~only ~disable ~no_hdl ~jobs loader
                models)))
  | "info" ->
    let* () = check_fields ~op ~allowed:(common @ [ "model" ]) members in
    let* model = req_str obj "model" in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false
            (fun sink loader _reg ->
              Ops.with_artifacts sink loader model (Ops.info sink))))
  | "gen" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "lang" ]) members
    in
    let* model = req_str obj "model" in
    let* lang = lang_field obj in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false
            (fun sink loader _reg ->
              Ops.with_artifacts sink loader model (Ops.gen sink ~lang))))
  | "simulate" ->
    let* () =
      check_fields ~op
        ~allowed:(common @ [ "model"; "machine"; "events"; "metrics"; "rtl" ])
        members
    in
    let* model = req_str obj "model" in
    let* machine = opt_str obj "machine" in
    let* events = str_field obj "events" ~default:"" in
    let* metrics = bool_field obj "metrics" ~default:false in
    let* rtl = bool_field obj "rtl" ~default:false in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics (fun sink loader reg ->
              Ops.with_artifacts sink loader model
                (Ops.simulate sink ~machine ~events ~metrics:reg ~rtl))))
  | "trace" ->
    let* () =
      check_fields ~op
        ~allowed:(common @ [ "model"; "machine"; "events" ])
        members
    in
    let* model = req_str obj "model" in
    let* machine = opt_str obj "machine" in
    let* events = str_field obj "events" ~default:"" in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false
            (fun sink loader _reg ->
              Ops.with_artifacts sink loader model
                (Ops.trace sink ~machine ~events))))
  | "partition" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "budget" ]) members
    in
    let* model = req_str obj "model" in
    let* budget = int_field obj "budget" ~default:500 in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false
            (fun sink loader _reg ->
              Ops.with_artifacts sink loader model
                (Ops.partition sink ~budget))))
  | "analyze" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common @ [ "model"; "metrics"; "only"; "disable"; "jobs" ])
        members
    in
    let* model = req_str obj "model" in
    let* metrics = bool_field obj "metrics" ~default:false in
    let* only = list_field obj "only" in
    let* disable = list_field obj "disable" in
    let* jobs = int_field obj "jobs" ~default:1 in
    let paths =
      match Ops.selection_of ~only ~disable with
      | Ok _selection -> [ model ]
      | Error _msg -> []
    in
    Ok
      (Ran
         (run_op t ~op ~paths ~metrics (fun sink loader reg ->
              Ops.analyze sink ~metrics:reg ~only ~disable ~jobs loader model)))
  | "inject" ->
    let* () =
      check_fields ~op
        ~allowed:
          (common
          @ [ "model"; "machine"; "seed"; "faults"; "format"; "metrics";
              "jobs" ])
        members
    in
    let* model = req_str obj "model" in
    let* machine = opt_str obj "machine" in
    let* seed = int_field obj "seed" ~default:1 in
    let* faults = int_field obj "faults" ~default:12 in
    let* format = format_field obj in
    let* metrics = bool_field obj "metrics" ~default:false in
    let* jobs = int_field obj "jobs" ~default:1 in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics (fun sink loader reg ->
              Ops.with_artifacts sink loader model
                (Ops.inject sink ~machine ~seed ~faults ~format ~metrics:reg
                   ~jobs))))
  | "pack" ->
    let* () =
      check_fields ~op ~allowed:(common @ [ "model"; "out" ]) members
    in
    let* model = req_str obj "model" in
    let* out = opt_str obj "out" in
    Ok
      (Ran
         (run_op t ~op ~paths:[ model ] ~metrics:false
            (fun sink loader _reg ->
              Ops.with_artifacts sink loader model
                (Ops.pack sink ~out ~path:model))))
  | "stats" ->
    let* () = check_fields ~op ~allowed:common members in
    Ok Stats
  | "quit" ->
    let* () = check_fields ~op ~allowed:common members in
    Ok Quit
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* --- response assembly ------------------------------------------------ *)

let respond ~id fields =
  let prefix =
    match id with
    | Some v -> [ ("id", v) ]
    | None -> []
  in
  Json.to_string (Json.Obj (prefix @ fields))

let protocol_error t ~id msg =
  t.protocol_errors <- t.protocol_errors + 1;
  respond ~id [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let outcome_response ~id oc =
  respond ~id
    [
      ("op", Json.Str oc.oc_op);
      ("ok", Json.Bool (oc.oc_exit = 0));
      ("exit", Json.Int oc.oc_exit);
      ( "cache",
        Json.List
          (List.map
             (fun (path, key, state) ->
               Json.Obj
                 [
                   ("path", Json.Str path);
                   ("key", Json.Str key);
                   ("state", Json.Str (Cache.state_name state));
                 ])
             oc.oc_cache) );
      ("output", Json.Str oc.oc_output);
      ("error", Json.Str oc.oc_error);
    ]

let stats_response t ~id =
  let c = Cache.stats t.cache in
  let a = Asl.Compiled.memo_stats () in
  respond ~id
    [
      ("op", Json.Str "stats");
      ("ok", Json.Bool true);
      ("exit", Json.Int 0);
      ("requests", Json.Int t.requests);
      ("protocol_errors", Json.Int t.protocol_errors);
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Int c.Cache.cs_entries);
            ("bytes", Json.Int c.Cache.cs_bytes);
            ("max_entries", Json.Int c.Cache.cs_max_entries);
            ("max_bytes", Json.Int c.Cache.cs_max_bytes);
            ("hits", Json.Int c.Cache.cs_hits);
            ("misses", Json.Int c.Cache.cs_misses);
            ("snap_refills", Json.Int c.Cache.cs_snap_refills);
            ("evictions", Json.Int c.Cache.cs_evictions);
            ("persisted", Json.Int c.Cache.cs_persisted);
          ] );
      ( "asl_memo",
        Json.Obj
          [
            ("guards", Json.Int a.Asl.Compiled.st_guards);
            ("programs", Json.Int a.Asl.Compiled.st_programs);
            ("cap", Json.Int a.Asl.Compiled.st_cap);
            ("hits", Json.Int a.Asl.Compiled.st_hits);
            ("misses", Json.Int a.Asl.Compiled.st_misses);
            ("evictions", Json.Int a.Asl.Compiled.st_evictions);
          ] );
    ]

(* --- the loop --------------------------------------------------------- *)

let handle_line t line =
  if String.length line > max_line_bytes then begin
    t.requests <- t.requests + 1;
    ( Some
        (protocol_error t ~id:None
           (Printf.sprintf "request line exceeds %d bytes" max_line_bytes)),
      true )
  end
  else
    let trimmed = String.trim line in
    if trimmed = "" then (None, true)
    else begin
      t.requests <- t.requests + 1;
      match Json.parse trimmed with
      | Error e -> (Some (protocol_error t ~id:None ("invalid request: " ^ e)), true)
      | Ok (Json.Obj members as obj) -> (
        match id_of obj with
        | Error msg -> (Some (protocol_error t ~id:None msg), true)
        | Ok id -> (
          match req_str obj "op" with
          | Error msg -> (Some (protocol_error t ~id msg), true)
          | Ok op -> (
            match dispatch t obj members ~op with
            | Error msg -> (Some (protocol_error t ~id msg), true)
            | Ok (Ran oc) -> (Some (outcome_response ~id oc), true)
            | Ok Stats -> (Some (stats_response t ~id), true)
            | Ok Quit ->
              ( Some
                  (respond ~id
                     [
                       ("op", Json.Str "quit");
                       ("ok", Json.Bool true);
                       ("exit", Json.Int 0);
                     ]),
                false )
            (* a bug below the protocol layer must not kill the daemon:
               answer an error line and keep serving *)
            | exception e ->
              ( Some
                  (protocol_error t ~id
                     ("internal error: " ^ Printexc.to_string e)),
                true ))))
      | Ok
          (( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
           | Json.Str _ | Json.List _ ) as _v) ->
        ( Some (protocol_error t ~id:None "request must be a JSON object"),
          true )
    end

let serve_channel t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      let response, continue = handle_line t line in
      (match response with
       | Some r ->
         output_string oc r;
         output_char oc '\n';
         flush oc
       | None -> ());
      if continue then loop ()
  in
  loop ()

let serve_socket t path =
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let stop = ref false in
      while not !stop do
        let conn, _addr = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        let rec loop () =
          match input_line ic with
          | exception End_of_file -> ()
          | line ->
            let response, continue = handle_line t line in
            (match response with
             | Some r ->
               output_string oc r;
               output_char oc '\n';
               flush oc
             | None -> ());
            if continue then loop () else stop := true
        in
        (* a dropped connection only ends this client, not the daemon *)
        (try loop () with
         | Sys_error _ -> ()
         | Unix.Unix_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close conn with Unix.Unix_error _ -> ()
      done)
